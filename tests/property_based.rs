//! Property-based tests (proptest) over cross-crate invariants.

use proptest::prelude::*;

use datasynth::matching::evaluate::geometric_group_sizes;
use datasynth::matching::{assignment_to_mapping, Jpd};
use datasynth::prng::dist::{Categorical, Sampler};
use datasynth::prng::{SkipSeed, SplitMix64};
use datasynth::structure::{Gnp, StructureGenerator};
use datasynth::tables::{format_date, parse_date, Csr, EdgeTable};

proptest! {
    /// Skip-seed random access equals sequential generation at any index.
    #[test]
    fn skipseed_matches_sequential(seed: u64, idx in 0u64..10_000) {
        let skip = SkipSeed::new(seed);
        let mut seq = SplitMix64::new(seed);
        for _ in 0..idx {
            seq.next_u64();
        }
        prop_assert_eq!(skip.at(idx), seq.next_u64());
    }

    /// `next_below` respects its bound for arbitrary seeds and bounds.
    #[test]
    fn next_below_in_range(seed: u64, bound in 1u64..u64::MAX) {
        let mut rng = SplitMix64::new(seed);
        for _ in 0..16 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// Shuffle always yields a permutation.
    #[test]
    fn shuffle_is_permutation(seed: u64, n in 0usize..200) {
        let mut v: Vec<usize> = (0..n).collect();
        SplitMix64::new(seed).shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..n).collect::<Vec<_>>());
    }

    /// Date formatting and parsing round-trip from year 0 to year ~7400
    /// (ISO rendering of negative years is out of scope for the parser).
    #[test]
    fn date_roundtrip(days in -719_528i64..2_000_000) {
        let s = format_date(days);
        prop_assert_eq!(parse_date(&s), Some(days));
    }

    /// Categorical sampling stays on the declared support.
    #[test]
    fn categorical_on_support(
        seed: u64,
        weights in prop::collection::vec(0.01f64..100.0, 1..40),
    ) {
        let dist = Categorical::new(&weights);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..32 {
            prop_assert!(dist.sample(&mut rng) < weights.len());
        }
    }

    /// The paper's geometric group sizes always partition n exactly, with
    /// no empty group.
    #[test]
    fn geometric_sizes_partition(n in 64u64..100_000, k in 1usize..64) {
        prop_assume!(n >= k as u64);
        let sizes = geometric_group_sizes(n, k, 0.4);
        prop_assert_eq!(sizes.len(), k);
        prop_assert_eq!(sizes.iter().sum::<u64>(), n);
        prop_assert!(sizes.iter().all(|&s| s >= 1));
    }

    /// assignment_to_mapping is a bijection for any consistent assignment.
    #[test]
    fn mapping_is_bijection(labels in prop::collection::vec(0u32..8, 1..300)) {
        let k = 8usize;
        let mut sizes = vec![0u64; k];
        for &l in &labels {
            sizes[l as usize] += 1;
        }
        let mapping = assignment_to_mapping(&labels, &sizes);
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        let expected: Vec<u64> = (0..labels.len() as u64).collect();
        prop_assert_eq!(sorted, expected);
    }

    /// Any nonnegative symmetric matrix normalizes into a valid JPD whose
    /// unordered masses sum to 1.
    #[test]
    fn jpd_normalizes(k in 1usize..12, seed: u64) {
        let mut rng = SplitMix64::new(seed);
        let mut rows = vec![vec![0.0f64; k]; k];
        let mut any = false;
        for i in 0..k {
            for j in i..k {
                let v = rng.next_f64();
                rows[i][j] = v;
                rows[j][i] = v;
                any = any || v > 0.0;
            }
        }
        prop_assume!(any);
        let jpd = Jpd::from_matrix(&rows);
        let mut total = 0.0;
        for i in 0..k {
            for j in i..k {
                total += jpd.unordered_mass(i, j);
            }
        }
        prop_assert!((total - 1.0).abs() < 1e-9);
    }

    /// G(n,p) output is always canonical, in range, and duplicate-free.
    #[test]
    fn gnp_always_simple(seed: u64, n in 2u64..300, p in 0.0f64..0.2) {
        let et = Gnp::new(p).run(n, &mut SplitMix64::new(seed));
        let mut seen = std::collections::HashSet::new();
        for (t, h) in et.iter() {
            prop_assert!(t < h && h < n);
            prop_assert!(seen.insert((t, h)));
        }
    }

    /// CSR degree sums always equal twice the edge count (undirected).
    #[test]
    fn csr_degree_sum(seed: u64, n in 1u64..200, m in 0usize..500) {
        let mut rng = SplitMix64::new(seed);
        let et = EdgeTable::from_pairs(
            "e",
            (0..m).map(|_| (rng.next_below(n), rng.next_below(n))),
        );
        let csr = Csr::undirected(&et, n);
        let total: u64 = (0..n).map(|v| csr.degree(v)).sum();
        prop_assert_eq!(total, 2 * et.len());
    }
}
