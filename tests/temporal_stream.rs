//! Dynamic-graph update streams: the `TemporalSink` op log must be a
//! deterministic artifact of `(schema, seed)` — byte-identical at any
//! thread count, tiled exactly by shard windows, globally ordered by
//! timestamp with every delete strictly after its insert — and the
//! curated temporal workload parameters must land inside the timestamp
//! range the log actually generated.

use std::collections::BTreeMap;

use datasynth::prelude::*;
use datasynth::temporal::{OpsFormat, TemporalSink};
use datasynth::workload::{ParamValue, WorkloadGenerator};
use proptest::prelude::*;

/// Two temporal types (node with insert-only arrivals, edge with
/// lifetimes) next to two snapshot-only types that must never appear in
/// the log.
const SCHEMA: &str = r#"
graph temporalmix {
  node Person [count = 300] {
    country: text = dictionary("countries");
    temporal { arrival = date_between("2015-01-01", "2017-01-01"); }
  }
  node Tag {
    name: text = dictionary("topics");
  }
  edge knows: Person -- Person {
    structure = rmat(edge_factor = 4);
    temporal {
      arrival = date_between("2015-01-01", "2017-01-01");
      lifetime = uniform(10, 200);
    }
  }
  edge tagged: Person -> Tag [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.5);
  }
}
"#;

fn matrix_threads() -> usize {
    std::env::var("DATASYNTH_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// Run the schema into an in-memory op log, returning (bytes, manifest).
fn op_log(
    schema: &str,
    seed: u64,
    threads: usize,
    shard: Option<(u64, u64)>,
    format: OpsFormat,
) -> (Vec<u8>, SinkManifest) {
    let generator = DataSynth::from_dsl(schema)
        .unwrap()
        .with_seed(seed)
        .with_threads(threads);
    let mut sink = TemporalSink::new(generator.schema(), Vec::new(), format).unwrap();
    let mut session = generator.session().unwrap().with_ops(true);
    if let Some((i, k)) = shard {
        session = session.shard(i, k).unwrap();
    }
    let manifest = session.run_into(&mut sink).unwrap().into_manifest();
    (sink.into_inner(), manifest)
}

/// Parsed CSV op row: (op, ts, kind, table, row).
fn parse_csv(log: &[u8]) -> Vec<(u64, String, String, String, u64)> {
    let text = std::str::from_utf8(log).unwrap();
    text.lines()
        .skip(1) // header
        .map(|line| {
            let mut f = line.split(',');
            (
                f.next().unwrap().parse().unwrap(),
                f.next().unwrap().to_owned(),
                f.next().unwrap().to_owned(),
                f.next().unwrap().to_owned(),
                f.next().unwrap().parse().unwrap(),
            )
        })
        .collect()
}

#[test]
fn op_log_is_byte_identical_across_thread_counts() {
    for format in [OpsFormat::Csv, OpsFormat::Jsonl] {
        let (one, m1) = op_log(SCHEMA, 42, 1, None, format);
        let (two, m2) = op_log(SCHEMA, 42, 2, None, format);
        let (many, m3) = op_log(SCHEMA, 42, matrix_threads(), None, format);
        assert_eq!(one, two);
        assert_eq!(one, many);
        assert_eq!(m1.to_json(), m2.to_json());
        assert_eq!(m1.to_json(), m3.to_json());
        assert!(!one.is_empty());
    }
}

#[test]
fn shard_concatenation_tiles_the_full_log() {
    for format in [OpsFormat::Csv, OpsFormat::Jsonl] {
        let (full, full_manifest) = op_log(SCHEMA, 7, 2, None, format);
        for k in [1u64, 2, 3] {
            let mut concat = Vec::new();
            let mut manifests = Vec::new();
            for i in 0..k {
                let (part, m) = op_log(SCHEMA, 7, matrix_threads(), Some((i, k)), format);
                concat.extend_from_slice(&part);
                manifests.push(m);
            }
            assert_eq!(concat, full, "k={k} concat diverges");
            let merged = SinkManifest::merge(&manifests).unwrap();
            assert_eq!(
                merged.to_json(),
                full_manifest.to_json(),
                "k={k} merged manifest diverges"
            );
        }
    }
}

#[test]
fn ops_are_ordered_and_deletes_follow_inserts() {
    let (log, manifest) = op_log(SCHEMA, 42, matrix_threads(), None, OpsFormat::Csv);
    let ops = parse_csv(&log);
    assert_eq!(ops.len() as u64, manifest.tables["$ops"].total);

    let mut inserted: BTreeMap<(String, u64), String> = BTreeMap::new();
    let mut prev_ts = String::new();
    for (i, (op, ts, kind, table, row)) in ops.iter().enumerate() {
        assert_eq!(*op, i as u64, "op indices must be dense and sequential");
        assert!(*ts >= prev_ts, "timestamps must be non-decreasing");
        prev_ts = ts.clone();
        // Snapshot-only types never enter the stream.
        assert!(
            table == "Person" || table == "knows",
            "non-temporal table {table:?} leaked into the op log"
        );
        match kind.as_str() {
            "INSERT_NODE" | "INSERT_EDGE" => {
                inserted.insert((table.clone(), *row), ts.clone());
            }
            "DELETE_NODE" | "DELETE_EDGE" => {
                let born = inserted
                    .get(&(table.clone(), *row))
                    .expect("delete of a row never inserted");
                assert!(
                    ts > born,
                    "{table}[{row}] deleted at {ts}, not strictly after insert at {born}"
                );
            }
            other => panic!("unknown op kind {other:?}"),
        }
    }
    // Person has no lifetime distribution: insert-only.
    assert!(!ops
        .iter()
        .any(|(_, _, k, t, _)| t == "Person" && k == "DELETE_NODE"));
    // knows has one: every edge dies.
    let knows_inserts = ops
        .iter()
        .filter(|(_, _, k, _, _)| k == "INSERT_EDGE")
        .count();
    let knows_deletes = ops
        .iter()
        .filter(|(_, _, k, _, _)| k == "DELETE_EDGE")
        .count();
    assert_eq!(knows_inserts, knows_deletes);
    assert!(knows_inserts > 0);
}

#[test]
fn in_memory_sink_rejects_ops_and_snapshots_ignore_temporal() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(42);
    // Temporal annotations don't disturb snapshot-only generation.
    let graph = generator.generate().unwrap();
    assert_eq!(graph.node_count("Person"), Some(300));
    // But an op-log run cannot be silently dropped into memory.
    let mut sink = InMemorySink::new();
    let err = generator
        .session()
        .unwrap()
        .with_ops(true)
        .run_into(&mut sink)
        .map(|_| ())
        .unwrap_err();
    assert!(err.to_string().contains("TemporalSink"), "{err}");
}

#[test]
fn workload_temporal_params_land_in_generated_range() {
    let seed = 11;
    let (log, _) = op_log(SCHEMA, seed, 1, None, OpsFormat::Csv);
    // Per-table insert-timestamp ranges actually generated.
    let mut range: BTreeMap<String, (String, String)> = BTreeMap::new();
    for (_, ts, kind, table, _) in parse_csv(&log) {
        if !kind.starts_with("INSERT") {
            continue;
        }
        let entry = range
            .entry(table)
            .or_insert_with(|| (ts.clone(), ts.clone()));
        if ts < entry.0 {
            entry.0 = ts.clone();
        }
        if ts > entry.1 {
            entry.1 = ts;
        }
    }

    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(seed);
    let graph = generator.generate().unwrap();
    let workload = WorkloadGenerator::new(generator.schema(), &graph)
        .with_seed(seed)
        .generate(80)
        .unwrap();

    let mut temporal_queries = 0;
    for q in &workload.queries {
        let table = match q.template_id().split_once(':') {
            Some(("as_of_lookup", t)) => t,
            Some(("expand_window" | "window_agg", t)) => t,
            _ => continue,
        };
        temporal_queries += 1;
        let (lo, hi) = &range[table];
        for p in &q.binding().params {
            if let ParamValue::Value(Value::Date(_)) = p.value {
                let ts = p.value.render();
                assert!(
                    ts >= *lo && ts <= *hi,
                    "{} param {}={ts} outside generated range [{lo}, {hi}]",
                    q.template_id(),
                    p.name
                );
            }
        }
    }
    assert!(temporal_queries > 0, "workload derived no temporal queries");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Ordering invariants hold for arbitrary seeds at mixed thread
    /// counts, and the log stays thread-count-invariant.
    #[test]
    fn op_log_invariants_hold_for_any_seed(seed: u64, threads in 1usize..5) {
        const SMALL: &str = r#"
        graph tiny {
          node Person [count = 60] {
            country: text = dictionary("countries");
            temporal { arrival = date_between("2019-01-01", "2020-01-01"); }
          }
          edge knows: Person -- Person {
            structure = rmat(edge_factor = 2);
            temporal {
              arrival = date_between("2019-01-01", "2020-01-01");
              lifetime = uniform(1, 30);
            }
          }
        }
        "#;
        let (log, manifest) = op_log(SMALL, seed, threads, None, OpsFormat::Csv);
        let (base, _) = op_log(SMALL, seed, 1, None, OpsFormat::Csv);
        prop_assert_eq!(&log, &base);
        let ops = parse_csv(&log);
        prop_assert_eq!(ops.len() as u64, manifest.tables["$ops"].total);
        let mut inserted: BTreeMap<(String, u64), String> = BTreeMap::new();
        let mut prev = String::new();
        for (i, (op, ts, kind, table, row)) in ops.iter().enumerate() {
            prop_assert_eq!(*op, i as u64);
            prop_assert!(*ts >= prev);
            prev = ts.clone();
            if kind.starts_with("INSERT") {
                inserted.insert((table.clone(), *row), ts.clone());
            } else {
                let born = &inserted[&(table.clone(), *row)];
                prop_assert!(ts > born);
            }
        }
    }
}
