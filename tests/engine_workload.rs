//! End-to-end embedded-engine tests: ground-truth cardinality bands over
//! `examples/social.dsl` at multiple thread counts, temporal as-of
//! semantics pinned against the type clocks, and reader round-trips of
//! exported directories — arbitrary quoted text and shard-concatenated
//! files included.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;

use proptest::prelude::*;

use datasynth::core::{NodeTableInfo, PropertyInfo};
use datasynth::engine::{read_graph_dir, Bench, Executor, StoreSink};
use datasynth::prelude::*;
use datasynth::tables::PropertyTable;
use datasynth::temporal::TypeClock;
use datasynth::workload::{Binding, CuratedParam, ParamValue, QueryPlan, TemplateKind};

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds-engine-e2e-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// The "N" of the thread matrix: CI re-runs the suite with
/// `DATASYNTH_TEST_THREADS=7`.
fn matrix_threads() -> usize {
    std::env::var("DATASYNTH_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// The acceptance benchmark: `examples/social.dsl` derives every one of
/// the nine template kinds, and every executed instance must land exactly
/// on its curated cardinality — at 1 thread and at the matrix count, with
/// byte-identical stable reports.
#[test]
fn social_bench_covers_all_kinds_inside_bands_across_threads() {
    let src = fs::read_to_string("examples/social.dsl").unwrap();
    let schema = parse_schema(&src).unwrap();
    let run = |threads: usize| {
        Bench::new(&schema)
            .with_seed(42)
            .with_threads(threads)
            .with_queries(48)
            .with_warmup(0)
            .with_iters(1)
            .run()
            .unwrap()
    };
    let single = run(1);
    let matrix = run(matrix_threads());

    assert_eq!(
        single.to_json_stable(),
        matrix.to_json_stable(),
        "stable report must be thread-count independent"
    );
    let kinds: std::collections::BTreeSet<&str> = single.templates.iter().map(|t| t.kind).collect();
    assert_eq!(
        kinds.len(),
        9,
        "social.dsl must exercise all nine template kinds, got {kinds:?}"
    );
    assert!(single.all_in_band(), "{}", single.to_json());
    for t in &single.templates {
        assert_eq!(
            t.rows, t.expected_rows,
            "curation is exact, so executed rows must match: {t:?}"
        );
        assert_eq!(t.in_band, t.queries, "{t:?}");
    }
}

const TEMPORAL_DSL: &str = r#"graph t {
    node Person [count = 12] {
        x: long = uniform(0, 9);
        temporal {
            arrival = date_between("2020-01-01", "2020-06-01");
            lifetime = uniform(10, 40);
        }
    }
}"#;

/// As-of semantics pinned against the op-log clocks: a row is visible
/// from its insert timestamp (inclusive) to its delete timestamp
/// (exclusive) — querying at the insert ts returns the row, at the
/// delete ts (and later) it is gone.
#[test]
fn asof_lookup_matches_type_clock_lifecycle() {
    let synth = DataSynth::from_dsl(TEMPORAL_DSL).unwrap().with_seed(9);
    let schema = synth.schema().clone();
    let mut sink = StoreSink::new();
    synth.session().unwrap().run_into(&mut sink).unwrap();
    let store = sink.into_store(&schema).unwrap();
    let exec = Executor::new(&store);

    let tdef = schema
        .node_type("Person")
        .unwrap()
        .temporal
        .as_ref()
        .unwrap();
    let clock = TypeClock::new(9, "Person", tdef).unwrap();
    assert!(clock.has_lifetime());

    let asof = |id: u64, ts: i64| {
        let plan = QueryPlan {
            template_id: "as_of_lookup:Person".into(),
            kind: TemplateKind::AsOfLookup {
                node_type: "Person".into(),
            },
            binding: Binding {
                params: vec![
                    CuratedParam {
                        name: "id".into(),
                        value: ParamValue::Id(id),
                    },
                    CuratedParam {
                        name: "ts".into(),
                        value: ParamValue::Value(Value::Date(ts)),
                    },
                ],
                expected_rows: 0,
                band: (0, 1),
            },
        };
        exec.execute(&plan).unwrap().rows
    };

    for row in 0..12u64 {
        let insert = clock.insert_ts(row).unwrap();
        let delete = clock.delete_ts(row).unwrap().expect("lifetime declared");
        assert!(delete > insert, "delete must be strictly after insert");
        assert_eq!(asof(row, insert), 1, "row {row} alive at its insert ts");
        assert_eq!(
            asof(row, delete - 1),
            1,
            "row {row} alive just before delete"
        );
        assert_eq!(asof(row, delete), 0, "row {row} gone at its delete ts");
        assert_eq!(asof(row, insert - 1), 0, "row {row} absent before insert");
    }
}

/// Read a directory back and compare against the in-memory original,
/// table by table, value by value.
fn assert_graphs_equal(read: &PropertyGraph, original: &PropertyGraph) {
    let read_nodes: Vec<_> = read.node_types().collect();
    let orig_nodes: Vec<_> = original.node_types().collect();
    assert_eq!(read_nodes, orig_nodes);
    for (name, _) in orig_nodes {
        let mut got: BTreeMap<&str, Vec<Value>> = BTreeMap::new();
        for (prop, table) in read.node_properties_of(name) {
            got.insert(prop, table.iter().collect());
        }
        for (prop, table) in original.node_properties_of(name) {
            let want: Vec<Value> = table.iter().collect();
            assert_eq!(got.get(prop), Some(&want), "{name}.{prop}");
        }
    }
    for (name, meta, table) in original.edge_types() {
        let read_table = read.edges(name).expect(name);
        let read_meta = read.edge_meta(name).expect(name);
        assert_eq!(
            (&read_meta.source, &read_meta.target),
            (&meta.source, &meta.target)
        );
        assert_eq!(read_table.tails(), table.tails(), "{name} tails");
        assert_eq!(read_table.heads(), table.heads(), "{name} heads");
        let mut got: BTreeMap<&str, Vec<Value>> = BTreeMap::new();
        for (prop, ptable) in read.edge_properties_of(name) {
            got.insert(prop, ptable.iter().collect());
        }
        for (prop, ptable) in original.edge_properties_of(name) {
            let want: Vec<Value> = ptable.iter().collect();
            assert_eq!(got.get(prop), Some(&want), "{name}.{prop}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Arbitrary text — quotes, commas, newlines, unicode — survives the
    /// CSV and JSONL export/read-back round trip exactly.
    #[test]
    fn reader_round_trips_arbitrary_text(
        texts in prop::collection::vec("[a-zA-Z0-9\"',;:é\n\r -]{0,16}", 1..10),
        seed: u64,
    ) {
        let n = texts.len() as u64;
        let mut graph = PropertyGraph::new();
        graph.add_node_type("N", n);
        let values: Vec<Value> = texts.iter().cloned().map(Value::Text).collect();
        graph.insert_node_property(
            "N",
            "t",
            PropertyTable::from_values("N.t", ValueType::Text, values).unwrap(),
        );
        let longs: Vec<Value> = (0..n)
            .map(|i| Value::Long((seed.wrapping_add(i) % 1000) as i64 - 500))
            .collect();
        graph.insert_node_property(
            "N",
            "x",
            PropertyTable::from_values("N.x", ValueType::Long, longs).unwrap(),
        );
        let manifest = SinkManifest {
            graph_name: "g".into(),
            seed: 1,
            shard: ShardSpec::default(),
            nodes: vec![NodeTableInfo {
                name: "N".into(),
                properties: vec![
                    PropertyInfo { name: "t".into(), value_type: ValueType::Text },
                    PropertyInfo { name: "x".into(), value_type: ValueType::Long },
                ],
            }],
            edges: vec![],
            tables: BTreeMap::new(),
            ops: false,
        };

        for (tag, format) in [("csv", TableFormat::Csv), ("jsonl", TableFormat::Jsonl)] {
            let dir = fresh_dir(&format!("roundtrip-{tag}"));
            match format {
                TableFormat::Csv => CsvExporter.export(&graph, &dir).unwrap(),
                TableFormat::Jsonl => JsonlExporter.export(&graph, &dir).unwrap(),
            }
            // The reader prefers CSV; keep only the format under test.
            if format == TableFormat::Jsonl {
                let _ = fs::remove_file(dir.join("N.csv"));
            }
            manifest.save(&dir).unwrap();
            let (read, loaded) = read_graph_dir(&dir).unwrap();
            prop_assert_eq!(loaded.seed, 1);
            assert_graphs_equal(&read, &graph);
            fs::remove_dir_all(&dir).unwrap();
        }
    }
}

const SHARDED_DSL: &str = r#"graph s {
    node Person [count = 300] {
        country: text = dictionary("countries");
        bio: text = sentence(4, 9);
        born: date = date_between("1960-01-01", "2005-12-31");
    }
    node Message {
        text: text = sentence(3, 12);
    }
    edge knows: Person -- Person [many_to_many] {
        structure = erdos_renyi(p = 0.02);
        since: date = date_between("2010-01-01", "2020-12-31");
    }
    edge creates: Person -> Message [one_to_many] {
        structure = one_to_many(dist = "geometric", p = 0.5);
    }
}"#;

/// Concatenating K shard exports in shard order reads back as exactly the
/// graph a full run streams into a [`StoreSink`] — the reader's promise
/// that `cat shard*/T.csv` *is* the full table, manifest merge included.
#[test]
fn shard_concatenated_export_reads_back_as_the_full_graph() {
    const K: u64 = 3;
    let full = {
        let synth = DataSynth::from_dsl(SHARDED_DSL).unwrap().with_seed(31);
        let mut sink = StoreSink::new();
        synth.session().unwrap().run_into(&mut sink).unwrap();
        sink.into_graph()
    };

    let mut shard_dirs = Vec::new();
    let mut manifests = Vec::new();
    for i in 0..K {
        let synth = DataSynth::from_dsl(SHARDED_DSL).unwrap().with_seed(31);
        let dir = fresh_dir(&format!("shard-{i}"));
        let mut sink = CsvSink::new(&dir);
        let report = synth
            .session()
            .unwrap()
            .shard(i, K)
            .unwrap()
            .run_into(&mut sink)
            .unwrap();
        manifests.push(report.manifest.clone());
        shard_dirs.push(dir);
    }

    let merged_dir = fresh_dir("merged");
    let merged = SinkManifest::merge(&manifests).unwrap();
    for table in merged.tables.keys() {
        let mut bytes = Vec::new();
        for dir in &shard_dirs {
            bytes.extend_from_slice(&fs::read(dir.join(format!("{table}.csv"))).unwrap());
        }
        fs::write(merged_dir.join(format!("{table}.csv")), bytes).unwrap();
    }
    merged.save(&merged_dir).unwrap();

    let (read, manifest) = read_graph_dir(&merged_dir).unwrap();
    assert_eq!(manifest.seed, 31);
    assert_graphs_equal(&read, &full);

    for dir in shard_dirs.iter().chain([&merged_dir]) {
        fs::remove_dir_all(dir).unwrap();
    }
}
