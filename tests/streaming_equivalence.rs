//! Streaming-vs-in-memory equivalence: `Session::run_into` with the
//! streaming CSV/JSONL sinks must produce byte-identical directories to
//! exporting the `generate()` graph with the whole-graph exporters — the
//! guarantee that makes the sink API a pure refactor of the emission path,
//! not a new format. Plus a proptest round-trip for CSV quoting/escaping.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use proptest::prelude::*;

use datasynth::analysis::StatsSink;
use datasynth::prelude::*;
use datasynth::tables::export::csv_escape;
use datasynth::workload::WorkloadSink;

const SCHEMA: &str = r#"
graph streaming {
  node Person [count = 600] {
    country: text = dictionary("countries");
    age: long = uniform(18, 90);
    score: double = normal(0, 1);
    premium: bool = bool(0.25);
    signup: date = date_between("2015-01-01", "2020-12-31");
  }
  node Message {
    topic: text = dictionary("topics");
    text: text = sentence_about(4, 9) given (topic);
  }
  edge knows: Person -- Person {
    structure = lfr(avg_degree = 8, max_degree = 24, mixing = 0.15);
    correlate country with homophily(0.7);
    creationDate: date = date_after(30) given (source.signup, target.signup);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.5);
  }
}
"#;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ds-streaming-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All files under `dir` as relative-path -> bytes.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    out
}

#[test]
fn streaming_sinks_match_in_memory_export_byte_for_byte() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(42);

    let mem_dir = fresh_dir("mem");
    let graph = generator.generate().unwrap();
    CsvExporter.export(&graph, &mem_dir).unwrap();
    JsonlExporter.export(&graph, &mem_dir).unwrap();
    let mem = snapshot(&mem_dir);
    fs::remove_dir_all(&mem_dir).unwrap();

    let stream_dir = fresh_dir("stream");
    let mut csv = CsvSink::new(&stream_dir);
    let mut jsonl = JsonlSink::new(&stream_dir);
    let mut sinks = MultiSink::new().with(&mut csv).with(&mut jsonl);
    generator.session().unwrap().run_into(&mut sinks).unwrap();
    let stream = snapshot(&stream_dir);
    fs::remove_dir_all(&stream_dir).unwrap();

    assert_eq!(
        mem.keys().collect::<Vec<_>>(),
        stream.keys().collect::<Vec<_>>(),
        "both paths must emit the same file set"
    );
    assert!(mem.len() >= 8, "4 types x 2 formats");
    for (name, bytes) in &mem {
        assert_eq!(
            bytes, &stream[name],
            "{name} differs between streaming and in-memory export"
        );
    }
}

/// The "N" of the thread matrix: CI re-runs the suite with
/// `DATASYNTH_TEST_THREADS=7`.
fn matrix_threads() -> usize {
    std::env::var("DATASYNTH_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

#[test]
fn parallel_streaming_matches_single_threaded_export_byte_for_byte() {
    // threads > 1 engages the task-parallel scheduler; the reorder buffer
    // must hand the sinks exactly the single-threaded event sequence, so
    // the directories match byte for byte.
    let single_dir = fresh_dir("par-t1");
    {
        let generator = DataSynth::from_dsl(SCHEMA)
            .unwrap()
            .with_seed(42)
            .with_threads(1);
        let mut csv = CsvSink::new(&single_dir);
        let mut jsonl = JsonlSink::new(&single_dir);
        let mut sinks = MultiSink::new().with(&mut csv).with(&mut jsonl);
        generator.session().unwrap().run_into(&mut sinks).unwrap();
    }
    let single = snapshot(&single_dir);
    fs::remove_dir_all(&single_dir).unwrap();

    let multi_dir = fresh_dir("par-tn");
    {
        let generator = DataSynth::from_dsl(SCHEMA)
            .unwrap()
            .with_seed(42)
            .with_threads(matrix_threads());
        let mut csv = CsvSink::new(&multi_dir);
        let mut jsonl = JsonlSink::new(&multi_dir);
        let mut sinks = MultiSink::new().with(&mut csv).with(&mut jsonl);
        generator.session().unwrap().run_into(&mut sinks).unwrap();
    }
    let multi = snapshot(&multi_dir);
    fs::remove_dir_all(&multi_dir).unwrap();

    assert_eq!(
        single.keys().collect::<Vec<_>>(),
        multi.keys().collect::<Vec<_>>()
    );
    for (name, bytes) in &single {
        assert_eq!(
            bytes,
            &multi[name],
            "{name} differs between 1 and {} threads",
            matrix_threads()
        );
    }
}

#[test]
fn observer_events_arrive_in_plan_order_even_when_parallel() {
    let generator = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(1)
        .with_threads(matrix_threads());
    let mut events: Vec<(usize, bool)> = Vec::new();
    let mut sink = InMemorySink::new();
    generator
        .session()
        .unwrap()
        .on_task(|p| {
            events.push((p.index, matches!(p.phase, TaskPhase::Finished)));
        })
        .run_into(&mut sink)
        .unwrap();
    let total = generator.plan().unwrap().tasks.len();
    assert_eq!(events.len(), 2 * total, "two events per task");
    for i in 0..total {
        assert_eq!(events[2 * i], (i, false), "start of task {i}");
        assert_eq!(events[2 * i + 1], (i, true), "finish of task {i}");
    }
}

#[test]
fn in_memory_sink_reassembles_the_generate_graph() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(9);
    let graph = generator.generate().unwrap();
    let mut sink = InMemorySink::new();
    generator.session().unwrap().run_into(&mut sink).unwrap();
    let streamed = sink.into_graph();
    assert!(streamed.validate().is_empty());
    assert_eq!(graph.node_count("Person"), streamed.node_count("Person"));
    assert_eq!(graph.edges("knows"), streamed.edges("knows"));
    assert_eq!(
        graph.node_property("Person", "country"),
        streamed.node_property("Person", "country")
    );
    assert_eq!(
        graph.edge_property("knows", "creationDate"),
        streamed.edge_property("knows", "creationDate")
    );
}

#[test]
fn one_pass_feeds_export_stats_and_workload() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(42);
    let dir = fresh_dir("onepass");

    let mut csv = CsvSink::new(&dir);
    let mut stats = StatsSink::new();
    let mut workload = WorkloadSink::new(generator.schema())
        .with_seed(42)
        .with_count(25);
    let mut sinks = MultiSink::new()
        .with(&mut csv)
        .with(&mut stats)
        .with(&mut workload);
    generator.session().unwrap().run_into(&mut sinks).unwrap();

    // Export happened.
    assert!(dir.join("Person.csv").exists());
    assert!(dir.join("knows.csv").exists());
    // Stats accumulated for the homogeneous edge type only.
    let reports = stats.reports();
    assert_eq!(reports.len(), 1);
    assert_eq!(reports[0].edge_type, "knows");
    assert!(reports[0].degree.is_some());
    assert!(reports[0].largest_component > 0);
    // Workload curated against the streamed tables.
    let wl = workload.take_workload().expect("curated at finish");
    assert_eq!(wl.queries.len(), 25);

    // And it matches the workload curated from a materialized graph —
    // the one-pass fan-out changes nothing downstream.
    let graph = generator.generate().unwrap();
    let two_pass = WorkloadGenerator::new(generator.schema(), &graph)
        .with_seed(42)
        .generate(25)
        .unwrap();
    assert_eq!(wl.queries.len(), two_pass.queries.len());
    for (a, b) in wl.queries.iter().zip(&two_pass.queries) {
        assert_eq!(a.cypher, b.cypher);
        assert_eq!(a.gremlin, b.gremlin);
    }
    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn observer_sees_every_task_start_and_finish() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(1);
    let mut events: Vec<(usize, bool)> = Vec::new();
    let mut sink = InMemorySink::new();
    generator
        .session()
        .unwrap()
        .on_task(|p| {
            events.push((p.index, matches!(p.phase, TaskPhase::Finished)));
        })
        .run_into(&mut sink)
        .unwrap();
    let total = generator.plan().unwrap().tasks.len();
    assert_eq!(events.len(), 2 * total, "two events per task");
    for i in 0..total {
        assert_eq!(events[2 * i], (i, false), "start of task {i}");
        assert_eq!(events[2 * i + 1], (i, true), "finish of task {i}");
    }
}

/// Parse one RFC-4180 escaped field back (inverse of `csv_escape`).
fn csv_unescape(field: &str) -> String {
    if let Some(inner) = field
        .strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
    {
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '"' {
                // An escaped quote is two quotes; skip the second.
                assert_eq!(chars.next(), Some('"'), "lone quote inside quoted field");
            }
            out.push(c);
        }
        out
    } else {
        field.to_owned()
    }
}

/// Split one CSV record into raw (still-escaped) fields.
fn split_record(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut current = String::new();
    let mut in_quotes = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if in_quotes => {
                current.push('"');
                if chars.peek() == Some(&'"') {
                    current.push(chars.next().unwrap());
                } else {
                    in_quotes = false;
                }
            }
            '"' => {
                in_quotes = true;
                current.push('"');
            }
            ',' if !in_quotes => fields.push(std::mem::take(&mut current)),
            c => current.push(c),
        }
    }
    fields.push(current);
    fields
}

fn arb_field() -> impl Strategy<Value = String> {
    // Bias toward the characters that exercise quoting: comma, quote,
    // newline, CR, plus plain ASCII.
    prop::collection::vec(0u8..96, 0..24).prop_map(|bytes| {
        bytes
            .into_iter()
            .map(|b| match b {
                0..=11 => ',',
                12..=23 => '"',
                24..=29 => '\n',
                30..=33 => '\r',
                b => (b' ' + (b % 64)) as char,
            })
            .collect()
    })
}

proptest! {
    /// Any field survives escape -> record-split -> unescape, even inside
    /// a multi-field record.
    #[test]
    fn csv_escape_roundtrips(a in arb_field(), b in arb_field()) {
        let record = format!("{},{}", csv_escape(&a), csv_escape(&b));
        let fields = split_record(&record);
        prop_assert_eq!(fields.len(), 2);
        prop_assert_eq!(csv_unescape(&fields[0]), a);
        prop_assert_eq!(csv_unescape(&fields[1]), b);
    }

    /// Escaping is the identity exactly when no separator is present.
    #[test]
    fn csv_escape_identity_iff_plain(s in arb_field()) {
        let escaped = csv_escape(&s);
        let plain = !s.contains([',', '"', '\n', '\r']);
        prop_assert_eq!(escaped == s, plain);
    }
}
