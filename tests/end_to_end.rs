//! Cross-crate integration: the full running example through the umbrella
//! crate, exports included.

use datasynth::prelude::*;

const SCHEMA: &str = r#"
graph social {
  node Person [count = 3000] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    name: text = first_names() given (country, sex);
    interest: text = dictionary("topics");
    creationDate: date = date_between("2010-01-01", "2013-01-01");
  }
  node Message {
    topic: text = dictionary("topics");
    text: text = sentence_about(5, 15) given (topic);
  }
  edge knows: Person -- Person [many_to_many] {
    structure = lfr(avg_degree = 12, max_degree = 40, mixing = 0.1);
    correlate country with homophily(0.8);
    creationDate: date = date_after(90) given (source.creationDate, target.creationDate);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "zipf", exponent = 1.5, max = 40);
    creationDate: date = date_after(800) given (source.creationDate);
  }
}
"#;

fn generate(seed: u64) -> PropertyGraph {
    DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(seed)
        .generate()
        .unwrap()
}

#[test]
fn full_running_example_is_consistent() {
    let graph = generate(2017);
    assert!(graph.validate().is_empty());
    assert_eq!(graph.node_count("Person"), Some(3000));
    let messages = graph.node_count("Message").unwrap();
    assert_eq!(messages, graph.edges("creates").unwrap().len());
    assert!(messages > 0, "zipf out-degrees must produce messages");
    // The paper's §4.1 counts eight PTs (it counts creationDate on only
    // one of the two edge types); our schema declares it on both => 9.
    let node_props: usize = ["country", "sex", "name", "interest", "creationDate"]
        .iter()
        .filter(|p| graph.node_property("Person", p).is_some())
        .count()
        + ["topic", "text"]
            .iter()
            .filter(|p| graph.node_property("Message", p).is_some())
            .count();
    let edge_props = usize::from(graph.edge_property("knows", "creationDate").is_some())
        + usize::from(graph.edge_property("creates", "creationDate").is_some());
    assert_eq!(node_props + edge_props, 9);
}

#[test]
fn all_figure1_constraints_hold() {
    let graph = generate(2017);
    let knows = graph.edges("knows").unwrap();
    let p_date = graph.node_property("Person", "creationDate").unwrap();
    let k_date = graph.edge_property("knows", "creationDate").unwrap();
    // knows.creationDate greater than the creationDate of both Persons.
    for i in 0..knows.len() {
        let (t, h) = knows.edge(i);
        let bound = p_date
            .value(t)
            .unwrap()
            .as_long()
            .unwrap()
            .max(p_date.value(h).unwrap().as_long().unwrap());
        assert!(k_date.value(i).unwrap().as_long().unwrap() > bound);
    }
    // creates.creationDate greater than the creator's creationDate.
    let creates = graph.edges("creates").unwrap();
    let c_date = graph.edge_property("creates", "creationDate").unwrap();
    for i in 0..creates.len() {
        let t = creates.tail(i);
        assert!(
            c_date.value(i).unwrap().as_long().unwrap()
                > p_date.value(t).unwrap().as_long().unwrap()
        );
    }
    // Message text mentions its topic.
    let topic = graph.node_property("Message", "topic").unwrap();
    let text = graph.node_property("Message", "text").unwrap();
    for id in 0..graph.node_count("Message").unwrap().min(300) {
        let t = topic.value(id).unwrap().render();
        assert!(text.value(id).unwrap().render().contains(&t));
    }
}

#[test]
fn exports_are_deterministic_and_complete() {
    let dir_a = std::env::temp_dir().join(format!("ds-it-a-{}", std::process::id()));
    let dir_b = std::env::temp_dir().join(format!("ds-it-b-{}", std::process::id()));
    CsvExporter.export(&generate(5), &dir_a).unwrap();
    CsvExporter.export(&generate(5), &dir_b).unwrap();
    for file in ["Person.csv", "Message.csv", "knows.csv", "creates.csv"] {
        let a = std::fs::read(dir_a.join(file)).unwrap();
        let b = std::fs::read(dir_b.join(file)).unwrap();
        assert!(!a.is_empty());
        assert_eq!(a, b, "{file} must be byte-identical across runs");
    }
    // Row counts match declared/inferred instance counts (+1 header).
    let graph = generate(5);
    let person_rows = std::fs::read_to_string(dir_a.join("Person.csv"))
        .unwrap()
        .lines()
        .count() as u64;
    assert_eq!(person_rows, graph.node_count("Person").unwrap() + 1);
    std::fs::remove_dir_all(&dir_a).ok();
    std::fs::remove_dir_all(&dir_b).ok();
}

#[test]
fn jsonl_export_lines_parse_as_objects() {
    let graph = generate(9);
    let dir = std::env::temp_dir().join(format!("ds-it-j-{}", std::process::id()));
    JsonlExporter.export(&graph, &dir).unwrap();
    let content = std::fs::read_to_string(dir.join("Person.jsonl")).unwrap();
    for line in content.lines().take(50) {
        assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
        assert!(line.contains("\"country\":"));
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn different_seeds_differ() {
    let a = generate(1);
    let b = generate(2);
    assert_ne!(
        a.node_property("Person", "country"),
        b.node_property("Person", "country")
    );
    assert_ne!(a.edges("knows"), b.edges("knows"));
}
