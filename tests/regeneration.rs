//! The in-place regeneration contract (the property the whole Myriad-style
//! design rests on): any single value can be recomputed from `(seed, id)`
//! alone, with no access to the rest of the table — as a distributed worker
//! would.

use datasynth::prelude::*;
use datasynth::prng::TableStream;
use datasynth::props::{build_property_generator, GenArg};

const SCHEMA: &str = r#"
graph g {
  node Person [count = 500] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    name: text = first_names() given (country, sex);
    score: long = uniform(0, 999);
  }
  edge knows: Person -- Person {
    structure = lfr(avg_degree = 8, max_degree = 20);
  }
}
"#;

const SEED: u64 = 31415;

#[test]
fn independent_properties_regenerate_in_place() {
    let graph = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(SEED)
        .generate()
        .unwrap();

    // Recompute Person.score[137] and Person.country[421] from scratch,
    // exactly as a remote worker that only knows the schema + seed would.
    let score_pt = graph.node_property("Person", "score").unwrap();
    let gen =
        build_property_generator("uniform", &[GenArg::Num(0.0), GenArg::Num(999.0)], 0).unwrap();
    let stream = TableStream::derive(SEED, "Person.score");
    for id in [0u64, 137, 421, 499] {
        let mut rng = stream.substream(id);
        let regenerated = gen.generate(id, &mut rng, &[]).unwrap();
        assert_eq!(regenerated, score_pt.value(id).unwrap(), "id {id}");
    }

    let country_pt = graph.node_property("Person", "country").unwrap();
    let gen =
        build_property_generator("dictionary", &[GenArg::Text("countries".into())], 0).unwrap();
    let stream = TableStream::derive(SEED, "Person.country");
    for id in [3u64, 77, 300] {
        let mut rng = stream.substream(id);
        assert_eq!(
            gen.generate(id, &mut rng, &[]).unwrap(),
            country_pt.value(id).unwrap()
        );
    }
}

#[test]
fn dependent_properties_regenerate_via_recursive_calls() {
    // The paper's recursion: pg_name.run(i, r_name(i), pg_country.run(...),
    // pg_sex.run(...)). Rebuild name[42] by first rebuilding its deps.
    let graph = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(SEED)
        .generate()
        .unwrap();
    let name_pt = graph.node_property("Person", "name").unwrap();

    let country_gen =
        build_property_generator("dictionary", &[GenArg::Text("countries".into())], 0).unwrap();
    let sex_gen = build_property_generator(
        "categorical",
        &[
            GenArg::Weighted("M".into(), 0.5),
            GenArg::Weighted("F".into(), 0.5),
        ],
        0,
    )
    .unwrap();
    let name_gen = build_property_generator("first_names", &[], 2).unwrap();

    let country_stream = TableStream::derive(SEED, "Person.country");
    let sex_stream = TableStream::derive(SEED, "Person.sex");
    let name_stream = TableStream::derive(SEED, "Person.name");

    for id in [0u64, 42, 260] {
        let country = country_gen
            .generate(id, &mut country_stream.substream(id), &[])
            .unwrap();
        let sex = sex_gen
            .generate(id, &mut sex_stream.substream(id), &[])
            .unwrap();
        let name = name_gen
            .generate(id, &mut name_stream.substream(id), &[country, sex])
            .unwrap();
        assert_eq!(name, name_pt.value(id).unwrap(), "id {id}");
    }
}

#[test]
fn access_order_cannot_matter() {
    // Generating the whole graph twice but reading tables in different
    // orders must observe identical values (no hidden sequential state).
    let g1 = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(SEED)
        .generate()
        .unwrap();
    let g2 = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(SEED)
        .generate()
        .unwrap();
    let p1 = g1.node_property("Person", "score").unwrap();
    let p2 = g2.node_property("Person", "score").unwrap();
    let forward: Vec<_> = (0..500).map(|i| p1.value(i).unwrap()).collect();
    let backward: Vec<_> = (0..500).rev().map(|i| p2.value(i).unwrap()).collect();
    assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
}
