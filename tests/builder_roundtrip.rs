//! The two schema frontends are equivalent: a `SchemaBuilder` program
//! prints as DSL that parses back to the *same* `Schema` (property test
//! over randomized builder programs), and an equivalent DSL string drives
//! the pipeline to byte-identical CSV exports under the same seed.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use datasynth::prelude::*;
use datasynth::schema::builder::{boolean, date, double, homophily, long, text, PropertySpec};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Randomized builder programs → to_dsl → parse_schema → equality.
// ---------------------------------------------------------------------------

/// A property drawn from a small menu covering every argument shape the
/// DSL can render: positional numbers, strings, weighted pairs, and
/// `given (...)` clauses.
fn property_from(choice: u64, lo: u64, span: u64, dep: Option<&str>) -> PropertySpec {
    match choice % 6 {
        0 => long().counter(),
        1 => long().uniform(lo as i64, (lo + span) as i64),
        2 => text().dictionary("countries"),
        3 => boolean().bernoulli((choice % 4) as f64 / 4.0),
        4 => text().categorical([("A", 0.5 + (choice % 3) as f64), ("B", 1.0)]),
        _ => match dep {
            // Dependent text: exercises `given (own)` rendering.
            Some(d) => text().generator("template").arg_text("v={0}").given([d]),
            None => date().date_between("2020-01-01", "2021-12-31"),
        },
    }
}

type StructureChoice = (
    &'static str,
    Vec<(&'static str, f64)>,
    Vec<(&'static str, &'static str)>,
);

/// One randomized structure spec; always explicit so any node-type pair
/// and cardinality validates.
fn structure_of(e: EdgeBuilderSpec) -> StructureChoice {
    match e.structure_choice % 4 {
        0 => ("erdos_renyi", vec![("p", 0.05)], vec![]),
        1 => (
            "gnm",
            vec![("m", (20 + e.structure_choice % 80) as f64)],
            vec![],
        ),
        2 => ("watts_strogatz", vec![("k", 4.0), ("beta", 0.5)], vec![]),
        _ => ("one_to_many", vec![("p", 0.5)], vec![("dist", "geometric")]),
    }
}

#[derive(Debug, Clone, Copy)]
struct EdgeBuilderSpec {
    source: u64,
    target: u64,
    cardinality: u64,
    structure_choice: u64,
    with_count: bool,
    with_endpoint_dep: bool,
}

#[derive(Debug, Clone)]
struct SchemaSpec {
    nodes: Vec<(Option<u64>, Vec<u64>)>,
    edges: Vec<EdgeBuilderSpec>,
}

fn build_schema(spec: &SchemaSpec) -> Schema {
    let mut b = Schema::build("prop_rt");
    for (i, (count, props)) in spec.nodes.iter().enumerate() {
        let count = *count;
        let props = props.clone();
        b = b.node(format!("N{i}"), move |mut n| {
            if let Some(c) = count {
                n = n.count(c);
            }
            for (j, &choice) in props.iter().enumerate() {
                let dep = (j > 0).then(|| format!("q{}", j - 1));
                n = n.property(
                    format!("q{j}"),
                    property_from(choice, choice % 10, 1 + choice % 50, dep.as_deref()),
                );
            }
            n
        });
    }
    for (i, e) in spec.edges.iter().enumerate() {
        let source = format!("N{}", e.source as usize % spec.nodes.len());
        let target = format!("N{}", e.target as usize % spec.nodes.len());
        let (sname, nums, texts) = structure_of(*e);
        let e = *e;
        b = b.edge(format!("e{i}"), &source, &target, move |mut eb| {
            eb = match e.cardinality % 3 {
                0 => eb.one_to_one(),
                1 => eb.one_to_many(),
                _ => eb.many_to_many(),
            };
            if e.with_count {
                eb = eb.count(100 + e.structure_choice);
            }
            eb = eb.structure(sname, |mut s| {
                for &(k, v) in &nums {
                    s = s.num(k, v);
                }
                for &(k, v) in &texts {
                    s = s.text(k, v);
                }
                s
            });
            if e.with_endpoint_dep {
                // `given (source.q0)` — q0 exists on every node type.
                eb = eb.property(
                    "w",
                    text()
                        .generator("template")
                        .arg_text("s={0}")
                        .given(["source.q0"]),
                );
            }
            eb
        });
    }
    b.finish()
        .expect("randomized builder program must validate")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn builder_dsl_roundtrip(
        nodes in prop::collection::vec(
            (prop::option::of(1u64..2000), prop::collection::vec(0u64..1000, 1..4)),
            1..4,
        ),
        edges in prop::collection::vec(
            (0u64..16, 0u64..16, 0u64..3, 0u64..1000, any::<bool>(), any::<bool>()),
            0..3,
        ),
    ) {
        let spec = SchemaSpec {
            nodes,
            edges: edges
                .into_iter()
                .map(|(source, target, cardinality, structure_choice, with_count, with_endpoint_dep)| {
                    EdgeBuilderSpec {
                        source,
                        target,
                        cardinality,
                        structure_choice,
                        with_count,
                        with_endpoint_dep,
                    }
                })
                .collect(),
        };
        let built = build_schema(&spec);
        let printed = built.to_dsl();
        let parsed = parse_schema(&printed);
        prop_assert!(parsed.is_ok(), "printed DSL does not parse: {}\n{printed}", parsed.unwrap_err());
        prop_assert_eq!(parsed.unwrap(), built, "round-trip mismatch for:\n{}", printed);
    }
}

// ---------------------------------------------------------------------------
// Byte identity: builder schema vs equivalent DSL text, same seed.
// ---------------------------------------------------------------------------

const EQUIVALENT_DSL: &str = r#"graph twin {
  node Person [count = 600] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    age: long = uniform(18, 90);
    score: double = normal(0, 1);
    creationDate: date = date_between("2015-01-01", "2020-12-31");
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person [many_to_many] {
    structure = lfr(avg_degree = 8, max_degree = 24, mixing = 0.15);
    correlate country with homophily(0.7);
    since: date = date_after(30) given (source.creationDate, target.creationDate);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.5);
  }
}"#;

fn twin_via_builder() -> Schema {
    Schema::build("twin")
        .node("Person", |n| {
            n.count(600)
                .property("country", text().dictionary("countries"))
                .property("sex", text().categorical([("M", 0.5), ("F", 0.5)]))
                .property("age", long().uniform(18, 90))
                .property("score", double().normal(0.0, 1.0))
                .property(
                    "creationDate",
                    date().date_between("2015-01-01", "2020-12-31"),
                )
        })
        .node("Message", |n| {
            n.property("topic", text().dictionary("topics"))
        })
        .edge("knows", "Person", "Person", |e| {
            e.many_to_many()
                .structure("lfr", |s| {
                    s.num("avg_degree", 8.0)
                        .num("max_degree", 24.0)
                        .num("mixing", 0.15)
                })
                .correlate("country", homophily(0.7))
                .property(
                    "since",
                    date()
                        .date_after(30)
                        .given(["source.creationDate", "target.creationDate"]),
                )
        })
        .edge("creates", "Person", "Message", |e| {
            e.one_to_many()
                .structure("one_to_many", |s| s.text("dist", "geometric").num("p", 0.5))
        })
        .finish()
        .unwrap()
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "datasynth-builder-twin-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All files under `dir` as relative-path -> bytes.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    out
}

fn export_csv(generator: &DataSynth, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let dir = fresh_dir(tag);
    let mut sink = CsvSink::new(&dir);
    generator.session().unwrap().run_into(&mut sink).unwrap();
    let snap = snapshot(&dir);
    fs::remove_dir_all(&dir).unwrap();
    snap
}

#[test]
fn builder_and_dsl_schemas_export_identical_bytes() {
    let built = twin_via_builder();
    let parsed = parse_schema(EQUIVALENT_DSL).unwrap();
    assert_eq!(built, parsed, "the two frontends must agree on the model");

    let a = export_csv(&DataSynth::new(built).unwrap().with_seed(42), "builder");
    let b = export_csv(&DataSynth::new(parsed).unwrap().with_seed(42), "dsl");
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "same file set"
    );
    assert!(!a.is_empty());
    for (name, bytes) in &a {
        assert_eq!(bytes, &b[name], "{name} differs between the two frontends");
    }
}
