//! Integration: DSL parse → pretty-print → parse → generate round-trips.

use datasynth::prelude::*;
use datasynth::schema::parse_schema;

const SCHEMA: &str = r#"
graph roundtrip {
  node Person [count = 400] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.45, "F": 0.55);
    name: text = first_names() given (country, sex);
    joined: date = date_between("2015-06-01", "2020-06-01");
  }
  node Group {
    topic: text = dictionary("topics");
  }
  edge member: Person -> Group [one_to_many] {
    structure = one_to_many(dist = "uniform", min = 0, max = 3);
    since: date = date_after(400) given (source.joined);
  }
  edge knows: Person -- Person [many_to_many] {
    structure = watts_strogatz(k = 6, beta = 0.2);
    correlate country with homophily(0.6);
  }
}
"#;

#[test]
fn printed_dsl_reparses_to_the_same_schema() {
    let schema = parse_schema(SCHEMA).unwrap();
    let printed = schema.to_dsl();
    let reparsed = parse_schema(&printed).unwrap();
    assert_eq!(schema, reparsed, "printed:\n{printed}");
}

#[test]
fn printed_dsl_generates_identical_graphs() {
    let schema = parse_schema(SCHEMA).unwrap();
    let printed = schema.to_dsl();
    let a = DataSynth::new(schema)
        .unwrap()
        .with_seed(5)
        .generate()
        .unwrap();
    let b = DataSynth::from_dsl(&printed)
        .unwrap()
        .with_seed(5)
        .generate()
        .unwrap();
    assert_eq!(
        a.node_property("Person", "name"),
        b.node_property("Person", "name")
    );
    assert_eq!(a.edges("knows"), b.edges("knows"));
    assert_eq!(a.edges("member"), b.edges("member"));
    assert_eq!(
        a.edge_property("member", "since"),
        b.edge_property("member", "since")
    );
}

#[test]
fn parser_rejects_all_documented_error_classes() {
    // Syntax error.
    assert!(DataSynth::from_dsl("graph g {").is_err());
    // Unknown type.
    assert!(DataSynth::from_dsl("graph g { node A { x: blob = counter(); } }").is_err());
    // Unknown dependency.
    assert!(DataSynth::from_dsl(
        "graph g { node A [count = 5] { x: long = counter() given (ghost); } }"
    )
    .is_err());
    // Cycle.
    assert!(DataSynth::from_dsl(
        "graph g { node A [count = 5] { x: long = counter() given (y); y: long = counter() given (x); } }"
    )
    .is_err());
}

#[test]
fn unknown_generators_fail_at_generate_time_with_context() {
    let src = r#"graph g {
        node A [count = 5] { x: text = warp_field(); }
    }"#;
    let err = DataSynth::from_dsl(src).unwrap().generate().unwrap_err();
    assert!(err.to_string().contains("warp_field"), "{err}");

    let src = r#"graph g {
        node A [count = 5] { x: long = counter(); }
        edge e: A -- A { structure = quantum_foam(); }
    }"#;
    let err = DataSynth::from_dsl(src).unwrap().generate().unwrap_err();
    assert!(err.to_string().contains("quantum_foam"), "{err}");
}
