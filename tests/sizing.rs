//! Integration: the scale-factor requirement — all the ways the paper says
//! a graph's size can be specified (§2 Scale Factor, §4.2 sizing walk-through).

use datasynth::prelude::*;

#[test]
fn node_count_drives_everything() {
    let src = r#"graph g {
        node A [count = 1234] { x: long = counter(); }
        edge e: A -- A { structure = lfr(avg_degree = 6, max_degree = 20, min_community = 5, max_community = 40); }
    }"#;
    let g = DataSynth::from_dsl(src).unwrap().generate().unwrap();
    assert_eq!(g.node_count("A"), Some(1234));
    let m = g.edges("e").unwrap().len() as f64;
    assert!((m - 1234.0 * 3.0).abs() / m < 0.25, "m = {m}");
}

#[test]
fn edge_count_sizes_the_source_via_get_num_nodes() {
    // The paper: "the user could be interested in specifying the scale of
    // the graph in terms of the number of edges ... DataSynth would use the
    // getNumNodes method".
    let src = r#"graph g {
        node A { x: long = counter(); }
        edge e: A -- A [count = 32768] { structure = rmat(edge_factor = 8); }
    }"#;
    let g = DataSynth::from_dsl(src).unwrap().generate().unwrap();
    assert_eq!(g.node_count("A"), Some(4096));
    assert_eq!(g.edges("e").unwrap().len(), 32768);
}

#[test]
fn one_to_many_chain_infers_downstream_counts() {
    // Person -> Message is the paper's worked example: Message count comes
    // from the size of the creates structure.
    let src = r#"graph g {
        node Person [count = 700] { x: long = counter(); }
        node Message { y: long = counter(); }
        node Reaction { z: long = counter(); }
        edge creates: Person -> Message [one_to_many] {
            structure = one_to_many(dist = "constant", k = 3);
        }
        edge reacts: Message -> Reaction [one_to_many] {
            structure = one_to_many(dist = "constant", k = 2);
        }
    }"#;
    let g = DataSynth::from_dsl(src).unwrap().generate().unwrap();
    assert_eq!(g.node_count("Message"), Some(2100));
    assert_eq!(g.node_count("Reaction"), Some(4200), "two-hop inference");
    // Every Message has exactly one creator; every Reaction one Message.
    let creates = g.edges("creates").unwrap();
    assert_eq!(creates.in_degrees(2100), vec![1u32; 2100]);
}

#[test]
fn underdetermined_schemas_fail_with_guidance() {
    let src = r#"graph g { node A { x: long = counter(); } }"#;
    let err = DataSynth::from_dsl(src).unwrap().generate().unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("cannot determine"), "{msg}");
    assert!(msg.contains("count"), "{msg}");
}

#[test]
fn ambiguous_derivations_fail() {
    let src = r#"graph g {
        node A [count = 10] { x: long = counter(); }
        node B { y: long = counter(); }
        edge e1: A -> B [one_to_many] { structure = one_to_many(dist = "constant", k = 1); }
        edge e2: A -> B [one_to_many] { structure = one_to_many(dist = "constant", k = 2); }
    }"#;
    let err = DataSynth::from_dsl(src).unwrap().generate().unwrap_err();
    assert!(err.to_string().contains("derivable from both"), "{err}");
}

#[test]
fn explicit_count_wins_over_derivation() {
    let src = r#"graph g {
        node A [count = 10] { x: long = counter(); }
        node B [count = 100] { y: long = counter(); }
        edge e: A -> B [one_to_many] { structure = one_to_many(dist = "constant", k = 2); }
    }"#;
    let g = DataSynth::from_dsl(src).unwrap().generate().unwrap();
    // B keeps its declared count; edge heads (20 of them) fit inside it.
    assert_eq!(g.node_count("B"), Some(100));
    assert_eq!(g.edges("e").unwrap().len(), 20);
    assert!(g.validate().is_empty());
}

#[test]
fn plan_is_inspectable_and_ordered() {
    let src = r#"graph g {
        node Person [count = 50] { c: text = dictionary("countries"); }
        node Message { t: text = dictionary("topics"); }
        edge creates: Person -> Message [one_to_many] {
            structure = one_to_many(dist = "constant", k = 1);
        }
    }"#;
    let plan = DataSynth::from_dsl(src).unwrap().plan().unwrap();
    let pos = |needle: &str| {
        plan.tasks
            .iter()
            .position(|t| t.to_string() == needle)
            .unwrap_or_else(|| panic!("missing task {needle}"))
    };
    assert!(pos("count(Person)") < pos("structure(creates)"));
    assert!(pos("structure(creates)") < pos("count(Message)"));
    assert!(pos("count(Message)") < pos("property(Message.t)"));
}
