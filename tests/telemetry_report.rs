//! The telemetry contract of [`Session::run_into`]: the [`RunReport`]'s
//! row/byte/hash/config fields are a pure function of `(schema, seed,
//! shard)` — byte-identical across thread counts — while its metered
//! byte counts must agree with the files actually written, and sharded
//! runs' windowed per-task row counts must sum to the full run's.

use std::collections::BTreeMap;
use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use datasynth::prelude::*;

/// Chunkable + sequential structures, matching, and endpoint-dependent
/// edge properties — every task kind and shard mode in one schema.
const SCHEMA: &str = r#"
graph telemix {
  node Account [count = 900] {
    country: text = dictionary("countries");
    balance: double = normal(1000, 250);
    opened: date = date_between("2012-01-01", "2020-12-31");
  }
  edge transfers: Account -- Account {
    structure = rmat(edge_factor = 4);
    amount: double = uniform_double(1, 5000);
  }
  edge refers: Account -- Account {
    structure = barabasi_albert(m = 2);
    correlate country with homophily(0.7);
    when: date = date_after(60) given (source.opened);
  }
}
"#;

/// Accepts any run shape and drops every table.
struct Discard;
impl GraphSink for Discard {}

fn report_at(threads: usize, shard: Option<(u64, u64)>) -> RunReport {
    let generator = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(31)
        .with_threads(threads);
    let mut session = generator.session().unwrap();
    if let Some((i, k)) = shard {
        session = session.shard(i, k).unwrap();
    }
    session.run_into(&mut Discard).unwrap()
}

#[test]
fn stable_report_json_is_byte_identical_across_thread_counts() {
    let reference = report_at(1, None).to_json_stable();
    for threads in [2usize, 7] {
        assert_eq!(
            reference,
            report_at(threads, None).to_json_stable(),
            "stable report must not depend on thread count (threads={threads})"
        );
    }
    // Sharded runs carry the same guarantee.
    let sharded = report_at(1, Some((1, 3))).to_json_stable();
    assert_eq!(sharded, report_at(7, Some((1, 3))).to_json_stable());
    assert_ne!(reference, sharded, "shard config is part of the report");
}

#[test]
fn report_covers_every_plan_task() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(31);
    let plan: Vec<String> = generator
        .plan()
        .unwrap()
        .tasks
        .iter()
        .map(|t| t.to_string())
        .collect();
    let report = report_at(3, None);
    let reported: Vec<String> = report.tasks.iter().map(|t| t.task.clone()).collect();
    assert_eq!(plan, reported, "one report entry per plan task, in order");
    for t in &report.tasks {
        assert!(
            matches!(
                t.kind,
                "count" | "node_property" | "structure" | "match" | "edge_property"
            ),
            "unexpected task kind {:?}",
            t.kind
        );
    }
    // Structure/property tasks produce rows; the report's totals must
    // agree with the manifest it derefs to.
    assert!(report.tasks.iter().any(|t| t.rows > 0));
    assert_eq!(
        report.total_rows(),
        report.tables.values().map(|t| t.hi - t.lo).sum::<u64>()
    );
}

#[test]
fn observed_rows_match_report_and_windowed_shards_sum_to_full_run() {
    let full = report_at(1, None);
    const K: u64 = 3;

    // Per-task rows observed via on_task, per shard.
    let mut shard_rows: Vec<Vec<u64>> = Vec::new();
    for i in 0..K {
        let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(31);
        let mut observed: Vec<u64> = Vec::new();
        let report = {
            let session = generator
                .session()
                .unwrap()
                .shard(i, K)
                .unwrap()
                .on_task(|p| {
                    if p.phase == TaskPhase::Finished {
                        observed.push(p.rows.expect("rows delivered at Finished"));
                    }
                });
            session.run_into(&mut Discard).unwrap()
        };
        // The observer saw exactly what the report records.
        let reported: Vec<u64> = report.tasks.iter().map(|t| t.rows).collect();
        assert_eq!(observed, reported, "shard {i}: observer vs report rows");
        shard_rows.push(observed);
    }

    // Windowed tasks split the full run's rows across shards; their
    // per-shard counts must sum back to the full-run report.
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(31);
    let plan = generator.shard_plan(0, K).unwrap();
    assert!(
        plan.tasks.iter().any(|t| t.mode == ShardMode::Windowed),
        "schema must exercise windowed tasks"
    );
    for (slot, t) in plan.tasks.iter().enumerate() {
        if t.mode != ShardMode::Windowed {
            continue;
        }
        let sum: u64 = shard_rows.iter().map(|rows| rows[slot]).sum();
        assert_eq!(
            sum, full.tasks[slot].rows,
            "windowed task {} must tile the full run across {K} shards",
            t.task
        );
    }
}

#[test]
fn metered_sink_bytes_match_files_on_disk() {
    let dir: PathBuf =
        std::env::temp_dir().join(format!("datasynth-telemetry-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);

    let metrics = Arc::new(MetricsRegistry::new());
    let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(31);
    let mut sink = CsvSink::new(&dir).with_metrics(Arc::clone(&metrics));
    let report = generator
        .session()
        .unwrap()
        .with_metrics(Arc::clone(&metrics))
        .run_into(&mut sink)
        .unwrap();

    let on_disk: BTreeMap<String, u64> = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "csv"))
        .map(|p| {
            let table = p.file_stem().unwrap().to_string_lossy().into_owned();
            (table, fs::metadata(&p).unwrap().len())
        })
        .collect();
    assert!(!on_disk.is_empty());
    assert_eq!(
        report.sink_bytes, on_disk,
        "metered byte counts must equal the files written"
    );
    assert_eq!(report.total_bytes(), on_disk.values().sum::<u64>());

    // The registry snapshot made it into the report, and the Prometheus
    // rendering exposes both the scheduler and sink series.
    let snapshot = report.metrics.as_ref().expect("registry snapshot");
    assert!(!snapshot.is_empty());
    let text = report.to_prometheus();
    for needle in [
        "# TYPE datasynth_run_info gauge",
        "datasynth_table_rows_total{table=\"transfers\",kind=\"edge\"}",
        "datasynth_tasks_total",
        "datasynth_sink_bytes_total{table=\"Account\"}",
        "datasynth_task_execute_micros_bucket",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
    }

    fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn report_without_registry_has_no_byte_counts() {
    let report = report_at(2, None);
    assert!(report.sink_bytes.is_empty());
    assert!(report.metrics.is_none());
    assert_eq!(report.total_bytes(), 0);
    // The stable JSON still renders bytes (as zero) so its shape is
    // independent of whether a registry was attached.
    assert!(report.to_json_stable().contains("\"bytes\": 0"));
}
