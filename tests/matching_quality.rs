//! Integration: the paper's §4.2 matching experiment at test scale, with
//! hard quality thresholds (tightened versions of the Figure 3/4 shapes).

use datasynth::matching::evaluate::{compare_jpds, empirical_jpd, geometric_group_sizes};
use datasynth::matching::{
    ldg_partition, random_matching, sbm_part, sbm_part_with, MatchInput, SbmPartConfig, ScoreScheme,
};
use datasynth::prng::SplitMix64;
use datasynth::structure::{LfrGenerator, RmatGenerator, StructureGenerator};
use datasynth::tables::{Csr, EdgeTable};

struct Setup {
    edges: EdgeTable,
    csr: Csr,
    sizes: Vec<u64>,
    expected: datasynth::matching::Jpd,
}

fn protocol(edges: EdgeTable, n: u64, k: usize, seed: u64) -> Setup {
    let csr = Csr::undirected(&edges, n);
    let sizes = geometric_group_sizes(n, k, 0.4);
    let mut order: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    let truth = ldg_partition(&csr, &sizes, &order);
    let expected = empirical_jpd(&truth, &edges, k);
    Setup {
        edges,
        csr,
        sizes,
        expected,
    }
}

fn match_and_score(setup: &Setup, seed: u64) -> (f64, f64) {
    let input = MatchInput {
        group_sizes: &setup.sizes,
        jpd: &setup.expected,
        csr: &setup.csr,
        num_edges: setup.edges.len(),
    };
    let n = setup.csr.num_nodes();
    let mut order: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    let smart = sbm_part(&input, &order);
    let observed = empirical_jpd(&smart.group_of, &setup.edges, setup.expected.k());
    let cmp = compare_jpds(&setup.expected, &observed);

    let rand = random_matching(&setup.sizes, n, seed ^ 0xBEEF);
    let observed_r = empirical_jpd(&rand.group_of, &setup.edges, setup.expected.k());
    let cmp_r = compare_jpds(&setup.expected, &observed_r);
    (cmp.l1, cmp_r.l1)
}

#[test]
fn lfr_matching_is_high_quality_and_beats_random() {
    let n = 10_000;
    let edges = LfrGenerator::paper_defaults().run(n, &mut SplitMix64::new(1));
    let setup = protocol(edges, n, 16, 2);
    let (l1, l1_random) = match_and_score(&setup, 3);
    assert!(l1 < 0.25, "LFR L1 = {l1}");
    assert!(l1 < 0.25 * l1_random, "SBM-Part {l1} vs random {l1_random}");
}

#[test]
fn rmat_matching_beats_random() {
    let edges = RmatGenerator::graph500().run_scale(13, &mut SplitMix64::new(4));
    let setup = protocol(edges, 1 << 13, 16, 5);
    let (l1, l1_random) = match_and_score(&setup, 6);
    assert!(l1 < 0.5 * l1_random, "SBM-Part {l1} vs random {l1_random}");
}

#[test]
fn quality_holds_across_k() {
    // Figure 4's axis: k in {4, 16, 64} on the same graph.
    let n = 10_000;
    let edges = LfrGenerator::paper_defaults().run(n, &mut SplitMix64::new(7));
    for k in [4usize, 16, 64] {
        let setup = protocol(edges.clone(), n, k, 8);
        let (l1, l1_random) = match_and_score(&setup, 9);
        // k = 64 at 10k nodes is far below the paper's 1M-node setting;
        // the win over random shrinks with group size (Figure 4's point).
        let factor = if k == 64 { 0.75 } else { 0.5 };
        assert!(
            l1 < factor * l1_random,
            "k = {k}: SBM-Part {l1} vs random {l1_random}"
        );
    }
}

#[test]
fn diagonal_homophily_mass_is_recovered() {
    let n = 10_000;
    let edges = LfrGenerator::paper_defaults().run(n, &mut SplitMix64::new(10));
    let setup = protocol(edges, n, 16, 11);
    let input = MatchInput {
        group_sizes: &setup.sizes,
        jpd: &setup.expected,
        csr: &setup.csr,
        num_edges: setup.edges.len(),
    };
    let mut order: Vec<u64> = (0..n).collect();
    SplitMix64::new(12).shuffle(&mut order);
    let result = sbm_part(&input, &order);
    let observed = empirical_jpd(&result.group_of, &setup.edges, 16);
    let expected_diag = setup.expected.diagonal_mass();
    let observed_diag = observed.diagonal_mass();
    assert!(
        observed_diag > 0.85 * expected_diag,
        "diag {observed_diag} vs expected {expected_diag}"
    );
}

#[test]
fn paper_scheme_is_available_and_reasonable() {
    // The literal raw-count Frobenius objective from the paper: weaker
    // than the default but still far better than random.
    let n = 10_000;
    let edges = LfrGenerator::paper_defaults().run(n, &mut SplitMix64::new(13));
    let setup = protocol(edges, n, 16, 14);
    let input = MatchInput {
        group_sizes: &setup.sizes,
        jpd: &setup.expected,
        csr: &setup.csr,
        num_edges: setup.edges.len(),
    };
    let mut order: Vec<u64> = (0..n).collect();
    SplitMix64::new(15).shuffle(&mut order);
    let raw = sbm_part_with(
        &input,
        &order,
        SbmPartConfig {
            scheme: ScoreScheme::RawCounts,
            no_capacity_penalty: false,
        },
    );
    let observed = empirical_jpd(&raw.group_of, &setup.edges, 16);
    let cmp = compare_jpds(&setup.expected, &observed);
    let rand = random_matching(&setup.sizes, n, 16);
    let observed_r = empirical_jpd(&rand.group_of, &setup.edges, 16);
    let cmp_r = compare_jpds(&setup.expected, &observed_r);
    assert!(cmp.l1 < 0.7 * cmp_r.l1, "{} vs {}", cmp.l1, cmp_r.l1);
}
