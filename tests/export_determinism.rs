//! Exporter determinism: the same schema + seed must produce
//! byte-identical CSV/JSONL directories across independent runs — the
//! property that makes generated benchmarks shareable by (schema, seed)
//! instead of by shipped data.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use datasynth::prelude::*;

const SCHEMA: &str = r#"
graph determinism {
  node Person [count = 800] {
    country: text = dictionary("countries");
    age: long = uniform(18, 90);
    score: double = normal(0, 1);
    premium: bool = bool(0.25);
    signup: date = date_between("2015-01-01", "2020-12-31");
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person {
    structure = lfr(avg_degree = 8, max_degree = 24, mixing = 0.15);
    correlate country with homophily(0.7);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.5);
  }
}
"#;

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "datasynth-determinism-{}-{tag}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All files under `dir` as relative-path -> bytes.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        for entry in fs::read_dir(&d).unwrap() {
            let path = entry.unwrap().path();
            if path.is_dir() {
                stack.push(path);
            } else {
                let rel = path
                    .strip_prefix(dir)
                    .unwrap()
                    .to_string_lossy()
                    .into_owned();
                out.insert(rel, fs::read(&path).unwrap());
            }
        }
    }
    out
}

fn generate_and_export(seed: u64, tag: &str) -> BTreeMap<String, Vec<u8>> {
    let graph = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(seed)
        .generate()
        .unwrap();
    let dir = fresh_dir(tag);
    CsvExporter.export(&graph, &dir).unwrap();
    JsonlExporter.export(&graph, &dir).unwrap();
    let snap = snapshot(&dir);
    fs::remove_dir_all(&dir).unwrap();
    snap
}

#[test]
fn same_seed_exports_byte_identical_output() {
    let a = generate_and_export(42, "a");
    let b = generate_and_export(42, "b");
    assert_eq!(
        a.keys().collect::<Vec<_>>(),
        b.keys().collect::<Vec<_>>(),
        "the two runs must emit the same file set"
    );
    assert!(!a.is_empty());
    for (name, bytes) in &a {
        assert_eq!(
            bytes, &b[name],
            "{name} differs between two identically-seeded runs"
        );
    }
}

#[test]
fn different_seed_changes_output() {
    let a = generate_and_export(42, "c");
    let b = generate_and_export(43, "d");
    assert!(
        a.iter().any(|(name, bytes)| b[name] != *bytes),
        "changing the seed must change at least one exported file"
    );
}

/// The "N" of the thread matrix: CI re-runs the suite with
/// `DATASYNTH_TEST_THREADS=7` to exercise the task-parallel scheduler and
/// chunked structure streams on every push.
fn matrix_threads() -> usize {
    std::env::var("DATASYNTH_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

/// A schema exercising both a chunkable structure generator (rmat, split
/// into counter-based slots across workers) and an inherently sequential
/// one (barabasi_albert), plus properties hanging off both edge types.
const MIXED_GENERATOR_SCHEMA: &str = r#"
graph mixed {
  node Account [count = 2500] {
    country: text = dictionary("countries");
    balance: double = normal(1000, 250);
    opened: date = date_between("2012-01-01", "2020-12-31");
  }
  edge transfers: Account -- Account {
    structure = rmat(edge_factor = 6);
    amount: double = uniform_double(1, 5000);
  }
  edge refers: Account -- Account {
    structure = barabasi_albert(m = 2);
    when: date = date_after(60) given (source.opened);
  }
}
"#;

#[test]
fn csv_and_jsonl_bytes_identical_across_1_2_and_n_threads() {
    let mut snaps = Vec::new();
    for threads in [1usize, 2, matrix_threads()] {
        let generator = DataSynth::from_dsl(MIXED_GENERATOR_SCHEMA)
            .unwrap()
            .with_seed(23)
            .with_threads(threads);
        let dir = fresh_dir(&format!("mixed-t{threads}"));
        let mut csv = CsvSink::new(&dir);
        let mut jsonl = JsonlSink::new(&dir);
        let mut sinks = MultiSink::new().with(&mut csv).with(&mut jsonl);
        generator.session().unwrap().run_into(&mut sinks).unwrap();
        let snap = snapshot(&dir);
        fs::remove_dir_all(&dir).unwrap();
        assert_eq!(snap.len(), 6, "3 tables x 2 formats at {threads} threads");
        snaps.push((threads, snap));
    }
    let (base_threads, base) = &snaps[0];
    for (threads, snap) in &snaps[1..] {
        assert_eq!(
            base.keys().collect::<Vec<_>>(),
            snap.keys().collect::<Vec<_>>(),
            "file sets differ between {base_threads} and {threads} threads"
        );
        for (name, bytes) in base {
            assert_eq!(
                bytes, &snap[name],
                "{name} differs between {base_threads} and {threads} threads"
            );
        }
    }
}

#[test]
fn thread_count_does_not_change_exports() {
    let single = {
        let graph = DataSynth::from_dsl(SCHEMA)
            .unwrap()
            .with_seed(11)
            .with_threads(1)
            .generate()
            .unwrap();
        let dir = fresh_dir("t1");
        CsvExporter.export(&graph, &dir).unwrap();
        let snap = snapshot(&dir);
        fs::remove_dir_all(&dir).unwrap();
        snap
    };
    let multi = {
        let graph = DataSynth::from_dsl(SCHEMA)
            .unwrap()
            .with_seed(11)
            .with_threads(8)
            .generate()
            .unwrap();
        let dir = fresh_dir("t8");
        CsvExporter.export(&graph, &dir).unwrap();
        let snap = snapshot(&dir);
        fs::remove_dir_all(&dir).unwrap();
        snap
    };
    assert_eq!(single, multi, "worker count must not leak into the data");
}
