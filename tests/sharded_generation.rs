//! Sharded generation: `Session::shard(i, k)` must satisfy the scale-out
//! contract — the in-order concatenation of all `k` shards' sink output is
//! byte-identical to one full run, for every `k`, at any thread count, in
//! every export format — and the `k` shard manifests must merge into
//! exactly the manifest the full run returns.

use std::collections::BTreeMap;
use std::fs;
use std::path::{Path, PathBuf};

use datasynth::prelude::*;
use datasynth::structure::shard_window;
use proptest::prelude::*;

/// Chunkable (rmat) + inherently sequential (barabasi_albert) structures,
/// a correlation (matching reads a full column), endpoint-dependent edge
/// properties, and a structure-derived node count — every shard mode in
/// one schema.
const SCHEMA: &str = r#"
graph shardmix {
  node Account [count = 1200] {
    country: text = dictionary("countries");
    balance: double = normal(1000, 250);
    opened: date = date_between("2012-01-01", "2020-12-31");
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge transfers: Account -- Account {
    structure = rmat(edge_factor = 5);
    amount: double = uniform_double(1, 5000);
  }
  edge refers: Account -- Account {
    structure = barabasi_albert(m = 2);
    correlate country with homophily(0.7);
    when: date = date_after(60) given (source.opened);
  }
  edge posts: Account -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.5);
  }
}
"#;

/// Accepts any run shape and drops every table — for manifest-only runs.
struct Discard;
impl GraphSink for Discard {}

fn matrix_threads() -> usize {
    std::env::var("DATASYNTH_TEST_THREADS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(7)
}

fn fresh_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("datasynth-shard-{}-{tag}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// All files under `dir` as relative-path -> bytes.
fn snapshot(dir: &Path) -> BTreeMap<String, Vec<u8>> {
    let mut out = BTreeMap::new();
    for entry in fs::read_dir(dir).unwrap() {
        let path = entry.unwrap().path();
        let rel = path.file_name().unwrap().to_string_lossy().into_owned();
        out.insert(rel, fs::read(&path).unwrap());
    }
    out
}

fn run_into_dir(threads: usize, shard: Option<(u64, u64)>, dir: &Path) -> SinkManifest {
    let generator = DataSynth::from_dsl(SCHEMA)
        .unwrap()
        .with_seed(99)
        .with_threads(threads);
    let mut csv = CsvSink::new(dir);
    let mut jsonl = JsonlSink::new(dir);
    let mut sinks = MultiSink::new().with(&mut csv).with(&mut jsonl);
    let mut session = generator.session().unwrap();
    if let Some((i, k)) = shard {
        session = session.shard(i, k).unwrap();
    }
    session.run_into(&mut sinks).unwrap().into_manifest()
}

#[test]
fn concat_of_shards_is_byte_identical_to_the_full_run() {
    for threads in [1usize, matrix_threads()] {
        let full_dir = fresh_dir(&format!("full-t{threads}"));
        let full_manifest = run_into_dir(threads, None, &full_dir);
        let full = snapshot(&full_dir);
        assert_eq!(full.len(), 10, "5 tables x 2 formats");
        fs::remove_dir_all(&full_dir).unwrap();

        for k in [1u64, 2, 3, 5] {
            let mut manifests = Vec::new();
            let mut concat: BTreeMap<String, Vec<u8>> = BTreeMap::new();
            for i in 0..k {
                let dir = fresh_dir(&format!("t{threads}-s{i}of{k}"));
                manifests.push(run_into_dir(threads, Some((i, k)), &dir));
                for (name, bytes) in snapshot(&dir) {
                    concat.entry(name).or_default().extend(bytes);
                }
                fs::remove_dir_all(&dir).unwrap();
            }
            assert_eq!(
                full.keys().collect::<Vec<_>>(),
                concat.keys().collect::<Vec<_>>(),
                "every shard must emit every table file (k={k}, threads={threads})"
            );
            for (name, bytes) in &full {
                assert_eq!(
                    bytes, &concat[name],
                    "{name}: concat of {k} shards differs from the full run at {threads} threads"
                );
            }
            // The k shard manifests fuse into exactly the full-run manifest.
            let merged = SinkManifest::merge(&manifests).unwrap();
            assert_eq!(
                merged, full_manifest,
                "merged manifest must equal the full run's (k={k}, threads={threads})"
            );
            assert_eq!(merged.content_hash(), full_manifest.content_hash());
        }
    }
}

#[test]
fn shard_windows_in_manifests_tile_every_table() {
    let dirless = |i, k| {
        let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(5);
        generator
            .session()
            .unwrap()
            .shard(i, k)
            .unwrap()
            .run_into(&mut Discard)
            .unwrap()
            .into_manifest()
    };
    let manifests: Vec<SinkManifest> = (0..3).map(|i| dirless(i, 3)).collect();
    for table in manifests[0].tables.keys() {
        let mut next = 0;
        for m in &manifests {
            let rows = &m.tables[table];
            assert_eq!(rows.lo, next, "{table} windows must be contiguous");
            assert!(rows.hi >= rows.lo);
            next = rows.hi;
        }
        assert_eq!(
            next, manifests[0].tables[table].total,
            "{table} windows must be exhaustive"
        );
    }
}

#[test]
fn manifest_json_roundtrip_preserves_everything() {
    let dir = fresh_dir("json");
    let manifest = run_into_dir(1, Some((1, 3)), &dir);
    fs::remove_dir_all(&dir).unwrap();
    let parsed = SinkManifest::from_json(&manifest.to_json()).unwrap();
    assert_eq!(parsed, manifest);
}

#[test]
fn merge_rejects_gaps_duplicates_and_foreign_shards() {
    let run = |seed: u64, i, k| {
        let generator = DataSynth::from_dsl(SCHEMA).unwrap().with_seed(seed);
        generator
            .session()
            .unwrap()
            .shard(i, k)
            .unwrap()
            .run_into(&mut Discard)
            .unwrap()
            .into_manifest()
    };
    let shards: Vec<SinkManifest> = (0..3).map(|i| run(7, i, 3)).collect();
    assert!(SinkManifest::merge(&shards).is_ok());
    // Too few manifests.
    let err = SinkManifest::merge(&shards[..2]).unwrap_err();
    assert!(err.to_string().contains("3 shards"), "{err}");
    // A duplicate index.
    let dup = vec![shards[0].clone(), shards[1].clone(), shards[1].clone()];
    let err = SinkManifest::merge(&dup).unwrap_err();
    assert!(err.to_string().contains("more than once"), "{err}");
    // A shard from a different run (seed) cannot sneak in.
    let foreign = vec![shards[0].clone(), shards[1].clone(), run(8, 2, 3)];
    let err = SinkManifest::merge(&foreign).unwrap_err();
    assert!(err.to_string().contains("different runs"), "{err}");
}

#[test]
fn invalid_shard_specs_are_rejected() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap();
    let err = match generator.session().unwrap().shard(3, 3) {
        Err(e) => e,
        Ok(_) => panic!("shard index == count must be rejected"),
    };
    assert!(err.to_string().contains("out of range"), "{err}");
    let err = match generator.session().unwrap().shard(0, 0) {
        Err(e) => e,
        Ok(_) => panic!("shard count 0 must be rejected"),
    };
    assert!(err.to_string().contains("at least 1"), "{err}");
}

#[test]
fn stats_and_workload_sinks_refuse_partial_runs() {
    let generator = DataSynth::from_dsl(SCHEMA).unwrap();

    // InMemorySink assembles a whole graph: full counts over windowed
    // columns would be silently wrong, so partial runs are refused too.
    let mut in_memory = InMemorySink::new();
    let err = generator
        .session()
        .unwrap()
        .shard(0, 2)
        .unwrap()
        .run_into(&mut in_memory)
        .unwrap_err();
    assert!(err.to_string().contains("unsupported"), "{err}");

    let mut stats = StatsSink::new();
    let err = generator
        .session()
        .unwrap()
        .shard(0, 2)
        .unwrap()
        .run_into(&mut stats)
        .unwrap_err();
    assert!(err.to_string().contains("unsupported"), "{err}");
    assert!(err.to_string().contains("full graph"), "{err}");

    let schema = generator.schema().clone();
    let mut workload = WorkloadSink::new(&schema);
    let err = generator
        .session()
        .unwrap()
        .shard(1, 2)
        .unwrap()
        .run_into(&mut workload)
        .unwrap_err();
    assert!(err.to_string().contains("unsupported"), "{err}");

    // Shard 0/1 is a full run: both sinks accept it.
    let mut stats = StatsSink::new();
    generator
        .session()
        .unwrap()
        .shard(0, 1)
        .unwrap()
        .run_into(&mut stats)
        .unwrap();
    assert!(!stats.reports().is_empty());
}

proptest! {
    /// The canonical partition is disjoint, ordered and exhaustive for
    /// random (table size, shard count) pairs.
    #[test]
    fn prop_shard_windows_partition_any_table(
        n in 0u64..50_000,
        k in 1u64..64,
    ) {
        let mut next = 0u64;
        for i in 0..k {
            let w = shard_window(n, i, k);
            prop_assert_eq!(w.start, next);
            prop_assert!(w.end >= w.start);
            // Balanced to within one row.
            prop_assert!((w.end - w.start).abs_diff(n / k) <= 1);
            next = w.end;
        }
        prop_assert_eq!(next, n);
    }

    /// ShardPlan's static row windows partition every explicitly-counted
    /// node table: disjoint, ordered, exhaustive — for random schema
    /// sizes and shard counts.
    #[test]
    fn prop_shard_plan_windows_cover_explicit_tables(
        count in 1u64..5_000,
        k in 1u64..16,
    ) {
        let dsl = format!(
            r#"graph p {{
                node A [count = {count}] {{ x: long = counter(); }}
                edge e: A -- A {{ structure = erdos_renyi(p = 0.01); }}
            }}"#
        );
        let generator = DataSynth::from_dsl(&dsl).unwrap();
        let mut next = 0u64;
        for i in 0..k {
            let plan = generator.shard_plan(i, k).unwrap();
            let prop_task = plan
                .tasks
                .iter()
                .find(|t| matches!(&t.task, Task::NodeProperty(n, _) if n == "A"))
                .expect("A.x task present");
            let rows = prop_task.rows.clone().expect("explicit count is static");
            prop_assert_eq!(rows.start, next);
            next = rows.end;
        }
        prop_assert_eq!(next, count);
    }
}
