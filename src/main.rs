//! `datasynth` — command-line property graph generation.
//!
//! ```sh
//! datasynth schema.dsl --seed 42 --out ./data --format csv
//! datasynth schema.dsl --plan           # show the dependency analysis
//! datasynth schema.dsl --stats          # print structural statistics
//! datasynth schema.dsl --workload q/ --queries 100   # benchmark queries
//! ```

use std::path::PathBuf;
use std::process::ExitCode;

use datasynth::analysis::{degree_assortativity, largest_component_size, DegreeStats};
use datasynth::prelude::*;
use datasynth::workload::{QueryMix, WorkloadGenerator};

struct Args {
    schema_path: PathBuf,
    seed: u64,
    out: Option<PathBuf>,
    format: Format,
    threads: Option<usize>,
    plan_only: bool,
    stats: bool,
    workload: Option<PathBuf>,
    queries: Option<usize>,
    query_mix: Option<QueryMix>,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Csv,
    Jsonl,
    Both,
}

const USAGE: &str = "\
usage: datasynth <schema.dsl> [options]

options:
  --seed N          master seed (default 42); same seed => identical output
  --out DIR         export directory (default: no export)
  --format F        csv | jsonl | both (default csv)
  --threads N       worker threads (default: available cores, capped at 8)
  --plan            print the dependency-analyzed task plan and exit
  --stats           print structural statistics of the generated graph
  --workload DIR    derive a benchmark query workload into DIR
                    (Cypher + Gremlin per query, plus workload.json)
  --queries N       number of workload queries (default 100)
  --query-mix SPEC  kind:weight list, e.g. point:2,expand1:5,scan:1
                    (kinds: point, expand1, expand2, scan, path, agg;
                     default: uniform over the kinds the schema derives)
  --help            this text
";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schema_path: PathBuf::new(),
        seed: 42,
        out: None,
        format: Format::Csv,
        threads: None,
        plan_only: false,
        stats: false,
        workload: None,
        queries: None,
        query_mix: None,
    };
    let mut positional = Vec::new();
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--seed" => {
                args.seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed takes an integer")?;
            }
            "--out" => {
                args.out = Some(iter.next().ok_or("--out takes a directory")?.into());
            }
            "--format" => {
                args.format = match iter.next().as_deref() {
                    Some("csv") => Format::Csv,
                    Some("jsonl") => Format::Jsonl,
                    Some("both") => Format::Both,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--threads" => {
                args.threads = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads takes an integer")?,
                );
            }
            "--plan" => args.plan_only = true,
            "--stats" => args.stats = true,
            "--workload" => {
                args.workload = Some(iter.next().ok_or("--workload takes a directory")?.into());
            }
            "--queries" => {
                args.queries = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--queries takes an integer")?,
                );
            }
            "--query-mix" => {
                let spec = iter.next().ok_or("--query-mix takes a kind:weight list")?;
                args.query_mix = Some(QueryMix::parse(&spec).map_err(|e| e.to_string())?);
            }
            other if !other.starts_with('-') => positional.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    match positional.as_slice() {
        [one] => args.schema_path = one.clone(),
        _ => return Err("expected exactly one schema file".into()),
    }
    if args.workload.is_none() && (args.queries.is_some() || args.query_mix.is_some()) {
        return Err("--queries / --query-mix require --workload DIR".into());
    }
    Ok(args)
}

fn run(args: &Args) -> Result<(), String> {
    let src = std::fs::read_to_string(&args.schema_path)
        .map_err(|e| format!("cannot read {}: {e}", args.schema_path.display()))?;
    let mut generator = DataSynth::from_dsl(&src)
        .map_err(|e| e.to_string())?
        .with_seed(args.seed);
    if let Some(t) = args.threads {
        generator = generator.with_threads(t);
    }

    if args.plan_only {
        println!("execution plan for {}:", args.schema_path.display());
        for (i, task) in generator
            .plan()
            .map_err(|e| e.to_string())?
            .tasks
            .iter()
            .enumerate()
        {
            println!("  {i:>3}. {task}");
        }
        return Ok(());
    }

    let started = std::time::Instant::now();
    let graph = generator.generate().map_err(|e| e.to_string())?;
    eprintln!(
        "generated {} nodes, {} edges in {:.2}s (seed {})",
        graph.total_nodes(),
        graph.total_edges(),
        started.elapsed().as_secs_f64(),
        args.seed
    );

    for (name, count) in graph.node_types() {
        println!("node {name}: {count} instances");
    }
    for (name, meta, table) in graph.edge_types() {
        println!(
            "edge {name}: {} edges ({} -> {})",
            table.len(),
            meta.source,
            meta.target
        );
    }

    if args.stats {
        println!("\nstructural statistics:");
        for (name, meta, table) in graph.edge_types() {
            if meta.source != meta.target {
                continue; // degree stats are per homogeneous graph
            }
            let n = graph.node_count(&meta.source).unwrap_or(0);
            if n == 0 {
                continue;
            }
            let deg = table.degrees(n);
            if let Some(s) = DegreeStats::from_degrees(&deg) {
                println!(
                    "  {name}: degree min {} max {} mean {:.2} var {:.1}",
                    s.min, s.max, s.mean, s.variance
                );
            }
            let lcc = largest_component_size(table, n);
            println!(
                "  {name}: largest component {lcc} / {n} ({:.1}%)",
                100.0 * lcc as f64 / n as f64
            );
            if let Some(r) = degree_assortativity(table, n) {
                println!("  {name}: degree assortativity {r:.3}");
            }
        }
    }

    if let Some(dir) = &args.out {
        // The exporters also create the directory; doing it here first
        // turns a permissions/path problem into one clear CLI error
        // instead of a per-format export failure.
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
        if args.format == Format::Csv || args.format == Format::Both {
            CsvExporter
                .export(&graph, dir)
                .map_err(|e| format!("csv export: {e}"))?;
        }
        if args.format == Format::Jsonl || args.format == Format::Both {
            JsonlExporter
                .export(&graph, dir)
                .map_err(|e| format!("jsonl export: {e}"))?;
        }
        eprintln!("exported to {}", dir.display());
    }

    if let Some(dir) = &args.workload {
        let workload = WorkloadGenerator::new(generator.schema(), &graph)
            .with_seed(args.seed)
            .with_mix(args.query_mix.clone().unwrap_or_default())
            .generate(args.queries.unwrap_or(100))
            .map_err(|e| format!("workload: {e}"))?;
        workload
            .write_to(dir)
            .map_err(|e| format!("workload export: {e}"))?;
        eprintln!(
            "workload: {} queries over {} templates ({} kinds) -> {}",
            workload.queries.len(),
            workload.templates.len(),
            workload.instantiated_kinds().len(),
            dir.display()
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    match parse_args() {
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
