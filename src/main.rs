//! `datasynth` — command-line property graph generation.
//!
//! ```sh
//! datasynth schema.dsl --seed 42 --out ./data --format csv
//! datasynth schema.dsl --plan           # show the dependency analysis
//! datasynth schema.dsl --stats          # print structural statistics
//! datasynth schema.dsl --workload q/ --queries 100   # benchmark queries
//! datasynth schema.dsl --ops updates/                # update-stream op log
//! datasynth schema.dsl --shard 0/3 --out ./data      # one shard of three
//! datasynth --merge-manifests d/shard-0-of-3 d/shard-1-of-3 d/shard-2-of-3
//! ```
//!
//! `--shard I/K` generates only shard `I` of a `K`-way row partition:
//! concatenating the `K` shard directories' files in shard order is
//! byte-identical to the unsharded run, so the shards can be produced on
//! `K` different machines. Every `--out` run writes a `manifest.json`
//! (row windows + content hashes); `--merge-manifests` validates a shard
//! set and fuses their manifests into the single-run manifest.
//!
//! Everything runs in **one generation pass**: export (any format mix),
//! statistics and workload curation are [`GraphSink`]s fanned out behind a
//! [`MultiSink`]. The CLI itself never assembles a `PropertyGraph`; peak
//! memory is whatever the attached sinks retain — pure export streams
//! table by table, while `--stats` holds homogeneous edge tables and
//! `--workload` holds the tables curation samples until the run ends.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::process::ExitCode;
use std::sync::Arc;

use datasynth::analysis::StatsSink;
use datasynth::prelude::*;
use datasynth::temporal::{ops_file_name, OpsFormat, TemporalSink};
use datasynth::workload::{QueryMix, WorkloadSink};

struct Args {
    schema_path: PathBuf,
    seed: u64,
    out: Option<PathBuf>,
    format: Format,
    threads: Option<usize>,
    shard: Option<ShardSpec>,
    merge_manifests: Vec<PathBuf>,
    list_generators: bool,
    plan_only: bool,
    progress: bool,
    report: Option<PathBuf>,
    stats: bool,
    workload: Option<PathBuf>,
    queries: Option<usize>,
    query_mix: Option<QueryMix>,
    ops: Option<PathBuf>,
    ops_format: OpsFormat,
}

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Csv,
    Jsonl,
    Both,
}

const USAGE: &str = "\
usage: datasynth <schema.dsl> [options]
       datasynth lint <schema.dsl> [lint options]
       datasynth serve --addr HOST:PORT [serve options]
       datasynth bench-workload <schema.dsl> [bench options]

bench options:
  --seed N          generation seed (default 42; ignored with --from,
                    which replays the directory manifest's seed)
  --threads N       generation thread budget; timing-side only — the
                    stable half of the report is byte-identical at any
                    thread count
  --mix SPEC        kind:weight list, same kinds as --query-mix
                    (default: uniform over the kinds the schema derives)
  --queries N       query instances to curate (default 64)
  --warmup N        unmeasured full-mix rounds before timing (default 1)
  --iters N         measured full-mix rounds (default 10)
  --from DIR        load the graph from an exported --out directory
                    (CSV or JSONL + manifest.json) instead of generating
  --report FILE     bench report path (default bench_report.json);
                    '-' prints to stdout
  --metrics FILE    write the Prometheus-encoded per-template query
                    latency histograms to FILE; '-' prints to stdout

lint options:
  --format F        text | json (default text); json is deterministic and
                    byte-identical to the server's 422 lint response
  --deny warnings   treat warnings as errors (exit code 1)

serve options:
  --addr HOST:PORT  bind address (required; port 0 picks a free port)
  --threads N       generation-thread budget shared by concurrent runs
                    (default: all available cores)
  --workers N       HTTP worker threads (default 4)
  --max-graphs N    schema cache capacity (default 64, FIFO eviction)

options:
  --seed N          master seed (default 42); same seed => identical output
  --out DIR         export directory (default: no export)
  --format F        csv | jsonl | both (default csv)
  --threads N       worker threads (default: all available cores); output
                    is byte-identical at any thread count
  --shard I/K       generate only shard I of a K-way row partition
                    (0 <= I < K); with --out, files land in a
                    shard-I-of-K/ subdirectory, and concatenating all K
                    shards' files in order is byte-identical to the full
                    run. Each shard writes a manifest.json.
  --merge-manifests DIR...
                    read the manifest.json of each shard directory,
                    validate coverage/ordering, and fuse them into the
                    single-run manifest (written to --out, else printed);
                    no schema file is taken in this mode
  --list-generators print the registered structure and property generator
                    names and exit (no schema file needed)
  --plan            print the dependency-analyzed task plan and exit;
                    with --shard, also show each task's shard mode and
                    row window
  --progress        per-task start/finish lines on stderr, with row
                    counts, wall time and row throughput per task
  --report FILE     write a structured JSON run report to FILE
                    (per-task timings, per-table rows/bytes/hashes,
                    thread/shard config); '-' prints to stdout
  --stats           print structural statistics of the generated graph
  --workload DIR    derive a benchmark query workload into DIR
                    (Cypher + Gremlin per query, plus workload.json)
  --queries N       number of workload queries (default 100)
  --query-mix SPEC  kind:weight list, e.g. point:2,expand1:5,scan:1
                    (kinds: point, expand1, expand2, scan, path, agg,
                     asof, window, wagg;
                     default: uniform over the kinds the schema derives)
  --ops DIR         write the deterministic update-stream op log (the
                    dynamic-graph companion of the snapshot) to DIR;
                    requires temporal { ... } annotations in the schema.
                    With --shard, the file lands in a shard-I-of-K/
                    subdirectory and concatenating all K shards' op files
                    in order is byte-identical to the full run
  --ops-format F    csv | jsonl op-log encoding (default csv)
  --help            this text
";

/// Parse `I/K` into a validated [`ShardSpec`].
fn parse_shard(spec: &str) -> Result<ShardSpec, String> {
    let (i, k) = spec
        .split_once('/')
        .ok_or_else(|| format!("--shard takes I/K (e.g. 0/3), got {spec:?}"))?;
    let index: u64 = i
        .parse()
        .map_err(|_| format!("--shard index must be an integer, got {i:?}"))?;
    let count: u64 = k
        .parse()
        .map_err(|_| format!("--shard count must be an integer, got {k:?}"))?;
    ShardSpec::new(index, count).map_err(|e| e.to_string())
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        schema_path: PathBuf::new(),
        seed: 42,
        out: None,
        format: Format::Csv,
        threads: None,
        shard: None,
        merge_manifests: Vec::new(),
        list_generators: false,
        plan_only: false,
        progress: false,
        report: None,
        stats: false,
        workload: None,
        queries: None,
        query_mix: None,
        ops: None,
        ops_format: OpsFormat::Csv,
    };
    let mut positional = Vec::new();
    let mut iter = std::env::args().skip(1).peekable();
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--seed" => {
                args.seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed takes an integer")?;
            }
            "--out" => {
                args.out = Some(iter.next().ok_or("--out takes a directory")?.into());
            }
            "--format" => {
                args.format = match iter.next().as_deref() {
                    Some("csv") => Format::Csv,
                    Some("jsonl") => Format::Jsonl,
                    Some("both") => Format::Both,
                    other => return Err(format!("unknown format {other:?}")),
                };
            }
            "--threads" => {
                args.threads = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads takes an integer")?,
                );
            }
            "--shard" => {
                let spec = iter.next().ok_or("--shard takes I/K (e.g. 0/3)")?;
                args.shard = Some(parse_shard(&spec)?);
            }
            "--merge-manifests" => {
                while let Some(dir) = iter.peek() {
                    if dir.starts_with('-') {
                        break;
                    }
                    args.merge_manifests
                        .push(iter.next().expect("peeked").into());
                }
                if args.merge_manifests.is_empty() {
                    return Err("--merge-manifests takes one or more shard directories".into());
                }
            }
            "--list-generators" => args.list_generators = true,
            "--plan" => args.plan_only = true,
            "--progress" => args.progress = true,
            "--report" => {
                args.report = Some(iter.next().ok_or("--report takes a file path")?.into());
            }
            "--stats" => args.stats = true,
            "--workload" => {
                args.workload = Some(iter.next().ok_or("--workload takes a directory")?.into());
            }
            "--queries" => {
                args.queries = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--queries takes an integer")?,
                );
            }
            "--query-mix" => {
                let spec = iter.next().ok_or("--query-mix takes a kind:weight list")?;
                args.query_mix = Some(QueryMix::parse(&spec).map_err(|e| e.to_string())?);
            }
            "--ops" => {
                args.ops = Some(iter.next().ok_or("--ops takes a directory")?.into());
            }
            "--ops-format" => {
                let kw = iter.next().ok_or("--ops-format takes csv or jsonl")?;
                args.ops_format = OpsFormat::from_keyword(&kw)
                    .ok_or_else(|| format!("unknown ops format {kw:?} (csv | jsonl)"))?;
            }
            other if !other.starts_with('-') => positional.push(PathBuf::from(other)),
            other => return Err(format!("unknown flag {other:?}")),
        }
    }
    let schemaless_mode = args.list_generators || !args.merge_manifests.is_empty();
    match positional.as_slice() {
        // Loudly reject a schema alongside schema-free modes rather than
        // silently skipping generation.
        [_, ..] if schemaless_mode => {
            return Err(if args.list_generators {
                "--list-generators takes no schema file".into()
            } else {
                "--merge-manifests takes no schema file, only shard directories".into()
            });
        }
        [] if schemaless_mode => {}
        [one] => args.schema_path = one.clone(),
        _ => return Err("expected exactly one schema file".into()),
    }
    if args.workload.is_none() && (args.queries.is_some() || args.query_mix.is_some()) {
        return Err("--queries / --query-mix require --workload DIR".into());
    }
    if !args.merge_manifests.is_empty() && args.shard.is_some() {
        return Err("--merge-manifests cannot be combined with --shard".into());
    }
    Ok(args)
}

/// Decorator sink: records counts and edge cardinalities for the post-run
/// summary lines, forwarding every event untouched (no clones) to the
/// wrapped sink. A decorator must forward *all* events — relying on the
/// trait's drop-by-default bodies would swallow tables downstream.
struct SummarySink<'a> {
    inner: &'a mut dyn GraphSink,
    node_counts: BTreeMap<String, u64>,
    edge_summaries: BTreeMap<String, (String, String, u64)>,
}

impl<'a> SummarySink<'a> {
    fn new(inner: &'a mut dyn GraphSink) -> Self {
        Self {
            inner,
            node_counts: BTreeMap::new(),
            edge_summaries: BTreeMap::new(),
        }
    }

    fn total_nodes(&self) -> u64 {
        self.node_counts.values().sum()
    }

    fn total_edges(&self) -> u64 {
        self.edge_summaries.values().map(|(_, _, n)| n).sum()
    }
}

impl GraphSink for SummarySink<'_> {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        self.inner.begin(manifest)
    }

    fn table_rows(
        &mut self,
        table: &str,
        rows: std::ops::Range<u64>,
        total: u64,
    ) -> Result<(), SinkError> {
        self.inner.table_rows(table, rows, total)
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        self.node_counts.insert(node_type.to_owned(), count);
        self.inner.node_count(node_type, count)
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: datasynth::tables::PropertyTable,
    ) -> Result<(), SinkError> {
        self.inner.node_property(node_type, property, table)
    }

    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: datasynth::tables::EdgeTable,
    ) -> Result<(), SinkError> {
        self.edge_summaries.insert(
            edge_type.to_owned(),
            (source.to_owned(), target.to_owned(), table.len()),
        );
        self.inner.edges(edge_type, source, target, table)
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: datasynth::tables::PropertyTable,
    ) -> Result<(), SinkError> {
        self.inner.edge_property(edge_type, property, table)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        self.inner.finish()
    }

    fn contributed_tables(&mut self) -> Vec<(String, datasynth::core::TableRows)> {
        self.inner.contributed_tables()
    }
}

/// Registry introspection behind `--list-generators`: the names any
/// schema handed to this binary can resolve.
fn list_generators() {
    println!("structure generators (structure = name(...)):");
    for name in StructureRegistry::builtin().names() {
        println!("  {name}");
    }
    println!("property generators (property: type = name(...)):");
    for name in PropertyRegistry::builtin().names() {
        println!("  {name}");
    }
}

/// `--merge-manifests`: load every shard directory's manifest, fuse them,
/// and write (or print) the resulting single-run manifest.
fn merge_manifests(dirs: &[PathBuf], out: Option<&PathBuf>) -> Result<(), String> {
    let manifests: Vec<SinkManifest> = dirs
        .iter()
        .map(|d| SinkManifest::load(d).map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    let merged = SinkManifest::merge(&manifests).map_err(|e| e.to_string())?;
    eprintln!(
        "merged {} shard manifests of {} (seed {}): {} tables, content hash {:016x}",
        manifests.len(),
        merged.graph_name,
        merged.seed,
        merged.tables.len(),
        merged.content_hash()
    );
    for (name, rows) in &merged.tables {
        eprintln!(
            "  {name}: {} rows, hash {:016x}",
            rows.total, rows.content_hash
        );
        // Per-shard coverage of this table, in shard order: which global
        // row window each input manifest contributed.
        let mut coverage = String::new();
        for m in &manifests {
            if let Some(r) = m.tables.get(name) {
                coverage.push_str(&format!(" {}:[{}..{})", m.shard.index, r.lo, r.hi));
            }
        }
        eprintln!("    shard coverage:{coverage}");
    }
    match out {
        Some(dir) => {
            merged
                .save(dir)
                .map_err(|e| format!("cannot write merged manifest: {e}"))?;
            eprintln!("merged manifest -> {}", dir.join(MANIFEST_FILE).display());
        }
        None => print!("{}", merged.to_json()),
    }
    Ok(())
}

fn run(args: &Args) -> Result<(), String> {
    if args.list_generators {
        list_generators();
        return Ok(());
    }
    if !args.merge_manifests.is_empty() {
        return merge_manifests(&args.merge_manifests, args.out.as_ref());
    }
    let src = std::fs::read_to_string(&args.schema_path)
        .map_err(|e| format!("cannot read {}: {e}", args.schema_path.display()))?;
    let mut generator = DataSynth::from_dsl(&src)
        .map_err(|e| e.to_string())?
        .with_seed(args.seed);
    if let Some(t) = args.threads {
        generator = generator.with_threads(t);
    }

    // Every run is linted first: error diagnostics abort before any row
    // is generated, warnings/notes go to stderr. `datasynth lint` gives
    // the same report standalone (and as JSON).
    {
        let report = datasynth::lint::lint(generator.schema());
        if !report.is_clean() {
            let origin = args.schema_path.display().to_string();
            let text = datasynth::lint::render_text(&report, Some(&origin), Some(&src));
            if report.has_errors() {
                return Err(format!("schema rejected by lint:\n{text}"));
            }
            eprint!("{text}");
        }
    }

    if args.plan_only {
        match args.shard {
            None => {
                println!("execution plan for {}:", args.schema_path.display());
                for (i, task) in generator
                    .plan()
                    .map_err(|e| e.to_string())?
                    .tasks
                    .iter()
                    .enumerate()
                {
                    println!("  {i:>3}. {task}");
                }
            }
            Some(spec) => {
                println!(
                    "execution plan for {}, shard {spec}:",
                    args.schema_path.display()
                );
                let plan = generator
                    .shard_plan(spec.index, spec.count)
                    .map_err(|e| e.to_string())?;
                for (i, t) in plan.tasks.iter().enumerate() {
                    match (t.mode, &t.rows) {
                        (ShardMode::Scalar, _) => println!("  {i:>3}. {} [scalar]", t.task),
                        (ShardMode::Recompute, Some(rows)) => println!(
                            "  {i:>3}. {} [recompute, emit rows {}..{}]",
                            t.task, rows.start, rows.end
                        ),
                        (ShardMode::Recompute, None) => println!(
                            "  {i:>3}. {} [recompute, rows resolved at run time]",
                            t.task
                        ),
                        (ShardMode::Windowed, Some(rows)) => println!(
                            "  {i:>3}. {} [windowed, rows {}..{}]",
                            t.task, rows.start, rows.end
                        ),
                        (ShardMode::Windowed, None) => {
                            println!("  {i:>3}. {} [windowed, rows resolved at run time]", t.task)
                        }
                    }
                }
            }
        }
        return Ok(());
    }

    // A sharded run nests its files under shard-I-of-K/ so K shards can
    // target the same --out without clobbering each other.
    let out_dir: Option<PathBuf> = args.out.as_ref().map(|dir| match args.shard {
        Some(spec) => dir.join(format!("shard-{}-of-{}", spec.index, spec.count)),
        None => dir.clone(),
    });

    // --report attaches one shared registry to the scheduler and every
    // file sink; without it no registry exists and nothing is recorded.
    let metrics = args
        .report
        .as_ref()
        .map(|_| Arc::new(MetricsRegistry::new()));

    // One generation pass: every consumer is a sink behind the fan-out.
    let mut csv_sink = out_dir.as_ref().and_then(|dir| {
        (args.format == Format::Csv || args.format == Format::Both).then(|| {
            let sink = CsvSink::new(dir);
            match &metrics {
                Some(m) => sink.with_metrics(Arc::clone(m)),
                None => sink,
            }
        })
    });
    let mut jsonl_sink = out_dir.as_ref().and_then(|dir| {
        (args.format == Format::Jsonl || args.format == Format::Both).then(|| {
            let sink = JsonlSink::new(dir);
            match &metrics {
                Some(m) => sink.with_metrics(Arc::clone(m)),
                None => sink,
            }
        })
    });
    // The op log mirrors --out's sharding layout so K shard runs can
    // target the same --ops directory.
    let ops_dir: Option<PathBuf> = args.ops.as_ref().map(|dir| match args.shard {
        Some(spec) => dir.join(format!("shard-{}-of-{}", spec.index, spec.count)),
        None => dir.clone(),
    });
    let mut temporal_sink = match &ops_dir {
        Some(dir) => {
            std::fs::create_dir_all(dir)
                .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
            let path = dir.join(ops_file_name(args.ops_format));
            let file = std::fs::File::create(&path)
                .map_err(|e| format!("cannot create {}: {e}", path.display()))?;
            let sink = TemporalSink::new(
                generator.schema(),
                std::io::BufWriter::new(file),
                args.ops_format,
            )
            .map_err(|e| e.to_string())?;
            Some(match &metrics {
                Some(m) => sink.with_metrics(Arc::clone(m)),
                None => sink,
            })
        }
        None => None,
    };
    let mut stats_sink = args.stats.then(StatsSink::new);
    let mut workload_sink = args.workload.as_ref().map(|_| {
        WorkloadSink::new(generator.schema())
            .with_seed(args.seed)
            .with_mix(args.query_mix.clone().unwrap_or_default())
            .with_count(args.queries.unwrap_or(100))
    });

    if let Some(dir) = &out_dir {
        // The sinks also create the directory; doing it here first turns a
        // permissions/path problem into one clear CLI error instead of a
        // per-format export failure.
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }

    let mut sinks = MultiSink::new();
    if let Some(s) = csv_sink.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = jsonl_sink.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = stats_sink.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = workload_sink.as_mut() {
        sinks.push(s);
    }
    if let Some(s) = temporal_sink.as_mut() {
        sinks.push(s);
    }

    let mut session = generator.session().map_err(|e| e.to_string())?;
    if args.ops.is_some() {
        session = session.with_ops(true);
    }
    if let Some(spec) = args.shard {
        session = session
            .shard(spec.index, spec.count)
            .map_err(|e| e.to_string())?;
    }
    if let Some(m) = &metrics {
        session = session.with_metrics(Arc::clone(m));
    }
    if args.progress {
        let run_started = std::time::Instant::now();
        session = session.on_task(move |p| match p.phase {
            TaskPhase::Started => {
                eprintln!(
                    "[{:>3}/{}] {:>8.1}s {} ...",
                    p.index + 1,
                    p.total,
                    run_started.elapsed().as_secs_f64(),
                    p.task
                );
            }
            TaskPhase::Finished => {
                let rows = p.rows.unwrap_or(0);
                let elapsed = p.elapsed.unwrap_or_default();
                let rate = if elapsed.as_secs_f64() > 0.0 {
                    rows as f64 / elapsed.as_secs_f64()
                } else {
                    0.0
                };
                eprintln!(
                    "[{:>3}/{}] {:>8.1}s {} done: {rows} rows in {:.1} ms ({rate:.0} rows/s)",
                    p.index + 1,
                    p.total,
                    run_started.elapsed().as_secs_f64(),
                    p.task,
                    elapsed.as_secs_f64() * 1e3
                );
            }
            _ => {}
        });
    }

    let started = std::time::Instant::now();
    let mut summary = SummarySink::new(&mut sinks);
    let report = session.run_into(&mut summary).map_err(|e| e.to_string())?;
    match args.shard {
        None => eprintln!(
            "generated {} nodes, {} edges in {:.2}s (seed {})",
            summary.total_nodes(),
            summary.total_edges(),
            started.elapsed().as_secs_f64(),
            args.seed
        ),
        Some(spec) => eprintln!(
            "shard {spec}: emitted {} edge rows (of {} total nodes) in {:.2}s (seed {})",
            summary.total_edges(),
            summary.total_nodes(),
            started.elapsed().as_secs_f64(),
            args.seed
        ),
    }

    for (name, count) in &summary.node_counts {
        println!("node {name}: {count} instances");
    }
    for (name, (source, target, count)) in &summary.edge_summaries {
        match args.shard {
            None => println!("edge {name}: {count} edges ({source} -> {target})"),
            Some(_) => println!("edge {name}: {count} edge rows in shard ({source} -> {target})"),
        }
    }

    if let Some(dir) = &out_dir {
        report
            .save(dir)
            .map_err(|e| format!("cannot write manifest: {e}"))?;
    }

    if let Some(path) = &args.report {
        let json = report.to_json();
        if path.as_os_str() == "-" {
            print!("{json}");
        } else {
            std::fs::write(path, &json)
                .map_err(|e| format!("cannot write report {}: {e}", path.display()))?;
            eprintln!("run report -> {}", path.display());
        }
    }

    if let Some(stats) = &stats_sink {
        println!("\nstructural statistics:");
        for r in stats.reports() {
            if let Some(s) = &r.degree {
                println!(
                    "  {}: degree min {} max {} mean {:.2} var {:.1}",
                    r.edge_type, s.min, s.max, s.mean, s.variance
                );
            }
            println!(
                "  {}: largest component {} / {} ({:.1}%)",
                r.edge_type,
                r.largest_component,
                r.nodes,
                100.0 * r.largest_component as f64 / r.nodes as f64
            );
            if let Some(a) = r.assortativity {
                println!("  {}: degree assortativity {a:.3}", r.edge_type);
            }
        }
    }

    if let Some(dir) = &out_dir {
        eprintln!("exported to {}", dir.display());
    }

    if let (Some(dir), Some(rows)) = (&ops_dir, report.tables.get("$ops")) {
        eprintln!(
            "op log: {} ops (window {}..{} of {}) -> {}",
            rows.hi - rows.lo,
            rows.lo,
            rows.hi,
            rows.total,
            dir.join(ops_file_name(args.ops_format)).display()
        );
    }

    if let (Some(dir), Some(sink)) = (&args.workload, workload_sink.as_mut()) {
        let workload = sink
            .take_workload()
            .expect("workload curated when the run finishes");
        workload
            .write_to(dir)
            .map_err(|e| format!("workload export: {e}"))?;
        eprintln!(
            "workload: {} queries over {} templates ({} kinds) -> {}",
            workload.queries.len(),
            workload.templates.len(),
            workload.instantiated_kinds().len(),
            dir.display()
        );
    }
    Ok(())
}

/// `datasynth lint`: run static analysis over a schema file and exit
/// 0 (clean / advisory only) or 1 (errors, or warnings under
/// `--deny warnings`). `--format json` prints the same canonical JSON
/// the server returns in its 422 lint response.
fn run_lint() -> Result<ExitCode, String> {
    use datasynth::lint::{lint, render_text};

    let mut path: Option<PathBuf> = None;
    let mut deny_warnings = false;
    let mut json = false;
    let mut iter = std::env::args().skip(2);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--deny" => match iter.next().as_deref() {
                Some("warnings") => deny_warnings = true,
                other => return Err(format!("--deny takes `warnings`, got {other:?}")),
            },
            "--format" => {
                json = match iter.next().as_deref() {
                    Some("text") => false,
                    Some("json") => true,
                    other => return Err(format!("unknown lint format {other:?} (text | json)")),
                };
            }
            other if !other.starts_with('-') => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err("lint takes exactly one schema file".into());
                }
            }
            other => return Err(format!("unknown lint flag {other:?}")),
        }
    }
    let path = path.ok_or("lint takes a schema file")?;
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let schema =
        datasynth::schema::parse_schema(&src).map_err(|e| format!("{}:{e}", path.display()))?;
    let report = lint(&schema);
    if json {
        println!("{}", report.to_json());
    } else {
        print!(
            "{}",
            render_text(&report, Some(&path.display().to_string()), Some(&src))
        );
    }
    Ok(if report.fails(deny_warnings) {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    })
}

/// `datasynth bench-workload`: generate (or read back) a graph, load it
/// into the embedded engine, execute the derived query mix, and write a
/// bench report. The report's stable half (result counts, cardinality
/// bands, store sizes) is deterministic per schema + seed; timings live
/// under separate `timing` keys so CI can diff the rest.
fn run_bench_workload() -> Result<ExitCode, String> {
    use datasynth::engine::Bench;

    let mut path: Option<PathBuf> = None;
    let mut seed: u64 = 42;
    let mut threads: Option<usize> = None;
    let mut mix: Option<QueryMix> = None;
    let mut queries: Option<usize> = None;
    let mut warmup: Option<u32> = None;
    let mut iters: Option<u32> = None;
    let mut from: Option<PathBuf> = None;
    let mut report_path = PathBuf::from("bench_report.json");
    let mut metrics_path: Option<PathBuf> = None;
    let mut iter = std::env::args().skip(2);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--seed" => {
                seed = iter
                    .next()
                    .and_then(|s| s.parse().ok())
                    .ok_or("--seed takes an integer")?;
            }
            "--threads" => {
                threads = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads takes an integer")?,
                );
            }
            "--mix" => {
                let spec = iter.next().ok_or("--mix takes a kind:weight list")?;
                mix = Some(QueryMix::parse(&spec).map_err(|e| e.to_string())?);
            }
            "--queries" => {
                queries = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--queries takes an integer")?,
                );
            }
            "--warmup" => {
                warmup = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--warmup takes an integer")?,
                );
            }
            "--iters" => {
                iters = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--iters takes an integer")?,
                );
            }
            "--from" => {
                from = Some(iter.next().ok_or("--from takes a directory")?.into());
            }
            "--report" => {
                report_path = iter.next().ok_or("--report takes a file path")?.into();
            }
            "--metrics" => {
                metrics_path = Some(iter.next().ok_or("--metrics takes a file path")?.into());
            }
            other if !other.starts_with('-') => {
                if path.replace(PathBuf::from(other)).is_some() {
                    return Err("bench-workload takes exactly one schema file".into());
                }
            }
            other => return Err(format!("unknown bench-workload flag {other:?}")),
        }
    }
    let path = path.ok_or("bench-workload takes a schema file")?;
    let src = std::fs::read_to_string(&path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let schema =
        datasynth::schema::parse_schema(&src).map_err(|e| format!("{}:{e}", path.display()))?;

    // Same lint gate as a generation run: errors abort, the rest goes to
    // stderr (DS008 notes when a schema derives no executable workload).
    {
        let report = datasynth::lint::lint(&schema);
        if !report.is_clean() {
            let origin = path.display().to_string();
            let text = datasynth::lint::render_text(&report, Some(&origin), Some(&src));
            if report.has_errors() {
                return Err(format!("schema rejected by lint:\n{text}"));
            }
            eprint!("{text}");
        }
    }

    let metrics = Arc::new(MetricsRegistry::new());
    let mut bench = Bench::new(&schema)
        .with_seed(seed)
        .with_metrics(Arc::clone(&metrics));
    if let Some(t) = threads {
        bench = bench.with_threads(t);
    }
    if let Some(m) = mix {
        bench = bench.with_mix(m);
    }
    if let Some(q) = queries {
        bench = bench.with_queries(q);
    }
    if let Some(w) = warmup {
        bench = bench.with_warmup(w);
    }
    if let Some(i) = iters {
        bench = bench.with_iters(i);
    }
    if let Some(d) = &from {
        bench = bench.from_dir(d);
    }
    let report = bench.run().map_err(|e| e.to_string())?;

    eprintln!(
        "loaded {} ({} nodes, {} edges, ~{} KiB store) in {:.1} ms + {:.1} ms index build (seed {})",
        report.graph,
        report.nodes,
        report.edges,
        report.memory_bytes / 1024,
        report.load_micros as f64 / 1e3,
        report.store_build_micros as f64 / 1e3,
        report.seed
    );
    eprintln!(
        "executed {} queries x {} rounds ({} warmup) over {} templates:",
        report.query_count,
        report.iters,
        report.warmup,
        report.templates.len()
    );
    for t in &report.templates {
        eprintln!(
            "  {:<28} {:>8.0} ops/s  p50 {:>6}us p95 {:>6}us p99 {:>6}us  \
             rows {} (expected {}), {}/{} in band",
            t.id,
            t.ops_per_sec,
            t.p50_micros,
            t.p95_micros,
            t.p99_micros,
            t.rows,
            t.expected_rows,
            t.in_band,
            t.queries
        );
    }

    if report_path.as_os_str() == "-" {
        print!("{}", report.to_json());
    } else {
        report
            .save(&report_path)
            .map_err(|e| format!("cannot write report {}: {e}", report_path.display()))?;
        eprintln!("bench report -> {}", report_path.display());
    }
    if let Some(p) = &metrics_path {
        let prom = metrics.snapshot().to_prometheus();
        if p.as_os_str() == "-" {
            print!("{prom}");
        } else {
            std::fs::write(p, &prom)
                .map_err(|e| format!("cannot write metrics {}: {e}", p.display()))?;
            eprintln!("query metrics -> {}", p.display());
        }
    }

    Ok(if report.all_in_band() {
        ExitCode::SUCCESS
    } else {
        eprintln!("error: executed row counts fell outside the curated cardinality bands");
        ExitCode::FAILURE
    })
}

/// `datasynth serve`: bring up the HTTP service and block forever.
fn run_serve() -> Result<(), String> {
    use datasynth::server::{Server, ServerConfig};
    let mut addr: Option<String> = None;
    let mut threads: Option<usize> = None;
    let mut workers: Option<usize> = None;
    let mut max_graphs: Option<usize> = None;
    let mut iter = std::env::args().skip(2);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--help" | "-h" => return Err(String::new()),
            "--addr" => addr = Some(iter.next().ok_or("--addr takes HOST:PORT")?),
            "--threads" => {
                threads = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--threads takes an integer")?,
                );
            }
            "--workers" => {
                workers = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--workers takes an integer")?,
                );
            }
            "--max-graphs" => {
                max_graphs = Some(
                    iter.next()
                        .and_then(|s| s.parse().ok())
                        .ok_or("--max-graphs takes an integer")?,
                );
            }
            other => return Err(format!("unknown serve flag {other:?}")),
        }
    }
    let mut config = ServerConfig::new(addr.ok_or("serve requires --addr HOST:PORT")?);
    if let Some(t) = threads {
        config.gen_threads = t;
    }
    if let Some(w) = workers {
        config.workers = w;
    }
    if let Some(n) = max_graphs {
        config.max_graphs = n;
    }
    let workers = config.workers;
    let gen_threads = config.gen_threads;
    let handle = Server::start(config).map_err(|e| format!("cannot start server: {e}"))?;
    // The CI smoke job and scripts wait for this exact line to know the
    // listener is up (and, with port 0, which port it got).
    println!(
        "datasynth-server listening on http://{} ({workers} workers, {gen_threads} generation threads)",
        handle.addr()
    );
    handle.join();
    Ok(())
}

fn main() -> ExitCode {
    if std::env::args().nth(1).as_deref() == Some("lint") {
        return match run_lint() {
            Ok(code) => code,
            Err(msg) => {
                if msg.is_empty() {
                    eprint!("{USAGE}");
                    return ExitCode::SUCCESS;
                }
                eprintln!("error: {msg}\n");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if std::env::args().nth(1).as_deref() == Some("bench-workload") {
        return match run_bench_workload() {
            Ok(code) => code,
            Err(msg) => {
                if msg.is_empty() {
                    eprint!("{USAGE}");
                    return ExitCode::SUCCESS;
                }
                eprintln!("error: {msg}\n");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    if std::env::args().nth(1).as_deref() == Some("serve") {
        return match run_serve() {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                if msg.is_empty() {
                    eprint!("{USAGE}");
                    return ExitCode::SUCCESS;
                }
                eprintln!("error: {msg}\n");
                eprint!("{USAGE}");
                ExitCode::from(2)
            }
        };
    }
    match parse_args() {
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprint!("{USAGE}");
            if msg.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::from(2)
            }
        }
        Ok(args) => match run(&args) {
            Ok(()) => ExitCode::SUCCESS,
            Err(msg) => {
                eprintln!("error: {msg}");
                ExitCode::FAILURE
            }
        },
    }
}
