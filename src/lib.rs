//! # DataSynth-rs
//!
//! A property graph generator for benchmarking, reproducing Prat-Pérez et
//! al., *"Towards a property graph generator for benchmarking"* (2017).
//!
//! DataSynth generates property graphs from a schema: node and edge types
//! with typed properties, pluggable structure generators (LFR, RMAT, BTER,
//! …), deterministic in-place property generation (any value is a pure
//! function of its instance id and the master seed), and — the paper's core
//! contribution — **SBM-Part** matching, which assigns property values to
//! structure nodes so that a target joint distribution `P(X,Y)` over edge
//! endpoints is preserved.
//!
//! Schemas enter through either of two equivalent frontends — DSL text or
//! the fluent [`SchemaBuilder`](schema::SchemaBuilder) — and both resolve
//! generators through open registries, so user-defined structure and
//! property generators plug in without touching any crate internals
//! ([`DataSynth::register_structure`] / [`DataSynth::register_property`];
//! see `examples/custom_generator.rs`).
//!
//! ```no_run
//! use datasynth::prelude::*;
//! use datasynth::schema::builder::{homophily, text};
//!
//! // Frontend 1: the DSL.
//! let generator = DataSynth::from_dsl(r#"
//!     graph quick {
//!       node Person [count = 10000] {
//!         country: text = dictionary("countries");
//!       }
//!       edge knows: Person -- Person {
//!         structure = lfr(avg_degree = 20, max_degree = 50, mixing = 0.1);
//!         correlate country with homophily(0.8);
//!       }
//!     }
//! "#).unwrap().with_seed(42);
//!
//! // Frontend 2: the programmatic builder — same validated schema,
//! // byte-identical output under the same seed.
//! let schema = Schema::build("quick")
//!     .node("Person", |n| n.count(10000).property("country", text().dictionary("countries")))
//!     .edge("knows", "Person", "Person", |e| {
//!         e.structure("lfr", |s| {
//!             s.num("avg_degree", 20.0).num("max_degree", 50.0).num("mixing", 0.1)
//!         })
//!         .correlate("country", homophily(0.8))
//!     })
//!     .finish()
//!     .unwrap();
//! let same = DataSynth::new(schema).unwrap().with_seed(42);
//!
//! // In-memory: materialize a PropertyGraph, then export it.
//! let graph = generator.generate().unwrap();
//! CsvExporter.export(&graph, std::path::Path::new("out")).unwrap();
//!
//! // Streaming: export during generation, byte-identical output, without
//! // ever holding the whole graph (see `GraphSink` for custom sinks).
//! let mut sink = CsvSink::new("out");
//! same.session().unwrap().run_into(&mut sink).unwrap();
//! ```
//!
//! The sub-crates are re-exported under short names:
//!
//! * [`prng`] — skip-seed PRNGs and inverse-transform samplers,
//! * [`tables`] — property tables, edge tables, CSR, exporters,
//! * [`structure`] — graph structure generators,
//! * [`props`] — property generators and sample dictionaries,
//! * [`schema`] — the DSL,
//! * [`lint`] — static schema/plan diagnostics (`DS0xx` codes),
//! * [`matching`] — SBM-Part, LDG, JPDs, evaluation,
//! * [`analysis`] — structural graph metrics,
//! * [`core`] — the pipeline,
//! * [`server`] — the streaming HTTP service (`datasynth serve`),
//! * [`telemetry`] — metrics registry, byte counting, Prometheus encoding,
//! * [`temporal`] — deterministic update streams (op logs) for dynamic graphs,
//! * [`workload`] — benchmark query workloads over generated graphs,
//! * [`engine`] — the embedded property-graph engine that executes those
//!   workloads end-to-end (`datasynth bench-workload`).

pub use datasynth_analysis as analysis;
pub use datasynth_core as core;
pub use datasynth_engine as engine;
pub use datasynth_lint as lint;
pub use datasynth_matching as matching;
pub use datasynth_prng as prng;
pub use datasynth_props as props;
pub use datasynth_schema as schema;
pub use datasynth_server as server;
pub use datasynth_structure as structure;
pub use datasynth_tables as tables;
pub use datasynth_telemetry as telemetry;
pub use datasynth_temporal as temporal;
pub use datasynth_workload as workload;

pub use datasynth_core::{
    DataSynth, ExecutionPlan, GraphSink, PipelineError, Session, SinkError, Task,
};

/// One-stop imports.
pub mod prelude {
    pub use datasynth_analysis::StatsSink;
    pub use datasynth_core::prelude::*;
    pub use datasynth_engine::{Bench, BenchReport, Executor, GraphStore, StoreSink};
    pub use datasynth_lint::{lint, Diagnostic, LintReport, Linter};
    pub use datasynth_workload::{
        derive_templates, QueryMix, QueryTemplate, SelectivityClass, Workload, WorkloadGenerator,
        WorkloadSink,
    };
}
