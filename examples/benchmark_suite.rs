//! Benchmark suite in one run: generate a property graph *and* the query
//! workload to benchmark it with, the way gMark/SP²Bench couple data and
//! queries — streamed through sinks in a **single generation pass**, so
//! the full graph is never materialized.
//!
//! ```sh
//! cargo run --release --example benchmark_suite
//! ```
//!
//! Writes `benchmark_out/data/` (CSV tables) and `benchmark_out/queries/`
//! (Cypher + Gremlin per query, `workload.json` manifest).

use std::path::Path;

use datasynth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dsl = std::fs::read_to_string("examples/social.dsl")
        .unwrap_or_else(|_| include_str!("social.dsl").to_owned());
    let seed = 42;

    let generator = DataSynth::from_dsl(&dsl)?.with_seed(seed);
    let out = Path::new("benchmark_out");

    // One pass: CSV export and workload curation both consume the stream.
    // Weight neighborhood expansions heaviest, the way an OLTP-ish graph
    // benchmark would; scans and aggregations stay in the mix.
    let mix = QueryMix::parse("point:2,expand1:4,expand2:2,scan:2,path:1,agg:1")?;
    let mut csv = CsvSink::new(out.join("data"));
    let mut curation = WorkloadSink::new(generator.schema())
        .with_seed(seed)
        .with_mix(mix)
        .with_count(100);
    let mut sinks = MultiSink::new().with(&mut csv).with(&mut curation);
    generator.session()?.run_into(&mut sinks)?;

    let workload = curation.take_workload().expect("curated at finish");
    workload.write_to(&out.join("queries"))?;

    println!(
        "workload: {} queries across {} kinds",
        workload.queries.len(),
        workload.instantiated_kinds().len()
    );
    for template in &workload.templates {
        let count = workload
            .queries
            .iter()
            .filter(|q| q.template_id() == template.id)
            .count();
        if count > 0 {
            println!(
                "  {:<28} {:>3} queries [{}]",
                template.id, count, template.selectivity
            );
        }
    }
    if let Some(q) = workload.queries.first() {
        println!("\nexample ({}):\n  {}\n  {}", q.id, q.cypher, q.gremlin);
    }
    Ok(())
}
