//! Quickstart: declare a small schema, generate, inspect, export.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use datasynth::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dsl = r#"
graph quickstart {
  node User [count = 5000] {
    country: text = dictionary("countries");
    age: long = uniform(18, 80);
    premium: bool = bool(0.12);
    signupDate: date = date_between("2020-01-01", "2024-12-31");
  }
  edge follows: User -- User [many_to_many] {
    structure = lfr(avg_degree = 12, max_degree = 40, mixing = 0.15);
    correlate country with homophily(0.7);
    since: date = date_after(90) given (source.signupDate, target.signupDate);
  }
}
"#;

    let generator = DataSynth::from_dsl(dsl)?.with_seed(42);

    // The dependency analysis is inspectable before anything runs.
    println!("execution plan:");
    for task in &generator.plan()?.tasks {
        println!("  {task}");
    }

    let graph = generator.generate()?;
    println!(
        "\ngenerated {} nodes, {} edges",
        graph.total_nodes(),
        graph.total_edges()
    );

    // Values are regenerable and typed.
    let countries = graph.node_property("User", "country").expect("exists");
    println!("user 0 lives in {}", countries.value(0)?);

    // Check the homophily actually holds.
    let follows = graph.edges("follows").expect("exists");
    let same = follows
        .iter()
        .filter(|&(a, b)| countries.value(a).unwrap() == countries.value(b).unwrap())
        .count();
    println!(
        "{:.1}% of follows edges connect same-country users",
        100.0 * same as f64 / follows.len() as f64
    );

    // Export by streaming a second run through a sink — byte-identical to
    // `CsvExporter.export(&graph, ..)`, but without materializing a graph
    // (at scale you would skip `generate()` and only stream).
    let out = std::env::temp_dir().join("datasynth-quickstart");
    let mut sink = CsvSink::new(&out);
    generator.session()?.run_into(&mut sink)?;
    println!("exported CSV tables to {}", out.display());
    Ok(())
}
