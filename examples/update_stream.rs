//! Dynamic graphs: generate a static snapshot *and* the deterministic
//! update stream (op log) that builds it.
//!
//! Types carrying a `temporal { arrival = ...; }` block get an insert
//! timestamp per row, drawn from the same seeded streams as every other
//! value; an optional `lifetime` distribution additionally schedules a
//! delete strictly after each insert. The op log is globally ordered by
//! timestamp and references snapshot rows by `(table, row)` — replaying
//! it against the exported tables reconstructs the graph state at any
//! point in time.
//!
//! ```sh
//! cargo run --release --example update_stream
//! ```

use datasynth::prelude::*;
use datasynth::temporal::{OpsFormat, TemporalSink};

const SCHEMA: &str = r#"
graph updates {
  node Person [count = 2000] {
    country: text = dictionary("countries");
    temporal { arrival = date_between("2015-01-01", "2018-01-01"); }
  }
  edge knows: Person -- Person [many_to_many] {
    structure = lfr(avg_degree = 8, max_degree = 24, mixing = 0.1);
    correlate country with homophily(0.8);
    temporal {
      arrival = date_between("2015-06-01", "2018-01-01");
      lifetime = uniform(30, 365);
    }
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let generator = DataSynth::from_dsl(SCHEMA)?.with_seed(42);

    // One pass, two artifacts: the snapshot tables (CSV) and the op log,
    // both deterministic functions of (schema, seed).
    let out = std::env::temp_dir().join("datasynth-updates");
    let mut csv = CsvSink::new(&out);
    let mut ops = TemporalSink::new(generator.schema(), Vec::new(), OpsFormat::Csv)?;
    let mut sinks = MultiSink::new();
    sinks.push(&mut csv);
    sinks.push(&mut ops);

    let manifest = generator.session()?.with_ops(true).run_into(&mut sinks)?;

    let log = String::from_utf8(ops.into_inner())?;
    let total = manifest.tables["$ops"].total;
    println!("snapshot -> {}", out.display());
    println!("op log: {total} operations\n");
    println!("first ops:");
    for line in log.lines().take(10) {
        println!("  {line}");
    }

    // The log is non-decreasing in timestamp: ISO dates sort textually.
    let mut prev = String::new();
    for line in log.lines().skip(1) {
        let ts = line.split(',').nth(1).expect("ts column").to_owned();
        assert!(ts >= prev, "op log out of order: {ts} after {prev}");
        prev = ts;
    }
    println!("\nordering verified: {total} ops, non-decreasing timestamps");
    Ok(())
}
