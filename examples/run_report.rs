//! Observability end to end: generate the paper's social network with a
//! metrics registry attached, then print the structured [`RunReport`] —
//! per-task phase timings, per-table rows/bytes/hashes — plus its
//! Prometheus text rendering.
//!
//! ```sh
//! cargo run --release --example run_report
//! ```

use std::sync::Arc;

use datasynth::prelude::*;

const SCHEMA: &str = r#"
graph social {
  node Person [count = 5000] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    name: text = first_names() given (country, sex);
    creationDate: date = date_between("2010-01-01", "2013-01-01");
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person [many_to_many] {
    structure = lfr(avg_degree = 12, max_degree = 40, mixing = 0.1);
    correlate country with homophily(0.8);
    creationDate: date = date_after(60) given (source.creationDate, target.creationDate);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "zipf", alpha = 2.0);
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::env::temp_dir().join("datasynth-run-report");
    let _ = std::fs::remove_dir_all(&out);

    // One registry shared by the scheduler and the sink: the scheduler
    // records task counters/histograms, the sink per-table bytes/rows.
    let metrics = Arc::new(MetricsRegistry::new());
    let generator = DataSynth::from_dsl(SCHEMA)?.with_seed(42);
    let mut sink = CsvSink::new(&out).with_metrics(Arc::clone(&metrics));

    let report = generator
        .session()?
        .with_metrics(Arc::clone(&metrics))
        .on_task(|p| {
            if p.phase == TaskPhase::Finished {
                eprintln!(
                    "[{:>2}/{}] {}: {} rows in {:.2?}",
                    p.index + 1,
                    p.total,
                    p.task,
                    p.rows.unwrap_or(0),
                    p.elapsed.unwrap_or_default()
                );
            }
        })
        .run_into(&mut sink)?;

    println!(
        "\n{} rows / {} bytes in {:.2?} ({} workers, {:.0}% occupancy)\n",
        report.total_rows(),
        report.total_bytes(),
        report.wall,
        report.workers,
        report.worker_occupancy() * 100.0
    );

    println!("--- run report (JSON) ---");
    println!("{}", report.to_json());

    println!("--- run report (Prometheus text exposition) ---");
    println!("{}", report.to_prometheus());

    std::fs::remove_dir_all(&out)?;
    Ok(())
}
