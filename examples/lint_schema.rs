//! Static analysis from the library: lint a schema, render diagnostics,
//! and extend the linter with a project-specific rule.
//!
//! ```sh
//! cargo run --release --example lint_schema
//! ```

use datasynth::lint::{render_text, Diagnostic, LintContext, LintRule, Linter, Severity};
use datasynth::schema::parse_schema;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // This schema parses fine but cannot work: preferential attachment
    // with m = 6000 needs more than the 5000 nodes that exist, the
    // structure pins sharded runs to one shard, and `Mystery` is never
    // emitted or referenced.
    let dsl = r#"
graph demo {
  node Person [count = 5000] {
    age: long = uniform(0, 90);
  }
  node Mystery [count = 10] {
  }
  edge knows: Person -- Person [many_to_many] {
    structure = barabasi_albert(m = 6000);
  }
}
"#;

    let schema = parse_schema(dsl)?;

    // One call runs every built-in rule — the same set the CLI
    // (`datasynth lint`) and the HTTP server (422 responses) use.
    let report = datasynth::lint::lint(&schema);
    println!("--- rustc-style text ---");
    print!("{}", render_text(&report, Some("demo.dsl"), Some(dsl)));

    // The JSON form is deterministic and byte-identical to what
    // `datasynth lint --format json` prints and the server returns.
    println!("\n--- machine-readable JSON ---");
    println!("{}", report.to_json());

    // Severities gate differently: errors reject the schema outright,
    // warnings only fail under `--deny warnings` (or `fails(true)` here).
    println!("\nerrors: {}", report.count(Severity::Error));
    println!("fails --deny warnings: {}", report.fails(true));

    // The rule set is open: register a project policy next to the
    // built-ins. This one insists every node type declares a count.
    struct RequireCounts;
    impl LintRule for RequireCounts {
        fn name(&self) -> &'static str {
            "require-counts"
        }
        fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
            for node in &ctx.schema.nodes {
                if node.count.is_none() {
                    out.push(Diagnostic::new(
                        "DS100",
                        Severity::Warning,
                        node.span,
                        format!("node {}", node.name),
                        format!("node type {} has no explicit count", node.name),
                    ));
                }
            }
        }
    }

    let uncounted = parse_schema(
        "graph g { node A { x: long = uniform(0, 9); } \
         edge e: A -- A [many_to_many] { structure = erdos_renyi(p = 0.1); } }",
    )?;
    let mut linter = Linter::builtin();
    linter.register(Box::new(RequireCounts));
    let report = linter.run(&uncounted);
    println!("\n--- with a custom rule ({:?}) ---", linter.rule_names());
    print!("{}", render_text(&report, None, None));
    Ok(())
}
