//! A user-defined structure generator, registered through the public API
//! and driven end-to-end: schema (builder *and* DSL frontends), custom
//! `ring_lattice` generator, generation, CSV export. No edits inside
//! `crates/structure` or `crates/props` — the open registries carry the
//! extension.
//!
//! ```sh
//! cargo run --release --example custom_generator
//! ```

use datasynth::prelude::*;
use datasynth::schema::builder::{long, text};
use datasynth::tables::EdgeTable;

/// A k-regular ring lattice: node `i` links to its `k/2` clockwise
/// neighbours (the Watts–Strogatz substrate with no rewiring). Nothing in
/// the datasynth crates knows this type; it only has to implement
/// [`StructureGenerator`].
struct RingLattice {
    k: u64,
}

impl StructureGenerator for RingLattice {
    fn name(&self) -> &'static str {
        "ring_lattice"
    }

    fn run(&self, n: u64, _rng: &mut datasynth::prng::SplitMix64) -> EdgeTable {
        let half = self.k / 2;
        let mut et = EdgeTable::with_capacity("ring_lattice", (n * half) as usize);
        if n > 1 {
            for i in 0..n {
                for j in 1..=half {
                    et.push(i, (i + j) % n);
                }
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        num_edges / (self.k / 2).max(1)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scalable: true,
            ..Capabilities::default()
        }
    }
}

/// Constructor closure the registry calls for `ring_lattice(...)` specs.
fn build_ring(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("ring_lattice");
    let k = r.u64_or("k", 2);
    if k < 2 || k % 2 == 1 {
        return Err(r.bad("k", "must be even and >= 2"));
    }
    Ok(Box::new(RingLattice { k }))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Frontend 1: a programmatic schema referencing the custom name.
    let schema = Schema::build("ring_demo")
        .node("Server", |n| {
            n.count(500)
                .property("id", long().counter())
                .property("region", text().dictionary("countries"))
        })
        .edge("links", "Server", "Server", |e| {
            e.structure("ring_lattice", |s| s.num("k", 4.0))
        })
        .finish()?;

    let generator = DataSynth::new(schema)?
        .with_seed(7)
        .register_structure("ring_lattice", build_ring);

    let graph = generator.generate()?;
    let links = graph.edges("links").expect("generated");
    println!(
        "generated {} servers, {} ring edges",
        graph.node_count("Server").unwrap(),
        links.len()
    );
    assert_eq!(links.len(), 1000, "500 nodes x k/2 = 2 edges each");

    // Export streams through the same session API as any builtin.
    let out = std::env::temp_dir().join("datasynth-custom-generator");
    let mut sink = CsvSink::new(&out);
    generator.session()?.run_into(&mut sink)?;
    println!("exported CSV tables to {}", out.display());

    // Frontend 2: the DSL resolves the same registered name — user
    // generators are first-class in `structure = ...` clauses too.
    let dsl = r#"graph ring_dsl {
      node Peer [count = 64] { id: long = counter(); }
      edge ring: Peer -- Peer [many_to_many] { structure = ring_lattice(k = 6); }
    }"#;
    let from_dsl = DataSynth::from_dsl(dsl)?
        .with_seed(7)
        .register_structure("ring_lattice", build_ring)
        .generate()?;
    println!(
        "DSL frontend: {} peers, {} ring edges",
        from_dsl.node_count("Peer").unwrap(),
        from_dsl.edges("ring").unwrap().len()
    );
    assert_eq!(from_dsl.edges("ring").unwrap().len(), 64 * 3);

    // Bad parameters surface through the registry's uniform errors.
    let err = DataSynth::from_dsl(
        "graph g { node A [count = 4] { id: long = counter(); } \
         edge e: A -- A { structure = ring_lattice(k = 3); } }",
    )?
    .register_structure("ring_lattice", build_ring)
    .generate()
    .unwrap_err();
    println!("odd k rejected as expected: {err}");
    Ok(())
}
