//! Sharded (distributed) generation: run three shards of one generation
//! through the public API, verify that concatenating their exports is
//! byte-identical to a full run, and fuse the shard manifests.
//!
//! Each `Session::shard(i, k)` call is independent — in production the
//! three runs below would execute on three different machines, each
//! writing its own directory, and only the tiny manifests travel.
//!
//! ```sh
//! cargo run --release --example sharded_export
//! ```

use std::fs;

use datasynth::prelude::*;

const DSL: &str = r#"
graph payments {
  node Account [count = 4000] {
    country: text = dictionary("countries");
    balance: double = normal(1000, 250);
  }
  edge transfers: Account -- Account {
    structure = rmat(edge_factor = 8);
    amount: double = uniform_double(1, 5000);
  }
  edge refers: Account -- Account {
    structure = barabasi_albert(m = 2);
  }
}
"#;

const K: u64 = 3;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let base = std::env::temp_dir().join("datasynth-sharded-export");
    let _ = fs::remove_dir_all(&base);
    let generator = DataSynth::from_dsl(DSL)?.with_seed(7);

    // Inspect the shard plan: which tasks slice, which recompute.
    println!("shard 0/{K} plan:");
    for t in &generator.shard_plan(0, K)?.tasks {
        println!("  {} ({:?})", t.task, t.mode);
    }

    // Run every shard (on one machine here; anywhere in reality). Each
    // run returns its completed manifest: row windows + content hashes.
    let mut manifests = Vec::new();
    let mut shard_dirs = Vec::new();
    for i in 0..K {
        let dir = base.join(format!("shard-{i}-of-{K}"));
        let mut sink = CsvSink::new(&dir);
        let manifest = generator
            .session()?
            .shard(i, K)?
            .run_into(&mut sink)?
            .into_manifest();
        println!(
            "shard {i}/{K}: transfers rows {}..{} of {}",
            manifest.tables["transfers"].lo,
            manifest.tables["transfers"].hi,
            manifest.tables["transfers"].total,
        );
        manifest.save(&dir)?;
        manifests.push(manifest);
        shard_dirs.push(dir);
    }

    // Fuse the manifests: validates coverage and ordering, sums hashes.
    let merged = SinkManifest::merge(&manifests)?;
    println!(
        "merged manifest: {} tables, content hash {:016x}",
        merged.tables.len(),
        merged.content_hash()
    );

    // Prove the contract: concatenating the shards' files in shard order
    // is byte-identical to one full run.
    let full_dir = base.join("full");
    let mut sink = CsvSink::new(&full_dir);
    let full_manifest = generator.session()?.run_into(&mut sink)?.into_manifest();
    assert_eq!(merged, full_manifest, "merged == single-run manifest");

    for table in merged.tables.keys() {
        let file = format!("{table}.csv");
        let mut concat = Vec::new();
        for dir in &shard_dirs {
            concat.extend(fs::read(dir.join(&file))?);
        }
        let full = fs::read(full_dir.join(&file))?;
        assert_eq!(concat, full, "{file} must concatenate byte-identically");
        println!(
            "{file}: concat of {K} shards == full run ({} bytes)",
            full.len()
        );
    }

    println!("\nshard outputs under {}", base.display());
    Ok(())
}
