//! The paper's running example (Figure 1): a social network with Persons
//! and Messages, `knows` and `creates` edges, correlated properties and a
//! property–structure correlation on `country`.
//!
//! After generation, every constraint stated in Figure 1 is verified:
//!
//! * `Person.country` follows a real-life-like distribution,
//! * `Person.name` is correlated with `sex` and `country`,
//! * `knows.creationDate` exceeds both endpoints' `creationDate`s,
//! * `creates` out-degree is long-tailed; `#Messages` is *inferred*,
//! * countries of `knows`-connected pairs follow the requested homophilous
//!   `P'(X,Y)`.
//!
//! The `temporal { ... }` blocks on `Person` and `knows` additionally make
//! the schema a *dynamic* graph: the same seed also yields a deterministic
//! update stream (see `examples/update_stream.rs`).
//!
//! ```sh
//! cargo run --release --example social_network
//! ```

use std::collections::BTreeMap;

use datasynth::matching::evaluate::empirical_jpd;
use datasynth::prelude::*;

const SCHEMA: &str = r#"
graph social {
  node Person [count = 20000] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    name: text = first_names() given (country, sex);
    interest: text = dictionary("topics");
    creationDate: date = date_between("2010-01-01", "2013-01-01");
    temporal { arrival = date_between("2010-01-01", "2013-01-01"); }
  }
  node Message {
    topic: text = dictionary("topics");
    text: text = sentence_about(5, 20) given (topic);
  }
  edge knows: Person -- Person [many_to_many] {
    structure = lfr(avg_degree = 20, max_degree = 50, mixing = 0.1);
    correlate country with homophily(0.8);
    creationDate: date = date_after(60) given (source.creationDate, target.creationDate);
    temporal {
      arrival = date_between("2010-06-01", "2013-01-01");
      lifetime = uniform(30, 365);
    }
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "zipf", exponent = 1.6, max = 50);
    creationDate: date = date_after(1000) given (source.creationDate);
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = DataSynth::from_dsl(SCHEMA)?.with_seed(2017).generate()?;

    println!("== running example (paper Figure 1) ==");
    println!(
        "Persons: {}   Messages (inferred): {}   knows: {}   creates: {}",
        graph.node_count("Person").unwrap(),
        graph.node_count("Message").unwrap(),
        graph.edges("knows").unwrap().len(),
        graph.edges("creates").unwrap().len(),
    );

    // 1. Country distribution mirrors the weighted dictionary.
    let country = graph.node_property("Person", "country").unwrap();
    let mut by_country: BTreeMap<String, u64> = BTreeMap::new();
    for v in country.iter() {
        *by_country.entry(v.render()).or_insert(0) += 1;
    }
    let mut top: Vec<(&String, &u64)> = by_country.iter().collect();
    top.sort_by(|a, b| b.1.cmp(a.1));
    println!("\ntop countries:");
    for (c, n) in top.iter().take(5) {
        println!("  {c:<15} {n}");
    }

    // 2. knows.creationDate > both endpoint creationDates — check all.
    let knows = graph.edges("knows").unwrap();
    let p_date = graph.node_property("Person", "creationDate").unwrap();
    let k_date = graph.edge_property("knows", "creationDate").unwrap();
    let violations = (0..knows.len())
        .filter(|&i| {
            let (t, h) = knows.edge(i);
            let bound = p_date
                .value(t)
                .unwrap()
                .as_long()
                .unwrap()
                .max(p_date.value(h).unwrap().as_long().unwrap());
            k_date.value(i).unwrap().as_long().unwrap() <= bound
        })
        .count();
    println!("\nknows.creationDate violations: {violations} (must be 0)");
    assert_eq!(violations, 0);

    // 3. creates degree distribution is long-tailed.
    let creates = graph.edges("creates").unwrap();
    let out_deg = creates.out_degrees(graph.node_count("Person").unwrap());
    let max_deg = out_deg.iter().max().copied().unwrap_or(0);
    let zero = out_deg.iter().filter(|&&d| d == 0).count();
    println!("creates out-degree: max {max_deg}, {zero} silent users");

    // 4. Property–structure correlation: empirical P'(X,Y) vs target.
    let freqs = country.value_frequencies();
    let index: BTreeMap<String, u32> = freqs
        .iter()
        .enumerate()
        .map(|(i, (v, _))| (v.render(), i as u32))
        .collect();
    let labels: Vec<u32> = country.iter().map(|v| index[&v.render()]).collect();
    let observed = empirical_jpd(&labels, knows, freqs.len());
    let independent: f64 = {
        let total: f64 = freqs.iter().map(|(_, c)| *c as f64).sum();
        freqs.iter().map(|(_, c)| (*c as f64 / total).powi(2)).sum()
    };
    println!(
        "\nP'(same country on a knows edge) = {:.3}  (target 0.8, independent {:.3})",
        observed.diagonal_mass(),
        independent
    );
    assert!(observed.diagonal_mass() > 3.0 * independent);

    // Export both formats.
    let out = std::env::temp_dir().join("datasynth-social");
    CsvExporter.export(&graph, &out)?;
    JsonlExporter.export(&graph, &out)?;
    println!("\nexported to {}", out.display());
    Ok(())
}
