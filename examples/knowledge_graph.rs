//! A domain-specific scenario beyond social networks: a product knowledge
//! graph for recommender benchmarking — users, products, categories;
//! purchases with dates after signup; a product similarity graph built by
//! BTER with tunable clustering.
//!
//! Demonstrates: multiple 1→* chains (count inference through two hops),
//! zipf-popularity properties, BTER structure, and programmatic (non-DSL)
//! post-analysis.
//!
//! ```sh
//! cargo run --release --example knowledge_graph
//! ```

use datasynth::analysis::{average_clustering, DegreeStats};
use datasynth::prelude::*;
use datasynth::prng::SplitMix64;
use datasynth::tables::Csr;

const SCHEMA: &str = r#"
graph shop {
  node User [count = 8000] {
    country: text = dictionary("countries");
    signupDate: date = date_between("2018-01-01", "2024-06-01");
    tier: text = categorical("free": 0.7, "plus": 0.25, "pro": 0.05);
  }
  node Product [count = 3000] {
    popularity: long = zipf(1.4, 1000);
    price: double = uniform_double(0.99, 499.0);
    listedDate: date = date_between("2015-01-01", "2024-01-01");
  }
  node Order {
    discounted: bool = bool(0.3);
  }
  edge places: User -> Order [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.25);
    orderDate: date = date_after(2000) given (source.signupDate);
  }
  edge similar: Product -- Product [many_to_many] {
    structure = bter(dist = "power_law", exponent = 2.0, min = 2, max = 40, cc = 0.35);
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let graph = DataSynth::from_dsl(SCHEMA)?.with_seed(99).generate()?;

    println!("== product knowledge graph ==");
    for (t, c) in graph.node_types() {
        println!("  {t:<8} {c} instances");
    }

    // Orders were inferred from the `places` structure.
    let orders = graph.node_count("Order").unwrap();
    let places = graph.edges("places").unwrap();
    assert_eq!(orders, places.len());
    println!(
        "\n{} orders inferred from the places edge (avg {:.2} per user)",
        orders,
        orders as f64 / graph.node_count("User").unwrap() as f64
    );

    // Order dates always follow signup.
    let signup = graph.node_property("User", "signupDate").unwrap();
    let order_date = graph.edge_property("places", "orderDate").unwrap();
    let bad = (0..places.len())
        .filter(|&i| {
            let u = places.tail(i);
            order_date.value(i).unwrap().as_long().unwrap()
                <= signup.value(u).unwrap().as_long().unwrap()
        })
        .count();
    println!("orders dated before signup: {bad} (must be 0)");
    assert_eq!(bad, 0);

    // The similarity graph has the clustering BTER was asked for.
    let similar = graph.edges("similar").unwrap();
    let n_products = graph.node_count("Product").unwrap();
    let stats = DegreeStats::from_degrees(&similar.degrees(n_products)).unwrap();
    let mut csr = Csr::undirected(similar, n_products);
    csr.sort_neighborhoods();
    let mut rng = SplitMix64::new(1);
    let cc = average_clustering(&csr, 1500, &mut rng);
    println!(
        "\nproduct similarity graph: {} edges, mean degree {:.1}, clustering {:.3} (target 0.35)",
        similar.len(),
        stats.mean,
        cc
    );
    assert!(cc > 0.1, "clustering should be well above an ER baseline");

    // Price and popularity exist for downstream recommender features.
    let pop = graph.node_property("Product", "popularity").unwrap();
    let rank1 = pop.iter().filter(|v| v.as_long() == Some(1)).count();
    println!("products at popularity rank 1: {rank1} (zipf head)");

    Ok(())
}
