//! A miniature of the paper's matching experiment, end to end, printing an
//! ASCII rendering of the Figure 3 CDF plot for one configuration.
//!
//! Protocol (§4.2): generate an LFR graph, fabricate ground-truth groups by
//! LDG with geometric sizes, measure the resulting `P(X,Y)`, then ask
//! SBM-Part to re-match a fresh property table against that target and
//! compare expected vs observed CDFs.
//!
//! ```sh
//! cargo run --release --example cdf_matching
//! ```

use datasynth::matching::evaluate::{compare_jpds, empirical_jpd, geometric_group_sizes};
use datasynth::matching::{ldg_partition, sbm_part, MatchInput};
use datasynth::prng::SplitMix64;
use datasynth::structure::{LfrGenerator, StructureGenerator};
use datasynth::tables::Csr;

fn main() {
    let n: u64 = 20_000;
    let k = 16usize;
    let seed = 7u64;

    println!("LFR({n}, k={k}) matching experiment\n");

    // 1. Structure.
    let lfr = LfrGenerator::paper_defaults();
    let mut rng = SplitMix64::new(seed);
    let edges = lfr.run(n, &mut rng);
    let csr = Csr::undirected(&edges, n);
    println!("graph: {} edges", edges.len());

    // 2. Ground-truth groups via LDG with geometric sizes.
    let sizes = geometric_group_sizes(n, k, 0.4);
    let mut order: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed ^ 1).shuffle(&mut order);
    let truth = ldg_partition(&csr, &sizes, &order);
    let target = empirical_jpd(&truth, &edges, k);

    // 3. SBM-Part re-match from scratch, random stream order.
    let mut order2: Vec<u64> = (0..n).collect();
    SplitMix64::new(seed ^ 2).shuffle(&mut order2);
    let result = sbm_part(
        &MatchInput {
            group_sizes: &sizes,
            jpd: &target,
            csr: &csr,
            num_edges: edges.len(),
        },
        &order2,
    );
    let observed = empirical_jpd(&result.group_of, &edges, k);

    // 4. Compare, Figure-3 style.
    let cmp = compare_jpds(&target, &observed);
    println!(
        "L1 = {:.4}   KS = {:.4}   Hellinger = {:.4}",
        cmp.l1, cmp.ks, cmp.hellinger
    );
    println!(
        "diagonal mass: expected {:.3}, observed {:.3}\n",
        cmp.expected_diagonal, cmp.observed_diagonal
    );

    // ASCII CDF plot: 60 columns over the sorted pairs, two curves.
    let width = 60usize;
    let height = 20usize;
    let m = cmp.pairs.len();
    let mut canvas = vec![vec![' '; width]; height];
    for col in 0..width {
        let idx = (col * (m - 1)) / (width - 1);
        let e_row = ((1.0 - cmp.expected_cdf[idx]) * (height - 1) as f64).round() as usize;
        let o_row = ((1.0 - cmp.observed_cdf[idx]) * (height - 1) as f64).round() as usize;
        canvas[o_row.min(height - 1)][col] = 'o';
        let cell = &mut canvas[e_row.min(height - 1)][col];
        *cell = if *cell == 'o' { '*' } else { 'e' };
    }
    println!(
        "CDF over value pairs, sorted by expected mass (e = expected, o = observed, * = both)"
    );
    for row in canvas {
        let line: String = row.into_iter().collect();
        println!("|{line}");
    }
    println!("+{}", "-".repeat(width));
}
