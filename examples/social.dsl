graph social {
  node Person [count = 5000] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    name: text = first_names() given (country, sex);
    creationDate: date = date_between("2010-01-01", "2013-01-01");
    temporal { arrival = date_between("2010-01-01", "2013-01-01"); }
  }
  node Message {
    topic: text = dictionary("topics");
    text: text = sentence_about(5, 12) given (topic);
  }
  edge knows: Person -- Person [many_to_many] {
    structure = erdos_renyi(p = 0.002);
    correlate country with homophily(0.8);
    creationDate: date = date_after(30) given (source.creationDate, target.creationDate);
    temporal {
      arrival = date_between("2010-06-01", "2013-01-01");
      lifetime = uniform(30, 365);
    }
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "zipf", exponent = 1.5, max = 40);
  }
}
