//! A complete client for `datasynth serve`, on nothing but `std::net`:
//! register a schema over `POST /graphs`, then pull one table as a
//! chunked stream and write its bytes to stdout — which makes the
//! determinism contract scriptable:
//!
//! ```sh
//! datasynth serve --addr 127.0.0.1:8840 &
//! cargo run --release --example http_client -- \
//!     127.0.0.1:8840 examples/social.dsl knows.csv 42 > knows.csv
//! datasynth examples/social.dsl --seed 42 --out ref --format csv
//! diff knows.csv ref/knows.csv        # byte-identical, always
//! ```
//!
//! Arguments: `ADDR SCHEMA.dsl TABLE.{csv|jsonl} [SEED] [SHARD I/K]`.
//! Progress goes to stderr, table bytes to stdout.

use std::io::{self, BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (addr, schema_path, table) = match args.as_slice() {
        [a, s, t, ..] => (a.as_str(), s.as_str(), t.as_str()),
        _ => {
            eprintln!("usage: http_client ADDR SCHEMA.dsl TABLE.{{csv|jsonl}} [SEED] [SHARD]");
            return ExitCode::FAILURE;
        }
    };
    let seed = args.get(3).map(String::as_str).unwrap_or("42");
    let shard = args.get(4).map(String::as_str);

    match run(addr, schema_path, table, seed, shard) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("http_client: {e}");
            ExitCode::FAILURE
        }
    }
}

fn run(
    addr: &str,
    schema_path: &str,
    table: &str,
    seed: &str,
    shard: Option<&str>,
) -> io::Result<()> {
    let dsl = std::fs::read_to_string(schema_path)?;

    // 1. Register the schema; the response carries its hash. Re-running
    //    against a live server answers from the cache ("cached":true) —
    //    parsing and planning happen once per schema, not per client.
    let response = request(
        addr,
        &format!(
            "POST /graphs HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\
             Content-Length: {}\r\n\r\n{dsl}",
            dsl.len()
        ),
    )?;
    let (status, body) = split_response(&response)?;
    if status != 200 && status != 201 {
        return Err(other(format!("register failed ({status}): {body}")));
    }
    let hash = body
        .split("\"hash\":\"")
        .nth(1)
        .and_then(|rest| rest.split('"').next())
        .ok_or_else(|| other(format!("no hash in register response: {body}")))?
        .to_owned();
    eprintln!("registered {schema_path} as graph {hash} ({})", {
        if body.contains("\"cached\":true") {
            "cache hit"
        } else {
            "parsed and planned"
        }
    });

    // 2. Stream the table. The body arrives chunked; decode the frames
    //    and forward the payload bytes verbatim.
    let shard_query = shard.map(|s| format!("&shard={s}")).unwrap_or_default();
    let target = format!("/graphs/{hash}/tables/{table}?seed={seed}{shard_query}");
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    writer.write_all(
        format!("GET {target} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n").as_bytes(),
    )?;
    writer.flush()?;

    let mut line = String::new();
    reader.read_line(&mut line)?;
    let status = status_of(&line)?;
    let mut chunked = false;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header)?;
        if header.trim_end().is_empty() {
            break;
        }
        if header.to_ascii_lowercase().trim_end() == "transfer-encoding: chunked" {
            chunked = true;
        }
    }
    if status != 200 {
        let mut body = String::new();
        reader.read_to_string(&mut body)?;
        return Err(other(format!("stream failed ({status}): {body}")));
    }
    if !chunked {
        return Err(other("expected a chunked response"));
    }

    let stdout = io::stdout();
    let mut out = stdout.lock();
    let mut total: u64 = 0;
    loop {
        let mut size_line = String::new();
        reader.read_line(&mut size_line)?;
        let size = usize::from_str_radix(size_line.trim(), 16)
            .map_err(|_| other(format!("bad chunk size {size_line:?}")))?;
        if size == 0 {
            break;
        }
        let mut chunk = vec![0u8; size];
        reader.read_exact(&mut chunk)?;
        let mut crlf = [0u8; 2];
        reader.read_exact(&mut crlf)?;
        out.write_all(&chunk)?;
        total += size as u64;
    }
    out.flush()?;
    eprintln!("streamed {table} seed={seed}{shard_query}: {total} bytes");
    Ok(())
}

/// One request/response round trip on a fresh connection.
fn request(addr: &str, raw: &str) -> io::Result<String> {
    let mut stream = TcpStream::connect(addr)?;
    stream.write_all(raw.as_bytes())?;
    stream.flush()?;
    let mut response = String::new();
    stream.read_to_string(&mut response)?;
    Ok(response)
}

fn status_of(status_line: &str) -> io::Result<u16> {
    status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| other(format!("bad status line {status_line:?}")))
}

fn split_response(response: &str) -> io::Result<(u16, &str)> {
    let status = status_of(response.lines().next().unwrap_or(""))?;
    let body = response
        .split_once("\r\n\r\n")
        .map(|(_, b)| b)
        .unwrap_or("");
    Ok((status, body))
}

fn other(msg: impl Into<String>) -> io::Error {
    io::Error::other(msg.into())
}
