//! The embedded engine end to end via the public API: generate a graph
//! straight into the query-ready store, derive and curate its workload,
//! execute the mix, and print per-template throughput — the same path
//! `datasynth bench-workload` drives from the command line.
//!
//! ```sh
//! cargo run --release --example bench_workload
//! ```

use std::sync::Arc;

use datasynth::prelude::*;

const SCHEMA: &str = r#"
graph social {
  node Person [count = 5000] {
    country: text = dictionary("countries");
    age: long = uniform(18, 90);
    temporal {
      arrival = date_between("2018-01-01", "2022-01-01");
      lifetime = uniform(90, 900);
    }
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person [many_to_many] {
    structure = erdos_renyi(p = 0.003);
    correlate country with homophily(0.8);
    temporal {
      arrival = date_between("2018-01-01", "2022-01-01");
    }
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "zipf", alpha = 2.0);
  }
}
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let schema = parse_schema(SCHEMA)?;

    // The harness generates into a StoreSink, builds the indexed store,
    // curates 64 queries over the derived templates, and measures 20
    // rounds after 2 warmups. Per-query latency lands in the registry as
    // `datasynth_engine_query_micros{template=...}` histograms.
    let metrics = Arc::new(MetricsRegistry::new());
    let report = Bench::new(&schema)
        .with_seed(42)
        .with_queries(64)
        .with_warmup(2)
        .with_iters(20)
        .with_metrics(Arc::clone(&metrics))
        .run()?;

    println!(
        "loaded {} nodes, {} edges (~{} KiB) in {:.1} ms + {:.1} ms index build",
        report.nodes,
        report.edges,
        report.memory_bytes / 1024,
        report.load_micros as f64 / 1e3,
        report.store_build_micros as f64 / 1e3,
    );
    for t in &report.templates {
        println!(
            "{:<34} {:>10.0} ops/s  p50 {:>5}us p99 {:>5}us  rows {} (expected {})",
            t.id, t.ops_per_sec, t.p50_micros, t.p99_micros, t.rows, t.expected_rows
        );
    }
    assert!(
        report.all_in_band(),
        "counts must sit in their curated bands"
    );

    // The stable half of the report — everything except wall-clock-derived
    // fields — is byte-identical for reruns of the same schema + seed at
    // any thread count; CI diffs it.
    println!("\n--- bench report (stable JSON) ---");
    println!("{}", report.to_json_stable());
    Ok(())
}
