graph mixed {
  node Person [count = 100] {
    country: text = dictionarry("countries");
    born: date = normal(0, 10);
  }
  node Orphan [count = 5] {
  }
  edge knows: Person -- Person [many_to_many] {
    structure = lfr(avg_degree = 10, max_degree = 30, mixing = 0.1);
    temporal {
      arrival = date_between("2020-01-01", "2021-01-01");
    }
  }
}
