graph g {
  node Person [count = 5000] {
    age: long = uniform(0, 90);
  }
  edge knows: Person -- Person [many_to_many] {
    structure = barabasi_albert(m = 6000);
  }
}
