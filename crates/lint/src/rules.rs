//! The built-in lint rules (`DS001`–`DS008`).
//!
//! Rules are deliberately small, independent functions behind the
//! [`LintRule`] trait so downstream users can register their own checks
//! next to the shipped set. Each rule reads a [`LintContext`] — the
//! parsed schema plus (when dependency analysis succeeds) the execution
//! plan, shard modes, and emission schedule — and appends
//! [`Diagnostic`]s.

use std::collections::BTreeMap;

use datasynth_core::{Analysis, Artifact, CountSource, Task};
use datasynth_props::PropertyRegistry;
use datasynth_schema::{Cardinality, EdgeType, GeneratorSpec, Schema, SpecArg};
use datasynth_structure::StructureRegistry;
use datasynth_tables::suggest::closest_match;
use datasynth_tables::ValueType;

use crate::diagnostic::{Diagnostic, Severity};

/// Everything a rule may look at. `analysis`/`schedule` are `None` when
/// dependency analysis itself failed (that failure is reported as a
/// `DS001` by the [`Linter`](crate::Linter), so plan-level rules can
/// simply skip).
pub struct LintContext<'a> {
    /// The validated schema under analysis.
    pub schema: &'a Schema,
    /// Dependency analysis (plan, count sources), when it succeeded.
    pub analysis: Option<&'a Analysis>,
    /// Per-task last-use artifact slots, when analysis succeeded.
    pub schedule: Option<&'a [Vec<Artifact>]>,
}

/// One static check over a schema/plan.
pub trait LintRule {
    /// Stable rule name (diagnostics carry codes; this names the rule).
    fn name(&self) -> &'static str;
    /// Append findings for `ctx` to `out`.
    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>);
}

/// The shipped rule set, in registration order (output order is
/// canonicalized later, so registration order never shows).
pub fn builtin_rules() -> Vec<Box<dyn LintRule>> {
    vec![
        Box::new(UnsatisfiableCardinality),
        Box::new(DistributionDomain),
        Box::new(UnknownGenerator),
        Box::new(DeadTable),
        Box::new(ShardHostileStructure),
        Box::new(TemporalOpLogExclusion),
        Box::new(PeakMemoryEstimate),
        Box::new(WorkloadCoverage),
    ]
}

/// Structure generators whose DSL aliases resolve to another registry
/// name; lint reasons about the canonical name.
fn canonical_structure(name: &str) -> &str {
    match name {
        "gnp" => "erdos_renyi",
        "ba" => "barabasi_albert",
        "ws" => "watts_strogatz",
        "configuration_model" => "degree_sequence",
        other => other,
    }
}

/// First positional numeric argument at `idx`, if any.
fn positional_num(spec: &GeneratorSpec, idx: usize) -> Option<f64> {
    match spec.args.get(idx)? {
        SpecArg::Num(v) => Some(*v),
        SpecArg::Int(v) => Some(*v as f64),
        _ => None,
    }
}

/// Degree distributions understood by `one_to_many`, `degree_sequence`,
/// `bter` and `darwini` (see `degree_dist_from` in the structure crate).
const DEGREE_DISTS: &[&str] = &["constant", "uniform", "zipf", "power_law", "geometric"];

/// Structure generators that take a `dist = "..."` degree distribution.
const DEGREE_DIST_USERS: &[&str] = &["one_to_many", "degree_sequence", "bter", "darwini"];

/// `DS001`: sizing that can never be satisfied — the run is guaranteed to
/// fail (or silently violate the declared cardinality).
pub struct UnsatisfiableCardinality;

impl LintRule for UnsatisfiableCardinality {
    fn name(&self) -> &'static str {
        "unsatisfiable-cardinality"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for edge in &ctx.schema.edges {
            let source_count = ctx.schema.node_type(&edge.source).and_then(|n| n.count);
            let target_count = ctx.schema.node_type(&edge.target).and_then(|n| n.count);
            let Some(spec) = &edge.structure else {
                continue;
            };
            let name = canonical_structure(&spec.name);

            // barabasi_albert attaches each new vertex to m existing ones:
            // impossible unless m < n.
            if name == "barabasi_albert" {
                let m = spec.named_num("m").unwrap_or(3.0);
                if let Some(n) = source_count {
                    if m >= n as f64 {
                        out.push(
                            Diagnostic::new(
                                "DS001",
                                Severity::Error,
                                spec.span,
                                format!("edge {}", edge.name),
                                format!(
                                    "barabasi_albert requires m < n, but m = {m} and \
                                     {} has [count = {n}]",
                                    edge.source
                                ),
                            )
                            .with_help(format!("reduce m below {n} or raise the node count")),
                        );
                    }
                }
            }

            // sbm generates exactly groups x group_size vertices; an
            // explicit source count that disagrees cannot be honored.
            if name == "sbm" {
                let groups = spec.named_num("groups").unwrap_or(4.0).max(1.0);
                let group_size = spec.named_num("group_size").unwrap_or(100.0).max(1.0);
                let total = groups * group_size;
                if let Some(n) = source_count {
                    if total != n as f64 {
                        out.push(
                            Diagnostic::new(
                                "DS001",
                                Severity::Error,
                                spec.span,
                                format!("edge {}", edge.name),
                                format!(
                                    "sbm emits exactly groups x group_size = {total} vertices, \
                                     but {} has [count = {n}]",
                                    edge.source
                                ),
                            )
                            .with_help("make groups x group_size equal the node count"),
                        );
                    }
                }
            }

            // A one-to-many edge whose guaranteed minimum fan-out already
            // overflows an explicitly counted target table.
            if edge.cardinality == Cardinality::OneToMany && name == "one_to_many" {
                if let (Some(s), Some(t)) = (source_count, target_count) {
                    let min_fanout = min_degree(spec);
                    let floor = s.saturating_mul(min_fanout);
                    if floor > t {
                        out.push(
                            Diagnostic::new(
                                "DS001",
                                Severity::Error,
                                spec.span,
                                format!("edge {}", edge.name),
                                format!(
                                    "one_to_many fan-out from {s} {} rows is at least \
                                     {floor}, exceeding {} [count = {t}]",
                                    edge.source, edge.target
                                ),
                            )
                            .with_help(
                                "lower the minimum degree, the source count, or drop the \
                                 explicit target count so the structure sizes it",
                            ),
                        );
                    }
                }
            }

            // One-to-one pairs rows off exactly; differing explicit
            // endpoint counts cannot both hold.
            if edge.cardinality == Cardinality::OneToOne {
                if let (Some(s), Some(t)) = (source_count, target_count) {
                    if s != t {
                        out.push(
                            Diagnostic::new(
                                "DS001",
                                Severity::Error,
                                edge.span,
                                format!("edge {}", edge.name),
                                format!(
                                    "one_to_one edge between {} [count = {s}] and {} \
                                     [count = {t}]: counts must match",
                                    edge.source, edge.target
                                ),
                            )
                            .with_help("equalize the counts or drop the target's"),
                        );
                    }
                }
            }
        }
    }
}

/// The guaranteed minimum out-degree of a degree-distribution spec
/// (defaults mirror `degree_dist_from` in the structure crate).
fn min_degree(spec: &GeneratorSpec) -> u64 {
    match spec.named_text("dist").unwrap_or("power_law") {
        "constant" => spec.named_num("k").unwrap_or(1.0) as u64,
        "uniform" => spec.named_num("min").unwrap_or(0.0) as u64,
        "power_law" => (spec.named_num("min").unwrap_or(1.0) as u64).max(1),
        "zipf" => 1,
        // geometric can emit 0.
        _ => 0,
    }
}

/// `DS002`: a distribution whose support does not match the value domain
/// it feeds — negative days into `date` properties, negative lifetimes,
/// unbounded reals into counts. These run, but produce garbage.
pub struct DistributionDomain;

/// Can `spec` produce negative values? (`normal` always; `uniform` /
/// `uniform_double` when their lower bound is.)
fn has_negative_support(spec: &GeneratorSpec) -> bool {
    match spec.name.as_str() {
        "normal" => true,
        "uniform" | "uniform_double" => positional_num(spec, 0).is_some_and(|lo| lo < 0.0),
        _ => false,
    }
}

impl LintRule for DistributionDomain {
    fn name(&self) -> &'static str {
        "distribution-domain"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let props = ctx
            .schema
            .nodes
            .iter()
            .flat_map(|n| n.properties.iter().map(move |p| (n.name.as_str(), p)));
        let edge_props = ctx
            .schema
            .edges
            .iter()
            .flat_map(|e| e.properties.iter().map(move |p| (e.name.as_str(), p)));
        for (owner, prop) in props.chain(edge_props) {
            if prop.value_type == ValueType::Date && has_negative_support(&prop.generator) {
                out.push(
                    Diagnostic::new(
                        "DS002",
                        Severity::Warning,
                        prop.generator.span,
                        format!("{owner}.{}", prop.name),
                        format!(
                            "{} can produce negative values, which a date property \
                             interprets as days before 1970-01-01",
                            prop.generator.name
                        ),
                    )
                    .with_help("use date_between / date_after, or a non-negative distribution"),
                );
            }
        }

        let temporals = ctx
            .schema
            .nodes
            .iter()
            .map(|n| (n.name.as_str(), &n.temporal))
            .chain(
                ctx.schema
                    .edges
                    .iter()
                    .map(|e| (e.name.as_str(), &e.temporal)),
            );
        for (owner, temporal) in temporals {
            let Some(def) = temporal else { continue };
            if let Some(lifetime) = &def.lifetime {
                if has_negative_support(lifetime) {
                    out.push(
                        Diagnostic::new(
                            "DS002",
                            Severity::Warning,
                            lifetime.span,
                            format!("{owner} temporal"),
                            format!(
                                "lifetime {} can draw negative durations; deletes would \
                                 precede inserts",
                                lifetime.name
                            ),
                        )
                        .with_help("use a non-negative lower bound"),
                    );
                }
            }
        }
    }
}

/// `DS003`: a generator (structure, property, temporal, correlation,
/// degree distribution) that no registry knows. At run time this is a
/// `BuildError` deep inside the pipeline; lint surfaces it at the exact
/// declaration, with a near-miss suggestion.
pub struct UnknownGenerator;

fn suggestion_help(suggestion: Option<String>, known: &[&str]) -> String {
    match suggestion {
        Some(s) => format!("did you mean {s:?}?"),
        None => format!("known generators: {}", known.join(", ")),
    }
}

impl LintRule for UnknownGenerator {
    fn name(&self) -> &'static str {
        "unknown-generator"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let structures = StructureRegistry::builtin();
        let mut structure_names = structures.names();
        structure_names.sort_unstable();
        let properties = PropertyRegistry::builtin();
        let mut property_names = properties.names();
        property_names.sort_unstable();

        let unknown_property = |owner: &str, spec: &GeneratorSpec, out: &mut Vec<Diagnostic>| {
            if !properties.contains(&spec.name) {
                out.push(
                    Diagnostic::new(
                        "DS003",
                        Severity::Error,
                        spec.span,
                        owner.to_string(),
                        format!("unknown property generator {:?}", spec.name),
                    )
                    .with_help(suggestion_help(
                        closest_match(&spec.name, property_names.iter().copied()),
                        &property_names,
                    )),
                );
            }
        };

        for node in &ctx.schema.nodes {
            for prop in &node.properties {
                unknown_property(
                    &format!("{}.{}", node.name, prop.name),
                    &prop.generator,
                    out,
                );
            }
            if let Some(def) = &node.temporal {
                unknown_property(&format!("{} temporal", node.name), &def.arrival, out);
                if let Some(lifetime) = &def.lifetime {
                    unknown_property(&format!("{} temporal", node.name), lifetime, out);
                }
            }
        }

        for edge in &ctx.schema.edges {
            for prop in &edge.properties {
                unknown_property(
                    &format!("{}.{}", edge.name, prop.name),
                    &prop.generator,
                    out,
                );
            }
            if let Some(def) = &edge.temporal {
                unknown_property(&format!("{} temporal", edge.name), &def.arrival, out);
                if let Some(lifetime) = &def.lifetime {
                    unknown_property(&format!("{} temporal", edge.name), lifetime, out);
                }
            }
            if let Some(spec) = &edge.structure {
                if !structures.contains(&spec.name) {
                    out.push(
                        Diagnostic::new(
                            "DS003",
                            Severity::Error,
                            spec.span,
                            format!("edge {}", edge.name),
                            format!("unknown structure generator {:?}", spec.name),
                        )
                        .with_help(suggestion_help(
                            closest_match(&spec.name, structure_names.iter().copied()),
                            &structure_names,
                        )),
                    );
                } else if DEGREE_DIST_USERS.contains(&canonical_structure(&spec.name)) {
                    if let Some(dist) = spec.named_text("dist") {
                        if !DEGREE_DISTS.contains(&dist) {
                            out.push(
                                Diagnostic::new(
                                    "DS003",
                                    Severity::Error,
                                    spec.span,
                                    format!("edge {}", edge.name),
                                    format!(
                                        "unknown degree distribution {dist:?} for {}",
                                        spec.name
                                    ),
                                )
                                .with_help(suggestion_help(
                                    closest_match(dist, DEGREE_DISTS.iter().copied()),
                                    DEGREE_DISTS,
                                )),
                            );
                        }
                    }
                }
            }
            if let Some(corr) = &edge.correlation {
                const JPDS: &[&str] = &["homophily", "uniform", "proportional"];
                if !JPDS.contains(&corr.jpd.name.as_str()) {
                    out.push(
                        Diagnostic::new(
                            "DS003",
                            Severity::Error,
                            corr.jpd.span,
                            format!("edge {}", edge.name),
                            format!("unknown correlation target {:?}", corr.jpd.name),
                        )
                        .with_help(suggestion_help(
                            closest_match(&corr.jpd.name, JPDS.iter().copied()),
                            JPDS,
                        )),
                    );
                }
            }
        }
    }
}

/// `DS004`: a node type that yields no artifact at all — no property
/// tables, no temporal stream, and no edge touches it. It costs a count
/// resolution and produces nothing.
pub struct DeadTable;

impl LintRule for DeadTable {
    fn name(&self) -> &'static str {
        "dead-table"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let Some(schedule) = ctx.schedule else { return };
        for node in &ctx.schema.nodes {
            let emits = schedule
                .iter()
                .flatten()
                .any(|a| matches!(a, Artifact::NodeProperty(t, _) if t == &node.name));
            let referenced = ctx
                .schema
                .edges
                .iter()
                .any(|e| e.source == node.name || e.target == node.name);
            if !emits && !referenced && node.temporal.is_none() {
                out.push(
                    Diagnostic::new(
                        "DS004",
                        Severity::Warning,
                        node.span,
                        format!("node {}", node.name),
                        format!(
                            "node type {} produces no tables: it has no properties, no \
                             temporal stream, and no edge references it",
                            node.name
                        ),
                    )
                    .with_help("give it properties or an edge, or delete it"),
                );
            }
        }
    }
}

/// The structure generators that cannot generate an edge chunk in
/// isolation (global preferential attachment / rewiring / community
/// state). Sharded runs must recompute their full edge table on every
/// shard, so cost scales with shards, not down.
const SHARD_HOSTILE: &[&str] = &[
    "barabasi_albert",
    "bter",
    "darwini",
    "lfr",
    "watts_strogatz",
];

/// `DS005`: a shard-hostile structure generator. Fine on a single
/// machine; a scaling trap under `--shard`.
pub struct ShardHostileStructure;

impl LintRule for ShardHostileStructure {
    fn name(&self) -> &'static str {
        "shard-hostile-structure"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for edge in &ctx.schema.edges {
            let Some(spec) = &edge.structure else {
                continue;
            };
            let canonical = canonical_structure(&spec.name);
            if SHARD_HOSTILE.contains(&canonical) {
                out.push(
                    Diagnostic::new(
                        "DS005",
                        Severity::Warning,
                        spec.span,
                        format!("edge {}", edge.name),
                        format!(
                            "{canonical} is not chunkable: sharded runs recompute the \
                             full {} edge table on every shard",
                            edge.name
                        ),
                    )
                    .with_help(
                        "for sharded generation prefer a chunkable generator \
                         (erdos_renyi, rmat, sbm)",
                    ),
                );
            }
        }
    }
}

/// `DS006`: a temporal edge whose endpoints never enter the operation
/// log. The temporal sink only streams types that declare a `temporal`
/// block, so this edge's insert/delete ops reference node ids no
/// consumer of the log has ever seen.
pub struct TemporalOpLogExclusion;

impl LintRule for TemporalOpLogExclusion {
    fn name(&self) -> &'static str {
        "temporal-oplog-exclusion"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        for edge in &ctx.schema.edges {
            let Some(def) = &edge.temporal else { continue };
            let endpoints: &[&String] = if edge.source == edge.target {
                &[&edge.source]
            } else {
                &[&edge.source, &edge.target]
            };
            for &endpoint in endpoints {
                let covered = ctx
                    .schema
                    .node_type(endpoint)
                    .is_some_and(|n| n.temporal.is_some());
                if !covered {
                    out.push(
                        Diagnostic::new(
                            "DS006",
                            Severity::Warning,
                            def.span,
                            format!("edge {}", edge.name),
                            format!(
                                "temporal edge {} references {endpoint}, which has no \
                                 temporal block: the op log will contain edge ops for \
                                 nodes it never inserts",
                                edge.name
                            ),
                        )
                        .with_help(format!("give node {endpoint} a temporal block")),
                    );
                }
            }
        }
    }
}

/// Above this many estimated live rows, `DS007` points out the peak.
const PEAK_ROWS_THRESHOLD: u64 = 10_000_000;

/// `DS007`: estimated peak working set. Walks the execution plan with
/// per-table row estimates, holding each artifact from its producing
/// task to its last-use slot (the emission schedule), plus raw
/// structures between their `Structure` and `Match` tasks.
pub struct PeakMemoryEstimate;

impl LintRule for PeakMemoryEstimate {
    fn name(&self) -> &'static str {
        "peak-memory-estimate"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        let (Some(analysis), Some(schedule)) = (ctx.analysis, ctx.schedule) else {
            return;
        };
        let estimator = RowEstimator::new(ctx.schema, analysis);
        let tasks = &analysis.plan.tasks;

        // live[i] = rows that become live at task i; drops via schedule.
        let mut live: u64 = 0;
        let mut peak: u64 = 0;
        let mut drops: Vec<u64> = vec![0; tasks.len()];
        for (i, task) in tasks.iter().enumerate() {
            let produced: u64 = match task {
                Task::NodeProperty(t, _) => estimator.node_rows(t),
                Task::Structure(e) | Task::Match(e) | Task::EdgeProperty(e, _) => {
                    estimator.edge_rows(e)
                }
                Task::NodeCount(_) => 0,
            };
            live = live.saturating_add(produced);
            peak = peak.max(live);
            // Raw structures die at their Match; everything else at its
            // emission slot.
            if let Task::Match(_) = task {
                // the raw structure this match consumed
                live = live.saturating_sub(produced);
            }
            for artifact in &schedule[i] {
                let rows = match artifact {
                    Artifact::NodeProperty(t, _) => estimator.node_rows(t),
                    Artifact::Edges(e) | Artifact::EdgeProperty(e, _) => estimator.edge_rows(e),
                };
                drops[i] = drops[i].saturating_add(rows);
            }
            live = live.saturating_sub(drops[i]);
        }

        if peak > PEAK_ROWS_THRESHOLD {
            out.push(
                Diagnostic::new(
                    "DS007",
                    Severity::Note,
                    datasynth_schema::Span::SYNTHETIC,
                    format!("graph {}", ctx.schema.name),
                    format!(
                        "estimated peak working set is ~{peak} live rows \
                         (threshold {PEAK_ROWS_THRESHOLD}); expect a high memory \
                         high-water mark"
                    ),
                )
                .with_help("consider sharded generation or smaller counts"),
            );
        }
    }
}

/// Rough per-table row estimates, memoized per node type. Estimates only
/// feed the `DS007` note; ±2x accuracy is fine.
struct RowEstimator<'a> {
    schema: &'a Schema,
    analysis: &'a Analysis,
    node_memo: BTreeMap<String, u64>,
}

impl<'a> RowEstimator<'a> {
    fn new(schema: &'a Schema, analysis: &'a Analysis) -> Self {
        let mut est = Self {
            schema,
            analysis,
            node_memo: BTreeMap::new(),
        };
        let names: Vec<String> = schema.nodes.iter().map(|n| n.name.clone()).collect();
        for name in names {
            est.resolve_node(&name, 0);
        }
        est
    }

    fn node_rows(&self, name: &str) -> u64 {
        self.node_memo.get(name).copied().unwrap_or(0)
    }

    fn resolve_node(&mut self, name: &str, depth: usize) -> u64 {
        if let Some(&n) = self.node_memo.get(name) {
            return n;
        }
        // Count sources are acyclic (analysis guarantees it), but cap
        // recursion anyway.
        let rows = if depth > 8 {
            0
        } else {
            match self.analysis.count_sources.get(name) {
                Some(CountSource::Explicit(n)) => *n,
                Some(CountSource::FromStructure(e)) => self.resolve_edge(e, depth + 1),
                Some(CountSource::FromEdgeCount(e)) => self
                    .schema
                    .edge_type(e)
                    .and_then(|edge| edge.count)
                    .unwrap_or(0),
                None => 0,
            }
        };
        self.node_memo.insert(name.to_string(), rows);
        rows
    }

    fn resolve_edge(&mut self, name: &str, depth: usize) -> u64 {
        let Some(edge) = self.schema.edge_type(name) else {
            return 0;
        };
        if let Some(c) = edge.count {
            return c;
        }
        let n = self.resolve_node(&edge.source.clone(), depth + 1);
        estimate_edge_rows(edge, n)
    }

    fn edge_rows(&self, name: &str) -> u64 {
        let Some(edge) = self.schema.edge_type(name) else {
            return 0;
        };
        if let Some(c) = edge.count {
            return c;
        }
        estimate_edge_rows(edge, self.node_rows(&edge.source))
    }
}

/// Expected edge count of `edge` over `n` source rows, from the
/// generator's own parameters (registry defaults mirrored here).
fn estimate_edge_rows(edge: &EdgeType, n: u64) -> u64 {
    let Some(spec) = &edge.structure else {
        // Cardinality-only edges degrade to an n-proportional guess.
        return n.saturating_mul(4);
    };
    let nf = n as f64;
    let rows = match canonical_structure(&spec.name) {
        "erdos_renyi" => spec.named_num("p").unwrap_or(0.0) * nf * (nf - 1.0) / 2.0,
        "gnm" => spec.named_num("m").unwrap_or(nf),
        "barabasi_albert" => spec.named_num("m").unwrap_or(3.0) * nf,
        "watts_strogatz" => spec.named_num("k").unwrap_or(4.0) * nf / 2.0,
        "lfr" | "bter" | "darwini" => spec.named_num("avg_degree").unwrap_or(20.0) * nf / 2.0,
        "rmat" => spec.named_num("edge_factor").unwrap_or(16.0) * nf,
        "sbm" => {
            let groups = spec.named_num("groups").unwrap_or(4.0).max(1.0);
            let gs = spec.named_num("group_size").unwrap_or(100.0).max(1.0);
            let total = groups * gs;
            let intra = groups * gs * (gs - 1.0) / 2.0;
            let inter = total * (total - 1.0) / 2.0 - intra;
            intra * spec.named_num("p_intra").unwrap_or(0.1)
                + inter * spec.named_num("p_inter").unwrap_or(0.01)
        }
        "one_to_one" => nf,
        "one_to_many" | "degree_sequence" => mean_degree(spec) * nf,
        _ => 10.0 * nf,
    };
    if rows.is_finite() && rows > 0.0 {
        rows as u64
    } else {
        0
    }
}

/// Expected mean of a degree-distribution spec (rough).
fn mean_degree(spec: &GeneratorSpec) -> f64 {
    match spec.named_text("dist").unwrap_or("power_law") {
        "constant" => spec.named_num("k").unwrap_or(1.0),
        "uniform" => {
            (spec.named_num("min").unwrap_or(0.0) + spec.named_num("max").unwrap_or(4.0)) / 2.0
        }
        "geometric" => {
            let p = spec.named_num("p").unwrap_or(0.4).clamp(0.01, 1.0);
            (1.0 - p) / p
        }
        // Heavy-tailed families concentrate near their minimum.
        _ => 2.0 * spec.named_num("min").unwrap_or(1.0).max(1.0),
    }
}

/// `DS008`: a schema from which zero workload templates derive —
/// `--workload` and `datasynth bench-workload` would have nothing to
/// execute, and the failure only surfaces after generation otherwise.
pub struct WorkloadCoverage;

impl LintRule for WorkloadCoverage {
    fn name(&self) -> &'static str {
        "workload-coverage"
    }

    fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
        if !datasynth_workload::derive_templates(ctx.schema).is_empty() {
            return;
        }
        out.push(
            Diagnostic::new(
                "DS008",
                Severity::Note,
                datasynth_schema::Span::SYNTHETIC,
                format!("graph {}", ctx.schema.name),
                "schema derives no executable workload templates; --workload and \
                 bench-workload will have nothing to run"
                    .to_string(),
            )
            .with_help(
                "declare at least one node type (point lookups derive from nodes, \
                 scans from properties, expansions from edges, 2-hop expansions \
                 from same-type edges, temporal kinds from temporal { ... } blocks)",
            ),
        );
    }
}
