//! Span-carrying diagnostics with stable codes.

use std::fmt;

use datasynth_schema::Span;

/// How serious a diagnostic is.
///
/// `Error` means generation is guaranteed (or overwhelmingly likely) to
/// fail at run time; `Warning` flags schemas that run but behave worse
/// than the author probably intends (sharding, op-log coverage);
/// `Note` is advisory (capacity estimates).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Advisory only.
    Note,
    /// Suspicious but runnable.
    Warning,
    /// Will fail (or silently misbehave) at run time.
    Error,
}

impl Severity {
    /// Lowercase label used by both renderers.
    pub fn label(self) -> &'static str {
        match self {
            Severity::Note => "note",
            Severity::Warning => "warning",
            Severity::Error => "error",
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// One finding: a stable `DS0xx` code, a severity, a message, and the
/// source [`Span`] of the declaration it is anchored to (synthetic for
/// builder/JSON schemas, which have no source text).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Stable machine-readable code (`"DS001"` …).
    pub code: &'static str,
    /// Severity class.
    pub severity: Severity,
    /// Human-readable, single-line description.
    pub message: String,
    /// Anchor position in the schema source (1-based; synthetic = 0:0).
    pub span: Span,
    /// What the diagnostic is about, e.g. `edge knows` or `Person.country`.
    pub subject: String,
    /// Optional remediation hint.
    pub help: Option<String>,
}

impl Diagnostic {
    /// Build a diagnostic; `help` is attached with [`Diagnostic::with_help`].
    pub fn new(
        code: &'static str,
        severity: Severity,
        span: Span,
        subject: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        Self {
            code,
            severity,
            message: message.into(),
            span,
            subject: subject.into(),
            help: None,
        }
    }

    /// Attach a remediation hint.
    pub fn with_help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Deterministic ordering key. [`Span`] equality is deliberately
    /// always-true (spans are metadata, not content), so ordering must
    /// compare the raw line/column fields explicitly.
    fn sort_key(&self) -> (&'static str, u32, u32, &str, &str) {
        (
            self.code,
            self.span.line,
            self.span.column,
            self.message.as_str(),
            self.subject.as_str(),
        )
    }
}

/// The outcome of linting one schema: diagnostics in a deterministic
/// order (by `(code, line, column, message)`), independent of rule
/// registration order and thread count.
#[derive(Debug, Clone, Default)]
pub struct LintReport {
    /// Sorted findings.
    pub diagnostics: Vec<Diagnostic>,
}

impl LintReport {
    /// Wrap raw findings, sorting them into the canonical order.
    pub fn from_diagnostics(mut diagnostics: Vec<Diagnostic>) -> Self {
        diagnostics.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        Self { diagnostics }
    }

    /// True when nothing at all was reported.
    pub fn is_clean(&self) -> bool {
        self.diagnostics.is_empty()
    }

    /// Number of diagnostics at `severity`.
    pub fn count(&self, severity: Severity) -> usize {
        self.diagnostics
            .iter()
            .filter(|d| d.severity == severity)
            .count()
    }

    /// Any error-severity findings?
    pub fn has_errors(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Error)
    }

    /// Any warning-severity findings?
    pub fn has_warnings(&self) -> bool {
        self.diagnostics
            .iter()
            .any(|d| d.severity == Severity::Warning)
    }

    /// Would the report fail a run? With `deny_warnings`, warnings count
    /// as errors (the CLI's `--deny warnings`).
    pub fn fails(&self, deny_warnings: bool) -> bool {
        self.has_errors() || (deny_warnings && self.has_warnings())
    }

    /// Render the report as deterministic JSON. This exact byte string is
    /// shared by `datasynth lint --format json` and the server's 422
    /// response body, so tooling can diff the two directly. No external
    /// JSON library is involved; escaping is done here.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(128 + self.diagnostics.len() * 160);
        out.push_str("{\"diagnostics\":[");
        for (i, d) in self.diagnostics.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"code\":\"");
            out.push_str(d.code);
            out.push_str("\",\"severity\":\"");
            out.push_str(d.severity.label());
            out.push_str("\",\"line\":");
            out.push_str(&d.span.line.to_string());
            out.push_str(",\"column\":");
            out.push_str(&d.span.column.to_string());
            out.push_str(",\"subject\":\"");
            json_escape_into(&d.subject, &mut out);
            out.push_str("\",\"message\":\"");
            json_escape_into(&d.message, &mut out);
            out.push('"');
            if let Some(help) = &d.help {
                out.push_str(",\"help\":\"");
                json_escape_into(help, &mut out);
                out.push('"');
            }
            out.push('}');
        }
        out.push_str("],\"errors\":");
        out.push_str(&self.count(Severity::Error).to_string());
        out.push_str(",\"warnings\":");
        out.push_str(&self.count(Severity::Warning).to_string());
        out.push_str(",\"notes\":");
        out.push_str(&self.count(Severity::Note).to_string());
        out.push('}');
        out
    }
}

/// Escape `s` as JSON string contents (without surrounding quotes).
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reports_sort_by_code_then_position() {
        let d = |code, line, col| {
            Diagnostic::new(code, Severity::Warning, Span::at(line, col), "x", "m")
        };
        let report = LintReport::from_diagnostics(vec![
            d("DS005", 9, 1),
            d("DS001", 9, 1),
            d("DS001", 2, 7),
            d("DS001", 2, 3),
        ]);
        let order: Vec<_> = report
            .diagnostics
            .iter()
            .map(|d| (d.code, d.span.line, d.span.column))
            .collect();
        assert_eq!(
            order,
            vec![
                ("DS001", 2, 3),
                ("DS001", 2, 7),
                ("DS001", 9, 1),
                ("DS005", 9, 1)
            ]
        );
    }

    #[test]
    fn json_escapes_and_counts() {
        let report = LintReport::from_diagnostics(vec![Diagnostic::new(
            "DS003",
            Severity::Error,
            Span::at(4, 21),
            "Person.name",
            "unknown \"generator\"\nline two",
        )
        .with_help("did you mean `dictionary`?")]);
        let json = report.to_json();
        assert!(
            json.contains("\"unknown \\\"generator\\\"\\nline two\""),
            "{json}"
        );
        assert!(
            json.contains("\"errors\":1,\"warnings\":0,\"notes\":0"),
            "{json}"
        );
        assert!(json.contains("\"line\":4,\"column\":21"), "{json}");
    }

    #[test]
    fn deny_warnings_promotes_failure() {
        let warn_only = LintReport::from_diagnostics(vec![Diagnostic::new(
            "DS005",
            Severity::Warning,
            Span::SYNTHETIC,
            "edge knows",
            "shard-hostile",
        )]);
        assert!(!warn_only.fails(false));
        assert!(warn_only.fails(true));
        assert!(!warn_only.has_errors());
        assert!(warn_only.has_warnings());
    }
}
