//! Static analysis over DataSynth schemas and execution plans.
//!
//! The DSL parser and validator reject malformed schemas, but plenty of
//! well-formed schemas are still wrong: a `barabasi_albert(m = 6000)`
//! over 5 000 nodes can never run, a temporal edge between non-temporal
//! nodes produces an op log referencing ids nobody inserted, an `lfr`
//! structure silently turns sharded generation into N full recomputes.
//! This crate finds those before any row is generated.
//!
//! Diagnostics carry a stable code (`DS001`…), a severity, and the
//! source [`Span`] of the offending declaration,
//! so they render rustc-style with the exact line and column:
//!
//! ```text
//! error[DS001]: barabasi_albert requires m < n, but m = 6000 and Person has [count = 5000]
//!   --> social.dsl:15:17
//!    |
//! 15 |     structure = barabasi_albert(m = 6000);
//!    |                 ^
//!   = subject: edge knows
//! ```
//!
//! # Rule layers
//!
//! | Code  | Severity | Checks |
//! |-------|----------|--------|
//! | DS001 | error    | unsatisfiable sizing (BA `m >= n`, sbm totals, 1→N fan-out vs target count, 1→1 count mismatch) |
//! | DS002 | warning  | distribution domain mismatches (negative support into dates / lifetimes) |
//! | DS003 | error    | unknown structure/property/correlation generators, with near-miss suggestions |
//! | DS004 | warning  | dead node types (no artifacts, no references) |
//! | DS005 | warning  | shard-hostile structure generators (full recompute per shard) |
//! | DS006 | warning  | temporal edges whose endpoints are excluded from the op log |
//! | DS007 | note     | estimated peak working set above 10 M live rows |
//! | DS008 | note     | schema derives zero executable workload templates (`--workload` / `bench-workload` would be empty) |
//!
//! # Use
//!
//! ```
//! use datasynth_schema::parse_schema;
//!
//! let schema = parse_schema(
//!     "graph g {
//!        node A [count = 10] { x: long = uniform(0, 9); }
//!        node B [count = 20] { y: long = uniform(0, 9); }
//!        edge e: A -- B [one_to_one] { structure = one_to_one(); }
//!      }",
//! )
//! .unwrap();
//! let report = datasynth_lint::lint(&schema);
//! assert!(report.has_errors()); // DS001: one_to_one counts differ
//! assert_eq!(report.diagnostics[0].code, "DS001");
//! ```

mod diagnostic;
mod render;
mod rules;

pub use diagnostic::{Diagnostic, LintReport, Severity};
pub use render::render_text;
pub use rules::{builtin_rules, LintContext, LintRule};

use datasynth_core::{analyze, emission_schedule};
use datasynth_schema::{Schema, Span};

/// An extensible rule registry. [`Linter::builtin`] loads the shipped
/// `DS001`–`DS008` set; [`Linter::register`] adds custom rules beside
/// them. Output order is always canonical `(code, line, column)`, so
/// registration order does not matter.
pub struct Linter {
    rules: Vec<Box<dyn LintRule>>,
}

impl Default for Linter {
    fn default() -> Self {
        Self::builtin()
    }
}

impl Linter {
    /// An empty linter (no rules).
    pub fn empty() -> Self {
        Self { rules: Vec::new() }
    }

    /// The shipped rule set.
    pub fn builtin() -> Self {
        Self {
            rules: builtin_rules(),
        }
    }

    /// Add a custom rule.
    pub fn register(&mut self, rule: Box<dyn LintRule>) -> &mut Self {
        self.rules.push(rule);
        self
    }

    /// Names of the registered rules (diagnostic codes live on the
    /// findings themselves).
    pub fn rule_names(&self) -> Vec<&'static str> {
        self.rules.iter().map(|r| r.name()).collect()
    }

    /// Run every rule over `schema`. Dependency analysis runs once and
    /// is shared by plan-level rules; when analysis itself fails, the
    /// failure surfaces as a `DS001` error (sizing problems are exactly
    /// what makes analysis fail) and plan-level rules are skipped.
    pub fn run(&self, schema: &Schema) -> LintReport {
        let mut diagnostics = Vec::new();
        let analysis = analyze(schema);
        let (analysis_ref, schedule) = match &analysis {
            Ok(a) => (Some(a), Some(emission_schedule(schema, a))),
            Err(e) => {
                diagnostics.push(Diagnostic::new(
                    "DS001",
                    Severity::Error,
                    Span::SYNTHETIC,
                    format!("graph {}", schema.name),
                    format!("dependency analysis failed: {e}"),
                ));
                (None, None)
            }
        };
        let ctx = LintContext {
            schema,
            analysis: analysis_ref,
            schedule: schedule.as_deref(),
        };
        for rule in &self.rules {
            rule.check(&ctx, &mut diagnostics);
        }
        LintReport::from_diagnostics(diagnostics)
    }
}

/// Lint `schema` with the built-in rule set. The one-call entry point
/// for library users:
/// `datasynth::lint::lint(&schema).has_errors()`.
pub fn lint(schema: &Schema) -> LintReport {
    Linter::builtin().run(schema)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;

    fn codes(report: &LintReport) -> Vec<&'static str> {
        report.diagnostics.iter().map(|d| d.code).collect()
    }

    #[test]
    fn clean_schema_is_clean() {
        let schema = parse_schema(
            "graph g {
               node Person [count = 100] {
                 age: long = uniform(0, 90);
               }
               edge knows: Person -- Person [many_to_many] {
                 structure = erdos_renyi(p = 0.05);
               }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        assert!(report.is_clean(), "{:?}", report.diagnostics);
    }

    #[test]
    fn ds001_barabasi_albert_m_geq_n_with_position() {
        let src = "\
graph g {
  node Person [count = 5000] {
    age: long = uniform(0, 90);
  }
  edge knows: Person -- Person [many_to_many] {
    structure = barabasi_albert(m = 6000);
  }
}";
        let schema = parse_schema(src).unwrap();
        let report = lint(&schema);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "DS001")
            .expect("DS001 missing");
        assert_eq!(d.severity, Severity::Error);
        // The span is the generator call: line 6, `barabasi_albert` at
        // column 17 (1-based).
        assert_eq!((d.span.line, d.span.column), (6, 17));
        assert!(d.message.contains("m = 6000"), "{}", d.message);
        // DS005 fires too: barabasi_albert is shard-hostile.
        assert!(codes(&report).contains(&"DS005"));
    }

    #[test]
    fn ds001_one_to_one_count_mismatch() {
        let schema = parse_schema(
            "graph g {
               node A [count = 10] { x: long = uniform(0, 9); }
               node B [count = 20] { y: long = uniform(0, 9); }
               edge e: A -- B [one_to_one] { structure = one_to_one(); }
             }",
        )
        .unwrap();
        assert!(codes(&lint(&schema)).contains(&"DS001"));
    }

    #[test]
    fn ds001_fanout_overflow() {
        let schema = parse_schema(
            "graph g {
               node A [count = 100] { x: long = uniform(0, 9); }
               node B [count = 150] { y: long = uniform(0, 9); }
               edge e: A -> B [one_to_many] {
                 structure = one_to_many(dist = \"constant\", k = 2);
               }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "DS001")
            .expect("DS001 missing");
        assert!(d.message.contains("at least 200"), "{}", d.message);
    }

    #[test]
    fn ds002_negative_support_into_dates_and_lifetimes() {
        let schema = parse_schema(
            "graph g {
               node A [count = 10] {
                 when: date = normal(0, 10);
               }
               node B [count = 10] {
                 x: long = uniform(0, 9);
                 temporal {
                   arrival = date_between(\"2020-01-01\", \"2021-01-01\");
                   lifetime = uniform(-5, 10);
                 }
               }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        assert_eq!(
            codes(&report).iter().filter(|c| **c == "DS002").count(),
            2,
            "{:?}",
            report.diagnostics
        );
    }

    #[test]
    fn ds003_unknown_generators_suggest_near_misses() {
        let schema = parse_schema(
            "graph g {
               node Person [count = 100] {
                 country: text = dictionarry(\"countries\");
               }
               edge knows: Person -- Person [many_to_many] {
                 structure = erdos_reny(p = 0.1);
               }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        let ds003: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code == "DS003")
            .collect();
        assert_eq!(ds003.len(), 2, "{:?}", report.diagnostics);
        assert!(ds003
            .iter()
            .any(|d| d.help.as_deref() == Some("did you mean \"dictionary\"?")));
        assert!(ds003
            .iter()
            .any(|d| d.help.as_deref() == Some("did you mean \"erdos_renyi\"?")));
    }

    #[test]
    fn ds004_dead_node_type() {
        let schema = parse_schema(
            "graph g {
               node Used [count = 10] { x: long = uniform(0, 9); }
               node Dead [count = 10] { }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "DS004")
            .expect("DS004 missing");
        assert!(d.subject.contains("Dead"), "{:?}", d);
    }

    #[test]
    fn ds006_temporal_edge_with_untracked_endpoint() {
        let schema = parse_schema(
            "graph g {
               node Person [count = 10] { x: long = uniform(0, 9); }
               edge knows: Person -- Person [many_to_many] {
                 structure = erdos_renyi(p = 0.1);
                 temporal {
                   arrival = date_between(\"2020-01-01\", \"2021-01-01\");
                 }
               }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        // Source and target are the same untracked type: one finding, not
        // two (endpoints dedup for self-edges).
        assert_eq!(codes(&report).iter().filter(|c| **c == "DS006").count(), 1);
    }

    #[test]
    fn ds007_peak_estimate_on_large_schemas() {
        let schema = parse_schema(
            "graph g {
               node Person [count = 10000000] {
                 a: long = uniform(0, 9);
                 b: long = uniform(0, 9);
               }
               edge knows: Person -- Person [many_to_many] {
                 structure = erdos_renyi(p = 0.000002);
               }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        assert!(
            codes(&report).contains(&"DS007"),
            "{:?}",
            report.diagnostics
        );
        assert!(!report.fails(true), "notes never fail a run");
    }

    #[test]
    fn ds008_empty_schema_derives_no_workload() {
        let schema = parse_schema("graph g { }").unwrap();
        let report = lint(&schema);
        let d = report
            .diagnostics
            .iter()
            .find(|d| d.code == "DS008")
            .expect("DS008 missing");
        assert_eq!(d.severity, Severity::Note);
        assert!(d.message.contains("workload"), "{}", d.message);
        assert!(!report.fails(true), "notes never fail a run");

        // Any node type derives at least a point lookup: no DS008.
        let populated = parse_schema(
            "graph g {
               node A [count = 10] { x: long = uniform(0, 9); }
             }",
        )
        .unwrap();
        assert!(!codes(&lint(&populated)).contains(&"DS008"));
    }

    #[test]
    fn analysis_failure_surfaces_as_ds001() {
        // B's count is underdetermined: no count, no deriving edge.
        let schema = parse_schema(
            "graph g {
               node A [count = 10] { x: long = uniform(0, 9); }
               node B { y: long = uniform(0, 9); }
             }",
        )
        .unwrap();
        let report = lint(&schema);
        assert!(report.has_errors());
        assert!(codes(&report).contains(&"DS001"));
    }

    #[test]
    fn builder_schemas_lint_with_synthetic_spans() {
        use datasynth_schema::PropertySpec;
        use datasynth_tables::ValueType;
        let schema = Schema::build("g")
            .node("A", |n| {
                n.count(10)
                    .property("x", PropertySpec::of(ValueType::Long).uniform(0, 9))
            })
            .finish()
            .unwrap();
        let report = lint(&schema);
        for d in &report.diagnostics {
            assert!(!d.span.is_real(), "builder spans must be synthetic: {d:?}");
        }
    }

    #[test]
    fn custom_rules_can_be_registered() {
        struct Nag;
        impl LintRule for Nag {
            fn name(&self) -> &'static str {
                "nag"
            }
            fn check(&self, ctx: &LintContext<'_>, out: &mut Vec<Diagnostic>) {
                out.push(Diagnostic::new(
                    "DS099",
                    Severity::Note,
                    Span::SYNTHETIC,
                    format!("graph {}", ctx.schema.name),
                    "custom rule ran",
                ));
            }
        }
        let schema =
            parse_schema("graph g { node A [count = 1] { x: long = uniform(0, 9); } }").unwrap();
        let mut linter = Linter::builtin();
        linter.register(Box::new(Nag));
        let report = linter.run(&schema);
        assert!(report.diagnostics.iter().any(|d| d.code == "DS099"));
        assert!(linter.rule_names().contains(&"nag"));
    }
}
