//! Rustc-style text rendering of a [`LintReport`].

use std::fmt::Write as _;

use crate::diagnostic::{LintReport, Severity};

/// Render `report` as human-readable text. `origin` names the schema
/// (usually the file path); `source` is the DSL text, used to print the
/// offending line with a caret. Both are optional — diagnostics from
/// builder/JSON schemas have no source text and degrade to the headline
/// form.
pub fn render_text(report: &LintReport, origin: Option<&str>, source: Option<&str>) -> String {
    let lines: Option<Vec<&str>> = source.map(|s| s.lines().collect());
    let mut out = String::new();
    for d in &report.diagnostics {
        let _ = writeln!(out, "{}[{}]: {}", d.severity, d.code, d.message);
        if d.span.is_real() {
            match origin {
                Some(o) => {
                    let _ = writeln!(out, "  --> {o}:{}:{}", d.span.line, d.span.column);
                }
                None => {
                    let _ = writeln!(out, "  --> {}:{}", d.span.line, d.span.column);
                }
            }
            if let Some(text) = lines
                .as_ref()
                .and_then(|ls| ls.get(d.span.line as usize - 1))
            {
                let gutter = d.span.line.to_string();
                let pad = " ".repeat(gutter.len());
                let _ = writeln!(out, "{pad} |");
                let _ = writeln!(out, "{gutter} | {text}");
                let caret = " ".repeat(d.span.column.saturating_sub(1) as usize);
                let _ = writeln!(out, "{pad} | {caret}^");
            }
        }
        let _ = writeln!(out, "  = subject: {}", d.subject);
        if let Some(help) = &d.help {
            let _ = writeln!(out, "  = help: {help}");
        }
        out.push('\n');
    }
    let errors = report.count(Severity::Error);
    let warnings = report.count(Severity::Warning);
    let notes = report.count(Severity::Note);
    if report.is_clean() {
        out.push_str("no diagnostics\n");
    } else {
        let _ = writeln!(
            out,
            "{errors} error(s), {warnings} warning(s), {notes} note(s)"
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::diagnostic::Diagnostic;
    use datasynth_schema::Span;

    #[test]
    fn caret_lands_under_the_offending_column() {
        let source = "graph g {\n  node Person [count = 3] {\n  }\n}\n";
        let report = LintReport::from_diagnostics(vec![Diagnostic::new(
            "DS004",
            Severity::Warning,
            Span::at(2, 8),
            "node Person",
            "dead table",
        )]);
        let text = render_text(&report, Some("g.dsl"), Some(source));
        assert!(text.contains("warning[DS004]: dead table"), "{text}");
        assert!(text.contains("--> g.dsl:2:8"), "{text}");
        assert!(text.contains("2 |   node Person [count = 3] {"), "{text}");
        // Caret: 7 spaces after the "  | " gutter puts ^ under column 8.
        assert!(text.contains("  |        ^"), "{text}");
        assert!(
            text.contains("0 error(s), 1 warning(s), 0 note(s)"),
            "{text}"
        );
    }

    #[test]
    fn synthetic_spans_render_without_position() {
        let report = LintReport::from_diagnostics(vec![Diagnostic::new(
            "DS007",
            Severity::Note,
            Span::SYNTHETIC,
            "graph g",
            "big",
        )]);
        let text = render_text(&report, Some("g.dsl"), None);
        assert!(!text.contains("-->"), "{text}");
        assert!(text.contains("note[DS007]: big"), "{text}");
    }
}
