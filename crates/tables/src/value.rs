//! Property values and their types.

use std::fmt;

/// The type of a property column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ValueType {
    /// Boolean.
    Bool,
    /// 64-bit signed integer.
    Long,
    /// 64-bit float.
    Double,
    /// UTF-8 string.
    Text,
    /// Calendar date, stored as days since 1970-01-01.
    Date,
}

impl ValueType {
    /// DSL keyword for the type.
    pub fn keyword(self) -> &'static str {
        match self {
            ValueType::Bool => "bool",
            ValueType::Long => "long",
            ValueType::Double => "double",
            ValueType::Text => "text",
            ValueType::Date => "date",
        }
    }

    /// Parse a DSL keyword.
    pub fn from_keyword(kw: &str) -> Option<Self> {
        Some(match kw {
            "bool" => ValueType::Bool,
            "long" => ValueType::Long,
            "double" => ValueType::Double,
            "text" | "string" => ValueType::Text,
            "date" => ValueType::Date,
            _ => return None,
        })
    }
}

impl fmt::Display for ValueType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// A single property value.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Value {
    /// Absent value.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit signed integer.
    Long(i64),
    /// 64-bit float.
    Double(f64),
    /// UTF-8 string.
    Text(String),
    /// Days since the Unix epoch.
    Date(i64),
}

impl Value {
    /// The value's type, or `None` for `Null`.
    pub fn value_type(&self) -> Option<ValueType> {
        Some(match self {
            Value::Null => return None,
            Value::Bool(_) => ValueType::Bool,
            Value::Long(_) => ValueType::Long,
            Value::Double(_) => ValueType::Double,
            Value::Text(_) => ValueType::Text,
            Value::Date(_) => ValueType::Date,
        })
    }

    /// Integer view (`Long` and `Date` qualify).
    pub fn as_long(&self) -> Option<i64> {
        match self {
            Value::Long(v) | Value::Date(v) => Some(*v),
            _ => None,
        }
    }

    /// Float view (`Double` or lossless from `Long`).
    pub fn as_double(&self) -> Option<f64> {
        match self {
            Value::Double(v) => Some(*v),
            Value::Long(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// String view.
    pub fn as_text(&self) -> Option<&str> {
        match self {
            Value::Text(s) => Some(s),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Render for export: dates in ISO-8601, floats via `{}`, nulls empty.
    pub fn render(&self) -> String {
        match self {
            Value::Null => String::new(),
            Value::Bool(b) => b.to_string(),
            Value::Long(v) => v.to_string(),
            Value::Double(v) => v.to_string(),
            Value::Text(s) => s.clone(),
            Value::Date(d) => crate::date::format_date(*d),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.render())
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Long(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Double(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Text(v.to_owned())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Text(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

/// Errors produced by table operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TableError {
    /// A value of the wrong type was pushed into a typed column.
    TypeMismatch {
        /// Column type.
        expected: ValueType,
        /// Offending value's type (`None` = null).
        got: Option<ValueType>,
    },
    /// Access past the end of a table.
    OutOfBounds {
        /// Requested id.
        id: u64,
        /// Table length.
        len: u64,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::TypeMismatch { expected, got } => match got {
                Some(g) => write!(f, "type mismatch: column is {expected}, value is {g}"),
                None => write!(f, "type mismatch: column is {expected}, value is null"),
            },
            TableError::OutOfBounds { id, len } => {
                write!(f, "id {id} out of bounds for table of length {len}")
            }
        }
    }
}

impl std::error::Error for TableError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_roundtrip_through_keywords() {
        for t in [
            ValueType::Bool,
            ValueType::Long,
            ValueType::Double,
            ValueType::Text,
            ValueType::Date,
        ] {
            assert_eq!(ValueType::from_keyword(t.keyword()), Some(t));
        }
        assert_eq!(ValueType::from_keyword("string"), Some(ValueType::Text));
        assert_eq!(ValueType::from_keyword("int"), None);
    }

    #[test]
    fn value_views() {
        assert_eq!(Value::Long(5).as_long(), Some(5));
        assert_eq!(Value::Date(10).as_long(), Some(10));
        assert_eq!(Value::Double(2.5).as_double(), Some(2.5));
        assert_eq!(Value::Long(2).as_double(), Some(2.0));
        assert_eq!(Value::Text("x".into()).as_text(), Some("x"));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::Text("x".into()).as_long(), None);
        assert_eq!(Value::Null.value_type(), None);
    }

    #[test]
    fn render_formats() {
        assert_eq!(Value::Null.render(), "");
        assert_eq!(Value::Long(-3).render(), "-3");
        assert_eq!(Value::Date(0).render(), "1970-01-01");
        assert_eq!(Value::Bool(false).render(), "false");
    }

    #[test]
    fn error_messages_are_informative() {
        let e = TableError::TypeMismatch {
            expected: ValueType::Long,
            got: Some(ValueType::Text),
        };
        assert!(e.to_string().contains("long"));
        assert!(e.to_string().contains("text"));
    }
}
