//! Property Tables: `[id, value]` with dense ids, stored columnar.

use crate::value::{TableError, Value, ValueType};

/// Typed columnar storage backing a [`PropertyTable`].
#[derive(Debug, Clone, PartialEq)]
pub enum Column {
    /// Boolean column.
    Bools(Vec<bool>),
    /// Integer column.
    Longs(Vec<i64>),
    /// Float column.
    Doubles(Vec<f64>),
    /// String column.
    Texts(Vec<String>),
    /// Date column (epoch days).
    Dates(Vec<i64>),
}

impl Column {
    fn new(t: ValueType) -> Self {
        match t {
            ValueType::Bool => Column::Bools(Vec::new()),
            ValueType::Long => Column::Longs(Vec::new()),
            ValueType::Double => Column::Doubles(Vec::new()),
            ValueType::Text => Column::Texts(Vec::new()),
            ValueType::Date => Column::Dates(Vec::new()),
        }
    }

    fn with_capacity(t: ValueType, cap: usize) -> Self {
        match t {
            ValueType::Bool => Column::Bools(Vec::with_capacity(cap)),
            ValueType::Long => Column::Longs(Vec::with_capacity(cap)),
            ValueType::Double => Column::Doubles(Vec::with_capacity(cap)),
            ValueType::Text => Column::Texts(Vec::with_capacity(cap)),
            ValueType::Date => Column::Dates(Vec::with_capacity(cap)),
        }
    }

    fn len(&self) -> usize {
        match self {
            Column::Bools(v) => v.len(),
            Column::Longs(v) => v.len(),
            Column::Doubles(v) => v.len(),
            Column::Texts(v) => v.len(),
            Column::Dates(v) => v.len(),
        }
    }

    fn value_type(&self) -> ValueType {
        match self {
            Column::Bools(_) => ValueType::Bool,
            Column::Longs(_) => ValueType::Long,
            Column::Doubles(_) => ValueType::Double,
            Column::Texts(_) => ValueType::Text,
            Column::Dates(_) => ValueType::Date,
        }
    }
}

/// A Property Table: the value of one property for every instance of one
/// node or edge type. Row `i` holds the value for instance id `i`.
#[derive(Debug, Clone, PartialEq)]
pub struct PropertyTable {
    name: String,
    column: Column,
}

impl PropertyTable {
    /// Create an empty table named `name` (conventionally
    /// `"Type.property"`) with the given column type.
    pub fn new(name: impl Into<String>, value_type: ValueType) -> Self {
        Self {
            name: name.into(),
            column: Column::new(value_type),
        }
    }

    /// Create with pre-allocated capacity.
    pub fn with_capacity(name: impl Into<String>, value_type: ValueType, cap: usize) -> Self {
        Self {
            name: name.into(),
            column: Column::with_capacity(value_type, cap),
        }
    }

    /// Build from an iterator of values, checking each against the type.
    pub fn from_values<I>(
        name: impl Into<String>,
        value_type: ValueType,
        values: I,
    ) -> Result<Self, TableError>
    where
        I: IntoIterator<Item = Value>,
    {
        let iter = values.into_iter();
        let mut pt = Self::with_capacity(name, value_type, iter.size_hint().0);
        for v in iter {
            pt.push(v)?;
        }
        Ok(pt)
    }

    /// Table name (`"Type.property"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Column type.
    pub fn value_type(&self) -> ValueType {
        self.column.value_type()
    }

    /// Number of rows.
    pub fn len(&self) -> u64 {
        self.column.len() as u64
    }

    /// True when the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.column.len() == 0
    }

    /// Append a value; the id is implicitly the previous length.
    pub fn push(&mut self, v: Value) -> Result<(), TableError> {
        let expected = self.column.value_type();
        let mismatch = || TableError::TypeMismatch {
            expected,
            got: v.value_type(),
        };
        match (&mut self.column, &v) {
            (Column::Bools(col), Value::Bool(b)) => col.push(*b),
            (Column::Longs(col), Value::Long(x)) => col.push(*x),
            (Column::Doubles(col), Value::Double(x)) => col.push(*x),
            (Column::Texts(col), Value::Text(s)) => col.push(s.clone()),
            (Column::Dates(col), Value::Date(d)) => col.push(*d),
            _ => return Err(mismatch()),
        }
        Ok(())
    }

    /// The value for instance `id`.
    pub fn value(&self, id: u64) -> Result<Value, TableError> {
        let i = id as usize;
        if i >= self.column.len() {
            return Err(TableError::OutOfBounds {
                id,
                len: self.len(),
            });
        }
        Ok(match &self.column {
            Column::Bools(v) => Value::Bool(v[i]),
            Column::Longs(v) => Value::Long(v[i]),
            Column::Doubles(v) => Value::Double(v[i]),
            Column::Texts(v) => Value::Text(v[i].clone()),
            Column::Dates(v) => Value::Date(v[i]),
        })
    }

    /// Iterate over all values in id order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        (0..self.len()).map(move |i| self.value(i).expect("in range"))
    }

    /// Copy the contiguous row window `rows` into a new table (same name
    /// and type). Row `i` of the slice is row `rows.start + i` of `self`.
    /// Used by sharded generation to commit one shard's window of a table
    /// that had to be computed in full.
    ///
    /// # Panics
    ///
    /// Panics when `rows` does not lie within `0..len()`.
    pub fn slice_rows(&self, rows: std::ops::Range<u64>) -> PropertyTable {
        assert!(
            rows.start <= rows.end && rows.end <= self.len(),
            "slice {rows:?} out of bounds for {} rows",
            self.len()
        );
        let (lo, hi) = (rows.start as usize, rows.end as usize);
        let column = match &self.column {
            Column::Bools(v) => Column::Bools(v[lo..hi].to_vec()),
            Column::Longs(v) => Column::Longs(v[lo..hi].to_vec()),
            Column::Doubles(v) => Column::Doubles(v[lo..hi].to_vec()),
            Column::Texts(v) => Column::Texts(v[lo..hi].to_vec()),
            Column::Dates(v) => Column::Dates(v[lo..hi].to_vec()),
        };
        PropertyTable {
            name: self.name.clone(),
            column,
        }
    }

    /// Direct access to the underlying column.
    pub fn column(&self) -> &Column {
        &self.column
    }

    /// Integer slice view for `Long` columns (hot paths).
    pub fn longs(&self) -> Option<&[i64]> {
        match &self.column {
            Column::Longs(v) => Some(v),
            _ => None,
        }
    }

    /// String slice view for `Text` columns.
    pub fn texts(&self) -> Option<&[String]> {
        match &self.column {
            Column::Texts(v) => Some(v),
            _ => None,
        }
    }

    /// Frequency of each distinct value, as `(value, count)` sorted by
    /// first occurrence. Used to derive the group sizes `Q` for matching.
    pub fn value_frequencies(&self) -> Vec<(Value, u64)> {
        let mut order: Vec<Value> = Vec::new();
        let mut counts: std::collections::HashMap<String, u64> = std::collections::HashMap::new();
        for v in self.iter() {
            let key = v.render();
            if let Some(c) = counts.get_mut(&key) {
                *c += 1;
            } else {
                counts.insert(key, 1);
                order.push(v);
            }
        }
        order
            .into_iter()
            .map(|v| {
                let c = counts[&v.render()];
                (v, c)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read_back() {
        let mut pt = PropertyTable::new("Person.age", ValueType::Long);
        pt.push(Value::Long(30)).unwrap();
        pt.push(Value::Long(40)).unwrap();
        assert_eq!(pt.len(), 2);
        assert_eq!(pt.value(0).unwrap(), Value::Long(30));
        assert_eq!(pt.value(1).unwrap(), Value::Long(40));
    }

    #[test]
    fn type_mismatch_is_rejected() {
        let mut pt = PropertyTable::new("Person.name", ValueType::Text);
        let err = pt.push(Value::Long(1)).unwrap_err();
        assert!(matches!(err, TableError::TypeMismatch { .. }));
        assert_eq!(pt.len(), 0, "failed push must not mutate");
    }

    #[test]
    fn null_is_rejected() {
        let mut pt = PropertyTable::new("x", ValueType::Double);
        assert!(pt.push(Value::Null).is_err());
    }

    #[test]
    fn out_of_bounds_read() {
        let pt = PropertyTable::new("x", ValueType::Bool);
        assert!(matches!(
            pt.value(0),
            Err(TableError::OutOfBounds { id: 0, len: 0 })
        ));
    }

    #[test]
    fn from_values_roundtrip() {
        let pt = PropertyTable::from_values(
            "Person.country",
            ValueType::Text,
            ["ES", "FR", "ES"].map(Value::from),
        )
        .unwrap();
        assert_eq!(pt.len(), 3);
        let collected: Vec<Value> = pt.iter().collect();
        assert_eq!(collected[2], Value::Text("ES".into()));
    }

    #[test]
    fn value_frequencies_counts_in_first_seen_order() {
        let pt =
            PropertyTable::from_values("p", ValueType::Text, ["b", "a", "b", "b"].map(Value::from))
                .unwrap();
        let freq = pt.value_frequencies();
        assert_eq!(
            freq,
            vec![
                (Value::Text("b".into()), 3),
                (Value::Text("a".into()), 2 - 1)
            ]
        );
    }

    #[test]
    fn typed_slice_views() {
        let pt = PropertyTable::from_values("x", ValueType::Long, [1i64, 2, 3].map(Value::from))
            .unwrap();
        assert_eq!(pt.longs(), Some(&[1i64, 2, 3][..]));
        assert_eq!(pt.texts(), None);
    }

    #[test]
    fn date_column() {
        let mut pt = PropertyTable::new("knows.creationDate", ValueType::Date);
        pt.push(Value::Date(17_259)).unwrap();
        assert_eq!(pt.value(0).unwrap().render(), "2017-04-03");
    }
}
