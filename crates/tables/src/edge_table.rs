//! Edge Tables: `[id, tailId, headId]`, struct-of-arrays.

/// An Edge Table for one edge type. Edge `i` connects `tail(i) → head(i)`;
/// node ids are type-local (`0..n` for the endpoint types).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct EdgeTable {
    name: String,
    tails: Vec<u64>,
    heads: Vec<u64>,
}

impl EdgeTable {
    /// Create an empty table.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            tails: Vec::new(),
            heads: Vec::new(),
        }
    }

    /// Create with pre-allocated capacity.
    pub fn with_capacity(name: impl Into<String>, cap: usize) -> Self {
        Self {
            name: name.into(),
            tails: Vec::with_capacity(cap),
            heads: Vec::with_capacity(cap),
        }
    }

    /// Build from `(tail, head)` pairs.
    pub fn from_pairs(
        name: impl Into<String>,
        pairs: impl IntoIterator<Item = (u64, u64)>,
    ) -> Self {
        let iter = pairs.into_iter();
        let mut et = Self::with_capacity(name, iter.size_hint().0);
        for (t, h) in iter {
            et.push(t, h);
        }
        et
    }

    /// Edge type name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of edges.
    pub fn len(&self) -> u64 {
        self.tails.len() as u64
    }

    /// True when there are no edges.
    pub fn is_empty(&self) -> bool {
        self.tails.is_empty()
    }

    /// Append an edge; its id is the previous length.
    #[inline]
    pub fn push(&mut self, tail: u64, head: u64) {
        self.tails.push(tail);
        self.heads.push(head);
    }

    /// Tail endpoint of edge `i`.
    #[inline]
    pub fn tail(&self, i: u64) -> u64 {
        self.tails[i as usize]
    }

    /// Head endpoint of edge `i`.
    #[inline]
    pub fn head(&self, i: u64) -> u64 {
        self.heads[i as usize]
    }

    /// Both endpoints of edge `i`.
    #[inline]
    pub fn edge(&self, i: u64) -> (u64, u64) {
        (self.tail(i), self.head(i))
    }

    /// Iterate over `(tail, head)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.tails.iter().copied().zip(self.heads.iter().copied())
    }

    /// Raw tail column.
    pub fn tails(&self) -> &[u64] {
        &self.tails
    }

    /// Raw head column.
    pub fn heads(&self) -> &[u64] {
        &self.heads
    }

    /// Largest node id mentioned, or `None` when empty.
    pub fn max_node_id(&self) -> Option<u64> {
        self.iter().map(|(t, h)| t.max(h)).max()
    }

    /// Undirected degree of every node in `0..n` (self-loops count twice,
    /// matching the usual convention).
    pub fn degrees(&self, n: u64) -> Vec<u32> {
        let mut deg = vec![0u32; n as usize];
        for (t, h) in self.iter() {
            deg[t as usize] += 1;
            deg[h as usize] += 1;
        }
        deg
    }

    /// Out-degree (by tail) of every node in `0..n`.
    pub fn out_degrees(&self, n: u64) -> Vec<u32> {
        let mut deg = vec![0u32; n as usize];
        for &t in &self.tails {
            deg[t as usize] += 1;
        }
        deg
    }

    /// In-degree (by head) of every node in `0..n`.
    pub fn in_degrees(&self, n: u64) -> Vec<u32> {
        let mut deg = vec![0u32; n as usize];
        for &h in &self.heads {
            deg[h as usize] += 1;
        }
        deg
    }

    /// Drop self-loops in place; returns how many were removed.
    pub fn remove_self_loops(&mut self) -> u64 {
        let before = self.tails.len();
        let mut w = 0;
        for r in 0..self.tails.len() {
            if self.tails[r] != self.heads[r] {
                self.tails[w] = self.tails[r];
                self.heads[w] = self.heads[r];
                w += 1;
            }
        }
        self.tails.truncate(w);
        self.heads.truncate(w);
        (before - w) as u64
    }

    /// Orient every edge so `tail <= head` (canonical form for undirected
    /// graphs; lets [`Self::dedup`] catch `(a,b)`/`(b,a)` duplicates).
    pub fn canonicalize_undirected(&mut self) {
        for i in 0..self.tails.len() {
            if self.tails[i] > self.heads[i] {
                std::mem::swap(&mut self.tails[i], &mut self.heads[i]);
            }
        }
    }

    /// Sort edges by `(tail, head)` and remove exact duplicates; returns the
    /// number removed. Edge ids are renumbered densely.
    pub fn dedup(&mut self) -> u64 {
        let before = self.tails.len();
        let mut pairs: Vec<(u64, u64)> = self.iter().collect();
        pairs.sort_unstable();
        pairs.dedup();
        self.tails.clear();
        self.heads.clear();
        for (t, h) in pairs {
            self.tails.push(t);
            self.heads.push(h);
        }
        (before - self.tails.len()) as u64
    }

    /// Append all edges of `other` (ids continue densely).
    pub fn extend_from(&mut self, other: &EdgeTable) {
        self.tails.extend_from_slice(&other.tails);
        self.heads.extend_from_slice(&other.heads);
    }

    /// Relabel both endpoints through a mapping (`new = map[old]`).
    /// Panics if an endpoint is out of range for the mapping.
    pub fn relabel(&mut self, map: &[u64]) {
        for t in &mut self.tails {
            *t = map[*t as usize];
        }
        for h in &mut self.heads {
            *h = map[*h as usize];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn et(pairs: &[(u64, u64)]) -> EdgeTable {
        EdgeTable::from_pairs("e", pairs.iter().copied())
    }

    #[test]
    fn push_and_access() {
        let t = et(&[(0, 1), (1, 2)]);
        assert_eq!(t.len(), 2);
        assert_eq!(t.edge(0), (0, 1));
        assert_eq!(t.tail(1), 1);
        assert_eq!(t.head(1), 2);
        assert_eq!(t.max_node_id(), Some(2));
    }

    #[test]
    fn degrees_undirected() {
        let t = et(&[(0, 1), (0, 2), (1, 2)]);
        assert_eq!(t.degrees(3), vec![2, 2, 2]);
        assert_eq!(t.out_degrees(3), vec![2, 1, 0]);
        assert_eq!(t.in_degrees(3), vec![0, 1, 2]);
    }

    #[test]
    fn self_loop_counts_twice_in_degree() {
        let t = et(&[(0, 0)]);
        assert_eq!(t.degrees(1), vec![2]);
    }

    #[test]
    fn remove_self_loops_preserves_order() {
        let mut t = et(&[(0, 1), (2, 2), (1, 2), (3, 3)]);
        assert_eq!(t.remove_self_loops(), 2);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn canonicalize_and_dedup_collapse_reverse_duplicates() {
        let mut t = et(&[(1, 0), (0, 1), (2, 1), (1, 2), (0, 1)]);
        t.canonicalize_undirected();
        let removed = t.dedup();
        assert_eq!(removed, 3);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn dedup_keeps_distinct_directed_edges() {
        let mut t = et(&[(1, 0), (0, 1)]);
        assert_eq!(t.dedup(), 0);
        assert_eq!(t.len(), 2);
    }

    #[test]
    fn relabel_applies_mapping() {
        let mut t = et(&[(0, 1), (1, 2)]);
        t.relabel(&[10, 20, 30]);
        assert_eq!(t.iter().collect::<Vec<_>>(), vec![(10, 20), (20, 30)]);
    }

    #[test]
    fn empty_table() {
        let t = EdgeTable::new("x");
        assert!(t.is_empty());
        assert_eq!(t.max_node_id(), None);
        assert_eq!(t.degrees(0), Vec::<u32>::new());
    }
}
