//! Civil-calendar date arithmetic (proleptic Gregorian), dependency-free.
//!
//! Dates are stored as `i64` days since 1970-01-01. Conversions use Howard
//! Hinnant's `days_from_civil` algorithm, exact over ±5 million years.

/// Days since the epoch for a `(year, month, day)` civil date.
pub fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    debug_assert!((1..=12).contains(&m), "month {m}");
    debug_assert!((1..=31).contains(&d), "day {d}");
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as u64; // [0, 399]
    let mp = u64::from((m + 9) % 12); // March = 0
    let doy = (153 * mp + 2) / 5 + u64::from(d) - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe as i64 - 719_468
}

/// Civil `(year, month, day)` for days since the epoch.
pub fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = (z - era * 146_097) as u64; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe as i64 + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Format as ISO-8601 `YYYY-MM-DD`.
pub fn format_date(days: i64) -> String {
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

/// Parse an ISO-8601 `YYYY-MM-DD` string into epoch days.
pub fn parse_date(s: &str) -> Option<i64> {
    let mut parts = s.splitn(3, '-');
    let y: i64 = parts.next()?.parse().ok()?;
    let m: u32 = parts.next()?.parse().ok()?;
    let d: u32 = parts.next()?.parse().ok()?;
    if !(1..=12).contains(&m) || !(1..=31).contains(&d) {
        return None;
    }
    let days = days_from_civil(y, m, d);
    // Round-trip to reject impossible dates like Feb 30.
    if civil_from_days(days) == (y, m, d) {
        Some(days)
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_day_zero() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(civil_from_days(0), (1970, 1, 1));
    }

    #[test]
    fn known_dates() {
        assert_eq!(days_from_civil(2000, 3, 1), 11_017);
        assert_eq!(days_from_civil(2017, 4, 3), 17_259); // the paper's arXiv date
        assert_eq!(format_date(17_259), "2017-04-03");
    }

    #[test]
    fn roundtrip_over_a_wide_range() {
        for days in (-1_000_000..1_000_000).step_by(997) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days, "at {days}");
        }
    }

    #[test]
    fn leap_years() {
        assert!(parse_date("2000-02-29").is_some(), "400-year leap");
        assert!(parse_date("1900-02-29").is_none(), "100-year non-leap");
        assert!(parse_date("2020-02-29").is_some(), "4-year leap");
        assert!(parse_date("2021-02-29").is_none());
    }

    #[test]
    fn parse_rejects_garbage() {
        assert_eq!(parse_date(""), None);
        assert_eq!(parse_date("2020-13-01"), None);
        assert_eq!(parse_date("2020-00-10"), None);
        assert_eq!(parse_date("2020-02-30"), None);
        assert_eq!(parse_date("20200230"), None);
        assert_eq!(parse_date("x-y-z"), None);
    }

    #[test]
    fn parse_format_roundtrip() {
        for s in ["1970-01-01", "1999-12-31", "2024-02-29"] {
            let days = parse_date(s).unwrap();
            assert_eq!(format_date(days), s);
        }
    }
}
