//! Closest-match suggestions for name-resolution diagnostics — shared by
//! the structure/property generator registries so their "did you mean"
//! behavior cannot drift apart.

/// The closest candidate by Levenshtein distance, if close enough to be a
/// plausible typo (distance ≤ 2 or ≤ a third of the name's length).
pub fn closest_match<'a>(name: &str, candidates: impl Iterator<Item = &'a str>) -> Option<String> {
    // Chars, not bytes: `edit_distance` works over chars, and a byte count
    // would inflate the threshold ~2-4x for non-ASCII names, producing
    // spurious suggestions.
    let threshold = (name.chars().count() / 3).max(2);
    candidates
        .map(|c| (edit_distance(name, c), c))
        .min()
        .filter(|(d, _)| *d <= threshold)
        .map(|(_, c)| c.to_owned())
}

/// Levenshtein distance over chars (two-row dynamic program).
pub fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0; b.len() + 1];
    for (i, &ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, &cb) in b.iter().enumerate() {
            let sub = prev[j] + usize::from(ca != cb);
            cur[j + 1] = sub.min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn edit_distance_basics() {
        assert_eq!(edit_distance("", "abc"), 3);
        assert_eq!(edit_distance("kitten", "sitting"), 3);
        assert_eq!(edit_distance("rmat", "rmat"), 0);
    }

    #[test]
    fn close_names_are_suggested_distant_ones_are_not() {
        assert_eq!(
            closest_match("lrf", ["lfr", "rmat"].into_iter()),
            Some("lfr".into())
        );
        assert_eq!(closest_match("qqqqqqqq", ["lfr"].into_iter()), None);
        assert_eq!(closest_match("x", [].into_iter()), None);
    }

    #[test]
    fn multibyte_names_use_char_count_for_the_threshold() {
        // Nine 2-byte chars: the char threshold is 9/3 = 3, while the old
        // byte-based threshold of 18/3 = 6 would wrongly suggest this
        // candidate sharing only four of nine chars (distance 5).
        assert_eq!(edit_distance("ééééééééé", "ааааéééé"), 5);
        assert_eq!(closest_match("ééééééééé", ["ааааéééé"].into_iter()), None);
        // Genuinely close multibyte names still get suggested.
        assert_eq!(edit_distance("génératon", "génération"), 1);
        assert_eq!(
            closest_match("génératon", ["génération"].into_iter()),
            Some("génération".into())
        );
    }
}
