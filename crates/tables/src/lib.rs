//! The DataSynth data model: distributed-table-shaped storage for property
//! graphs.
//!
//! The paper (§4.1) stores everything in two kinds of tables:
//!
//! * a **Property Table** (PT) — `[id: Long, value: T]` — one per
//!   `<node type, property>` and `<edge type, property>` pair, and
//! * an **Edge Table** (ET) — `[id: Long, tailId: Long, headId: Long]` — one
//!   per edge type,
//!
//! with ids dense in `0..n` *per type*. This crate implements both as
//! columnar in-memory tables ([`PropertyTable`], [`EdgeTable`]), a CSR
//! adjacency view ([`Csr`]) for algorithms that need neighborhoods, the
//! [`PropertyGraph`] container that owns a full generated dataset, and
//! CSV/JSONL exporters.

mod csr;
mod date;
mod edge_table;
pub mod export;
mod graph;
mod property_table;
pub mod suggest;
mod value;

pub use csr::Csr;
pub use date::{civil_from_days, days_from_civil, format_date, parse_date};
pub use edge_table::EdgeTable;
pub use graph::{EdgeMeta, PropertyGraph};
pub use property_table::{Column, PropertyTable};
pub use value::{TableError, Value, ValueType};
