//! The [`PropertyGraph`] container: everything one generation run produces.

use std::collections::BTreeMap;

use crate::edge_table::EdgeTable;
use crate::property_table::PropertyTable;

/// Endpoint metadata for an edge type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeMeta {
    /// Source node type name.
    pub source: String,
    /// Target node type name.
    pub target: String,
}

/// A complete generated property graph: node counts, one [`PropertyTable`]
/// per `<type, property>`, one [`EdgeTable`] per edge type (plus its
/// endpoint metadata), keyed by name. `BTreeMap`s keep iteration — and thus
/// exports — deterministic.
#[derive(Debug, Clone, Default)]
pub struct PropertyGraph {
    node_counts: BTreeMap<String, u64>,
    node_properties: BTreeMap<String, BTreeMap<String, PropertyTable>>,
    edge_tables: BTreeMap<String, (EdgeMeta, EdgeTable)>,
    edge_properties: BTreeMap<String, BTreeMap<String, PropertyTable>>,
}

impl PropertyGraph {
    /// Create an empty graph.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declare a node type with its instance count.
    pub fn add_node_type(&mut self, name: impl Into<String>, count: u64) {
        self.node_counts.insert(name.into(), count);
    }

    /// Instance count of a node type.
    pub fn node_count(&self, node_type: &str) -> Option<u64> {
        self.node_counts.get(node_type).copied()
    }

    /// All node types with their counts.
    pub fn node_types(&self) -> impl Iterator<Item = (&str, u64)> {
        self.node_counts.iter().map(|(k, &v)| (k.as_str(), v))
    }

    /// Attach a property table to a node type.
    pub fn insert_node_property(
        &mut self,
        node_type: impl Into<String>,
        property: impl Into<String>,
        table: PropertyTable,
    ) {
        self.node_properties
            .entry(node_type.into())
            .or_default()
            .insert(property.into(), table);
    }

    /// Look up a node property table.
    pub fn node_property(&self, node_type: &str, property: &str) -> Option<&PropertyTable> {
        self.node_properties.get(node_type)?.get(property)
    }

    /// All properties of a node type, in name order.
    pub fn node_properties_of(
        &self,
        node_type: &str,
    ) -> impl Iterator<Item = (&str, &PropertyTable)> {
        self.node_properties
            .get(node_type)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v)))
    }

    /// Attach an edge table with endpoint metadata.
    pub fn insert_edge_table(
        &mut self,
        name: impl Into<String>,
        source: impl Into<String>,
        target: impl Into<String>,
        table: EdgeTable,
    ) {
        self.edge_tables.insert(
            name.into(),
            (
                EdgeMeta {
                    source: source.into(),
                    target: target.into(),
                },
                table,
            ),
        );
    }

    /// Look up an edge table.
    pub fn edges(&self, edge_type: &str) -> Option<&EdgeTable> {
        self.edge_tables.get(edge_type).map(|(_, t)| t)
    }

    /// Endpoint metadata of an edge type.
    pub fn edge_meta(&self, edge_type: &str) -> Option<&EdgeMeta> {
        self.edge_tables.get(edge_type).map(|(m, _)| m)
    }

    /// All edge types, in name order.
    pub fn edge_types(&self) -> impl Iterator<Item = (&str, &EdgeMeta, &EdgeTable)> {
        self.edge_tables
            .iter()
            .map(|(k, (m, t))| (k.as_str(), m, t))
    }

    /// Attach an edge property table.
    pub fn insert_edge_property(
        &mut self,
        edge_type: impl Into<String>,
        property: impl Into<String>,
        table: PropertyTable,
    ) {
        self.edge_properties
            .entry(edge_type.into())
            .or_default()
            .insert(property.into(), table);
    }

    /// Look up an edge property table.
    pub fn edge_property(&self, edge_type: &str, property: &str) -> Option<&PropertyTable> {
        self.edge_properties.get(edge_type)?.get(property)
    }

    /// All properties of an edge type, in name order.
    pub fn edge_properties_of(
        &self,
        edge_type: &str,
    ) -> impl Iterator<Item = (&str, &PropertyTable)> {
        self.edge_properties
            .get(edge_type)
            .into_iter()
            .flat_map(|m| m.iter().map(|(k, v)| (k.as_str(), v)))
    }

    /// Total nodes across types.
    pub fn total_nodes(&self) -> u64 {
        self.node_counts.values().sum()
    }

    /// Total edges across types.
    pub fn total_edges(&self) -> u64 {
        self.edge_tables.values().map(|(_, t)| t.len()).sum()
    }

    /// Structural consistency check: every property table matches its
    /// type's instance count; every edge endpoint is within range.
    /// Returns a list of violations (empty = consistent).
    pub fn validate(&self) -> Vec<String> {
        let mut problems = Vec::new();
        for (nt, props) in &self.node_properties {
            match self.node_counts.get(nt) {
                None => problems.push(format!("properties for undeclared node type {nt}")),
                Some(&n) => {
                    for (p, table) in props {
                        if table.len() != n {
                            problems
                                .push(format!("{nt}.{p} has {} rows, expected {n}", table.len()));
                        }
                    }
                }
            }
        }
        for (et, (meta, table)) in &self.edge_tables {
            let src_n = self.node_counts.get(&meta.source);
            let dst_n = self.node_counts.get(&meta.target);
            match (src_n, dst_n) {
                (Some(&sn), Some(&dn)) => {
                    for (i, (t, h)) in table.iter().enumerate() {
                        if t >= sn || h >= dn {
                            problems.push(format!(
                                "{et} edge {i} = ({t},{h}) out of range ({sn} x {dn})"
                            ));
                            break; // one sample per table is enough
                        }
                    }
                }
                _ => problems.push(format!("{et} references undeclared endpoint types")),
            }
            if let Some(props) = self.edge_properties.get(et) {
                for (p, ptable) in props {
                    if ptable.len() != table.len() {
                        problems.push(format!(
                            "{et}.{p} has {} rows, expected {}",
                            ptable.len(),
                            table.len()
                        ));
                    }
                }
            }
        }
        problems
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{Value, ValueType};

    fn sample_graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node_type("Person", 3);
        g.add_node_type("Message", 2);
        g.insert_node_property(
            "Person",
            "country",
            PropertyTable::from_values(
                "Person.country",
                ValueType::Text,
                ["ES", "FR", "ES"].map(Value::from),
            )
            .unwrap(),
        );
        g.insert_edge_table(
            "knows",
            "Person",
            "Person",
            EdgeTable::from_pairs("knows", [(0u64, 1u64), (1, 2)]),
        );
        g.insert_edge_table(
            "creates",
            "Person",
            "Message",
            EdgeTable::from_pairs("creates", [(0u64, 0u64), (2, 1)]),
        );
        g
    }

    #[test]
    fn lookups_work() {
        let g = sample_graph();
        assert_eq!(g.node_count("Person"), Some(3));
        assert_eq!(g.node_count("Absent"), None);
        assert_eq!(g.edges("knows").unwrap().len(), 2);
        assert_eq!(g.edge_meta("creates").unwrap().target, "Message");
        assert_eq!(g.total_nodes(), 5);
        assert_eq!(g.total_edges(), 4);
        assert!(g.node_property("Person", "country").is_some());
    }

    #[test]
    fn valid_graph_validates() {
        assert!(sample_graph().validate().is_empty());
    }

    #[test]
    fn length_mismatch_is_reported() {
        let mut g = sample_graph();
        g.insert_node_property(
            "Person",
            "sex",
            PropertyTable::from_values("Person.sex", ValueType::Text, ["M"].map(Value::from))
                .unwrap(),
        );
        let problems = g.validate();
        assert_eq!(problems.len(), 1);
        assert!(problems[0].contains("Person.sex"));
    }

    #[test]
    fn out_of_range_endpoint_is_reported() {
        let mut g = sample_graph();
        g.insert_edge_table(
            "bad",
            "Person",
            "Message",
            EdgeTable::from_pairs("bad", [(0u64, 7u64)]),
        );
        assert!(g.validate().iter().any(|p| p.contains("bad")));
    }

    #[test]
    fn undeclared_types_are_reported() {
        let mut g = PropertyGraph::new();
        g.insert_edge_table("e", "A", "B", EdgeTable::new("e"));
        assert!(!g.validate().is_empty());
    }

    #[test]
    fn iteration_is_sorted_and_complete() {
        let g = sample_graph();
        let edge_names: Vec<&str> = g.edge_types().map(|(n, _, _)| n).collect();
        assert_eq!(edge_names, vec!["creates", "knows"]);
        let node_names: Vec<&str> = g.node_types().map(|(n, _)| n).collect();
        assert_eq!(node_names, vec!["Message", "Person"]);
    }
}
