//! Compressed sparse row adjacency, the neighborhood view used by the
//! matching and analysis algorithms.

use crate::edge_table::EdgeTable;

/// CSR adjacency over nodes `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    offsets: Vec<u64>,
    neighbors: Vec<u64>,
}

impl Csr {
    /// Build the *undirected* view: every edge appears in both endpoint
    /// lists (a self-loop appears twice in its node's list).
    pub fn undirected(edges: &EdgeTable, n: u64) -> Self {
        let mut deg = vec![0u64; n as usize];
        for (t, h) in edges.iter() {
            deg[t as usize] += 1;
            deg[h as usize] += 1;
        }
        let mut csr = Self::from_degree_counts(&deg);
        let mut cursor: Vec<u64> = csr.offsets[..n as usize].to_vec();
        for (t, h) in edges.iter() {
            csr.neighbors[cursor[t as usize] as usize] = h;
            cursor[t as usize] += 1;
            csr.neighbors[cursor[h as usize] as usize] = t;
            cursor[h as usize] += 1;
        }
        csr
    }

    /// Build the *directed* (out-adjacency) view.
    pub fn directed(edges: &EdgeTable, n: u64) -> Self {
        let mut deg = vec![0u64; n as usize];
        for &t in edges.tails() {
            deg[t as usize] += 1;
        }
        let mut csr = Self::from_degree_counts(&deg);
        let mut cursor: Vec<u64> = csr.offsets[..n as usize].to_vec();
        for (t, h) in edges.iter() {
            csr.neighbors[cursor[t as usize] as usize] = h;
            cursor[t as usize] += 1;
        }
        csr
    }

    fn from_degree_counts(deg: &[u64]) -> Self {
        let mut offsets = Vec::with_capacity(deg.len() + 1);
        let mut acc = 0u64;
        offsets.push(0);
        for &d in deg {
            acc += d;
            offsets.push(acc);
        }
        Self {
            neighbors: vec![0; acc as usize],
            offsets,
        }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> u64 {
        (self.offsets.len() - 1) as u64
    }

    /// Total adjacency entries (2m for undirected, m for directed).
    pub fn num_entries(&self) -> u64 {
        self.neighbors.len() as u64
    }

    /// Neighbor list of `v`.
    #[inline]
    pub fn neighbors(&self, v: u64) -> &[u64] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v` in this view.
    #[inline]
    pub fn degree(&self, v: u64) -> u64 {
        self.offsets[v as usize + 1] - self.offsets[v as usize]
    }

    /// Sort every adjacency list (enables binary-searched `has_edge`).
    pub fn sort_neighborhoods(&mut self) {
        for v in 0..self.num_nodes() {
            let lo = self.offsets[v as usize] as usize;
            let hi = self.offsets[v as usize + 1] as usize;
            self.neighbors[lo..hi].sort_unstable();
        }
    }

    /// Membership test; requires [`Self::sort_neighborhoods`] first for
    /// correctness of the binary search.
    #[inline]
    pub fn has_edge_sorted(&self, u: u64, v: u64) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> EdgeTable {
        EdgeTable::from_pairs("e", [(0u64, 1u64), (1, 2), (0, 2)])
    }

    #[test]
    fn undirected_lists_both_directions() {
        let csr = Csr::undirected(&triangle(), 3);
        assert_eq!(csr.num_nodes(), 3);
        assert_eq!(csr.num_entries(), 6);
        for v in 0..3 {
            assert_eq!(csr.degree(v), 2, "node {v}");
        }
        let mut n0 = csr.neighbors(0).to_vec();
        n0.sort_unstable();
        assert_eq!(n0, vec![1, 2]);
    }

    #[test]
    fn directed_lists_out_only() {
        let csr = Csr::directed(&triangle(), 3);
        assert_eq!(csr.num_entries(), 3);
        assert_eq!(csr.degree(0), 2);
        assert_eq!(csr.degree(2), 0);
    }

    #[test]
    fn isolated_nodes_have_empty_lists() {
        let et = EdgeTable::from_pairs("e", [(0u64, 1u64)]);
        let csr = Csr::undirected(&et, 4);
        assert_eq!(csr.degree(2), 0);
        assert_eq!(csr.degree(3), 0);
        assert!(csr.neighbors(3).is_empty());
    }

    #[test]
    fn self_loop_appears_twice() {
        let et = EdgeTable::from_pairs("e", [(1u64, 1u64)]);
        let csr = Csr::undirected(&et, 2);
        assert_eq!(csr.neighbors(1), &[1, 1]);
    }

    #[test]
    fn sorted_membership() {
        let mut csr = Csr::undirected(&triangle(), 3);
        csr.sort_neighborhoods();
        assert!(csr.has_edge_sorted(0, 1));
        assert!(csr.has_edge_sorted(2, 0));
        assert!(!csr.has_edge_sorted(0, 0));
    }

    #[test]
    fn degree_sum_equals_entries() {
        let et = EdgeTable::from_pairs("e", [(0u64, 1), (0, 2), (3, 1), (2, 2)]);
        let csr = Csr::undirected(&et, 4);
        let sum: u64 = (0..4).map(|v| csr.degree(v)).sum();
        assert_eq!(sum, csr.num_entries());
    }
}
