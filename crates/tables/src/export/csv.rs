//! CSV directory export: one wide file per node type (`id` + all
//! properties) and one per edge type (`id,tail,head` + all properties).
//!
//! The row-writing core is exposed as [`write_node_table`] /
//! [`write_edge_table`] so the whole-graph [`CsvExporter`] and the
//! streaming per-table sinks in `datasynth-core` produce byte-identical
//! files from one implementation.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::ops::Range;
use std::path::Path;

use datasynth_telemetry::{CountingWrite, MetricsRegistry};

use super::{csv_escape, record_export, Exporter};
use crate::{EdgeTable, PropertyGraph, PropertyTable};

/// Write the node-table header line: `id,<props...>`.
pub fn write_node_header<W: Write>(w: &mut W, props: &[(&str, &PropertyTable)]) -> io::Result<()> {
    write!(w, "id")?;
    for (name, _) in props {
        write!(w, ",{}", csv_escape(name))?;
    }
    writeln!(w)
}

/// Write the data rows for the global ids in `rows`; the property tables
/// hold exactly those rows (their row `0` is global id `rows.start`). A
/// full table is `rows = 0..count`; a shard passes its window, so
/// concatenating the shards' row output reproduces the full table's rows
/// byte-for-byte.
pub fn write_node_rows<W: Write>(
    w: &mut W,
    rows: Range<u64>,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    let offset = rows.start;
    for id in rows {
        write!(w, "{id}")?;
        for (_, table) in props {
            let v = table.value(id - offset).map_err(io::Error::other)?;
            write!(w, ",{}", csv_escape(&v.render()))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Write one node table: header `id,<props...>` then one row per id in
/// `0..count`. `props` must be in the desired column order.
pub fn write_node_table<W: Write>(
    w: &mut W,
    count: u64,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    write_node_header(w, props)?;
    write_node_rows(w, 0..count, props)
}

/// Write the edge-table header line: `id,tail,head,<props...>`.
pub fn write_edge_header<W: Write>(w: &mut W, props: &[(&str, &PropertyTable)]) -> io::Result<()> {
    write!(w, "id,tail,head")?;
    for (name, _) in props {
        write!(w, ",{}", csv_escape(name))?;
    }
    writeln!(w)
}

/// Write the data rows for the global edge ids in `rows`; `table` and
/// every property column hold exactly those rows (see [`write_node_rows`]).
pub fn write_edge_rows<W: Write>(
    w: &mut W,
    rows: Range<u64>,
    table: &EdgeTable,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    let offset = rows.start;
    for id in rows {
        let (t, h) = table.edge(id - offset);
        write!(w, "{id},{t},{h}")?;
        for (_, ptable) in props {
            let v = ptable.value(id - offset).map_err(io::Error::other)?;
            write!(w, ",{}", csv_escape(&v.render()))?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Write one edge table: header `id,tail,head,<props...>` then one row per
/// edge. `props` must be in the desired column order.
pub fn write_edge_table<W: Write>(
    w: &mut W,
    table: &EdgeTable,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    write_edge_header(w, props)?;
    write_edge_rows(w, 0..table.len(), table, props)
}

/// CSV exporter; see module docs for the layout.
#[derive(Debug, Clone, Copy, Default)]
pub struct CsvExporter;

impl CsvExporter {
    /// Export like [`Exporter::export`], additionally recording
    /// per-table `datasynth_export_{bytes,rows}_total` counters into
    /// `metrics`. Output bytes are identical to the unmetered path.
    pub fn export_metered(
        &self,
        graph: &PropertyGraph,
        dir: &Path,
        metrics: &MetricsRegistry,
    ) -> io::Result<()> {
        self.export_inner(graph, dir, Some(metrics))
    }

    fn export_inner(
        &self,
        graph: &PropertyGraph,
        dir: &Path,
        metrics: Option<&MetricsRegistry>,
    ) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for (node_type, count) in graph.node_types() {
            let file = File::create(dir.join(format!("{node_type}.csv")))?;
            let mut w = BufWriter::new(CountingWrite::new(file));
            let props: Vec<_> = graph.node_properties_of(node_type).collect();
            write_node_table(&mut w, count, &props)?;
            w.flush()?;
            if let Some(m) = metrics {
                record_export(m, node_type, count, w.get_ref().bytes());
            }
        }
        for (edge_type, _meta, table) in graph.edge_types() {
            let file = File::create(dir.join(format!("{edge_type}.csv")))?;
            let mut w = BufWriter::new(CountingWrite::new(file));
            let props: Vec<_> = graph.edge_properties_of(edge_type).collect();
            write_edge_table(&mut w, table, &props)?;
            w.flush()?;
            if let Some(m) = metrics {
                record_export(m, edge_type, table.len(), w.get_ref().bytes());
            }
        }
        Ok(())
    }
}

impl Exporter for CsvExporter {
    fn export(&self, graph: &PropertyGraph, dir: &Path) -> io::Result<()> {
        self.export_inner(graph, dir, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeTable, PropertyTable, Value, ValueType};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node_type("Person", 2);
        g.insert_node_property(
            "Person",
            "name",
            PropertyTable::from_values(
                "Person.name",
                ValueType::Text,
                ["Ann, A.", "Bob"].map(Value::from),
            )
            .unwrap(),
        );
        g.insert_edge_table(
            "knows",
            "Person",
            "Person",
            EdgeTable::from_pairs("knows", [(0u64, 1u64)]),
        );
        g.insert_edge_property(
            "knows",
            "since",
            PropertyTable::from_values("knows.since", ValueType::Date, [Value::Date(0)]).unwrap(),
        );
        g
    }

    #[test]
    fn writes_expected_files_and_rows() {
        let dir = std::env::temp_dir().join(format!("ds-csv-test-{}", std::process::id()));
        CsvExporter.export(&graph(), &dir).unwrap();
        let person = std::fs::read_to_string(dir.join("Person.csv")).unwrap();
        let mut lines = person.lines();
        assert_eq!(lines.next(), Some("id,name"));
        assert_eq!(lines.next(), Some("0,\"Ann, A.\""), "comma field quoted");
        assert_eq!(lines.next(), Some("1,Bob"));
        let knows = std::fs::read_to_string(dir.join("knows.csv")).unwrap();
        assert_eq!(
            knows.lines().collect::<Vec<_>>(),
            vec!["id,tail,head,since", "0,0,1,1970-01-01"]
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn table_writers_match_exporter_output() {
        let g = graph();
        let mut buf = Vec::new();
        let props: Vec<_> = g.node_properties_of("Person").collect();
        write_node_table(&mut buf, 2, &props).unwrap();
        let dir = std::env::temp_dir().join(format!("ds-csv-wtest-{}", std::process::id()));
        CsvExporter.export(&g, &dir).unwrap();
        let exported = std::fs::read(dir.join("Person.csv")).unwrap();
        assert_eq!(buf, exported);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
