//! Exporters: persist a [`PropertyGraph`] to disk.
//!
//! The paper lists *"connectors for integrating the framework with
//! production-level technologies such as databases and cluster storages"*
//! among its requirements. We provide the two interchange formats everything
//! else can ingest — CSV directories and JSON-lines — behind a common
//! [`Exporter`] trait so users can plug their own sinks.
//!
//! Both formats are built from per-table streaming writers
//! ([`csv::write_node_table`], [`jsonl::write_edge_table`], …) shared with
//! the `GraphSink` implementations in `datasynth-core`, so whole-graph
//! export and streaming one-pass export produce byte-identical files.

pub mod csv;
pub mod jsonl;
pub mod ops;

pub use csv::CsvExporter;
pub use jsonl::JsonlExporter;

use std::io;
use std::path::Path;

use datasynth_telemetry::MetricsRegistry;

use crate::PropertyGraph;

/// A sink that persists a whole property graph.
pub trait Exporter {
    /// Write `graph` under directory `dir` (created if missing).
    fn export(&self, graph: &PropertyGraph, dir: &Path) -> io::Result<()>;
}

/// Record one exported table file into `metrics`: per-table
/// `datasynth_export_bytes_total` / `datasynth_export_rows_total`
/// counters — one add per file, nothing per row. Shared by both metered
/// exporters.
pub(crate) fn record_export(metrics: &MetricsRegistry, table: &str, rows: u64, bytes: u64) {
    metrics
        .counter_with("datasynth_export_bytes_total", Some(("table", table)))
        .add(bytes);
    metrics
        .counter_with("datasynth_export_rows_total", Some(("table", table)))
        .add(rows);
}

/// Escape a CSV field per RFC 4180 (quote when it contains separators).
/// Public so tests and custom sinks can verify round-trips against one
/// canonical implementation.
pub fn csv_escape(field: &str) -> String {
    if field.contains([',', '"', '\n', '\r']) {
        let mut out = String::with_capacity(field.len() + 2);
        out.push('"');
        for ch in field.chars() {
            if ch == '"' {
                out.push('"');
            }
            out.push(ch);
        }
        out.push('"');
        out
    } else {
        field.to_owned()
    }
}

/// Escape a JSON string body (without surrounding quotes). Public so
/// downstream emitters of hand-rolled JSON (e.g. the workload manifest)
/// share one escaping implementation.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_escape_passthrough_and_quoting() {
        assert_eq!(csv_escape("plain"), "plain");
        assert_eq!(csv_escape("a,b"), "\"a,b\"");
        assert_eq!(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
        assert_eq!(csv_escape("line\nbreak"), "\"line\nbreak\"");
    }

    #[test]
    fn json_escape_specials() {
        assert_eq!(json_escape("a\"b\\c"), "a\\\"b\\\\c");
        assert_eq!(json_escape("tab\there"), "tab\\there");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
