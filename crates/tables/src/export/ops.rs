//! Streaming writers for operation-log rows (update streams).
//!
//! An op log is the dynamic counterpart of the static snapshot: one row
//! per graph mutation, globally ordered by timestamp. Rows reference the
//! snapshot by `(table, row)` — the payload (property values, endpoints)
//! lives in the snapshot tables, so the log stays narrow and the
//! snapshot stays the single source of truth for values.
//!
//! Like the node/edge table writers, these are plain `io::Write`
//! streamers shared by whole-run export and chunked HTTP streaming, so
//! both paths produce byte-identical files.

use std::io::{self, Write};

use crate::date::format_date;
use crate::export::{csv_escape, json_escape};

/// One operation-log row, ready to serialize.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OpRow<'a> {
    /// Zero-based position in the global op order (stable across shards:
    /// shard `i` emits ops `[window.lo, window.hi)` of the same global
    /// sequence).
    pub op: u64,
    /// Timestamp as days since 1970-01-01 (serialized ISO `YYYY-MM-DD`).
    pub ts: i64,
    /// Operation keyword: `INSERT_NODE`, `INSERT_EDGE`, `DELETE_EDGE`,
    /// `DELETE_NODE`.
    pub kind: &'a str,
    /// The snapshot table the op refers to.
    pub table: &'a str,
    /// Global row index within `table` that this op inserts or deletes.
    pub row: u64,
}

/// The CSV header line for op logs. Written once per full file (shard 0
/// only, like the per-table exporters, so shard concatenation yields one
/// well-formed file).
pub fn write_ops_header(out: &mut dyn Write) -> io::Result<()> {
    writeln!(out, "op,ts,kind,table,row")
}

/// Serialize one op as a CSV record.
pub fn write_op_row_csv(out: &mut dyn Write, op: &OpRow<'_>) -> io::Result<()> {
    writeln!(
        out,
        "{},{},{},{},{}",
        op.op,
        format_date(op.ts),
        csv_escape(op.kind),
        csv_escape(op.table),
        op.row
    )
}

/// Serialize one op as a JSON-lines record.
pub fn write_op_row_jsonl(out: &mut dyn Write, op: &OpRow<'_>) -> io::Result<()> {
    writeln!(
        out,
        "{{\"op\":{},\"ts\":\"{}\",\"kind\":\"{}\",\"table\":\"{}\",\"row\":{}}}",
        op.op,
        format_date(op.ts),
        json_escape(op.kind),
        json_escape(op.table),
        op.row
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::days_from_civil;

    #[test]
    fn op_rows_serialize_to_both_formats() {
        let op = OpRow {
            op: 3,
            ts: days_from_civil(2012, 6, 15),
            kind: "INSERT_EDGE",
            table: "knows",
            row: 41,
        };
        let mut csv = Vec::new();
        write_ops_header(&mut csv).unwrap();
        write_op_row_csv(&mut csv, &op).unwrap();
        assert_eq!(
            String::from_utf8(csv).unwrap(),
            "op,ts,kind,table,row\n3,2012-06-15,INSERT_EDGE,knows,41\n"
        );
        let mut jsonl = Vec::new();
        write_op_row_jsonl(&mut jsonl, &op).unwrap();
        assert_eq!(
            String::from_utf8(jsonl).unwrap(),
            "{\"op\":3,\"ts\":\"2012-06-15\",\"kind\":\"INSERT_EDGE\",\"table\":\"knows\",\"row\":41}\n"
        );
    }
}
