//! JSON-lines export: one object per instance, one file per type.
//!
//! As with the CSV module, the row-writing core ([`write_node_table`],
//! [`write_edge_table`]) is shared between the whole-graph
//! [`JsonlExporter`] and the streaming sinks in `datasynth-core`, so both
//! paths emit byte-identical files.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::Path;

use datasynth_telemetry::{CountingWrite, MetricsRegistry};

use super::{json_escape, record_export, Exporter};
use crate::{EdgeTable, PropertyGraph, PropertyTable, Value};

/// JSONL exporter: `<Type>.jsonl` per node type, `<edge>.jsonl` per edge
/// type; each line is a self-contained JSON object.
#[derive(Debug, Clone, Copy, Default)]
pub struct JsonlExporter;

impl JsonlExporter {
    /// Export like [`Exporter::export`], additionally recording
    /// per-table `datasynth_export_{bytes,rows}_total` counters into
    /// `metrics`. Output bytes are identical to the unmetered path.
    pub fn export_metered(
        &self,
        graph: &PropertyGraph,
        dir: &Path,
        metrics: &MetricsRegistry,
    ) -> io::Result<()> {
        self.export_inner(graph, dir, Some(metrics))
    }

    fn export_inner(
        &self,
        graph: &PropertyGraph,
        dir: &Path,
        metrics: Option<&MetricsRegistry>,
    ) -> io::Result<()> {
        fs::create_dir_all(dir)?;
        for (node_type, count) in graph.node_types() {
            let file = File::create(dir.join(format!("{node_type}.jsonl")))?;
            let mut w = BufWriter::new(CountingWrite::new(file));
            let props: Vec<_> = graph.node_properties_of(node_type).collect();
            write_node_table(&mut w, count, &props)?;
            w.flush()?;
            if let Some(m) = metrics {
                record_export(m, node_type, count, w.get_ref().bytes());
            }
        }
        for (edge_type, meta, table) in graph.edge_types() {
            let file = File::create(dir.join(format!("{edge_type}.jsonl")))?;
            let mut w = BufWriter::new(CountingWrite::new(file));
            let props: Vec<_> = graph.edge_properties_of(edge_type).collect();
            write_edge_table(&mut w, &meta.source, &meta.target, table, &props)?;
            w.flush()?;
            if let Some(m) = metrics {
                record_export(m, edge_type, table.len(), w.get_ref().bytes());
            }
        }
        Ok(())
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Long(x) => out.push_str(&x.to_string()),
        Value::Double(x) => {
            if x.is_finite() {
                out.push_str(&x.to_string());
            } else {
                out.push_str("null");
            }
        }
        Value::Text(_) | Value::Date(_) => {
            out.push('"');
            out.push_str(&json_escape(&v.render()));
            out.push('"');
        }
    }
}

/// Write the objects for the global ids in `rows`; the property tables
/// hold exactly those rows (their row `0` is global id `rows.start`) —
/// the sharded counterpart of [`write_node_table`] (JSONL has no header,
/// so a shard's file is exactly its row window).
pub fn write_node_rows<W: Write>(
    w: &mut W,
    rows: std::ops::Range<u64>,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    let offset = rows.start;
    let mut line = String::new();
    for id in rows {
        line.clear();
        line.push_str("{\"id\":");
        line.push_str(&id.to_string());
        for (name, table) in props {
            line.push_str(",\"");
            line.push_str(&json_escape(name));
            line.push_str("\":");
            let v = table.value(id - offset).map_err(io::Error::other)?;
            write_value(&mut line, &v);
        }
        line.push('}');
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Write one node table: one `{"id":..., ...props}` object per line, ids
/// `0..count`. `props` must be in the desired key order.
pub fn write_node_table<W: Write>(
    w: &mut W,
    count: u64,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    write_node_rows(w, 0..count, props)
}

/// Write the objects for the global edge ids in `rows`; `table` and every
/// property column hold exactly those rows.
pub fn write_edge_rows<W: Write>(
    w: &mut W,
    rows: std::ops::Range<u64>,
    source: &str,
    target: &str,
    table: &EdgeTable,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    let offset = rows.start;
    let mut line = String::new();
    for id in rows {
        let (t, h) = table.edge(id - offset);
        line.clear();
        line.push_str(&format!(
            "{{\"id\":{id},\"tail\":{t},\"head\":{h},\"source\":\"{}\",\"target\":\"{}\"",
            json_escape(source),
            json_escape(target)
        ));
        for (name, ptable) in props {
            line.push_str(",\"");
            line.push_str(&json_escape(name));
            line.push_str("\":");
            let v = ptable.value(id - offset).map_err(io::Error::other)?;
            write_value(&mut line, &v);
        }
        line.push('}');
        writeln!(w, "{line}")?;
    }
    Ok(())
}

/// Write one edge table: one `{"id","tail","head","source","target",
/// ...props}` object per line. `props` must be in the desired key order.
pub fn write_edge_table<W: Write>(
    w: &mut W,
    source: &str,
    target: &str,
    table: &EdgeTable,
    props: &[(&str, &PropertyTable)],
) -> io::Result<()> {
    write_edge_rows(w, 0..table.len(), source, target, table, props)
}

impl Exporter for JsonlExporter {
    fn export(&self, graph: &PropertyGraph, dir: &Path) -> io::Result<()> {
        self.export_inner(graph, dir, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{EdgeTable, PropertyTable, ValueType};

    #[test]
    fn emits_valid_lines() {
        let mut g = PropertyGraph::new();
        g.add_node_type("T", 1);
        g.insert_node_property(
            "T",
            "label",
            PropertyTable::from_values("T.label", ValueType::Text, ["a\"b"].map(Value::from))
                .unwrap(),
        );
        g.insert_edge_table("e", "T", "T", EdgeTable::from_pairs("e", [(0u64, 0u64)]));
        let dir = std::env::temp_dir().join(format!("ds-jsonl-test-{}", std::process::id()));
        JsonlExporter.export(&g, &dir).unwrap();
        let nodes = std::fs::read_to_string(dir.join("T.jsonl")).unwrap();
        assert_eq!(nodes.trim(), r#"{"id":0,"label":"a\"b"}"#);
        let edges = std::fs::read_to_string(dir.join("e.jsonl")).unwrap();
        assert!(edges.contains("\"tail\":0"));
        assert!(edges.contains("\"source\":\"T\""));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
