//! Embedded sample dictionaries.
//!
//! The paper's PGs load dictionaries in `initialize` ("e.g. a filename to
//! load a dictionary"). We embed compact but realistic samples so examples
//! and tests run hermetically; users can always construct
//! [`DictionaryGen`](crate::DictionaryGen) /
//! [`ConditionalDictionary`](crate::ConditionalDictionary) from their own
//! data.

/// Countries with rough relative population weights (the running example's
/// "Person's country follows a distribution similar to that found in real
/// life").
pub const COUNTRIES: &[(&str, f64)] = &[
    ("China", 1412.0),
    ("India", 1408.0),
    ("United States", 333.0),
    ("Indonesia", 274.0),
    ("Pakistan", 231.0),
    ("Brazil", 214.0),
    ("Nigeria", 213.0),
    ("Bangladesh", 169.0),
    ("Russia", 143.0),
    ("Mexico", 127.0),
    ("Japan", 125.0),
    ("Philippines", 114.0),
    ("Egypt", 109.0),
    ("Vietnam", 98.0),
    ("Germany", 83.0),
    ("Turkey", 85.0),
    ("France", 68.0),
    ("United Kingdom", 67.0),
    ("Italy", 59.0),
    ("South Korea", 52.0),
    ("Spain", 47.0),
    ("Argentina", 46.0),
    ("Poland", 38.0),
    ("Canada", 38.0),
    ("Morocco", 37.0),
    ("Ukraine", 36.0),
    ("Australia", 26.0),
    ("Netherlands", 18.0),
    ("Chile", 19.0),
    ("Sweden", 10.0),
    ("Portugal", 10.0),
    ("Greece", 10.0),
    ("Czechia", 11.0),
    ("Hungary", 10.0),
    ("Austria", 9.0),
    ("Switzerland", 9.0),
    ("Denmark", 6.0),
    ("Finland", 6.0),
    ("Norway", 5.0),
    ("Ireland", 5.0),
];

/// Cultural region of each country, used to pick plausible names.
pub fn region_of(country: &str) -> &'static str {
    match country {
        "China" | "Japan" | "South Korea" | "Vietnam" | "Philippines" | "Indonesia" => "east_asia",
        "India" | "Pakistan" | "Bangladesh" => "south_asia",
        "United States" | "United Kingdom" | "Canada" | "Australia" | "Ireland" => "anglo",
        "Brazil" | "Portugal" => "luso",
        "Mexico" | "Spain" | "Argentina" | "Chile" => "hispanic",
        "Russia" | "Ukraine" | "Poland" | "Czechia" | "Hungary" => "slavic",
        "Germany" | "Austria" | "Switzerland" | "Netherlands" => "germanic",
        "France" => "french",
        "Italy" | "Greece" => "mediterranean",
        "Nigeria" | "Egypt" | "Morocco" | "Turkey" => "africa_mena",
        "Sweden" | "Denmark" | "Finland" | "Norway" => "nordic",
        _ => "anglo",
    }
}

/// Male given names per region.
pub const MALE_NAMES: &[(&str, &[&str])] = &[
    (
        "east_asia",
        &[
            "Wei",
            "Hiroshi",
            "Min-jun",
            "Duc",
            "Jose Maria",
            "Budi",
            "Jian",
            "Takeshi",
        ],
    ),
    (
        "south_asia",
        &[
            "Arjun", "Rahul", "Imran", "Ravi", "Sanjay", "Amit", "Faisal", "Vikram",
        ],
    ),
    (
        "anglo",
        &[
            "James", "John", "William", "Oliver", "Jack", "Liam", "Noah", "Thomas",
        ],
    ),
    (
        "luso",
        &[
            "João", "Pedro", "Miguel", "Tiago", "Rafael", "Bruno", "Diogo", "André",
        ],
    ),
    (
        "hispanic",
        &[
            "Santiago",
            "Mateo",
            "Diego",
            "Javier",
            "Carlos",
            "Alejandro",
            "Pablo",
            "Luis",
        ],
    ),
    (
        "slavic",
        &[
            "Ivan",
            "Dmitri",
            "Aleksandr",
            "Pavel",
            "Mikhail",
            "Jan",
            "Tomasz",
            "Andrei",
        ],
    ),
    (
        "germanic",
        &[
            "Lukas",
            "Felix",
            "Maximilian",
            "Jonas",
            "Paul",
            "Finn",
            "Daan",
            "Lars",
        ],
    ),
    (
        "french",
        &[
            "Gabriel", "Louis", "Raphaël", "Jules", "Adam", "Lucas", "Léo", "Hugo",
        ],
    ),
    (
        "mediterranean",
        &[
            "Francesco",
            "Alessandro",
            "Lorenzo",
            "Matteo",
            "Giorgos",
            "Nikos",
            "Luca",
            "Marco",
        ],
    ),
    (
        "africa_mena",
        &[
            "Mohamed", "Ahmed", "Youssef", "Omar", "Chinedu", "Emeka", "Mustafa", "Ali",
        ],
    ),
    (
        "nordic",
        &[
            "Erik", "Lars", "Mikael", "Johan", "Anders", "Henrik", "Olav", "Magnus",
        ],
    ),
];

/// Female given names per region.
pub const FEMALE_NAMES: &[(&str, &[&str])] = &[
    (
        "east_asia",
        &[
            "Mei",
            "Yuki",
            "Seo-yeon",
            "Linh",
            "Maria Clara",
            "Siti",
            "Xiu",
            "Sakura",
        ],
    ),
    (
        "south_asia",
        &[
            "Priya", "Ananya", "Fatima", "Aisha", "Deepika", "Kavya", "Zara", "Meera",
        ],
    ),
    (
        "anglo",
        &[
            "Olivia",
            "Emma",
            "Charlotte",
            "Amelia",
            "Sophie",
            "Grace",
            "Emily",
            "Lily",
        ],
    ),
    (
        "luso",
        &[
            "Maria", "Ana", "Beatriz", "Mariana", "Carolina", "Inês", "Sofia", "Leonor",
        ],
    ),
    (
        "hispanic",
        &[
            "Sofía",
            "Valentina",
            "Isabella",
            "Camila",
            "Lucía",
            "Elena",
            "Carmen",
            "Paula",
        ],
    ),
    (
        "slavic",
        &[
            "Anastasia",
            "Olga",
            "Natalia",
            "Irina",
            "Katarzyna",
            "Anna",
            "Svetlana",
            "Ekaterina",
        ],
    ),
    (
        "germanic",
        &[
            "Mia", "Hannah", "Emilia", "Lena", "Marie", "Clara", "Julia", "Sanne",
        ],
    ),
    (
        "french",
        &[
            "Jade", "Louise", "Alice", "Chloé", "Inès", "Léa", "Manon", "Camille",
        ],
    ),
    (
        "mediterranean",
        &[
            "Giulia",
            "Sofia",
            "Aurora",
            "Martina",
            "Eleni",
            "Chiara",
            "Francesca",
            "Elena",
        ],
    ),
    (
        "africa_mena",
        &[
            "Fatma", "Amina", "Layla", "Zainab", "Chioma", "Ngozi", "Yasmin", "Mariam",
        ],
    ),
    (
        "nordic",
        &[
            "Alma", "Freja", "Ingrid", "Astrid", "Maja", "Elsa", "Saga", "Sigrid",
        ],
    ),
];

/// Family names per region.
pub const SURNAMES: &[(&str, &[&str])] = &[
    (
        "east_asia",
        &[
            "Wang", "Tanaka", "Kim", "Nguyen", "Santos", "Wijaya", "Chen", "Sato",
        ],
    ),
    (
        "south_asia",
        &[
            "Sharma", "Patel", "Khan", "Singh", "Gupta", "Kumar", "Ahmed", "Iyer",
        ],
    ),
    (
        "anglo",
        &[
            "Smith", "Jones", "Taylor", "Brown", "Wilson", "Murphy", "Walker", "White",
        ],
    ),
    (
        "luso",
        &[
            "Silva",
            "Santos",
            "Ferreira",
            "Pereira",
            "Oliveira",
            "Costa",
            "Rodrigues",
            "Almeida",
        ],
    ),
    (
        "hispanic",
        &[
            "García",
            "Rodríguez",
            "Martínez",
            "López",
            "González",
            "Hernández",
            "Pérez",
            "Sánchez",
        ],
    ),
    (
        "slavic",
        &[
            "Ivanov", "Petrov", "Nowak", "Kowalski", "Smirnov", "Novák", "Horváth", "Volkov",
        ],
    ),
    (
        "germanic",
        &[
            "Müller",
            "Schmidt",
            "Schneider",
            "Fischer",
            "Weber",
            "Meyer",
            "de Vries",
            "Wagner",
        ],
    ),
    (
        "french",
        &[
            "Martin", "Bernard", "Dubois", "Thomas", "Robert", "Richard", "Petit", "Durand",
        ],
    ),
    (
        "mediterranean",
        &[
            "Rossi",
            "Russo",
            "Ferrari",
            "Esposito",
            "Papadopoulos",
            "Bianchi",
            "Romano",
            "Colombo",
        ],
    ),
    (
        "africa_mena",
        &[
            "Mohamed", "Hassan", "Okafor", "Adeyemi", "Yılmaz", "Kaya", "El-Sayed", "Demir",
        ],
    ),
    (
        "nordic",
        &[
            "Hansen",
            "Johansson",
            "Andersson",
            "Nielsen",
            "Korhonen",
            "Larsen",
            "Berg",
            "Lindberg",
        ],
    ),
];

/// Discussion topics with zipf-ish weights.
pub const TOPICS: &[(&str, f64)] = &[
    ("music", 10.0),
    ("sports", 9.0),
    ("movies", 8.0),
    ("politics", 7.0),
    ("technology", 7.0),
    ("travel", 6.0),
    ("food", 6.0),
    ("gaming", 5.0),
    ("fashion", 4.0),
    ("science", 4.0),
    ("books", 3.0),
    ("photography", 3.0),
    ("fitness", 3.0),
    ("art", 2.0),
    ("history", 2.0),
    ("economics", 2.0),
    ("gardening", 1.0),
    ("astronomy", 1.0),
    ("chess", 1.0),
    ("cooking", 3.0),
    ("cycling", 2.0),
    ("hiking", 2.0),
    ("theatre", 1.0),
    ("poetry", 1.0),
];

/// Filler vocabulary for synthetic message text.
pub const WORDS: &[&str] = &[
    "the", "of", "and", "to", "in", "is", "it", "that", "was", "for", "on", "are", "with", "as",
    "at", "be", "this", "have", "from", "or", "had", "by", "but", "some", "what", "there", "we",
    "can", "out", "other", "were", "all", "your", "when", "up", "use", "how", "said", "each",
    "she", "which", "their", "time", "will", "way", "about", "many", "then", "them", "would",
    "like", "so", "these", "her", "long", "make", "thing", "see", "him", "two", "has", "look",
    "more", "day", "could", "go", "come", "did", "my", "no", "most", "who", "over", "know", "than",
    "call", "first", "people", "side", "been", "now", "find", "new", "great",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_country_has_a_name_region() {
        for (country, _) in COUNTRIES {
            let region = region_of(country);
            assert!(
                MALE_NAMES.iter().any(|(r, _)| *r == region),
                "{country} -> {region} missing in MALE_NAMES"
            );
            assert!(
                FEMALE_NAMES.iter().any(|(r, _)| *r == region),
                "{country} -> {region} missing in FEMALE_NAMES"
            );
        }
    }

    #[test]
    fn every_region_has_surnames() {
        for (country, _) in COUNTRIES {
            let region = region_of(country);
            assert!(
                SURNAMES.iter().any(|(r, _)| *r == region),
                "{country} -> {region} missing in SURNAMES"
            );
        }
    }

    #[test]
    fn weights_are_positive() {
        assert!(COUNTRIES.iter().all(|(_, w)| *w > 0.0));
        assert!(TOPICS.iter().all(|(_, w)| *w > 0.0));
    }

    #[test]
    fn no_duplicate_countries() {
        let mut seen = std::collections::HashSet::new();
        for (c, _) in COUNTRIES {
            assert!(seen.insert(*c), "duplicate {c}");
        }
    }
}
