//! Conditional dictionaries: `P(value | dep values)`, the running
//! example's `Person.name` correlated with `country` and `sex`.

use std::collections::HashMap;

use datasynth_prng::dist::{Categorical, Sampler};
use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

use crate::error::need_deps;
use crate::{GenError, PropertyGenerator};

/// Maps dependency values to a table key.
type KeyFn = Box<dyn Fn(&[Value]) -> String + Send + Sync>;

/// Dictionary keyed by the rendered dependency tuple. A `fallback`
/// vocabulary (optional) serves keys with no dedicated entry.
pub struct ConditionalDictionary {
    registry_name: &'static str,
    arity: usize,
    tables: HashMap<String, (Vec<String>, Categorical)>,
    fallback: Option<(Vec<String>, Categorical)>,
    key_fn: KeyFn,
}

impl std::fmt::Debug for ConditionalDictionary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ConditionalDictionary")
            .field("registry_name", &self.registry_name)
            .field("arity", &self.arity)
            .field("keys", &self.tables.len())
            .finish()
    }
}

fn table_of(entries: &[(&str, f64)]) -> (Vec<String>, Categorical) {
    let weights: Vec<f64> = entries.iter().map(|(_, w)| *w).collect();
    (
        entries.iter().map(|(e, _)| (*e).to_owned()).collect(),
        Categorical::new(&weights),
    )
}

impl ConditionalDictionary {
    /// Build from `(key, vocabulary)` pairs; the key is the `|`-joined
    /// rendering of the dependency values.
    pub fn new(arity: usize, entries: &[(&str, &[(&str, f64)])]) -> Self {
        assert!(arity >= 1, "conditional dictionary needs dependencies");
        assert!(!entries.is_empty(), "no conditional entries");
        let tables = entries
            .iter()
            .map(|(k, es)| ((*k).to_owned(), table_of(es)))
            .collect();
        Self {
            registry_name: "conditional_dictionary",
            arity,
            tables,
            fallback: None,
            key_fn: Box::new(default_key),
        }
    }

    /// Provide a vocabulary for unknown keys.
    pub fn with_fallback(mut self, entries: &[(&str, f64)]) -> Self {
        self.fallback = Some(table_of(entries));
        self
    }

    /// Override how dependency values map to table keys.
    pub fn with_key_fn(
        mut self,
        key_fn: impl Fn(&[Value]) -> String + Send + Sync + 'static,
    ) -> Self {
        self.key_fn = Box::new(key_fn);
        self
    }

    /// The built-in given-name dictionary conditioned on
    /// `(country, sex)` — sex is matched on its first letter (`M`/`F`),
    /// country through its cultural region.
    pub fn first_names() -> Self {
        let mut entries: Vec<(String, Vec<(&str, f64)>)> = Vec::new();
        for (region, names) in crate::data::MALE_NAMES {
            entries.push((
                format!("{region}|M"),
                names.iter().map(|&n| (n, 1.0)).collect(),
            ));
        }
        for (region, names) in crate::data::FEMALE_NAMES {
            entries.push((
                format!("{region}|F"),
                names.iter().map(|&n| (n, 1.0)).collect(),
            ));
        }
        let borrowed: Vec<(&str, &[(&str, f64)])> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
            .collect();
        let mut dict = Self::new(2, &borrowed);
        dict.registry_name = "first_names";
        dict.key_fn = Box::new(|deps: &[Value]| {
            let country = deps[0].as_text().unwrap_or("");
            let sex = deps[1]
                .as_text()
                .and_then(|s| s.chars().next())
                .map(|c| c.to_ascii_uppercase())
                .unwrap_or('M');
            format!("{}|{}", crate::data::region_of(country), sex)
        });
        dict
    }

    /// Number of distinct condition keys.
    pub fn key_count(&self) -> usize {
        self.tables.len()
    }
}

fn default_key(deps: &[Value]) -> String {
    let mut key = String::new();
    for (i, d) in deps.iter().enumerate() {
        if i > 0 {
            key.push('|');
        }
        key.push_str(&d.render());
    }
    key
}

impl PropertyGenerator for ConditionalDictionary {
    fn name(&self) -> &'static str {
        self.registry_name
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps(self.registry_name, deps, self.arity)?;
        let key = (self.key_fn)(&deps[..self.arity]);
        let (entries, dist) = self
            .tables
            .get(&key)
            .or(self.fallback.as_ref())
            .ok_or_else(|| GenError::BadDependencyValue {
                generator: self.registry_name,
                value: key.clone(),
            })?;
        Ok(Value::Text(entries[dist.sample(rng)].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn names_respect_country_and_sex() {
        let g = ConditionalDictionary::first_names();
        let s = TableStream::derive(1, "names");
        let spanish_female: Vec<&str> = crate::data::FEMALE_NAMES
            .iter()
            .find(|(r, _)| *r == "hispanic")
            .map(|(_, names)| names.to_vec())
            .unwrap();
        for id in 0..200 {
            let mut rng = s.substream(id);
            let v = g
                .generate(
                    id,
                    &mut rng,
                    &[Value::Text("Spain".into()), Value::Text("F".into())],
                )
                .unwrap();
            let name = v.as_text().unwrap().to_owned();
            assert!(
                spanish_female.contains(&name.as_str()),
                "{name} is not a hispanic female name"
            );
        }
    }

    #[test]
    fn explicit_tables_and_fallback() {
        let g = ConditionalDictionary::new(1, &[("hot", &[("fire", 1.0)])])
            .with_fallback(&[("meh", 1.0)]);
        let s = TableStream::derive(2, "x");
        let mut rng = s.substream(0);
        assert_eq!(
            g.generate(0, &mut rng, &[Value::Text("hot".into())])
                .unwrap(),
            Value::Text("fire".into())
        );
        assert_eq!(
            g.generate(0, &mut rng, &[Value::Text("cold".into())])
                .unwrap(),
            Value::Text("meh".into())
        );
    }

    #[test]
    fn unknown_key_without_fallback_errors() {
        let g = ConditionalDictionary::new(1, &[("a", &[("x", 1.0)])]);
        let s = TableStream::derive(2, "x");
        let mut rng = s.substream(0);
        assert!(matches!(
            g.generate(0, &mut rng, &[Value::Text("b".into())]),
            Err(GenError::BadDependencyValue { .. })
        ));
    }

    #[test]
    fn missing_deps_error() {
        let g = ConditionalDictionary::first_names();
        let s = TableStream::derive(2, "x");
        let mut rng = s.substream(0);
        assert!(matches!(
            g.generate(0, &mut rng, &[]),
            Err(GenError::MissingDependency { .. })
        ));
    }
}
