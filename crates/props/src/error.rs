//! Property-generation errors.

use std::fmt;

use datasynth_tables::ValueType;

/// Errors a [`PropertyGenerator`](crate::PropertyGenerator) can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GenError {
    /// Fewer dependency values than the generator's arity.
    MissingDependency {
        /// Generator name.
        generator: &'static str,
        /// Expected dependency count.
        expected: usize,
        /// Received dependency count.
        got: usize,
    },
    /// A dependency value has the wrong type.
    WrongDependencyType {
        /// Generator name.
        generator: &'static str,
        /// Position of the offending dependency.
        position: usize,
        /// Expected type.
        expected: ValueType,
    },
    /// A dependency value is outside the generator's domain
    /// (e.g. an unknown dictionary key).
    BadDependencyValue {
        /// Generator name.
        generator: &'static str,
        /// Rendered offending value.
        value: String,
    },
}

impl fmt::Display for GenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GenError::MissingDependency {
                generator,
                expected,
                got,
            } => write!(
                f,
                "{generator}: expected {expected} dependency values, got {got}"
            ),
            GenError::WrongDependencyType {
                generator,
                position,
                expected,
            } => write!(
                f,
                "{generator}: dependency {position} must be of type {expected}"
            ),
            GenError::BadDependencyValue { generator, value } => {
                write!(f, "{generator}: dependency value {value:?} not in domain")
            }
        }
    }
}

impl std::error::Error for GenError {}

pub(crate) fn need_deps(
    generator: &'static str,
    deps: &[datasynth_tables::Value],
    expected: usize,
) -> Result<(), GenError> {
    if deps.len() < expected {
        return Err(GenError::MissingDependency {
            generator,
            expected,
            got: deps.len(),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages_name_the_generator() {
        let e = GenError::MissingDependency {
            generator: "conditional_names",
            expected: 2,
            got: 0,
        };
        assert!(e.to_string().contains("conditional_names"));
    }
}
