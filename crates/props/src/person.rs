//! Composite person-identity generators: surnames, full names and e-mail
//! addresses derived from other properties — the kind of cross-property
//! consistency the schema requirement asks for ("the name of a Person is
//! clearly correlated with the sex and the country").

use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

use crate::error::need_deps;
use crate::{ConditionalDictionary, GenError, PropertyGenerator};

/// Family names conditioned on `country` (through its cultural region).
#[derive(Debug)]
pub struct SurnameGen {
    inner: ConditionalDictionary,
}

impl SurnameGen {
    /// Create; expects one dependency: the country.
    pub fn new() -> Self {
        let mut entries: Vec<(String, Vec<(&str, f64)>)> = Vec::new();
        for (region, names) in crate::data::SURNAMES {
            entries.push((
                (*region).to_owned(),
                names.iter().map(|&n| (n, 1.0)).collect(),
            ));
        }
        let borrowed: Vec<(&str, &[(&str, f64)])> = entries
            .iter()
            .map(|(k, v)| (k.as_str(), v.as_slice()))
            .collect();
        let inner = ConditionalDictionary::new(1, &borrowed).with_key_fn(|deps: &[Value]| {
            crate::data::region_of(deps[0].as_text().unwrap_or("")).to_owned()
        });
        Self { inner }
    }
}

impl Default for SurnameGen {
    fn default() -> Self {
        Self::new()
    }
}

impl PropertyGenerator for SurnameGen {
    fn name(&self) -> &'static str {
        "surnames"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn arity(&self) -> usize {
        1
    }

    fn generate(&self, id: u64, rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps("surnames", deps, 1)?;
        self.inner.generate(id, rng, deps)
    }
}

/// Full name `"<given> <family>"` from two text dependencies (typically
/// `name` and `surname`).
#[derive(Debug, Clone, Copy, Default)]
pub struct FullNameGen;

impl PropertyGenerator for FullNameGen {
    fn name(&self) -> &'static str {
        "full_name"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn arity(&self) -> usize {
        2
    }

    fn generate(&self, _id: u64, _rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps("full_name", deps, 2)?;
        Ok(Value::Text(format!(
            "{} {}",
            deps[0].render(),
            deps[1].render()
        )))
    }
}

/// Unique e-mail address from a name dependency: `ascii(name).id@domain`.
/// Embedding the id guarantees uniqueness without coordination — the same
/// trick the paper describes for uuids.
#[derive(Debug, Clone)]
pub struct EmailGen {
    domains: Vec<String>,
}

impl EmailGen {
    /// Create with a list of candidate domains.
    pub fn new(domains: &[&str]) -> Self {
        assert!(!domains.is_empty(), "need at least one domain");
        Self {
            domains: domains.iter().map(|d| (*d).to_owned()).collect(),
        }
    }
}

impl Default for EmailGen {
    fn default() -> Self {
        Self::new(&["example.com", "mail.example.org", "post.example.net"])
    }
}

fn ascii_slug(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            'a'..='z' | '0'..='9' => out.push(ch),
            'A'..='Z' => out.push(ch.to_ascii_lowercase()),
            ' ' | '-' | '.' | '\'' => out.push('.'),
            _ => {} // drop accents and other non-ascii outright
        }
    }
    if out.is_empty() {
        out.push('u');
    }
    out
}

impl PropertyGenerator for EmailGen {
    fn name(&self) -> &'static str {
        "email"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn arity(&self) -> usize {
        1
    }

    fn generate(&self, id: u64, rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps("email", deps, 1)?;
        let domain = &self.domains[rng.next_below(self.domains.len() as u64) as usize];
        Ok(Value::Text(format!(
            "{}.{id}@{domain}",
            ascii_slug(&deps[0].render())
        )))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn surnames_follow_region() {
        let g = SurnameGen::new();
        let s = TableStream::derive(1, "t");
        let hispanic: Vec<&str> = crate::data::SURNAMES
            .iter()
            .find(|(r, _)| *r == "hispanic")
            .map(|(_, ns)| ns.to_vec())
            .unwrap();
        for id in 0..100 {
            let mut rng = s.substream(id);
            let v = g
                .generate(id, &mut rng, &[Value::Text("Mexico".into())])
                .unwrap();
            assert!(hispanic.contains(&v.as_text().unwrap()));
        }
    }

    #[test]
    fn full_name_concatenates() {
        let g = FullNameGen;
        let s = TableStream::derive(1, "t");
        let mut rng = s.substream(0);
        let v = g
            .generate(
                0,
                &mut rng,
                &[Value::Text("Ana".into()), Value::Text("García".into())],
            )
            .unwrap();
        assert_eq!(v.as_text().unwrap(), "Ana García");
    }

    #[test]
    fn emails_are_unique_and_ascii() {
        let g = EmailGen::default();
        let s = TableStream::derive(1, "t");
        let mut seen = std::collections::HashSet::new();
        for id in 0..500 {
            let mut rng = s.substream(id);
            let v = g
                .generate(id, &mut rng, &[Value::Text("José Müller".into())])
                .unwrap();
            let email = v.as_text().unwrap().to_owned();
            assert!(email.is_ascii(), "{email}");
            assert!(email.contains('@'));
            assert!(email.starts_with("jos.mller."), "{email}");
            assert!(seen.insert(email));
        }
    }

    #[test]
    fn slug_handles_empty_and_symbols() {
        assert_eq!(ascii_slug("你好"), "u");
        assert_eq!(ascii_slug("Mary-Jane O'Neil"), "mary.jane.o.neil");
    }
}
