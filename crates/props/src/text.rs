//! Synthetic text: sentences from the embedded vocabulary, optionally
//! seeded with a topic dependency (the running example's `Message.text`
//! given `Message.topic`).

use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

use crate::error::need_deps;
use crate::{GenError, PropertyGenerator};

/// Generates a sentence of `min..=max` filler words; when `topic_arity`
/// is 1, the first dependency's text is woven into the sentence.
#[derive(Debug, Clone)]
pub struct SentenceGen {
    min_words: u64,
    max_words: u64,
    topic_arity: usize,
}

impl SentenceGen {
    /// Sentence with no dependencies.
    pub fn new(min_words: u64, max_words: u64) -> Self {
        assert!(min_words >= 1 && min_words <= max_words, "bad word range");
        Self {
            min_words,
            max_words,
            topic_arity: 0,
        }
    }

    /// Sentence mentioning its (single) dependency value.
    pub fn about_topic(min_words: u64, max_words: u64) -> Self {
        let mut g = Self::new(min_words, max_words);
        g.topic_arity = 1;
        g
    }
}

impl PropertyGenerator for SentenceGen {
    fn name(&self) -> &'static str {
        "sentence"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn arity(&self) -> usize {
        self.topic_arity
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps("sentence", deps, self.topic_arity)?;
        let words = crate::data::WORDS;
        let len = rng.next_range_inclusive(self.min_words, self.max_words);
        let mut out = String::with_capacity(len as usize * 6);
        let topic_pos = if self.topic_arity == 1 {
            Some(rng.next_below(len))
        } else {
            None
        };
        for i in 0..len {
            if i > 0 {
                out.push(' ');
            }
            if Some(i) == topic_pos {
                out.push_str(&deps[0].render());
            } else {
                out.push_str(words[rng.next_below(words.len() as u64) as usize]);
            }
        }
        Ok(Value::Text(out))
    }
}

/// Formats dependencies into a template: `{0}`, `{1}`, ... are replaced by
/// the rendered dependency values, `{id}` by the instance id.
#[derive(Debug, Clone)]
pub struct TemplateGen {
    template: String,
    arity: usize,
}

impl TemplateGen {
    /// Create from a template string; arity is the number of distinct
    /// `{k}` placeholders expected as dependencies.
    pub fn new(template: impl Into<String>, arity: usize) -> Self {
        Self {
            template: template.into(),
            arity,
        }
    }
}

impl PropertyGenerator for TemplateGen {
    fn name(&self) -> &'static str {
        "template"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn generate(&self, id: u64, _rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps("template", deps, self.arity)?;
        let mut out = self.template.replace("{id}", &id.to_string());
        for (i, dep) in deps.iter().enumerate().take(self.arity) {
            out = out.replace(&format!("{{{i}}}"), &dep.render());
        }
        Ok(Value::Text(out))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn sentence_length_bounds() {
        let g = SentenceGen::new(3, 7);
        let s = TableStream::derive(1, "text");
        for id in 0..300 {
            let mut rng = s.substream(id);
            let v = g.generate(id, &mut rng, &[]).unwrap();
            let count = v.as_text().unwrap().split(' ').count();
            assert!((3..=7).contains(&count), "{count} words");
        }
    }

    #[test]
    fn topic_sentence_mentions_topic() {
        let g = SentenceGen::about_topic(4, 8);
        let s = TableStream::derive(1, "text");
        for id in 0..100 {
            let mut rng = s.substream(id);
            let v = g
                .generate(id, &mut rng, &[Value::Text("astronomy".into())])
                .unwrap();
            assert!(
                v.as_text().unwrap().contains("astronomy"),
                "missing topic in {v}"
            );
        }
    }

    #[test]
    fn template_substitution() {
        let g = TemplateGen::new("user-{id}: {0} from {1}", 2);
        let s = TableStream::derive(1, "t");
        let mut rng = s.substream(42);
        let v = g
            .generate(
                42,
                &mut rng,
                &[Value::Text("Ana".into()), Value::Text("Spain".into())],
            )
            .unwrap();
        assert_eq!(v.as_text().unwrap(), "user-42: Ana from Spain");
    }

    #[test]
    fn template_missing_deps() {
        let g = TemplateGen::new("{0}", 1);
        let s = TableStream::derive(1, "t");
        let mut rng = s.substream(0);
        assert!(g.generate(0, &mut rng, &[]).is_err());
    }
}
