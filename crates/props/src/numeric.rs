//! Numeric property generators wrapping the sampling library.

use datasynth_prng::dist::{Geometric, Normal, Sampler, UniformF64, UniformU64, Zipf};
use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

use crate::{GenError, PropertyGenerator};

/// Uniform integers in `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
pub struct UniformLongGen {
    dist: UniformU64,
    offset: i64,
}

impl UniformLongGen {
    /// Create over the inclusive signed range.
    pub fn new(lo: i64, hi: i64) -> Self {
        assert!(lo <= hi, "empty range");
        Self {
            dist: UniformU64::new(0, (hi - lo) as u64),
            offset: lo,
        }
    }
}

impl PropertyGenerator for UniformLongGen {
    fn name(&self) -> &'static str {
        "uniform"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Long
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Long(self.offset + self.dist.sample(rng) as i64))
    }
}

/// Uniform doubles in `[lo, hi)`.
#[derive(Debug, Clone, Copy)]
pub struct UniformDoubleGen {
    dist: UniformF64,
}

impl UniformDoubleGen {
    /// Create over the half-open real range.
    pub fn new(lo: f64, hi: f64) -> Self {
        Self {
            dist: UniformF64::new(lo, hi),
        }
    }
}

impl PropertyGenerator for UniformDoubleGen {
    fn name(&self) -> &'static str {
        "uniform_double"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Double
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Double(self.dist.sample(rng)))
    }
}

/// Zipf-distributed ranks in `1..=n` (popularity-style values).
#[derive(Debug, Clone)]
pub struct ZipfGen {
    dist: Zipf,
}

impl ZipfGen {
    /// Create with exponent `s` over `n` ranks.
    pub fn new(s: f64, n: u64) -> Self {
        Self {
            dist: Zipf::new(s, n),
        }
    }
}

impl PropertyGenerator for ZipfGen {
    fn name(&self) -> &'static str {
        "zipf"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Long
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Long(self.dist.sample(rng) as i64))
    }
}

/// Normally distributed doubles.
#[derive(Debug, Clone, Copy)]
pub struct NormalGen {
    dist: Normal,
}

impl NormalGen {
    /// Create with mean and standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        Self {
            dist: Normal::new(mean, std_dev),
        }
    }
}

impl PropertyGenerator for NormalGen {
    fn name(&self) -> &'static str {
        "normal"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Double
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Double(self.dist.sample(rng)))
    }
}

/// Geometrically distributed longs (counts with a long tail).
#[derive(Debug, Clone, Copy)]
pub struct GeometricGen {
    dist: Geometric,
}

impl GeometricGen {
    /// Create with success probability `p`.
    pub fn new(p: f64) -> Self {
        Self {
            dist: Geometric::new(p),
        }
    }
}

impl PropertyGenerator for GeometricGen {
    fn name(&self) -> &'static str {
        "geometric"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Long
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Long(self.dist.sample(rng) as i64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    fn column<G: PropertyGenerator>(g: &G, n: u64) -> Vec<Value> {
        let s = TableStream::derive(3, "num");
        (0..n)
            .map(|id| {
                let mut rng = s.substream(id);
                g.generate(id, &mut rng, &[]).unwrap()
            })
            .collect()
    }

    #[test]
    fn uniform_long_negative_ranges() {
        let g = UniformLongGen::new(-10, -1);
        for v in column(&g, 1000) {
            let x = v.as_long().unwrap();
            assert!((-10..=-1).contains(&x));
        }
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let g = ZipfGen::new(1.3, 100);
        let ones = column(&g, 5000)
            .iter()
            .filter(|v| v.as_long() == Some(1))
            .count();
        assert!(ones > 500, "rank 1 count {ones}");
    }

    #[test]
    fn normal_mean() {
        let g = NormalGen::new(10.0, 2.0);
        let vals = column(&g, 20_000);
        let mean: f64 = vals.iter().map(|v| v.as_double().unwrap()).sum::<f64>() / 20_000.0;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn geometric_zero_heavy() {
        let g = GeometricGen::new(0.5);
        let zeros = column(&g, 10_000)
            .iter()
            .filter(|v| v.as_long() == Some(0))
            .count();
        assert!((zeros as f64 / 10_000.0 - 0.5).abs() < 0.02);
    }

    #[test]
    fn uniform_double_bounds() {
        let g = UniformDoubleGen::new(1.5, 2.5);
        for v in column(&g, 1000) {
            let x = v.as_double().unwrap();
            assert!((1.5..2.5).contains(&x));
        }
    }
}
