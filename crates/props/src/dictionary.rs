//! Weighted dictionary generators: draw a string from a weighted
//! vocabulary by inverse transform.

use datasynth_prng::dist::{Categorical, Sampler};
use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

use crate::{GenError, PropertyGenerator};

/// Weighted string dictionary.
#[derive(Debug, Clone)]
pub struct DictionaryGen {
    registry_name: &'static str,
    entries: Vec<String>,
    dist: Categorical,
}

impl DictionaryGen {
    /// Build from `(entry, weight)` pairs.
    pub fn new(pairs: &[(&str, f64)]) -> Self {
        Self::with_registry_name("dictionary", pairs)
    }

    /// Build with an explicit registry name (used by named built-ins).
    pub fn with_registry_name(registry_name: &'static str, pairs: &[(&str, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empty dictionary");
        let weights: Vec<f64> = pairs.iter().map(|(_, w)| *w).collect();
        Self {
            registry_name,
            entries: pairs.iter().map(|(e, _)| (*e).to_owned()).collect(),
            dist: Categorical::new(&weights),
        }
    }

    /// Uniformly weighted dictionary.
    pub fn uniform(entries: &[&str]) -> Self {
        let pairs: Vec<(&str, f64)> = entries.iter().map(|&e| (e, 1.0)).collect();
        Self::new(&pairs)
    }

    /// The built-in country dictionary (population-weighted).
    pub fn countries() -> Self {
        Self::with_registry_name("countries", crate::data::COUNTRIES)
    }

    /// The built-in topic dictionary.
    pub fn topics() -> Self {
        Self::with_registry_name("topics", crate::data::TOPICS)
    }

    /// Entries in declaration order.
    pub fn entries(&self) -> &[String] {
        &self.entries
    }

    /// Probability of one entry.
    pub fn probability_of(&self, entry: &str) -> f64 {
        self.entries
            .iter()
            .position(|e| e == entry)
            .map_or(0.0, |i| self.dist.probability(i))
    }
}

impl PropertyGenerator for DictionaryGen {
    fn name(&self) -> &'static str {
        self.registry_name
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Text(self.entries[self.dist.sample(rng)].clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn frequencies_track_weights() {
        let g = DictionaryGen::new(&[("a", 8.0), ("b", 2.0)]);
        let s = TableStream::derive(1, "t");
        let mut a_count = 0u32;
        for id in 0..20_000 {
            let mut rng = s.substream(id);
            if g.generate(id, &mut rng, &[]).unwrap() == Value::Text("a".into()) {
                a_count += 1;
            }
        }
        let frac = f64::from(a_count) / 20_000.0;
        assert!((frac - 0.8).abs() < 0.01, "frac {frac}");
    }

    #[test]
    fn builtin_dictionaries_are_wired() {
        let countries = DictionaryGen::countries();
        assert!(countries.probability_of("China") > countries.probability_of("Norway"));
        let topics = DictionaryGen::topics();
        assert!(topics.probability_of("music") > 0.0);
        assert_eq!(topics.probability_of("not-a-topic"), 0.0);
    }

    #[test]
    fn uniform_is_uniform() {
        let g = DictionaryGen::uniform(&["x", "y", "z", "w"]);
        for e in g.entries() {
            assert!((g.probability_of(e) - 0.25).abs() < 1e-12);
        }
    }
}
