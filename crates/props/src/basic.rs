//! Trivial generators: constants, counters, uuids, booleans.

use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

use crate::{GenError, PropertyGenerator};

/// Emits the same value for every instance.
#[derive(Debug, Clone)]
pub struct ConstantGen {
    value: Value,
}

impl ConstantGen {
    /// Create from a non-null value.
    pub fn new(value: Value) -> Self {
        assert!(value.value_type().is_some(), "constant cannot be null");
        Self { value }
    }
}

impl PropertyGenerator for ConstantGen {
    fn name(&self) -> &'static str {
        "constant"
    }

    fn value_type(&self) -> ValueType {
        self.value.value_type().expect("checked at construction")
    }

    fn generate(
        &self,
        _id: u64,
        _rng: &mut SplitMix64,
        _deps: &[Value],
    ) -> Result<Value, GenError> {
        Ok(self.value.clone())
    }
}

/// Emits `start + id` — user-controlled sequential identifiers.
#[derive(Debug, Clone, Copy, Default)]
pub struct CounterGen {
    start: i64,
}

impl CounterGen {
    /// Create with an offset.
    pub fn new(start: i64) -> Self {
        Self { start }
    }
}

impl PropertyGenerator for CounterGen {
    fn name(&self) -> &'static str {
        "counter"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Long
    }

    fn generate(&self, id: u64, _rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Long(self.start.wrapping_add(id as i64)))
    }
}

/// Deterministic UUID-shaped identifiers derived from `(id, r(id))` — the
/// paper's "user-controlled uuids that can be correlated with other
/// properties such as the time".
#[derive(Debug, Clone, Copy, Default)]
pub struct UuidGen;

impl PropertyGenerator for UuidGen {
    fn name(&self) -> &'static str {
        "uuid"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Text
    }

    fn generate(&self, id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        let hi = rng.next_u64();
        let lo = id; // embed the id: uuids order like creation time
        let bytes_hi = hi.to_be_bytes();
        let bytes_lo = lo.to_be_bytes();
        Ok(Value::Text(format!(
            "{:02x}{:02x}{:02x}{:02x}-{:02x}{:02x}-4{:01x}{:02x}-{:02x}{:02x}-{:02x}{:02x}{:02x}{:02x}{:02x}{:02x}",
            bytes_hi[0],
            bytes_hi[1],
            bytes_hi[2],
            bytes_hi[3],
            bytes_hi[4],
            bytes_hi[5],
            bytes_hi[6] & 0x0F,
            bytes_hi[7],
            (bytes_lo[0] & 0x3F) | 0x80,
            bytes_lo[1],
            bytes_lo[2],
            bytes_lo[3],
            bytes_lo[4],
            bytes_lo[5],
            bytes_lo[6],
            bytes_lo[7],
        )))
    }
}

/// Bernoulli booleans.
#[derive(Debug, Clone, Copy)]
pub struct BoolGen {
    p: f64,
}

impl BoolGen {
    /// Create with `P(true) = p`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range");
        Self { p }
    }
}

impl PropertyGenerator for BoolGen {
    fn name(&self) -> &'static str {
        "bool"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Bool
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        Ok(Value::Bool(rng.next_bool(self.p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn constant_repeats() {
        let g = ConstantGen::new(Value::Text("x".into()));
        let s = TableStream::derive(1, "t");
        let mut rng = s.substream(0);
        assert_eq!(
            g.generate(0, &mut rng, &[]).unwrap(),
            Value::Text("x".into())
        );
        assert_eq!(g.value_type(), ValueType::Text);
    }

    #[test]
    fn counter_offsets() {
        let g = CounterGen::new(100);
        let s = TableStream::derive(1, "t");
        let mut rng = s.substream(5);
        assert_eq!(g.generate(5, &mut rng, &[]).unwrap(), Value::Long(105));
    }

    #[test]
    fn uuid_shape_and_uniqueness() {
        let g = UuidGen;
        let s = TableStream::derive(1, "t");
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000 {
            let mut rng = s.substream(id);
            let v = g.generate(id, &mut rng, &[]).unwrap();
            let text = v.as_text().unwrap().to_owned();
            assert_eq!(text.len(), 36);
            assert_eq!(text.matches('-').count(), 4);
            assert!(seen.insert(text));
        }
    }

    #[test]
    fn bool_frequency() {
        let g = BoolGen::new(0.25);
        let s = TableStream::derive(1, "t");
        let trues = (0..10_000)
            .filter(|&id| {
                let mut rng = s.substream(id);
                g.generate(id, &mut rng, &[]).unwrap() == Value::Bool(true)
            })
            .count();
        let frac = trues as f64 / 10_000.0;
        assert!((frac - 0.25).abs() < 0.02, "frac {frac}");
    }
}
