//! Date generators, including the running example's constraint that an
//! edge's `creationDate` exceeds the `creationDate` of both endpoints.

use datasynth_prng::SplitMix64;
use datasynth_tables::{parse_date, Value, ValueType};

use crate::error::need_deps;
use crate::{GenError, PropertyGenerator};

/// Uniform dates in `[from, to]` (inclusive, epoch days).
#[derive(Debug, Clone, Copy)]
pub struct DateBetween {
    from: i64,
    to: i64,
}

impl DateBetween {
    /// Create from epoch-day bounds.
    pub fn new(from: i64, to: i64) -> Self {
        assert!(from <= to, "empty date range");
        Self { from, to }
    }

    /// Create from ISO-8601 strings; `None` when either fails to parse.
    pub fn parse(from: &str, to: &str) -> Option<Self> {
        let (f, t) = (parse_date(from)?, parse_date(to)?);
        (f <= t).then(|| Self::new(f, t))
    }
}

impl PropertyGenerator for DateBetween {
    fn name(&self) -> &'static str {
        "date_between"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Date
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, _deps: &[Value]) -> Result<Value, GenError> {
        let span = (self.to - self.from) as u64 + 1;
        Ok(Value::Date(self.from + rng.next_below(span) as i64))
    }
}

/// A date strictly greater than every `Date`/`Long` dependency: the
/// `knows.creationDate > creationDate of both Persons` constraint. The gap
/// is `1 + Uniform(0, spread_days)`.
#[derive(Debug, Clone, Copy)]
pub struct DateAfterDeps {
    arity: usize,
    spread_days: u64,
}

impl DateAfterDeps {
    /// Create; `arity` dependencies expected, result within `spread_days`
    /// after the latest of them.
    pub fn new(arity: usize, spread_days: u64) -> Self {
        assert!(arity >= 1, "needs at least one dependency");
        Self { arity, spread_days }
    }
}

impl PropertyGenerator for DateAfterDeps {
    fn name(&self) -> &'static str {
        "date_after"
    }

    fn value_type(&self) -> ValueType {
        ValueType::Date
    }

    fn arity(&self) -> usize {
        self.arity
    }

    fn generate(&self, _id: u64, rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError> {
        need_deps("date_after", deps, self.arity)?;
        let mut latest = i64::MIN;
        for (position, dep) in deps.iter().take(self.arity).enumerate() {
            let day = dep.as_long().ok_or(GenError::WrongDependencyType {
                generator: "date_after",
                position,
                expected: ValueType::Date,
            })?;
            latest = latest.max(day);
        }
        let gap = 1 + rng.next_below(self.spread_days.max(1)) as i64;
        Ok(Value::Date(latest + gap))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn date_between_bounds_and_iso_parse() {
        let g = DateBetween::parse("2010-01-01", "2013-01-01").unwrap();
        let s = TableStream::derive(1, "d");
        let (lo, hi) = (
            parse_date("2010-01-01").unwrap(),
            parse_date("2013-01-01").unwrap(),
        );
        for id in 0..2000 {
            let mut rng = s.substream(id);
            let v = g.generate(id, &mut rng, &[]).unwrap();
            let d = v.as_long().unwrap();
            assert!((lo..=hi).contains(&d));
        }
        assert!(DateBetween::parse("bad", "2013-01-01").is_none());
    }

    #[test]
    fn date_after_exceeds_both_endpoints() {
        let g = DateAfterDeps::new(2, 30);
        let s = TableStream::derive(1, "d");
        for id in 0..500 {
            let mut rng = s.substream(id);
            let a = Value::Date(100 + (id % 50) as i64);
            let b = Value::Date(120 - (id % 20) as i64);
            let hi = a.as_long().unwrap().max(b.as_long().unwrap());
            let v = g.generate(id, &mut rng, &[a, b]).unwrap();
            let d = v.as_long().unwrap();
            assert!(d > hi, "id {id}: {d} <= {hi}");
            assert!(d <= hi + 30);
        }
    }

    #[test]
    fn date_after_rejects_missing_or_mistyped_deps() {
        let g = DateAfterDeps::new(2, 10);
        let s = TableStream::derive(1, "d");
        let mut rng = s.substream(0);
        assert!(matches!(
            g.generate(0, &mut rng, &[Value::Date(1)]),
            Err(GenError::MissingDependency { .. })
        ));
        assert!(matches!(
            g.generate(0, &mut rng, &[Value::Date(1), Value::Text("x".into())]),
            Err(GenError::WrongDependencyType { position: 1, .. })
        ));
    }
}
