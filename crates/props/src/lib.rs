//! Property Generators (PGs).
//!
//! A PG is the paper's pluggable value factory: `run(id, r(id), deps...) ->
//! value`, a *pure function* of the instance id, the table's random stream
//! at that id, and the values of the properties it depends on. Purity is
//! what makes in-place, distributed regeneration possible: any worker can
//! produce `Person.name[i]` knowing only `i` and the schema.
//!
//! This crate ships the built-in generator library — constants, counters,
//! uuids, numeric distributions, dates (including the running example's
//! "edge date greater than both endpoint dates"), weighted dictionaries,
//! conditional dictionaries (`name | country, sex`), and synthetic text —
//! plus embedded sample dictionaries and a name-based registry for the DSL.

mod basic;
mod conditional;
pub mod data;
mod date;
mod dictionary;
mod error;
mod numeric;
mod person;
mod registry;
mod text;

pub use basic::{BoolGen, ConstantGen, CounterGen, UuidGen};
pub use conditional::ConditionalDictionary;
pub use date::{DateAfterDeps, DateBetween};
pub use dictionary::DictionaryGen;
pub use error::GenError;
pub use numeric::{GeometricGen, NormalGen, UniformDoubleGen, UniformLongGen, ZipfGen};
pub use person::{EmailGen, FullNameGen, SurnameGen};
pub use registry::{
    build_property_generator, BoxedPropertyGenerator, GenArg, PropertyRegistry, RegistryError,
    PROPERTY_GENERATOR_NAMES,
};
pub use text::{SentenceGen, TemplateGen};

use datasynth_prng::SplitMix64;
use datasynth_tables::{Value, ValueType};

/// A property generator: deterministic value production per instance.
pub trait PropertyGenerator: Send + Sync {
    /// Registry name.
    fn name(&self) -> &'static str;

    /// Type of the values produced.
    fn value_type(&self) -> ValueType;

    /// Produce the value for instance `id`. `rng` is a sub-stream of the
    /// property table's skip-seed PRNG rooted at `id` (so the paper's
    /// `r(id)` is `rng.next_u64()`); `deps` holds the values of the
    /// declared dependencies, in declaration order.
    fn generate(&self, id: u64, rng: &mut SplitMix64, deps: &[Value]) -> Result<Value, GenError>;

    /// How many dependency values [`Self::generate`] expects (checked by
    /// the pipeline's dependency analysis).
    fn arity(&self) -> usize {
        0
    }
}

/// Convenience: generate a full column of `n` values with a fresh
/// sub-stream per id (what the pipeline does, minus parallelism).
pub fn generate_column(
    generator: &dyn PropertyGenerator,
    stream: &datasynth_prng::TableStream,
    n: u64,
    deps_for: impl Fn(u64) -> Vec<Value>,
) -> Result<Vec<Value>, GenError> {
    let mut out = Vec::with_capacity(n as usize);
    for id in 0..n {
        let mut rng = stream.substream(id);
        out.push(generator.generate(id, &mut rng, &deps_for(id))?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    #[test]
    fn generate_column_is_order_independent() {
        let g = UniformLongGen::new(0, 1_000_000);
        let stream = TableStream::derive(7, "t.p");
        let all = generate_column(&g, &stream, 100, |_| Vec::new()).unwrap();
        // Regenerate id 57 in isolation; must match the batch run.
        let mut rng = stream.substream(57);
        let solo = g.generate(57, &mut rng, &[]).unwrap();
        assert_eq!(solo, all[57]);
    }
}
