//! The open property-generator registry — the DSL's
//! `property = generator(args...)` clauses and `SchemaBuilder` programs
//! both resolve here, and user generators can be registered next to the
//! builtins.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, OnceLock};

use datasynth_tables::suggest::closest_match;
use datasynth_tables::Value;

use crate::{
    BoolGen, ConditionalDictionary, ConstantGen, CounterGen, DateAfterDeps, DateBetween,
    DictionaryGen, EmailGen, FullNameGen, GeometricGen, NormalGen, PropertyGenerator, SentenceGen,
    SurnameGen, TemplateGen, UniformDoubleGen, UniformLongGen, UuidGen, ZipfGen,
};

/// One argument of a generator call in the DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum GenArg {
    /// Numeric literal.
    Num(f64),
    /// Integer literal, carried exactly (values beyond 2^53 survive).
    Int(i64),
    /// String literal.
    Text(String),
    /// `"label": weight` pair (categorical entries).
    Weighted(String, f64),
}

/// Errors from building a property generator by name.
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No generator with this name.
    UnknownGenerator {
        /// The name that failed to resolve.
        name: String,
        /// Every name registered at lookup time (sorted).
        known: Vec<String>,
        /// Closest registered name by edit distance, if any is close.
        suggestion: Option<String>,
    },
    /// Wrong argument shape for the named generator.
    BadArgs {
        /// Generator name.
        generator: &'static str,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownGenerator {
                name,
                known,
                suggestion,
            } => {
                write!(f, "unknown property generator {name}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                if !known.is_empty() {
                    write!(f, "; registered: {}", known.join(", "))?;
                }
                Ok(())
            }
            RegistryError::BadArgs {
                generator,
                expected,
            } => write!(f, "{generator}: expected arguments {expected}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Canonical generator names (for diagnostics and docs).
pub const PROPERTY_GENERATOR_NAMES: &[&str] = &[
    "constant",
    "counter",
    "uuid",
    "bool",
    "uniform",
    "uniform_double",
    "zipf",
    "normal",
    "geometric",
    "categorical",
    "dictionary",
    "first_names",
    "surnames",
    "full_name",
    "email",
    "date_between",
    "date_after",
    "sentence",
    "sentence_about",
    "template",
];

/// A boxed property generator, as the registry produces it.
pub type BoxedPropertyGenerator = Box<dyn PropertyGenerator>;

type Ctor =
    Arc<dyn Fn(&[GenArg], usize) -> Result<BoxedPropertyGenerator, RegistryError> + Send + Sync>;

/// Name → constructor map for property generators.
///
/// A constructor receives the call's arguments and the declared
/// dependency count (the `given (...)` arity) and returns a boxed
/// [`PropertyGenerator`]. [`PropertyRegistry::builtin`] holds the shipped
/// library; [`register`](PropertyRegistry::register) adds or overrides
/// entries.
///
/// ```
/// use datasynth_props::{GenArg, PropertyRegistry, ConstantGen};
/// use datasynth_tables::Value;
///
/// let mut registry = PropertyRegistry::builtin();
/// registry.register("answer", |_args: &[GenArg], _arity: usize| {
///     Ok(Box::new(ConstantGen::new(Value::Long(42))) as _)
/// });
///
/// let g = registry.build("answer", &[], 0).unwrap();
/// let mut rng = datasynth_prng::SplitMix64::new(1);
/// assert_eq!(g.generate(0, &mut rng, &[]).unwrap(), Value::Long(42));
/// ```
#[derive(Clone, Default)]
pub struct PropertyRegistry {
    ctors: BTreeMap<String, Ctor>,
}

impl PropertyRegistry {
    /// A registry with no entries.
    pub fn empty() -> Self {
        Self {
            ctors: BTreeMap::new(),
        }
    }

    /// The shipped generator library ([`PROPERTY_GENERATOR_NAMES`]).
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        register_builtins(&mut registry);
        registry
    }

    /// Register `ctor` under `name`, replacing any previous entry.
    pub fn register<F>(&mut self, name: impl Into<String>, ctor: F)
    where
        F: Fn(&[GenArg], usize) -> Result<BoxedPropertyGenerator, RegistryError>
            + Send
            + Sync
            + 'static,
    {
        self.ctors.insert(name.into(), Arc::new(ctor));
    }

    /// Build a generator from its registry name, arguments, and declared
    /// dependency count.
    pub fn build(
        &self,
        name: &str,
        args: &[GenArg],
        arity: usize,
    ) -> Result<BoxedPropertyGenerator, RegistryError> {
        match self.ctors.get(name) {
            Some(ctor) => ctor(args, arity),
            None => Err(self.unknown(name)),
        }
    }

    /// Whether `name` resolves.
    pub fn contains(&self, name: &str) -> bool {
        self.ctors.contains_key(name)
    }

    /// Every registered name, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ctors.keys().map(String::as_str).collect()
    }

    /// The error reported for an unresolvable `name`: carries the full
    /// registered-name list and a closest-match suggestion.
    pub fn unknown(&self, name: &str) -> RegistryError {
        RegistryError::UnknownGenerator {
            name: name.to_owned(),
            known: self.ctors.keys().cloned().collect(),
            suggestion: closest_match(name, self.ctors.keys().map(String::as_str)),
        }
    }
}

impl fmt::Debug for PropertyRegistry {
    /// Debug as the name list (closures have no useful representation).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PropertyRegistry")
            .field("names", &self.names())
            .finish()
    }
}

/// Typed access to a builtin's argument list: index lookups scoped to the
/// generator name so shape failures produce uniform [`RegistryError`]s.
#[derive(Clone, Copy)]
struct ArgReader<'a> {
    generator: &'static str,
    args: &'a [GenArg],
}

impl<'a> ArgReader<'a> {
    fn new(generator: &'static str, args: &'a [GenArg]) -> Self {
        Self { generator, args }
    }

    fn num(&self, i: usize) -> Option<f64> {
        match self.args.get(i)? {
            GenArg::Num(v) => Some(*v),
            GenArg::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    fn num_or(&self, i: usize, default: f64) -> f64 {
        self.num(i).unwrap_or(default)
    }

    fn long(&self, i: usize) -> Option<i64> {
        match self.args.get(i)? {
            GenArg::Int(v) => Some(*v),
            GenArg::Num(v) if v.fract() == 0.0 => Some(*v as i64),
            _ => None,
        }
    }

    fn long_or(&self, i: usize, default: i64) -> i64 {
        self.long(i).unwrap_or(default)
    }

    fn text(&self, i: usize) -> Option<&'a str> {
        match self.args.get(i)? {
            GenArg::Text(s) => Some(s),
            _ => None,
        }
    }

    fn texts(&self) -> Vec<String> {
        self.args
            .iter()
            .filter_map(|a| match a {
                GenArg::Text(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    fn weighted(&self) -> Vec<(String, f64)> {
        self.args
            .iter()
            .filter_map(|a| match a {
                GenArg::Weighted(label, w) => Some((label.clone(), *w)),
                _ => None,
            })
            .collect()
    }

    fn bad(&self, expected: &'static str) -> RegistryError {
        RegistryError::BadArgs {
            generator: self.generator,
            expected,
        }
    }
}

// ---------------------------------------------------------------------------
// Builtin constructors. Each takes (args, arity) like any registered
// closure; `arity` is the declared dependency count (`given (...)`).
// ---------------------------------------------------------------------------

fn constant(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("constant", args);
    let value = match args.first() {
        Some(GenArg::Int(v)) => Value::Long(*v),
        Some(GenArg::Num(v)) if v.fract() == 0.0 => Value::Long(*v as i64),
        Some(GenArg::Num(v)) => Value::Double(*v),
        Some(GenArg::Text(s)) => Value::Text(s.clone()),
        _ => return Err(r.bad("(value)")),
    };
    Ok(Box::new(ConstantGen::new(value)))
}

fn counter(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("counter", args);
    Ok(Box::new(CounterGen::new(r.long_or(0, 0))))
}

fn uuid(_args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    Ok(Box::new(UuidGen))
}

fn bool_gen(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("bool", args);
    let p = r.num_or(0, 0.5);
    if !(0.0..=1.0).contains(&p) {
        return Err(r.bad("(p in [0,1])"));
    }
    Ok(Box::new(BoolGen::new(p)))
}

fn uniform(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("uniform", args);
    match (r.long(0), r.long(1)) {
        (Some(lo), Some(hi)) if lo <= hi => Ok(Box::new(UniformLongGen::new(lo, hi))),
        _ => Err(r.bad("(lo, hi) with lo <= hi")),
    }
}

fn uniform_double(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("uniform_double", args);
    match (r.num(0), r.num(1)) {
        (Some(lo), Some(hi)) if lo < hi => Ok(Box::new(UniformDoubleGen::new(lo, hi))),
        _ => Err(r.bad("(lo, hi) with lo < hi")),
    }
}

fn zipf(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("zipf", args);
    let s = r.num_or(0, 1.0);
    let n = r.num_or(1, 1000.0);
    if s <= 0.0 || n < 1.0 {
        return Err(r.bad("(exponent > 0, n >= 1)"));
    }
    Ok(Box::new(ZipfGen::new(s, n as u64)))
}

fn normal(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("normal", args);
    let mean = r.num_or(0, 0.0);
    let sd = r.num_or(1, 1.0);
    if sd < 0.0 {
        return Err(r.bad("(mean, std_dev >= 0)"));
    }
    Ok(Box::new(NormalGen::new(mean, sd)))
}

fn geometric(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("geometric", args);
    let p = r.num_or(0, 0.5);
    if !(p > 0.0 && p <= 1.0) {
        return Err(r.bad("(p in (0,1])"));
    }
    Ok(Box::new(GeometricGen::new(p)))
}

fn categorical(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("categorical", args);
    let pairs = r.weighted();
    if pairs.is_empty() {
        return Err(r.bad("(\"label\": weight, ...)"));
    }
    let borrowed: Vec<(&str, f64)> = pairs.iter().map(|(l, w)| (l.as_str(), *w)).collect();
    Ok(Box::new(DictionaryGen::with_registry_name(
        "categorical",
        &borrowed,
    )))
}

/// Embedded sample dictionaries resolvable by `dictionary(name)`.
const DICTIONARY_NAMES: &[&str] = &["countries", "topics"];

fn dictionary(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("dictionary", args);
    match r.text(0) {
        Some("countries") => Ok(Box::new(DictionaryGen::countries())),
        Some("topics") => Ok(Box::new(DictionaryGen::topics())),
        // The failed lookup is in the dictionary sub-namespace, so the
        // `known` list names the dictionaries (not the generator registry).
        Some(other) if !other.is_empty() => Err(RegistryError::UnknownGenerator {
            name: format!("dictionary {other:?}"),
            known: DICTIONARY_NAMES
                .iter()
                .map(|s| format!("dictionary {s:?}"))
                .collect(),
            suggestion: closest_match(other, DICTIONARY_NAMES.iter().copied()),
        }),
        _ => Err(r.bad("(\"countries\" | \"topics\")")),
    }
}

fn first_names(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("first_names", args);
    if arity != 2 {
        return Err(r.bad("given (country, sex)"));
    }
    Ok(Box::new(ConditionalDictionary::first_names()))
}

fn surnames(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("surnames", args);
    if arity != 1 {
        return Err(r.bad("given (country)"));
    }
    Ok(Box::new(SurnameGen::new()))
}

fn full_name(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("full_name", args);
    if arity != 2 {
        return Err(r.bad("given (given_name, family_name)"));
    }
    Ok(Box::new(FullNameGen))
}

fn email(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("email", args);
    if arity != 1 {
        return Err(r.bad("given (name)"));
    }
    let domains = r.texts();
    if domains.is_empty() {
        Ok(Box::new(EmailGen::default()))
    } else {
        let borrowed: Vec<&str> = domains.iter().map(String::as_str).collect();
        Ok(Box::new(EmailGen::new(&borrowed)))
    }
}

fn date_between(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("date_between", args);
    let (from, to) = match (r.text(0), r.text(1)) {
        (Some(f), Some(t)) => (f, t),
        _ => return Err(r.bad("(\"YYYY-MM-DD\", \"YYYY-MM-DD\")")),
    };
    match DateBetween::parse(from, to) {
        Some(g) => Ok(Box::new(g)),
        None => Err(r.bad("valid, ordered ISO dates")),
    }
}

fn date_after(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("date_after", args);
    if arity == 0 {
        return Err(r.bad("given (at least one date property)"));
    }
    let spread = r.long_or(0, 365);
    if spread < 1 {
        return Err(r.bad("(spread_days >= 1)"));
    }
    Ok(Box::new(DateAfterDeps::new(arity, spread as u64)))
}

fn sentence(args: &[GenArg], _arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("sentence", args);
    let lo = r.num_or(0, 5.0).max(1.0) as u64;
    let hi = r.num_or(1, 20.0).max(lo as f64) as u64;
    Ok(Box::new(SentenceGen::new(lo, hi)))
}

fn sentence_about(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("sentence_about", args);
    if arity != 1 {
        return Err(r.bad("given (topic)"));
    }
    let lo = r.num_or(0, 5.0).max(1.0) as u64;
    let hi = r.num_or(1, 20.0).max(lo as f64) as u64;
    Ok(Box::new(SentenceGen::about_topic(lo, hi)))
}

fn template(args: &[GenArg], arity: usize) -> Result<BoxedPropertyGenerator, RegistryError> {
    let r = ArgReader::new("template", args);
    match r.text(0) {
        Some(t) => Ok(Box::new(TemplateGen::new(t, arity))),
        None => Err(r.bad("(\"...{0}...{id}...\")")),
    }
}

fn register_builtins(registry: &mut PropertyRegistry) {
    registry.register("constant", constant);
    registry.register("counter", counter);
    registry.register("uuid", uuid);
    registry.register("bool", bool_gen);
    registry.register("uniform", uniform);
    registry.register("uniform_double", uniform_double);
    registry.register("zipf", zipf);
    registry.register("normal", normal);
    registry.register("geometric", geometric);
    registry.register("categorical", categorical);
    registry.register("dictionary", dictionary);
    registry.register("first_names", first_names);
    registry.register("surnames", surnames);
    registry.register("full_name", full_name);
    registry.register("email", email);
    registry.register("date_between", date_between);
    registry.register("date_after", date_after);
    registry.register("sentence", sentence);
    registry.register("sentence_about", sentence_about);
    registry.register("template", template);
}

fn builtin() -> &'static PropertyRegistry {
    static BUILTIN: OnceLock<PropertyRegistry> = OnceLock::new();
    BUILTIN.get_or_init(PropertyRegistry::builtin)
}

/// Build a property generator from the *builtin* registry; kept as a
/// convenience for code that needs no user extensions. `arity` is the
/// number of declared dependencies (`given (...)` clause). The pipeline
/// resolves through the [`PropertyRegistry`] carried by `DataSynth`.
pub fn build_property_generator(
    name: &str,
    args: &[GenArg],
    arity: usize,
) -> Result<BoxedPropertyGenerator, RegistryError> {
    builtin().build(name, args, arity)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    fn build(name: &str, args: &[GenArg], arity: usize) -> Box<dyn PropertyGenerator> {
        build_property_generator(name, args, arity).unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    fn expect_err(name: &str, args: &[GenArg]) -> RegistryError {
        match build_property_generator(name, args, 0) {
            Err(e) => e,
            Ok(g) => panic!("unexpectedly built {}", g.name()),
        }
    }

    #[test]
    fn all_zero_dep_generators_build_and_run() {
        let cases: Vec<(&str, Vec<GenArg>)> = vec![
            ("constant", vec![GenArg::Text("x".into())]),
            ("counter", vec![]),
            ("uuid", vec![]),
            ("bool", vec![GenArg::Num(0.3)]),
            ("uniform", vec![GenArg::Num(0.0), GenArg::Num(9.0)]),
            ("uniform_double", vec![GenArg::Num(0.0), GenArg::Num(1.0)]),
            ("zipf", vec![GenArg::Num(1.5), GenArg::Num(100.0)]),
            ("normal", vec![GenArg::Num(0.0), GenArg::Num(1.0)]),
            ("geometric", vec![GenArg::Num(0.4)]),
            (
                "categorical",
                vec![
                    GenArg::Weighted("M".into(), 0.5),
                    GenArg::Weighted("F".into(), 0.5),
                ],
            ),
            ("dictionary", vec![GenArg::Text("countries".into())]),
            (
                "date_between",
                vec![
                    GenArg::Text("2010-01-01".into()),
                    GenArg::Text("2013-01-01".into()),
                ],
            ),
            ("sentence", vec![GenArg::Num(3.0), GenArg::Num(5.0)]),
        ];
        let stream = TableStream::derive(1, "reg");
        for (name, args) in cases {
            let g = build(name, &args, 0);
            let mut rng = stream.substream(0);
            let v = g.generate(0, &mut rng, &[]).unwrap();
            assert!(v.value_type().is_some(), "{name} produced null");
        }
    }

    #[test]
    fn integer_args_are_accepted_everywhere_numbers_are() {
        let g = build("uniform", &[GenArg::Int(0), GenArg::Int(9)], 0);
        let mut rng = TableStream::derive(1, "int").substream(0);
        assert!(matches!(
            g.generate(0, &mut rng, &[]).unwrap(),
            Value::Long(0..=9)
        ));
        let g = build("constant", &[GenArg::Int(9_007_199_254_740_993)], 0);
        assert_eq!(
            g.generate(0, &mut rng, &[]).unwrap(),
            Value::Long(9_007_199_254_740_993)
        );
        let g = build("date_after", &[GenArg::Int(30)], 1);
        assert_eq!(g.arity(), 1);
    }

    #[test]
    fn every_canonical_name_is_registered() {
        let registry = PropertyRegistry::builtin();
        for &name in PROPERTY_GENERATOR_NAMES {
            assert!(registry.contains(name), "{name} missing from builtin()");
        }
        assert_eq!(registry.names().len(), PROPERTY_GENERATOR_NAMES.len());
    }

    #[test]
    fn dependent_generators_declare_arity() {
        let g = build("first_names", &[], 2);
        assert_eq!(g.arity(), 2);
        let g = build("surnames", &[], 1);
        assert_eq!(g.arity(), 1);
        let g = build("full_name", &[], 2);
        assert_eq!(g.arity(), 2);
        let g = build("email", &[GenArg::Text("corp.example".into())], 1);
        assert_eq!(g.arity(), 1);
        let g = build("date_after", &[GenArg::Num(30.0)], 2);
        assert_eq!(g.arity(), 2);
        let g = build("sentence_about", &[], 1);
        assert_eq!(g.arity(), 1);
        let g = build("template", &[GenArg::Text("{0}!".into())], 1);
        assert_eq!(g.arity(), 1);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            build_property_generator("nope", &[], 0),
            Err(RegistryError::UnknownGenerator { .. })
        ));
        assert!(matches!(
            build_property_generator("uniform", &[GenArg::Num(5.0), GenArg::Num(1.0)], 0),
            Err(RegistryError::BadArgs { .. })
        ));
        assert!(matches!(
            build_property_generator("first_names", &[], 0),
            Err(RegistryError::BadArgs { .. })
        ));
        assert!(matches!(
            build_property_generator("date_between", &[GenArg::Text("x".into())], 0),
            Err(RegistryError::BadArgs { .. })
        ));
        assert!(matches!(
            build_property_generator("categorical", &[GenArg::Num(1.0)], 0),
            Err(RegistryError::BadArgs { .. })
        ));
    }

    #[test]
    fn unknown_name_reports_suggestion_and_names() {
        let err = expect_err("uniformm", &[]);
        let msg = err.to_string();
        assert!(msg.contains("uniformm"), "{msg}");
        assert!(msg.contains("did you mean \"uniform\"?"), "{msg}");
        assert!(msg.contains("registered:"), "{msg}");
    }

    #[test]
    fn unknown_dictionary_suggests_known_dictionaries() {
        let err = expect_err("dictionary", &[GenArg::Text("countrys".into())]);
        let msg = err.to_string();
        assert!(msg.contains("did you mean \"countries\"?"), "{msg}");
        assert!(
            msg.contains("registered: dictionary \"countries\", dictionary \"topics\""),
            "the known list must name dictionaries, not generators: {msg}"
        );
    }

    #[test]
    fn registered_closure_resolves_with_arity() {
        let mut registry = PropertyRegistry::empty();
        registry.register("fixed_sum", |args: &[GenArg], arity: usize| {
            let base = match args.first() {
                Some(GenArg::Num(v)) => *v as i64,
                _ => 0,
            };
            Ok(Box::new(ConstantGen::new(Value::Long(base + arity as i64)))
                as BoxedPropertyGenerator)
        });
        let g = registry
            .build("fixed_sum", &[GenArg::Num(40.0)], 2)
            .unwrap();
        let mut rng = TableStream::derive(1, "x").substream(0);
        assert_eq!(g.generate(0, &mut rng, &[]).unwrap(), Value::Long(42));
    }
}
