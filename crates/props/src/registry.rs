//! Name-based property generator construction — the DSL's
//! `property = generator(args...)` clauses resolve here.

use std::fmt;

use datasynth_tables::Value;

use crate::{
    BoolGen, ConditionalDictionary, ConstantGen, CounterGen, DateAfterDeps, DateBetween,
    DictionaryGen, EmailGen, FullNameGen, GeometricGen, NormalGen, PropertyGenerator, SentenceGen,
    SurnameGen, TemplateGen, UniformDoubleGen, UniformLongGen, UuidGen, ZipfGen,
};

/// One argument of a generator call in the DSL.
#[derive(Debug, Clone, PartialEq)]
pub enum GenArg {
    /// Numeric literal.
    Num(f64),
    /// String literal.
    Text(String),
    /// `"label": weight` pair (categorical entries).
    Weighted(String, f64),
}

/// Errors from [`build_property_generator`].
#[derive(Debug, Clone, PartialEq)]
pub enum RegistryError {
    /// No generator with this name.
    UnknownGenerator(String),
    /// Wrong argument shape for the named generator.
    BadArgs {
        /// Generator name.
        generator: &'static str,
        /// What was expected.
        expected: &'static str,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownGenerator(n) => write!(f, "unknown property generator {n}"),
            RegistryError::BadArgs {
                generator,
                expected,
            } => write!(f, "{generator}: expected arguments {expected}"),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Canonical generator names (for diagnostics and docs).
pub const PROPERTY_GENERATOR_NAMES: &[&str] = &[
    "constant",
    "counter",
    "uuid",
    "bool",
    "uniform",
    "uniform_double",
    "zipf",
    "normal",
    "geometric",
    "categorical",
    "dictionary",
    "first_names",
    "surnames",
    "full_name",
    "email",
    "date_between",
    "date_after",
    "sentence",
    "sentence_about",
    "template",
];

fn num(args: &[GenArg], i: usize) -> Option<f64> {
    match args.get(i)? {
        GenArg::Num(v) => Some(*v),
        _ => None,
    }
}

fn text(args: &[GenArg], i: usize) -> Option<&str> {
    match args.get(i)? {
        GenArg::Text(s) => Some(s),
        _ => None,
    }
}

/// Build a property generator from its DSL name and arguments.
/// `arity` is the number of declared dependencies (`given (...)` clause).
pub fn build_property_generator(
    name: &str,
    args: &[GenArg],
    arity: usize,
) -> Result<Box<dyn PropertyGenerator>, RegistryError> {
    let bad = |generator: &'static str, expected: &'static str| RegistryError::BadArgs {
        generator,
        expected,
    };
    Ok(match name {
        "constant" => {
            let value = match args.first() {
                Some(GenArg::Num(v)) if v.fract() == 0.0 => Value::Long(*v as i64),
                Some(GenArg::Num(v)) => Value::Double(*v),
                Some(GenArg::Text(s)) => Value::Text(s.clone()),
                _ => return Err(bad("constant", "(value)")),
            };
            Box::new(ConstantGen::new(value))
        }
        "counter" => Box::new(CounterGen::new(num(args, 0).unwrap_or(0.0) as i64)),
        "uuid" => Box::new(UuidGen),
        "bool" => {
            let p = num(args, 0).unwrap_or(0.5);
            if !(0.0..=1.0).contains(&p) {
                return Err(bad("bool", "(p in [0,1])"));
            }
            Box::new(BoolGen::new(p))
        }
        "uniform" => {
            let (lo, hi) = match (num(args, 0), num(args, 1)) {
                (Some(lo), Some(hi)) if lo <= hi => (lo as i64, hi as i64),
                _ => return Err(bad("uniform", "(lo, hi) with lo <= hi")),
            };
            Box::new(UniformLongGen::new(lo, hi))
        }
        "uniform_double" => {
            let (lo, hi) = match (num(args, 0), num(args, 1)) {
                (Some(lo), Some(hi)) if lo < hi => (lo, hi),
                _ => return Err(bad("uniform_double", "(lo, hi) with lo < hi")),
            };
            Box::new(UniformDoubleGen::new(lo, hi))
        }
        "zipf" => {
            let s = num(args, 0).unwrap_or(1.0);
            let n = num(args, 1).unwrap_or(1000.0);
            if s <= 0.0 || n < 1.0 {
                return Err(bad("zipf", "(exponent > 0, n >= 1)"));
            }
            Box::new(ZipfGen::new(s, n as u64))
        }
        "normal" => {
            let mean = num(args, 0).unwrap_or(0.0);
            let sd = num(args, 1).unwrap_or(1.0);
            if sd < 0.0 {
                return Err(bad("normal", "(mean, std_dev >= 0)"));
            }
            Box::new(NormalGen::new(mean, sd))
        }
        "geometric" => {
            let p = num(args, 0).unwrap_or(0.5);
            if !(p > 0.0 && p <= 1.0) {
                return Err(bad("geometric", "(p in (0,1])"));
            }
            Box::new(GeometricGen::new(p))
        }
        "categorical" => {
            let pairs: Vec<(String, f64)> = args
                .iter()
                .filter_map(|a| match a {
                    GenArg::Weighted(label, w) => Some((label.clone(), *w)),
                    _ => None,
                })
                .collect();
            if pairs.is_empty() {
                return Err(bad("categorical", "(\"label\": weight, ...)"));
            }
            let borrowed: Vec<(&str, f64)> = pairs.iter().map(|(l, w)| (l.as_str(), *w)).collect();
            Box::new(DictionaryGen::with_registry_name("categorical", &borrowed))
        }
        "dictionary" => match text(args, 0) {
            Some("countries") => Box::new(DictionaryGen::countries()),
            Some("topics") => Box::new(DictionaryGen::topics()),
            Some(other) => {
                return Err(if other.is_empty() {
                    bad("dictionary", "(\"countries\" | \"topics\")")
                } else {
                    RegistryError::UnknownGenerator(format!("dictionary {other:?}"))
                })
            }
            None => return Err(bad("dictionary", "(\"countries\" | \"topics\")")),
        },
        "first_names" => {
            if arity != 2 {
                return Err(bad("first_names", "given (country, sex)"));
            }
            Box::new(ConditionalDictionary::first_names())
        }
        "surnames" => {
            if arity != 1 {
                return Err(bad("surnames", "given (country)"));
            }
            Box::new(SurnameGen::new())
        }
        "full_name" => {
            if arity != 2 {
                return Err(bad("full_name", "given (given_name, family_name)"));
            }
            Box::new(FullNameGen)
        }
        "email" => {
            if arity != 1 {
                return Err(bad("email", "given (name)"));
            }
            let domains: Vec<String> = args
                .iter()
                .filter_map(|a| match a {
                    GenArg::Text(s) => Some(s.clone()),
                    _ => None,
                })
                .collect();
            if domains.is_empty() {
                Box::new(EmailGen::default())
            } else {
                let borrowed: Vec<&str> = domains.iter().map(String::as_str).collect();
                Box::new(EmailGen::new(&borrowed))
            }
        }
        "date_between" => {
            let (from, to) = match (text(args, 0), text(args, 1)) {
                (Some(f), Some(t)) => (f, t),
                _ => return Err(bad("date_between", "(\"YYYY-MM-DD\", \"YYYY-MM-DD\")")),
            };
            match DateBetween::parse(from, to) {
                Some(g) => Box::new(g),
                None => return Err(bad("date_between", "valid, ordered ISO dates")),
            }
        }
        "date_after" => {
            if arity == 0 {
                return Err(bad("date_after", "given (at least one date property)"));
            }
            let spread = num(args, 0).unwrap_or(365.0);
            if spread < 1.0 {
                return Err(bad("date_after", "(spread_days >= 1)"));
            }
            Box::new(DateAfterDeps::new(arity, spread as u64))
        }
        "sentence" => {
            let lo = num(args, 0).unwrap_or(5.0).max(1.0) as u64;
            let hi = num(args, 1).unwrap_or(20.0).max(lo as f64) as u64;
            Box::new(SentenceGen::new(lo, hi))
        }
        "sentence_about" => {
            if arity != 1 {
                return Err(bad("sentence_about", "given (topic)"));
            }
            let lo = num(args, 0).unwrap_or(5.0).max(1.0) as u64;
            let hi = num(args, 1).unwrap_or(20.0).max(lo as f64) as u64;
            Box::new(SentenceGen::about_topic(lo, hi))
        }
        "template" => match text(args, 0) {
            Some(t) => Box::new(TemplateGen::new(t, arity)),
            None => return Err(bad("template", "(\"...{0}...{id}...\")")),
        },
        other => return Err(RegistryError::UnknownGenerator(other.to_owned())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::TableStream;

    fn build(name: &str, args: &[GenArg], arity: usize) -> Box<dyn PropertyGenerator> {
        build_property_generator(name, args, arity).unwrap_or_else(|e| panic!("{name}: {e}"))
    }

    #[test]
    fn all_zero_dep_generators_build_and_run() {
        let cases: Vec<(&str, Vec<GenArg>)> = vec![
            ("constant", vec![GenArg::Text("x".into())]),
            ("counter", vec![]),
            ("uuid", vec![]),
            ("bool", vec![GenArg::Num(0.3)]),
            ("uniform", vec![GenArg::Num(0.0), GenArg::Num(9.0)]),
            ("uniform_double", vec![GenArg::Num(0.0), GenArg::Num(1.0)]),
            ("zipf", vec![GenArg::Num(1.5), GenArg::Num(100.0)]),
            ("normal", vec![GenArg::Num(0.0), GenArg::Num(1.0)]),
            ("geometric", vec![GenArg::Num(0.4)]),
            (
                "categorical",
                vec![
                    GenArg::Weighted("M".into(), 0.5),
                    GenArg::Weighted("F".into(), 0.5),
                ],
            ),
            ("dictionary", vec![GenArg::Text("countries".into())]),
            (
                "date_between",
                vec![
                    GenArg::Text("2010-01-01".into()),
                    GenArg::Text("2013-01-01".into()),
                ],
            ),
            ("sentence", vec![GenArg::Num(3.0), GenArg::Num(5.0)]),
        ];
        let stream = TableStream::derive(1, "reg");
        for (name, args) in cases {
            let g = build(name, &args, 0);
            let mut rng = stream.substream(0);
            let v = g.generate(0, &mut rng, &[]).unwrap();
            assert!(v.value_type().is_some(), "{name} produced null");
        }
    }

    #[test]
    fn dependent_generators_declare_arity() {
        let g = build("first_names", &[], 2);
        assert_eq!(g.arity(), 2);
        let g = build("surnames", &[], 1);
        assert_eq!(g.arity(), 1);
        let g = build("full_name", &[], 2);
        assert_eq!(g.arity(), 2);
        let g = build("email", &[GenArg::Text("corp.example".into())], 1);
        assert_eq!(g.arity(), 1);
        let g = build("date_after", &[GenArg::Num(30.0)], 2);
        assert_eq!(g.arity(), 2);
        let g = build("sentence_about", &[], 1);
        assert_eq!(g.arity(), 1);
        let g = build("template", &[GenArg::Text("{0}!".into())], 1);
        assert_eq!(g.arity(), 1);
    }

    #[test]
    fn errors_are_specific() {
        assert!(matches!(
            build_property_generator("nope", &[], 0),
            Err(RegistryError::UnknownGenerator(_))
        ));
        assert!(matches!(
            build_property_generator("uniform", &[GenArg::Num(5.0), GenArg::Num(1.0)], 0),
            Err(RegistryError::BadArgs { .. })
        ));
        assert!(matches!(
            build_property_generator("first_names", &[], 0),
            Err(RegistryError::BadArgs { .. })
        ));
        assert!(matches!(
            build_property_generator("date_between", &[GenArg::Text("x".into())], 0),
            Err(RegistryError::BadArgs { .. })
        ));
        assert!(matches!(
            build_property_generator("categorical", &[GenArg::Num(1.0)], 0),
            Err(RegistryError::BadArgs { .. })
        ));
    }
}
