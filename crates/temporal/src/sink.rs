//! The op-log sink.

use std::collections::BTreeMap;
use std::io::Write;
use std::ops::Range;
use std::sync::Arc;

use datasynth_core::{GraphSink, ShardSpec, SinkError, SinkManifest, TableRows};
use datasynth_prng::{fnv1a_64, mix64};
use datasynth_schema::{Schema, TemporalDef};
use datasynth_tables::export::ops::{
    write_op_row_csv, write_op_row_jsonl, write_ops_header, OpRow,
};
use datasynth_telemetry::MetricsRegistry;

use crate::{OpKind, TypeClock};

/// Serialization format of the op log.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OpsFormat {
    /// CSV with an `op,ts,kind,table,row` header (shard 0 only, so shard
    /// concatenation yields one well-formed file).
    #[default]
    Csv,
    /// JSON lines, one op object per line.
    Jsonl,
}

impl OpsFormat {
    /// Parse a CLI/query keyword (`csv` / `jsonl`).
    pub fn from_keyword(kw: &str) -> Option<Self> {
        match kw {
            "csv" => Some(OpsFormat::Csv),
            "jsonl" => Some(OpsFormat::Jsonl),
            _ => None,
        }
    }
}

/// The conventional op-log file name for `format` (`ops.csv` /
/// `ops.jsonl`).
pub fn ops_file_name(format: OpsFormat) -> &'static str {
    match format {
        OpsFormat::Csv => "ops.csv",
        OpsFormat::Jsonl => "ops.jsonl",
    }
}

/// One temporal table: its position in the global tie-break order, its
/// clock, and what the run reported about it.
struct TemporalTable {
    name: String,
    def: TemporalDef,
    insert_kind: OpKind,
    delete_kind: OpKind,
    total: Option<u64>,
}

/// A [`GraphSink`] that writes the run's operation log: every insert (and,
/// for types with a `lifetime` clause, every delete) of every
/// temporally-annotated row, globally ordered by `(ts, kind, table, row)`.
///
/// The log references snapshot rows by `(table, row)` — values live in the
/// snapshot. Each shard independently reconstructs the *complete* global
/// op sequence from the table totals announced via
/// [`table_rows`](GraphSink::table_rows) (totals are global even under
/// sharding) and emits only its [`ShardSpec::window`] of op indices, so
/// concatenating shard files in index order is byte-identical to a full
/// run, at any thread count.
///
/// Requires a session that opted in via `Session::with_ops(true)` — a run
/// whose manifest does not announce ops is rejected at `begin`, because a
/// snapshot-only manifest means no other sink (or merge validation) would
/// account for the log.
pub struct TemporalSink<W: Write> {
    out: W,
    format: OpsFormat,
    tables: Vec<TemporalTable>,
    seed: u64,
    shard: ShardSpec,
    began: bool,
    window: Option<TableRows>,
    metrics: Option<Arc<MetricsRegistry>>,
}

impl<W: Write> TemporalSink<W> {
    /// Build the sink for `schema`, writing the log to `out`.
    ///
    /// Fails fast if the schema has no `temporal` annotations or if any
    /// annotation's generators cannot serve as a clock (wrong value type,
    /// unknown generator) — the same checks a real run would hit, but
    /// before any generation work is spent.
    pub fn new(schema: &Schema, out: W, format: OpsFormat) -> Result<Self, SinkError> {
        if !schema.has_temporal() {
            return Err(SinkError::invalid(
                "schema has no temporal annotations: add `temporal { arrival = ...; }` \
                 blocks to the node/edge types that should appear in the op log",
            ));
        }
        let mut tables = Vec::new();
        let nodes = schema
            .nodes
            .iter()
            .map(|n| (&n.name, &n.temporal, OpKind::InsertNode, OpKind::DeleteNode));
        let edges = schema
            .edges
            .iter()
            .map(|e| (&e.name, &e.temporal, OpKind::InsertEdge, OpKind::DeleteEdge));
        for (name, temporal, insert_kind, delete_kind) in nodes.chain(edges) {
            let Some(def) = temporal else { continue };
            // Probe-build the clock now so misconfigured generators fail
            // at construction, not mid-run.
            TypeClock::new(0, name, def)?;
            tables.push(TemporalTable {
                name: name.clone(),
                def: def.clone(),
                insert_kind,
                delete_kind,
                total: None,
            });
        }
        Ok(TemporalSink {
            out,
            format,
            tables,
            seed: 0,
            shard: ShardSpec::default(),
            began: false,
            window: None,
            metrics: None,
        })
    }

    /// Meter this sink: record `datasynth_ops_total{kind}` plus per-table
    /// row/byte counters for the `$ops` table into `metrics` at finish.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.metrics = Some(metrics);
        self
    }

    /// Recover the writer (e.g. the `Vec<u8>` holding an in-memory log).
    pub fn into_inner(self) -> W {
        self.out
    }
}

impl<W: Write> GraphSink for TemporalSink<W> {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        if !manifest.ops {
            return Err(SinkError::invalid(
                "TemporalSink requires an op-log run: opt in with Session::with_ops(true) \
                 so the manifest announces the stream to every sink",
            ));
        }
        self.seed = manifest.seed;
        self.shard = manifest.shard;
        self.began = true;
        Ok(())
    }

    fn table_rows(&mut self, table: &str, _rows: Range<u64>, total: u64) -> Result<(), SinkError> {
        if let Some(t) = self.tables.iter_mut().find(|t| t.name == table) {
            t.total = Some(total);
        }
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        if !self.began {
            return Err(SinkError::invalid("TemporalSink: finish before begin"));
        }
        // Reconstruct the complete global op sequence. Sort keys only —
        // (ts, kind rank, table index, row) — so the order is a pure
        // function of (seed, schema, totals), never of sharding.
        let mut ops: Vec<(i64, u8, u32, u64)> = Vec::new();
        for (idx, t) in self.tables.iter().enumerate() {
            let total = t.total.ok_or_else(|| {
                SinkError::invalid(format!(
                    "TemporalSink: no table_rows event for temporal table {:?}",
                    t.name
                ))
            })?;
            let clock = TypeClock::new(self.seed, &t.name, &t.def)?;
            for row in 0..total {
                ops.push((clock.insert_ts(row)?, t.insert_kind.rank(), idx as u32, row));
                if let Some(ts) = clock.delete_ts(row)? {
                    ops.push((ts, t.delete_kind.rank(), idx as u32, row));
                }
            }
        }
        ops.sort_unstable();

        let total_ops = ops.len() as u64;
        let window = self.shard.window(total_ops);
        let mut buf = Vec::new();
        let mut bytes = 0u64;
        let mut content_hash = 0u64;
        let mut kind_counts: BTreeMap<&'static str, u64> = BTreeMap::new();
        if self.shard.index == 0 && self.format == OpsFormat::Csv {
            buf.clear();
            write_ops_header(&mut buf).map_err(SinkError::Io)?;
            bytes += buf.len() as u64;
            self.out.write_all(&buf).map_err(SinkError::Io)?;
        }
        for op_index in window.clone() {
            let (ts, rank, table_idx, row) = ops[op_index as usize];
            let table = &self.tables[table_idx as usize];
            let kind = if rank == table.insert_kind.rank() {
                table.insert_kind
            } else {
                table.delete_kind
            };
            let op = OpRow {
                op: op_index,
                ts,
                kind: kind.keyword(),
                table: &table.name,
                row,
            };
            buf.clear();
            match self.format {
                OpsFormat::Csv => write_op_row_csv(&mut buf, &op),
                OpsFormat::Jsonl => write_op_row_jsonl(&mut buf, &op),
            }
            .map_err(SinkError::Io)?;
            bytes += buf.len() as u64;
            self.out.write_all(&buf).map_err(SinkError::Io)?;
            content_hash = content_hash.wrapping_add(op_hash(&op));
            *kind_counts.entry(kind.keyword()).or_insert(0) += 1;
        }
        self.out.flush().map_err(SinkError::Io)?;
        self.window = Some(TableRows {
            lo: window.start,
            hi: window.end,
            total: total_ops,
            content_hash,
        });
        if let Some(metrics) = &self.metrics {
            for (kind, count) in &kind_counts {
                metrics
                    .counter_with("datasynth_ops_total", Some(("kind", kind)))
                    .add(*count);
            }
            metrics
                .counter_with("datasynth_sink_rows_total", Some(("table", "$ops")))
                .add(window.end - window.start);
            metrics
                .counter_with("datasynth_sink_bytes_total", Some(("table", "$ops")))
                .add(bytes);
        }
        Ok(())
    }

    fn contributed_tables(&mut self) -> Vec<(String, TableRows)> {
        match self.window {
            Some(rows) => vec![("$ops".to_owned(), rows)],
            None => Vec::new(),
        }
    }
}

/// Order-independent commitment to one op's *logical* identity (format
/// agnostic: a CSV run and a JSONL run of the same graph hash alike).
/// Shard hashes sum (wrapping) to the full-log hash, exactly like the
/// snapshot tables' cell hashes under `SinkManifest::merge`.
fn op_hash(op: &OpRow<'_>) -> u64 {
    let mut bytes = Vec::with_capacity(32 + op.table.len());
    bytes.extend_from_slice(&op.op.to_le_bytes());
    bytes.extend_from_slice(&op.ts.to_le_bytes());
    bytes.extend_from_slice(op.kind.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(op.table.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(&op.row.to_le_bytes());
    mix64(fnv1a_64(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;

    fn schema() -> Schema {
        parse_schema(
            r#"graph g {
                node Person [count = 40] {
                    name: text = first_names();
                    temporal { arrival = date_between("2010-01-01", "2012-01-01"); }
                }
                node Tag [count = 5] { id: long = counter(); }
                edge knows: Person -- Person {
                    structure = erdos_renyi(p = 0.1);
                    temporal {
                        arrival = date_between("2010-06-01", "2012-06-01");
                        lifetime = uniform(0, 300);
                    }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn sink_requires_temporal_annotations_and_ops_manifests() {
        let plain =
            parse_schema("graph g { node A [count = 1] { x: long = counter(); } }").unwrap();
        let err = TemporalSink::new(&plain, Vec::new(), OpsFormat::Csv)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("temporal"), "{err}");

        let mut sink = TemporalSink::new(&schema(), Vec::new(), OpsFormat::Csv).unwrap();
        let manifest = SinkManifest::from_schema(&schema(), 1);
        let err = sink.begin(&manifest).unwrap_err();
        assert!(err.to_string().contains("with_ops"), "{err}");
        assert!(sink.begin(&manifest.with_ops(true)).is_ok());
    }

    #[test]
    fn log_is_ordered_and_deletes_follow_inserts() {
        let mut out = Vec::new();
        {
            let mut sink = TemporalSink::new(&schema(), &mut out, OpsFormat::Csv).unwrap();
            sink.begin(&SinkManifest::from_schema(&schema(), 9).with_ops(true))
                .unwrap();
            sink.table_rows("Person", 0..40, 40).unwrap();
            sink.table_rows("Tag", 0..5, 5).unwrap();
            sink.table_rows("knows", 0..30, 30).unwrap();
            sink.finish().unwrap();
            let contributed = sink.contributed_tables();
            assert_eq!(contributed.len(), 1);
            assert_eq!(contributed[0].0, "$ops");
            // 40 Person inserts + 30 knows inserts + 30 knows deletes.
            assert_eq!(contributed[0].1.total, 100);
        }
        let text = String::from_utf8(out).unwrap();
        let mut lines = text.lines();
        assert_eq!(lines.next(), Some("op,ts,kind,table,row"));
        let mut last_ts = String::new();
        let mut inserted = std::collections::BTreeMap::new();
        for (i, line) in lines.enumerate() {
            let fields: Vec<&str> = line.split(',').collect();
            assert_eq!(fields[0].parse::<usize>().unwrap(), i);
            assert!(fields[1] >= last_ts.as_str(), "ts went backwards: {line}");
            last_ts = fields[1].to_owned();
            match fields[2] {
                "INSERT_NODE" | "INSERT_EDGE" => {
                    inserted.insert(
                        (fields[3].to_owned(), fields[4].to_owned()),
                        last_ts.clone(),
                    );
                }
                "DELETE_EDGE" | "DELETE_NODE" => {
                    let at = inserted
                        .get(&(fields[3].to_owned(), fields[4].to_owned()))
                        .expect("delete before insert");
                    assert!(last_ts.as_str() > at.as_str(), "delete not after insert");
                }
                other => panic!("unknown kind {other}"),
            }
            // Tag has no temporal block: it must never appear.
            assert_ne!(fields[3], "Tag");
        }
    }

    #[test]
    fn shard_windows_tile_the_full_log() {
        let run = |index: u64, count: u64, format: OpsFormat| {
            let mut out = Vec::new();
            let mut sink = TemporalSink::new(&schema(), &mut out, format).unwrap();
            let manifest = SinkManifest::from_schema(&schema(), 5)
                .with_shard(ShardSpec::new(index, count).unwrap())
                .with_ops(true);
            sink.begin(&manifest).unwrap();
            // Totals are global regardless of the shard.
            sink.table_rows("Person", 0..0, 40).unwrap();
            sink.table_rows("knows", 0..0, 25).unwrap();
            sink.finish().unwrap();
            let rows = sink.contributed_tables().remove(0).1;
            (out, rows)
        };
        for format in [OpsFormat::Csv, OpsFormat::Jsonl] {
            let (full, full_rows) = run(0, 1, format);
            for k in [2u64, 3] {
                let mut cat = Vec::new();
                let mut hash_sum = 0u64;
                for i in 0..k {
                    let (part, rows) = run(i, k, format);
                    cat.extend_from_slice(&part);
                    hash_sum = hash_sum.wrapping_add(rows.content_hash);
                    assert_eq!(rows.total, full_rows.total);
                }
                assert_eq!(cat, full, "{format:?} k={k} concat differs");
                assert_eq!(hash_sum, full_rows.content_hash, "hashes must sum");
            }
        }
        // Format choice never changes the logical content hash.
        assert_eq!(run(0, 1, OpsFormat::Csv).1, run(0, 1, OpsFormat::Jsonl).1);
    }
}
