//! Dynamic graphs: deterministic, shardable update streams.
//!
//! The paper's framework generates *static* snapshots; real benchmark
//! suites also need the graph's *evolution* — a stream of inserts and
//! deletes a system under test can replay. This crate turns a schema's
//! `temporal { ... }` annotations into exactly that: a globally
//! timestamp-ordered **operation log** emitted alongside the snapshot.
//!
//! The design inherits the generator's core property: every timestamp is
//! a pure function of `(seed, table, row)` via the same per-table
//! [`TableStream`](datasynth_prng::TableStream) derivation the property
//! pipeline uses. A [`TypeClock`] encapsulates that recipe — arrival
//! (insert) timestamps and optional lifetime (delete) offsets — so the
//! sink that writes the log and the workload curator that samples
//! parameters from it can never disagree about when a row exists.
//!
//! [`TemporalSink`] is a peer of the stats and workload sinks: it
//! consumes the normal `GraphSink` event stream, and at `finish`
//! *reconstructs the complete global op sequence from table totals
//! alone*, sorts it by `(ts, kind, table, row)`, and writes only its
//! shard's op-index window. Concatenating the `k` shard files in index
//! order is byte-identical to one full run, at any thread count —
//! the same contract the snapshot exporters honor.

mod clock;
mod sink;

pub use clock::TypeClock;
pub use sink::{ops_file_name, OpsFormat, TemporalSink};

/// One kind of graph mutation in the op log.
///
/// The `rank` doubles as the tie-break after the timestamp in the global
/// op order: at equal timestamps, node inserts land before the edge
/// inserts that may reference them, and edge deletes before node deletes
/// — so a replayer never sees a dangling endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum OpKind {
    /// A node row comes into existence.
    InsertNode,
    /// An edge row comes into existence.
    InsertEdge,
    /// An edge row is removed (requires a `lifetime` clause).
    DeleteEdge,
    /// A node row is removed (requires a `lifetime` clause).
    DeleteNode,
}

impl OpKind {
    /// The keyword serialized into op-log rows.
    pub fn keyword(self) -> &'static str {
        match self {
            OpKind::InsertNode => "INSERT_NODE",
            OpKind::InsertEdge => "INSERT_EDGE",
            OpKind::DeleteEdge => "DELETE_EDGE",
            OpKind::DeleteNode => "DELETE_NODE",
        }
    }

    /// Position in the equal-timestamp tie-break order.
    pub fn rank(self) -> u8 {
        match self {
            OpKind::InsertNode => 0,
            OpKind::InsertEdge => 1,
            OpKind::DeleteEdge => 2,
            OpKind::DeleteNode => 3,
        }
    }
}
