//! The shared timestamp-draw recipe.

use datasynth_core::{gen_args_of, SinkError};
use datasynth_prng::TableStream;
use datasynth_props::{BoxedPropertyGenerator, PropertyRegistry};
use datasynth_schema::{GeneratorSpec, TemporalDef};
use datasynth_tables::{Value, ValueType};

/// The temporal clock of one node or edge type: insert timestamps (and
/// optional delete timestamps) for every row, each a pure function of
/// `(seed, table, row)`.
///
/// This is the *single* definition of when a row exists. The op-log sink
/// uses it to write the update stream; the workload curator uses it to
/// pick query parameters inside the generated time range. Both derive
/// their streams as `temporal.{table}.arrival` / `temporal.{table}.lifetime`
/// under the run's master seed, so a curator configured with the
/// generation seed samples timestamps that literally occur in the log.
pub struct TypeClock {
    arrival: BoxedPropertyGenerator,
    arrival_stream: TableStream,
    lifetime: Option<(BoxedPropertyGenerator, TableStream)>,
}

impl TypeClock {
    /// Build the clock for `table` from its temporal annotation.
    ///
    /// The arrival generator must produce [`ValueType::Date`] values and
    /// the lifetime generator [`ValueType::Long`] day-offsets; both must
    /// be dependency-free (validation already rejects `date_after`).
    pub fn new(seed: u64, table: &str, def: &TemporalDef) -> Result<Self, SinkError> {
        let arrival = build_clock_generator(table, "arrival", &def.arrival, ValueType::Date)?;
        let lifetime = match &def.lifetime {
            Some(spec) => Some((
                build_clock_generator(table, "lifetime", spec, ValueType::Long)?,
                TableStream::derive(seed, &format!("temporal.{table}.lifetime")),
            )),
            None => None,
        };
        Ok(TypeClock {
            arrival,
            arrival_stream: TableStream::derive(seed, &format!("temporal.{table}.arrival")),
            lifetime,
        })
    }

    /// Whether rows of this type also get delete operations.
    pub fn has_lifetime(&self) -> bool {
        self.lifetime.is_some()
    }

    /// The insert timestamp of global row `row`, in days since the epoch.
    pub fn insert_ts(&self, row: u64) -> Result<i64, SinkError> {
        let mut rng = self.arrival_stream.substream(row);
        match self.arrival.generate(row, &mut rng, &[]) {
            Ok(Value::Date(d)) => Ok(d),
            Ok(other) => Err(SinkError::invalid(format!(
                "arrival generator produced {other:?}, expected a date"
            ))),
            Err(e) => Err(SinkError::invalid(format!("arrival draw failed: {e}"))),
        }
    }

    /// The delete timestamp of global row `row`, if this type has a
    /// lifetime clause. Always **strictly after** the insert: the drawn
    /// lifetime is clamped to at least one day.
    pub fn delete_ts(&self, row: u64) -> Result<Option<i64>, SinkError> {
        let Some((generator, stream)) = &self.lifetime else {
            return Ok(None);
        };
        let mut rng = stream.substream(row);
        let days = match generator.generate(row, &mut rng, &[]) {
            Ok(Value::Long(v)) => v.max(1),
            Ok(other) => {
                return Err(SinkError::invalid(format!(
                    "lifetime generator produced {other:?}, expected a long"
                )));
            }
            Err(e) => return Err(SinkError::invalid(format!("lifetime draw failed: {e}"))),
        };
        Ok(Some(self.insert_ts(row)?.saturating_add(days)))
    }
}

fn build_clock_generator(
    table: &str,
    clause: &str,
    spec: &GeneratorSpec,
    expect: ValueType,
) -> Result<BoxedPropertyGenerator, SinkError> {
    let args = gen_args_of(spec)
        .map_err(|e| SinkError::invalid(format!("{table}: temporal {clause}: {e}")))?;
    let generator = PropertyRegistry::builtin()
        .build(&spec.name, &args, 0)
        .map_err(|e| SinkError::invalid(format!("{table}: temporal {clause}: {e}")))?;
    if generator.value_type() != expect {
        return Err(SinkError::invalid(format!(
            "{table}: temporal {clause} generator {:?} produces {:?} values, expected {:?}",
            spec.name,
            generator.value_type(),
            expect
        )));
    }
    Ok(generator)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::{Span, SpecArg};

    fn def() -> TemporalDef {
        TemporalDef {
            arrival: GeneratorSpec {
                name: "date_between".into(),
                args: vec![
                    SpecArg::Text("2010-01-01".into()),
                    SpecArg::Text("2013-01-01".into()),
                ],
                span: Span::SYNTHETIC,
            },
            lifetime: Some(GeneratorSpec {
                name: "uniform".into(),
                args: vec![SpecArg::Int(0), SpecArg::Int(400)],
                span: Span::SYNTHETIC,
            }),
            span: Span::SYNTHETIC,
        }
    }

    #[test]
    fn timestamps_are_pure_functions_of_seed_table_row() {
        let a = TypeClock::new(7, "Person", &def()).unwrap();
        let b = TypeClock::new(7, "Person", &def()).unwrap();
        for row in 0..200 {
            assert_eq!(a.insert_ts(row).unwrap(), b.insert_ts(row).unwrap());
            assert_eq!(a.delete_ts(row).unwrap(), b.delete_ts(row).unwrap());
        }
        let other_seed = TypeClock::new(8, "Person", &def()).unwrap();
        let other_table = TypeClock::new(7, "Post", &def()).unwrap();
        let same_seed =
            (0..200).filter(|&r| a.insert_ts(r).unwrap() == other_seed.insert_ts(r).unwrap());
        let same_table =
            (0..200).filter(|&r| a.insert_ts(r).unwrap() == other_table.insert_ts(r).unwrap());
        // date_between squeezes 64 random bits into ~1100 days, so a few
        // coincidences are expected — full agreement is not.
        assert!(same_seed.count() < 10);
        assert!(same_table.count() < 10);
    }

    #[test]
    fn deletes_are_strictly_after_inserts() {
        let zero_lifetime = TemporalDef {
            lifetime: Some(GeneratorSpec {
                name: "uniform".into(),
                args: vec![SpecArg::Int(0), SpecArg::Int(0)],
                span: Span::SYNTHETIC,
            }),
            ..def()
        };
        let clock = TypeClock::new(3, "knows", &zero_lifetime).unwrap();
        for row in 0..100 {
            let insert = clock.insert_ts(row).unwrap();
            let delete = clock.delete_ts(row).unwrap().unwrap();
            assert!(delete > insert, "row {row}: {delete} <= {insert}");
        }
    }

    #[test]
    fn wrong_value_types_are_rejected_at_construction() {
        let bad_arrival = TemporalDef {
            arrival: GeneratorSpec {
                name: "uniform".into(),
                args: vec![SpecArg::Int(0), SpecArg::Int(10)],
                span: Span::SYNTHETIC,
            },
            lifetime: None,
            span: Span::SYNTHETIC,
        };
        let err = TypeClock::new(1, "Person", &bad_arrival)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("expected Date"), "{err}");
        let bad_lifetime = TemporalDef {
            lifetime: Some(GeneratorSpec {
                name: "date_between".into(),
                args: vec![
                    SpecArg::Text("2010-01-01".into()),
                    SpecArg::Text("2011-01-01".into()),
                ],
                span: Span::SYNTHETIC,
            }),
            ..def()
        };
        let err = TypeClock::new(1, "Person", &bad_lifetime)
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("expected Long"), "{err}");
    }
}
