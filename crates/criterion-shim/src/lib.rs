//! A minimal, dependency-free stand-in for the [`criterion`] crate.
//!
//! The build environment has no access to a crates registry, so the real
//! `criterion` cannot be vendored. This shim implements the API surface the
//! workspace's benches use — `Criterion::benchmark_group`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `black_box`, and the
//! `criterion_group!`/`criterion_main!` macros — with a simple
//! warmup-then-measure timer that prints one line per benchmark:
//!
//! ```text
//! matching_lfr20k_k16/ldg ... 12.345 ms/iter (1620.3 Kelem/s)
//! ```
//!
//! Beyond printing, the harness can **persist** its results: running a
//! bench binary with `-- --persist FILE` writes every measurement to
//! `FILE` as JSON and, when `FILE` already holds a previous run, prints
//! per-benchmark deltas against it first — a poor man's baseline
//! comparison that makes the bench trajectory reviewable in the repo.
//! `-- --quick` caps the measurement target (~60 ms per benchmark) for
//! CI smoke runs. Unknown harness flags (`--bench`, filters, …) are
//! ignored.
//!
//! No statistical analysis or HTML reports are performed; swap the
//! dependency back to the real crate when registry access is available.
//!
//! [`criterion`]: https://docs.rs/criterion

use std::fmt;
use std::path::PathBuf;
use std::sync::{Mutex, OnceLock};
use std::time::{Duration, Instant};

use datasynth_telemetry::json::{self, Json};

pub use std::hint::black_box;

/// Measurement target cap under `--quick` (CI smoke mode).
const QUICK_TARGET: Duration = Duration::from_millis(60);

/// One finished measurement, as persisted by `--persist`.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Fully-qualified `group/benchmark` label.
    pub name: String,
    /// Mean wall time per iteration, in nanoseconds.
    pub ns_per_iter: u128,
    /// Timed iterations behind the mean (excludes the warmup pass).
    pub iters: u64,
}

fn records() -> &'static Mutex<Vec<BenchRecord>> {
    static RECORDS: OnceLock<Mutex<Vec<BenchRecord>>> = OnceLock::new();
    RECORDS.get_or_init(|| Mutex::new(Vec::new()))
}

#[derive(Debug, Default)]
struct HarnessConfig {
    quick: bool,
    persist: Option<PathBuf>,
}

static CONFIG: OnceLock<HarnessConfig> = OnceLock::new();

fn active_config() -> &'static HarnessConfig {
    CONFIG.get_or_init(HarnessConfig::default)
}

/// Parse harness flags from `std::env::args`. Called by the
/// `criterion_main!`-generated `main` before any group runs; unknown
/// flags (cargo's `--bench`, name filters) are ignored. If never called
/// (a group invoked directly from a test), the defaults apply.
pub fn init_from_args() {
    let mut cfg = HarnessConfig::default();
    let mut iter = std::env::args().skip(1);
    while let Some(a) = iter.next() {
        match a.as_str() {
            "--quick" => cfg.quick = true,
            "--persist" => cfg.persist = iter.next().map(PathBuf::from),
            _ => {}
        }
    }
    let _ = CONFIG.set(cfg);
}

/// Serialize the recorded measurements as deterministic, pretty JSON.
pub fn results_to_json(records: &[BenchRecord]) -> String {
    let mut out = String::from("{\n  \"benchmarks\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str("    {\"name\": ");
        json::write_str(&mut out, &r.name);
        out.push_str(&format!(
            ", \"ns_per_iter\": {}, \"iters\": {}}}{}\n",
            r.ns_per_iter,
            r.iters,
            if i + 1 < records.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}

/// Parse the JSON written by [`results_to_json`]. Tolerant: records with
/// missing or mistyped fields are skipped, as are unparseable files — a
/// corrupt baseline only suppresses the delta report.
pub fn parse_results(src: &str) -> Vec<BenchRecord> {
    let Ok(root) = Json::parse(src) else {
        return Vec::new();
    };
    let Some(benches) = root.get("benchmarks").and_then(Json::as_arr) else {
        return Vec::new();
    };
    benches
        .iter()
        .filter_map(|b| {
            Some(BenchRecord {
                name: b.get("name")?.as_str()?.to_owned(),
                ns_per_iter: b.get("ns_per_iter")?.as_u64()? as u128,
                iters: b.get("iters")?.as_u64()?,
            })
        })
        .collect()
}

/// Persist results and print deltas against the previous file, if any.
/// Called by the `criterion_main!`-generated `main` after all groups ran;
/// a no-op without `--persist`.
pub fn finalize() {
    let Some(path) = active_config().persist.as_ref() else {
        return;
    };
    // Cargo runs bench binaries with the *package* directory as cwd, so a
    // bare `--persist BENCH_x.json` from a workspace member would land in
    // `crates/<member>/` while CI and humans expect it next to the
    // workspace `Cargo.toml`. Anchor relative paths at the topmost
    // ancestor that has a Cargo.toml.
    let path = &if path.is_relative() {
        workspace_root().join(path)
    } else {
        path.clone()
    };
    let current = records().lock().expect("recorder poisoned").clone();
    if let Ok(prev_text) = std::fs::read_to_string(path) {
        let previous = parse_results(&prev_text);
        if !previous.is_empty() {
            println!("\ndeltas vs previous {}:", path.display());
            for r in &current {
                match previous.iter().find(|p| p.name == r.name) {
                    Some(p) if p.ns_per_iter > 0 => {
                        let delta = (r.ns_per_iter as f64 - p.ns_per_iter as f64)
                            / p.ns_per_iter as f64
                            * 100.0;
                        println!(
                            "  {}: {} -> {} ({delta:+.1}%)",
                            r.name,
                            human_time(Duration::from_nanos(p.ns_per_iter as u64)),
                            human_time(Duration::from_nanos(r.ns_per_iter as u64)),
                        );
                    }
                    _ => println!("  {}: new benchmark", r.name),
                }
            }
        }
    }
    match std::fs::write(path, results_to_json(&current)) {
        Ok(()) => println!("\nbench results -> {}", path.display()),
        Err(e) => eprintln!("cannot persist bench results to {}: {e}", path.display()),
    }
}

/// The highest ancestor of the current directory that contains a
/// `Cargo.toml` — the workspace root when run under `cargo bench`.
fn workspace_root() -> PathBuf {
    let cwd = std::env::current_dir().unwrap_or_else(|_| PathBuf::from("."));
    let mut root = cwd.clone();
    let mut dir = cwd.as_path();
    loop {
        if dir.join("Cargo.toml").exists() {
            root = dir.to_path_buf();
        }
        match dir.parent() {
            Some(parent) => dir = parent,
            None => return root,
        }
    }
}

/// How throughput is accounted per iteration.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter` form.
    pub fn new(name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        Self {
            name: format!("{name}/{parameter}"),
        }
    }

    /// Parameter-only form (the group provides the name).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        Self {
            name: parameter.to_string(),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { name: s.into() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { name: s }
    }
}

/// Passed to the closure under test; `iter` runs and times the payload.
pub struct Bencher {
    iters_done: u64,
    elapsed: Duration,
    target: Duration,
}

impl Bencher {
    fn new(target: Duration) -> Self {
        Self {
            iters_done: 0,
            elapsed: Duration::ZERO,
            target,
        }
    }

    /// Run `payload` repeatedly until the measurement target is reached.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut payload: F) {
        // One untimed warmup iteration.
        black_box(payload());
        let start = Instant::now();
        loop {
            black_box(payload());
            self.iters_done += 1;
            self.elapsed = start.elapsed();
            if self.elapsed >= self.target {
                break;
            }
        }
    }

    fn per_iter(&self) -> Duration {
        if self.iters_done == 0 {
            Duration::ZERO
        } else {
            self.elapsed / self.iters_done as u32
        }
    }
}

fn human_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

fn human_rate(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.1} G{unit}/s", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.1} M{unit}/s", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.1} K{unit}/s", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}/s")
    }
}

fn report(group: Option<&str>, id: &str, b: &Bencher, throughput: Option<Throughput>) {
    let per_iter = b.per_iter();
    let label = match group {
        Some(g) => format!("{g}/{id}"),
        None => id.to_string(),
    };
    records()
        .lock()
        .expect("recorder poisoned")
        .push(BenchRecord {
            name: label.clone(),
            ns_per_iter: per_iter.as_nanos(),
            iters: b.iters_done,
        });
    let mut line = format!("{label} ... {}/iter", human_time(per_iter));
    if let Some(t) = throughput {
        let secs = per_iter.as_secs_f64();
        if secs > 0.0 {
            let (count, unit) = match t {
                Throughput::Elements(n) => (n, "elem"),
                Throughput::Bytes(n) => (n, "B"),
            };
            line.push_str(&format!(" ({})", human_rate(count as f64 / secs, unit)));
        }
    }
    println!("{line}");
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'c> {
    name: String,
    throughput: Option<Throughput>,
    target: Duration,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the shim sizes runs by wall time.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; `--quick` caps it further.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        let cap = if active_config().quick {
            QUICK_TARGET
        } else {
            Duration::from_secs(2)
        };
        self.target = d.min(cap);
        self
    }

    /// Set the throughput accounting for subsequent benchmarks.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b);
        report(Some(&self.name), &id.name, &b, self.throughput);
        self
    }

    /// Run one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut b = Bencher::new(self.target);
        f(&mut b, input);
        report(Some(&self.name), &id.name, &b, self.throughput);
        self
    }

    /// End the group (no-op beyond API compatibility).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    target: Duration,
}

impl Criterion {
    fn effective_target(&self) -> Duration {
        let target = if self.target.is_zero() {
            Duration::from_millis(300)
        } else {
            self.target
        };
        if active_config().quick {
            target.min(QUICK_TARGET)
        } else {
            target
        }
    }

    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let target = self.effective_target();
        BenchmarkGroup {
            name: name.into(),
            throughput: None,
            target,
            _criterion: self,
        }
    }

    /// Run one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher::new(self.effective_target());
        f(&mut b);
        report(None, id, &b, None);
        self
    }
}

/// Declare a group-runner function calling each benchmark fn in turn.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declare `main` running each group, honouring the harness flags
/// (`--quick`, `--persist FILE`) and persisting results at exit.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $crate::init_from_args();
            $($group();)+
            $crate::finalize();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_counts_iterations() {
        let mut b = Bencher::new(Duration::from_millis(5));
        let mut n = 0u64;
        b.iter(|| n += 1);
        assert!(b.iters_done >= 1);
        assert!(n > b.iters_done, "warmup iteration must also run");
        assert!(b.per_iter() > Duration::ZERO);
    }

    #[test]
    fn ids_render() {
        assert_eq!(
            BenchmarkId::new("sbm", "Density").to_string(),
            "sbm/Density"
        );
        assert_eq!(BenchmarkId::from_parameter(4).to_string(), "4");
    }

    #[test]
    fn persisted_results_roundtrip() {
        let records = vec![
            BenchRecord {
                name: "pipeline/full".into(),
                ns_per_iter: 12_345_678,
                iters: 25,
            },
            BenchRecord {
                name: "odd \"name\"".into(),
                ns_per_iter: 1,
                iters: 1,
            },
        ];
        let json = results_to_json(&records);
        assert_eq!(parse_results(&json), records);
        assert_eq!(parse_results("{}"), vec![]);
    }

    #[test]
    fn human_units() {
        assert_eq!(human_time(Duration::from_nanos(500)), "500 ns");
        assert_eq!(human_time(Duration::from_micros(1500)), "1.500 ms");
        assert!(human_rate(2.5e6, "elem").starts_with("2.5 M"));
    }
}
