//! Matching-quality evaluation: the expected-vs-observed CDF series of
//! Figures 3 and 4, plus the paper's experiment protocol helpers.

use datasynth_prng::dist::geometric_pmf;
use datasynth_tables::EdgeTable;

use crate::jpd::Jpd;

/// Measure the empirical joint distribution `P'(X,Y)` of the labels at the
/// endpoints of every edge (unordered).
pub fn empirical_jpd(labels: &[u32], edges: &EdgeTable, k: usize) -> Jpd {
    let mut counts = vec![vec![0.0f64; k]; k];
    for (t, h) in edges.iter() {
        let (a, b) = (labels[t as usize] as usize, labels[h as usize] as usize);
        let (lo, hi) = (a.min(b), a.max(b));
        counts[lo][hi] += 1.0;
    }
    Jpd::from_unordered_counts(&counts)
}

/// One point of the CDF comparison: an unordered value pair with its
/// expected and observed probability.
#[derive(Debug, Clone, PartialEq)]
pub struct PairPoint {
    /// First value index (`<= j`).
    pub i: usize,
    /// Second value index.
    pub j: usize,
    /// Target mass `P(i, j)`.
    pub expected: f64,
    /// Achieved mass `P'(i, j)`.
    pub observed: f64,
}

/// The full comparison: pairs sorted by decreasing expected mass (the
/// x-axis of the paper's figures), both CDFs, and scalar distances.
#[derive(Debug, Clone, PartialEq)]
pub struct CdfComparison {
    /// Pairs in plot order.
    pub pairs: Vec<PairPoint>,
    /// Running sum of expected masses.
    pub expected_cdf: Vec<f64>,
    /// Running sum of observed masses (in the expected order).
    pub observed_cdf: Vec<f64>,
    /// L1 distance between the two pmfs.
    pub l1: f64,
    /// Kolmogorov–Smirnov distance between the two CDFs.
    pub ks: f64,
    /// Hellinger distance between the two pmfs.
    pub hellinger: f64,
    /// Expected diagonal (homophily) mass.
    pub expected_diagonal: f64,
    /// Observed diagonal mass.
    pub observed_diagonal: f64,
}

/// Build the comparison between a target JPD and an observed one.
pub fn compare_jpds(expected: &Jpd, observed: &Jpd) -> CdfComparison {
    assert_eq!(expected.k(), observed.k(), "mismatched arity");
    let order = expected.pairs_by_mass_desc();
    let mut pairs = Vec::with_capacity(order.len());
    let mut expected_cdf = Vec::with_capacity(order.len());
    let mut observed_cdf = Vec::with_capacity(order.len());
    let (mut ce, mut co) = (0.0, 0.0);
    let (mut l1, mut h2) = (0.0, 0.0);
    let mut ks: f64 = 0.0;
    for (i, j, e) in order {
        let o = observed.unordered_mass(i, j);
        pairs.push(PairPoint {
            i,
            j,
            expected: e,
            observed: o,
        });
        ce += e;
        co += o;
        expected_cdf.push(ce);
        observed_cdf.push(co);
        l1 += (e - o).abs();
        h2 += (e.sqrt() - o.sqrt()).powi(2);
        ks = ks.max((ce - co).abs());
    }
    CdfComparison {
        pairs,
        expected_cdf,
        observed_cdf,
        l1,
        ks,
        hellinger: (h2 / 2.0).sqrt(),
        expected_diagonal: expected.diagonal_mass(),
        observed_diagonal: observed.diagonal_mass(),
    }
}

/// The paper's group-size protocol: `size_i ∝ max(geo(0.4, i), 1/k)`,
/// scaled to sum exactly to `n` (largest-remainder rounding; every group
/// keeps at least one member when `n >= k`).
pub fn geometric_group_sizes(n: u64, k: usize, p: f64) -> Vec<u64> {
    assert!(k >= 1 && n >= k as u64, "need at least one node per group");
    let raw: Vec<f64> = (0..k)
        .map(|i| geometric_pmf(p, i as u64).max(1.0 / k as f64))
        .collect();
    let total: f64 = raw.iter().sum();
    let scaled: Vec<f64> = raw.iter().map(|w| w / total * n as f64).collect();
    let mut sizes: Vec<u64> = scaled.iter().map(|s| (s.floor() as u64).max(1)).collect();
    // Largest-remainder: distribute what rounding dropped (or reclaim
    // overshoot caused by the >= 1 floor).
    let mut assigned: u64 = sizes.iter().sum();
    let mut order: Vec<usize> = (0..k).collect();
    order.sort_by(|&a, &b| {
        let ra = scaled[a] - scaled[a].floor();
        let rb = scaled[b] - scaled[b].floor();
        rb.partial_cmp(&ra).expect("no NaN")
    });
    let mut idx = 0;
    while assigned < n {
        sizes[order[idx % k]] += 1;
        assigned += 1;
        idx += 1;
    }
    idx = 0;
    while assigned > n {
        let g = order[k - 1 - (idx % k)];
        if sizes[g] > 1 {
            sizes[g] -= 1;
            assigned -= 1;
        }
        idx += 1;
    }
    debug_assert_eq!(sizes.iter().sum::<u64>(), n);
    sizes
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_jpd_counts_edges_once() {
        let labels = [0u32, 0, 1, 1];
        let et = EdgeTable::from_pairs("e", [(0u64, 1u64), (2, 3), (0, 2), (1, 3)]);
        let jpd = empirical_jpd(&labels, &et, 2);
        assert!((jpd.unordered_mass(0, 0) - 0.25).abs() < 1e-12);
        assert!((jpd.unordered_mass(1, 1) - 0.25).abs() < 1e-12);
        assert!((jpd.unordered_mass(0, 1) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn identical_jpds_compare_to_zero() {
        let jpd = Jpd::homophilous(&[1.0, 2.0, 3.0], 0.6);
        let cmp = compare_jpds(&jpd, &jpd);
        assert!(cmp.l1 < 1e-12);
        assert!(cmp.ks < 1e-12);
        assert!(cmp.hellinger < 1e-12);
        let last = *cmp.expected_cdf.last().unwrap();
        assert!((last - 1.0).abs() < 1e-9, "CDF reaches 1, got {last}");
    }

    #[test]
    fn comparison_orders_by_expected_mass() {
        let expected = Jpd::homophilous(&[4.0, 1.0], 0.9);
        let observed = Jpd::uniform(2);
        let cmp = compare_jpds(&expected, &observed);
        for w in cmp.pairs.windows(2) {
            assert!(w[0].expected >= w[1].expected);
        }
        assert!(cmp.l1 > 0.1);
        assert!((cmp.expected_diagonal - 0.9).abs() < 1e-9);
    }

    #[test]
    fn geometric_sizes_match_paper_formula() {
        let n = 10_000u64;
        let k = 16;
        let sizes = geometric_group_sizes(n, k, 0.4);
        assert_eq!(sizes.len(), k);
        assert_eq!(sizes.iter().sum::<u64>(), n);
        // Decreasing head (geometric part), flat tail (the 1/k floor).
        assert!(sizes[0] > sizes[1]);
        assert!(sizes[1] > sizes[2]);
        let tail_spread = sizes[10].abs_diff(sizes[15]);
        assert!(tail_spread <= 2, "tail should be nearly flat: {sizes:?}");
        // Check the exact proportions for the first group:
        // geo(0.4, 0) = 0.4 vs floor 1/16; weight 0.4.
        let raw: f64 = (0..k)
            .map(|i| geometric_pmf(0.4, i as u64).max(1.0 / 16.0))
            .sum();
        let expected0 = 0.4 / raw * n as f64;
        assert!(
            (sizes[0] as f64 - expected0).abs() <= 1.0,
            "{} vs {expected0}",
            sizes[0]
        );
    }

    #[test]
    fn geometric_sizes_small_n() {
        let sizes = geometric_group_sizes(16, 16, 0.4);
        assert_eq!(sizes.iter().sum::<u64>(), 16);
        assert!(sizes.iter().all(|&s| s >= 1));
    }
}
