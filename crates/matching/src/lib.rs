//! Graph matching: assigning property-table rows to structure nodes while
//! preserving a target joint probability distribution `P(X,Y)` over the
//! property values at edge endpoints.
//!
//! This is the paper's central contribution (§4.2, "Graph Matching"):
//!
//! * [`Jpd`] — the joint distribution object and its conversion to the SBM
//!   target edge-count matrix `W`,
//! * [`sbm_part`] — **SBM-Part**, the streaming partitioner that places
//!   each arriving node into the group minimizing the Frobenius distance
//!   `‖W_t − W‖²_F`, balanced by remaining capacity as in LDG,
//! * [`ldg_partition`] — the original LDG streaming partitioner
//!   (Stanton & Kliot, KDD'12), used both as the baseline and to fabricate
//!   ground-truth groups in the paper's experiment protocol,
//! * [`random_matching`] — the "no correlation" fallback,
//! * [`sbm_part_bipartite`] — the bipartite variant sketched in §4.2,
//! * [`evaluate`] — expected-vs-observed CDF series (Figures 3 and 4) and
//!   distances, plus the paper's geometric group-size protocol.

mod bipartite;
pub mod evaluate;
mod jpd;
mod ldg;
mod matcher;
mod refine;
mod sbm_part;

pub use bipartite::{empirical_bipartite_jpd, sbm_part_bipartite, BipartiteInput, BipartiteResult};
pub use jpd::Jpd;
pub use ldg::ldg_partition;
pub use matcher::{
    apply_mapping, assignment_to_mapping, assignment_to_mapping_with_ids, random_matching,
    MatchResult,
};
pub use refine::{refine_assignment, RefineStats};
pub use sbm_part::{
    sbm_part, sbm_part_random_order, sbm_part_with, MatchInput, SbmPartConfig, ScoreScheme,
};
