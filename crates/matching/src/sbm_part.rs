//! SBM-Part: the paper's streaming property-to-node matching algorithm.
//!
//! Nodes arrive in a stream; each is placed into the group `t` that
//! minimizes `‖W_t − W‖²_F`, where `W` is the target edge-count matrix
//! derived from `P(X,Y)` and `W_t` is the running count matrix after a
//! hypothetical placement into `t`. As in LDG, the improvement is weighted
//! by remaining capacity `(1 − s_t/q_t)`, and group sizes `Q` are hard
//! constraints (they must equal the property table's value frequencies).
//!
//! Placing node `v` into `t` only changes the entries `(t, p)` for groups
//! `p` that hold already-placed neighbors of `v`, so each candidate is
//! scored in O(|touched groups|) and a node costs O(deg(v) + k·touched).

use datasynth_prng::SplitMix64;
use datasynth_tables::Csr;

use crate::jpd::{upper_index, Jpd};
use crate::matcher::MatchResult;

/// Inputs of one SBM-Part run.
#[derive(Debug)]
pub struct MatchInput<'a> {
    /// Group sizes `Q` (the frequency of each property value); must sum to
    /// the node count.
    pub group_sizes: &'a [u64],
    /// Target joint distribution `P(X,Y)`.
    pub jpd: &'a Jpd,
    /// Undirected adjacency of the structure graph.
    pub csr: &'a Csr,
    /// Edge count `m` of the structure graph.
    pub num_edges: u64,
}

/// How a candidate placement is scored against the target matrix `W`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScoreScheme {
    /// Frobenius gain on raw edge counts — the paper's stated choice
    /// ("we work with absolute number of edges ... for convenience").
    /// Weakness: the largest group's huge target entries dominate every
    /// placement with even one neighbor there.
    RawCounts,
    /// Frobenius gain on *edge densities* (`W_ij/(q_i·q_j)`, the SBM δ
    /// scale of the paper's `2mP/(q_i q_j)` formulas). Equalizes entry
    /// scales, but lets tiny groups over-attract early.
    Density,
    /// Neighbor votes weighted by each entry's *relative* remaining
    /// deficit `1 − x/W` (entries at/over target stop attracting;
    /// zero-target entries repel). Early in the stream every deficit is
    /// ≈1 so this behaves like LDG; late it becomes target-aware.
    #[default]
    RelativeDeficit,
}

/// Tuning knobs for [`sbm_part_with`] (defaults are the best-performing
/// combination; the `ablation` bench sweeps all of them).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct SbmPartConfig {
    /// Scoring scheme.
    pub scheme: ScoreScheme,
    /// Apply the LDG-style remaining-capacity factor `(1 − s_t/q_t)`.
    /// `false` disables it (hard capacities still hold).
    pub no_capacity_penalty: bool,
}

/// Run SBM-Part over the given stream `order` (a permutation of node ids)
/// with default configuration. Returns the per-node group assignment and
/// the node→property-id mapping.
pub fn sbm_part(input: &MatchInput<'_>, order: &[u64]) -> MatchResult {
    sbm_part_with(input, order, SbmPartConfig::default())
}

/// Run SBM-Part with explicit configuration.
pub fn sbm_part_with(input: &MatchInput<'_>, order: &[u64], config: SbmPartConfig) -> MatchResult {
    let n = input.csr.num_nodes() as usize;
    let k = input.group_sizes.len();
    assert_eq!(input.jpd.k(), k, "JPD arity must match group count");
    assert_eq!(
        input.group_sizes.iter().sum::<u64>(),
        n as u64,
        "group sizes must sum to node count"
    );
    assert_eq!(order.len(), n, "order must cover all nodes");

    // Per-entry scale applied to both target and running counts:
    // 1 for raw counts; 1/(pair count), re-centred to keep magnitudes
    // O(counts), for densities; 1 for relative-deficit (it normalizes on
    // the fly).
    let mut scale = vec![1.0f64; k * (k + 1) / 2];
    if config.scheme == ScoreScheme::Density {
        let mean_q = n as f64 / k as f64;
        let ref_pairs = mean_q * mean_q;
        for i in 0..k {
            for j in i..k {
                let pairs = if i == j {
                    let q = input.group_sizes[i] as f64;
                    (q * (q - 1.0) / 2.0).max(1.0)
                } else {
                    (input.group_sizes[i] as f64 * input.group_sizes[j] as f64).max(1.0)
                };
                scale[upper_index(k, i, j)] = ref_pairs / pairs;
            }
        }
    }
    let target: Vec<f64> = input
        .jpd
        .target_counts(input.num_edges)
        .iter()
        .zip(&scale)
        .map(|(w, s)| w * s)
        .collect();
    let mut current = vec![0.0f64; target.len()];
    let mut assign = vec![u32::MAX; n];
    let mut sizes = vec![0u64; k];

    // Scratch: per-group counts of already-placed neighbors.
    let mut counts = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::with_capacity(64);

    for &v in order {
        for &u in input.csr.neighbors(v) {
            let g = assign[u as usize];
            if g != u32::MAX {
                if counts[g as usize] == 0 {
                    touched.push(g);
                }
                counts[g as usize] += 1;
            }
        }

        let mut best: Option<(f64, f64, u32)> = None; // (-score, fill, group)
        for t in 0..k {
            if sizes[t] >= input.group_sizes[t] {
                continue;
            }
            // Gain of placing v into t, summed over the entries (t, p)
            // this placement touches.
            let mut gain = 0.0;
            for &p in &touched {
                let p = p as usize;
                let idx = if t <= p {
                    upper_index(k, t, p)
                } else {
                    upper_index(k, p, t)
                };
                match config.scheme {
                    ScoreScheme::RawCounts | ScoreScheme::Density => {
                        // Frobenius: (x)² − (x + c)² = −2xc − c².
                        let x = current[idx] - target[idx];
                        let c = counts[p] as f64 * scale[idx];
                        gain += -2.0 * x * c - c * c;
                    }
                    ScoreScheme::RelativeDeficit => {
                        let c = counts[p] as f64;
                        gain += if target[idx] <= 0.0 {
                            -c // zero-target entries repel
                        } else {
                            c * (1.0 - current[idx] / target[idx])
                        };
                    }
                }
            }
            let fill = sizes[t] as f64 / input.group_sizes[t] as f64;
            let score = if config.no_capacity_penalty {
                gain
            } else {
                gain * (1.0 - fill)
            };
            let key = (-score, fill, t as u32);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, t) = best.expect("group sizes sum to n");
        assign[v as usize] = t;
        sizes[t as usize] += 1;
        for g in touched.drain(..) {
            let p = g as usize;
            let t = t as usize;
            let idx = if t <= p {
                upper_index(k, t, p)
            } else {
                upper_index(k, p, t)
            };
            current[idx] += counts[p] as f64 * scale[idx];
            counts[p] = 0;
        }
    }

    MatchResult::from_assignment(assign, input.group_sizes)
}

/// Convenience: run SBM-Part with a seeded random stream order (the
/// paper sends nodes "randomly").
pub fn sbm_part_random_order(input: &MatchInput<'_>, seed: u64) -> MatchResult {
    let mut order: Vec<u64> = (0..input.csr.num_nodes()).collect();
    SplitMix64::new(seed).shuffle(&mut order);
    sbm_part(input, &order)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::empirical_jpd;
    use datasynth_tables::EdgeTable;

    /// Two disjoint cliques and a perfectly homophilous JPD: SBM-Part must
    /// recover the planted split exactly (up to label permutation).
    #[test]
    fn recovers_planted_cliques() {
        let mut et = EdgeTable::new("e");
        for base in [0u64, 6] {
            for a in 0..6 {
                for b in (a + 1)..6 {
                    et.push(base + a, base + b);
                }
            }
        }
        let csr = Csr::undirected(&et, 12);
        let jpd = Jpd::from_matrix(&[vec![0.5, 0.0], vec![0.0, 0.5]]);
        let input = MatchInput {
            group_sizes: &[6, 6],
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let result = sbm_part_random_order(&input, 42);
        for clique in [0..6usize, 6..12usize] {
            let labels: std::collections::HashSet<u32> =
                clique.map(|v| result.group_of[v]).collect();
            assert_eq!(labels.len(), 1, "split clique: {:?}", result.group_of);
        }
        assert_ne!(result.group_of[0], result.group_of[11]);
    }

    #[test]
    fn group_sizes_are_hard_constraints() {
        let et = EdgeTable::from_pairs("e", (0..50u64).map(|i| (i, (i + 1) % 50)));
        let csr = Csr::undirected(&et, 50);
        let jpd = Jpd::uniform(3);
        let sizes = [10u64, 15, 25];
        let input = MatchInput {
            group_sizes: &sizes,
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let result = sbm_part_random_order(&input, 7);
        let mut got = [0u64; 3];
        for &g in &result.group_of {
            got[g as usize] += 1;
        }
        assert_eq!(got, sizes);
    }

    #[test]
    fn improves_over_random_on_homophilous_target() {
        // A ring of cliques: strong structure; homophilous target.
        // (Sized so streaming cold-start noise cannot dominate.)
        let mut et = EdgeTable::new("e");
        let k_groups = 4u64;
        let gsize = 24u64;
        let n = k_groups * gsize;
        for g in 0..k_groups {
            let base = g * gsize;
            for a in 0..gsize {
                for b in (a + 1)..gsize {
                    et.push(base + a, base + b);
                }
            }
            et.push(base, (base + gsize) % n);
        }
        let csr = Csr::undirected(&et, n);
        let jpd = Jpd::homophilous(&vec![1.0; k_groups as usize], 0.9);
        let sizes = vec![gsize; k_groups as usize];
        let input = MatchInput {
            group_sizes: &sizes,
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let smart = sbm_part_random_order(&input, 1);
        let random = crate::matcher::random_matching(&sizes, n, 1);
        let observed_smart = empirical_jpd(&smart.group_of, &et, jpd.k());
        let observed_random = empirical_jpd(&random.group_of, &et, jpd.k());
        let err_smart = datasynth_analysis::l1_distance(&flatten(&jpd), &flatten(&observed_smart));
        let err_random =
            datasynth_analysis::l1_distance(&flatten(&jpd), &flatten(&observed_random));
        assert!(
            err_smart < 0.5 * err_random,
            "SBM-Part {err_smart} vs random {err_random}"
        );
    }

    fn flatten(jpd: &Jpd) -> Vec<f64> {
        let k = jpd.k();
        (0..k)
            .flat_map(|i| (i..k).map(move |j| (i, j)))
            .map(|(i, j)| jpd.unordered_mass(i, j))
            .collect()
    }

    #[test]
    fn deterministic_given_order() {
        let et = EdgeTable::from_pairs("e", (0..30u64).map(|i| (i, (i * 7 + 1) % 30)));
        let csr = Csr::undirected(&et, 30);
        let jpd = Jpd::uniform(2);
        let input = MatchInput {
            group_sizes: &[15, 15],
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let a = sbm_part_random_order(&input, 5);
        let b = sbm_part_random_order(&input, 5);
        assert_eq!(a.group_of, b.group_of);
        assert_eq!(a.mapping, b.mapping);
    }
}
