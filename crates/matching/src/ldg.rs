//! LDG streaming graph partitioning (Stanton & Kliot, KDD'12): each
//! arriving node goes to the partition holding most of its already-seen
//! neighbors, weighted by remaining capacity.

use datasynth_tables::Csr;

/// Partition nodes into groups with the given capacities. `order` is the
/// stream order (a permutation of `0..n`); `csr` must be the undirected
/// adjacency. Returns one group label per node.
///
/// Placement rule: `argmax_t |N(v) ∩ t| · (1 − s_t/q_t)` over groups with
/// free capacity, ties broken by lowest fill ratio then lowest index.
pub fn ldg_partition(csr: &Csr, capacities: &[u64], order: &[u64]) -> Vec<u32> {
    let n = csr.num_nodes() as usize;
    let k = capacities.len();
    assert!(k > 0, "no partitions");
    assert_eq!(order.len(), n, "order must cover all nodes");
    let total: u64 = capacities.iter().sum();
    assert!(total >= n as u64, "capacities below node count");

    let mut assign = vec![u32::MAX; n];
    let mut sizes = vec![0u64; k];
    // Scratch: neighbor counts per group, plus the touched list.
    let mut counts = vec![0u64; k];
    let mut touched: Vec<u32> = Vec::with_capacity(64);

    for &v in order {
        for &u in csr.neighbors(v) {
            let g = assign[u as usize];
            if g != u32::MAX {
                if counts[g as usize] == 0 {
                    touched.push(g);
                }
                counts[g as usize] += 1;
            }
        }
        let mut best: Option<(f64, f64, u32)> = None; // (-score, fill, group)
        for t in 0..k as u32 {
            if sizes[t as usize] >= capacities[t as usize] {
                continue;
            }
            let fill = sizes[t as usize] as f64 / capacities[t as usize] as f64;
            let score = counts[t as usize] as f64 * (1.0 - fill);
            let key = (-score, fill, t);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, t) = best.expect("capacity left by invariant");
        assign[v as usize] = t;
        sizes[t as usize] += 1;
        for g in touched.drain(..) {
            counts[g as usize] = 0;
        }
    }
    assign
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::SplitMix64;
    use datasynth_tables::EdgeTable;

    fn two_cliques() -> (EdgeTable, u64) {
        // Two K5s joined by a single bridge.
        let mut et = EdgeTable::new("e");
        for base in [0u64, 5] {
            for a in 0..5 {
                for b in (a + 1)..5 {
                    et.push(base + a, base + b);
                }
            }
        }
        et.push(4, 5);
        (et, 10)
    }

    #[test]
    fn recovers_two_cliques() {
        let (et, n) = two_cliques();
        let csr = Csr::undirected(&et, n);
        let mut order: Vec<u64> = (0..n).collect();
        SplitMix64::new(3).shuffle(&mut order);
        let assign = ldg_partition(&csr, &[5, 5], &order);
        // Within each clique, all labels equal.
        for clique in [0..5u64, 5..10u64] {
            let labels: std::collections::HashSet<u32> =
                clique.map(|v| assign[v as usize]).collect();
            assert_eq!(labels.len(), 1, "clique split: {assign:?}");
        }
        assert_ne!(assign[0], assign[9]);
    }

    #[test]
    fn capacities_are_exact() {
        let (et, n) = two_cliques();
        let csr = Csr::undirected(&et, n);
        let order: Vec<u64> = (0..n).collect();
        let caps = [3u64, 3, 4];
        let assign = ldg_partition(&csr, &caps, &order);
        let mut sizes = [0u64; 3];
        for &a in &assign {
            sizes[a as usize] += 1;
        }
        assert_eq!(sizes, caps);
    }

    #[test]
    fn isolated_nodes_spread_by_balance() {
        let et = EdgeTable::new("e");
        let csr = Csr::undirected(&et, 9);
        let order: Vec<u64> = (0..9).collect();
        let assign = ldg_partition(&csr, &[3, 3, 3], &order);
        let mut sizes = [0u64; 3];
        for &a in &assign {
            sizes[a as usize] += 1;
        }
        assert_eq!(sizes, [3, 3, 3]);
    }

    #[test]
    #[should_panic(expected = "capacities below node count")]
    fn rejects_insufficient_capacity() {
        let et = EdgeTable::new("e");
        let csr = Csr::undirected(&et, 5);
        ldg_partition(&csr, &[2, 2], &(0..5).collect::<Vec<_>>());
    }
}
