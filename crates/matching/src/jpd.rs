//! Joint probability distributions over edge-endpoint property values.
//!
//! Convention: a [`Jpd`] over `k` values is a symmetric `k × k` matrix of
//! *ordered-pair* mass summing to 1. The mass of observing the unordered
//! pair `{i, j}` on a random edge is `2·p[i][j]` for `i ≠ j` and `p[i][i]`
//! on the diagonal, so unordered masses also sum to 1.

/// A symmetric joint distribution over `k` property values.
#[derive(Debug, Clone, PartialEq)]
pub struct Jpd {
    k: usize,
    p: Vec<f64>, // row-major k×k, symmetric, sums to 1
}

impl Jpd {
    /// Build from a symmetric non-negative matrix (normalized internally).
    pub fn from_matrix(rows: &[Vec<f64>]) -> Self {
        let k = rows.len();
        assert!(k > 0, "empty JPD");
        let mut p = Vec::with_capacity(k * k);
        for row in rows {
            assert_eq!(row.len(), k, "square matrix required");
            for &v in row {
                assert!(v >= 0.0 && v.is_finite(), "bad mass {v}");
                p.push(v);
            }
        }
        for i in 0..k {
            for j in 0..k {
                assert!(
                    (p[i * k + j] - p[j * k + i]).abs() < 1e-9,
                    "matrix must be symmetric"
                );
            }
        }
        let total: f64 = p.iter().sum();
        assert!(total > 0.0, "all-zero JPD");
        for v in &mut p {
            *v /= total;
        }
        Self { k, p }
    }

    /// Uniform over all ordered pairs.
    pub fn uniform(k: usize) -> Self {
        Self::from_matrix(&vec![vec![1.0; k]; k])
    }

    /// Homophilous JPD: `diag_mass` of the total sits on the diagonal
    /// (spread by `group_weights`), the rest off-diagonal proportional to
    /// `w_i · w_j` — the "Persons from the same country are more likely to
    /// know each other" shape.
    pub fn homophilous(group_weights: &[f64], diag_mass: f64) -> Self {
        let k = group_weights.len();
        assert!(k > 0 && (0.0..=1.0).contains(&diag_mass));
        let wsum: f64 = group_weights.iter().sum();
        let w: Vec<f64> = group_weights.iter().map(|x| x / wsum).collect();
        let mut rows = vec![vec![0.0; k]; k];
        let off_norm: f64 = (0..k)
            .flat_map(|i| (0..k).map(move |j| (i, j)))
            .filter(|(i, j)| i != j)
            .map(|(i, j)| w[i] * w[j])
            .sum();
        for i in 0..k {
            rows[i][i] = diag_mass * w[i];
            for j in 0..k {
                if i != j && off_norm > 0.0 {
                    rows[i][j] = (1.0 - diag_mass) * w[i] * w[j] / off_norm;
                }
            }
        }
        // Symmetrize exactly (w[i]w[j] already is, up to fp noise).
        for i in 0..k {
            for j in (i + 1)..k {
                let m = 0.5 * (rows[i][j] + rows[j][i]);
                rows[i][j] = m;
                rows[j][i] = m;
            }
        }
        Self::from_matrix(&rows)
    }

    /// Build from observed *unordered* edge counts (`counts[i][j]` for
    /// `i <= j`; entries below the diagonal are ignored).
    pub fn from_unordered_counts(counts: &[Vec<f64>]) -> Self {
        let k = counts.len();
        let mut rows = vec![vec![0.0; k]; k];
        for i in 0..k {
            for j in i..k {
                let c = counts[i][j];
                assert!(c >= 0.0, "negative count");
                if i == j {
                    rows[i][i] = c;
                } else {
                    rows[i][j] = c / 2.0;
                    rows[j][i] = c / 2.0;
                }
            }
        }
        Self::from_matrix(&rows)
    }

    /// Number of property values.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Ordered-pair mass `p(i, j)`.
    #[inline]
    pub fn ordered_mass(&self, i: usize, j: usize) -> f64 {
        self.p[i * self.k + j]
    }

    /// Mass of the unordered pair `{i, j}`.
    #[inline]
    pub fn unordered_mass(&self, i: usize, j: usize) -> f64 {
        if i == j {
            self.ordered_mass(i, i)
        } else {
            2.0 * self.ordered_mass(i, j)
        }
    }

    /// Marginal distribution of a single endpoint.
    pub fn marginal(&self) -> Vec<f64> {
        (0..self.k)
            .map(|i| (0..self.k).map(|j| self.ordered_mass(i, j)).sum())
            .collect()
    }

    /// Expected edge counts per unordered pair for a graph of `m` edges:
    /// the paper's target matrix `W` (upper triangle, flattened row-major).
    pub fn target_counts(&self, m: u64) -> Vec<f64> {
        let k = self.k;
        let mut w = Vec::with_capacity(k * (k + 1) / 2);
        for i in 0..k {
            for j in i..k {
                w.push(m as f64 * self.unordered_mass(i, j));
            }
        }
        w
    }

    /// All unordered pairs `(i, j, mass)` sorted by decreasing mass — the
    /// x-axis ordering of the paper's CDF figures.
    pub fn pairs_by_mass_desc(&self) -> Vec<(usize, usize, f64)> {
        let mut pairs = Vec::with_capacity(self.k * (self.k + 1) / 2);
        for i in 0..self.k {
            for j in i..self.k {
                pairs.push((i, j, self.unordered_mass(i, j)));
            }
        }
        pairs.sort_by(|a, b| {
            b.2.partial_cmp(&a.2)
                .expect("no NaN")
                .then(a.0.cmp(&b.0).then(a.1.cmp(&b.1)))
        });
        pairs
    }

    /// Fraction of mass on the diagonal (homophily strength).
    pub fn diagonal_mass(&self) -> f64 {
        (0..self.k).map(|i| self.ordered_mass(i, i)).sum()
    }
}

/// Index of unordered pair `(i, j)` (`i <= j`) in an upper-triangle
/// flattening of a `k × k` matrix.
#[inline]
pub(crate) fn upper_index(k: usize, i: usize, j: usize) -> usize {
    debug_assert!(i <= j && j < k);
    i * k - i * (i + 1) / 2 + j
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization_and_masses() {
        let jpd = Jpd::from_matrix(&[vec![2.0, 1.0], vec![1.0, 4.0]]);
        let mut total = 0.0;
        for i in 0..2 {
            for j in i..2 {
                total += jpd.unordered_mass(i, j);
            }
        }
        assert!((total - 1.0).abs() < 1e-12);
        assert!((jpd.ordered_mass(0, 0) - 0.25).abs() < 1e-12);
        assert!((jpd.unordered_mass(0, 1) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn homophilous_puts_mass_on_diagonal() {
        let jpd = Jpd::homophilous(&[1.0, 1.0, 2.0], 0.8);
        assert!((jpd.diagonal_mass() - 0.8).abs() < 1e-9);
        // Heavier group gets more diagonal mass.
        assert!(jpd.ordered_mass(2, 2) > jpd.ordered_mass(0, 0));
        let marg = jpd.marginal();
        assert!((marg.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn from_unordered_counts_roundtrip() {
        // 6 edges within group 0, 4 across.
        let jpd = Jpd::from_unordered_counts(&[vec![6.0, 4.0], vec![0.0, 0.0]]);
        assert!((jpd.unordered_mass(0, 0) - 0.6).abs() < 1e-12);
        assert!((jpd.unordered_mass(0, 1) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn target_counts_sum_to_m() {
        let jpd = Jpd::homophilous(&[1.0, 2.0, 3.0, 4.0], 0.5);
        let w = jpd.target_counts(1000);
        assert!((w.iter().sum::<f64>() - 1000.0).abs() < 1e-6);
    }

    #[test]
    fn pairs_sorted_desc() {
        let jpd = Jpd::homophilous(&[3.0, 1.0], 0.9);
        let pairs = jpd.pairs_by_mass_desc();
        assert_eq!(pairs.len(), 3);
        assert!(pairs[0].2 >= pairs[1].2 && pairs[1].2 >= pairs[2].2);
        assert_eq!((pairs[0].0, pairs[0].1), (0, 0), "heavy diagonal first");
    }

    #[test]
    fn upper_index_is_a_bijection() {
        let k = 7;
        let mut seen = std::collections::HashSet::new();
        for i in 0..k {
            for j in i..k {
                assert!(seen.insert(upper_index(k, i, j)));
            }
        }
        assert_eq!(seen.len(), k * (k + 1) / 2);
        assert_eq!(seen.iter().max(), Some(&(k * (k + 1) / 2 - 1)));
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetry() {
        Jpd::from_matrix(&[vec![1.0, 2.0], vec![3.0, 1.0]]);
    }
}
