//! Local-search refinement of a matching — the paper's future work:
//! *"Further study is required, including ... optimization strategies"*.
//!
//! [`refine_assignment`] improves a finished SBM-Part (or any) assignment
//! with randomized swap local search: pick two nodes in different groups,
//! swap their groups if that reduces the L1 distance between the realized
//! edge-count matrix and the target `W`. Swaps preserve all group sizes by
//! construction, so the hard capacity constraints survive. Each evaluation
//! is O(deg(u) + deg(v)).

use datasynth_prng::SplitMix64;
use datasynth_tables::Csr;

use crate::jpd::upper_index;
use crate::sbm_part::MatchInput;

/// Outcome of a refinement run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RefineStats {
    /// Swap candidates evaluated.
    pub attempted: u64,
    /// Swaps accepted.
    pub accepted: u64,
    /// L1 distance between realized and target edge counts before
    /// refinement, normalized by the edge count.
    pub l1_before: f64,
    /// Same, after refinement.
    pub l1_after: f64,
}

#[inline]
fn canon_index(k: usize, a: usize, b: usize) -> usize {
    if a <= b {
        upper_index(k, a, b)
    } else {
        upper_index(k, b, a)
    }
}

/// Refine `group_of` in place with `attempts` random swap evaluations.
pub fn refine_assignment(
    input: &MatchInput<'_>,
    group_of: &mut [u32],
    attempts: u64,
    rng: &mut SplitMix64,
) -> RefineStats {
    let n = input.csr.num_nodes();
    let k = input.group_sizes.len();
    assert_eq!(group_of.len() as u64, n, "assignment covers all nodes");

    let target = input.jpd.target_counts(input.num_edges);
    // Realized unordered edge counts per group pair (each edge once;
    // self-loops appear twice in the undirected CSR, hence the halving).
    let mut current = vec![0.0f64; target.len()];
    for v in 0..n {
        let gv = group_of[v as usize] as usize;
        for &u in input.csr.neighbors(v) {
            if u >= v {
                let gu = group_of[u as usize] as usize;
                current[canon_index(k, gv, gu)] += if u == v { 0.5 } else { 1.0 };
            }
        }
    }

    let m = input.num_edges.max(1) as f64;
    let l1 = |cur: &[f64]| -> f64 {
        cur.iter()
            .zip(&target)
            .map(|(x, w)| (x - w).abs())
            .sum::<f64>()
            / m
    };
    let l1_before = l1(&current);

    let mut accepted = 0u64;
    // Scratch: per-candidate entry deltas (index, delta), duplicates folded.
    let mut deltas: Vec<(usize, f64)> = Vec::with_capacity(128);

    for _ in 0..attempts {
        let a = rng.next_below(n);
        let b = rng.next_below(n);
        let (ga, gb) = (group_of[a as usize] as usize, group_of[b as usize] as usize);
        if ga == gb || a == b {
            continue;
        }
        deltas.clear();
        // Moving a: ga -> gb, b: gb -> ga. Edges between a and b map
        // (ga, gb) -> (gb, ga): the same unordered entry — invariant.
        push_move_deltas(input.csr, group_of, k, a, b, ga, gb, &mut deltas);
        push_move_deltas(input.csr, group_of, k, b, a, gb, ga, &mut deltas);
        fold_duplicates(&mut deltas);

        let mut gain = 0.0;
        for &(idx, d) in &deltas {
            let before = (current[idx] - target[idx]).abs();
            let after = (current[idx] + d - target[idx]).abs();
            gain += before - after;
        }
        if gain > 1e-12 {
            for &(idx, d) in &deltas {
                current[idx] += d;
            }
            group_of.swap(a as usize, b as usize);
            accepted += 1;
        }
    }

    RefineStats {
        attempted: attempts,
        accepted,
        l1_before,
        l1_after: l1(&current),
    }
}

/// Entry deltas from moving `node` from `from` to `to`, ignoring edges to
/// `partner` (swap-invariant) and self-loops (their entry `(g,g)` moves to
/// `(g',g')`, handled here too).
fn push_move_deltas(
    csr: &Csr,
    group_of: &[u32],
    k: usize,
    node: u64,
    partner: u64,
    from: usize,
    to: usize,
    deltas: &mut Vec<(usize, f64)>,
) {
    let mut self_loops = 0.0;
    for &w in csr.neighbors(node) {
        if w == partner {
            continue;
        }
        if w == node {
            self_loops += 0.5; // two CSR entries per loop = one edge
            continue;
        }
        let gw = group_of[w as usize] as usize;
        deltas.push((canon_index(k, from, gw), -1.0));
        deltas.push((canon_index(k, to, gw), 1.0));
    }
    if self_loops > 0.0 {
        deltas.push((canon_index(k, from, from), -self_loops));
        deltas.push((canon_index(k, to, to), self_loops));
    }
}

fn fold_duplicates(deltas: &mut Vec<(usize, f64)>) {
    deltas.sort_unstable_by_key(|&(idx, _)| idx);
    let mut w = 0usize;
    for r in 0..deltas.len() {
        if w > 0 && deltas[w - 1].0 == deltas[r].0 {
            deltas[w - 1].1 += deltas[r].1;
        } else {
            deltas[w] = deltas[r];
            w += 1;
        }
    }
    deltas.truncate(w);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluate::empirical_jpd;
    use crate::{random_matching, Jpd};
    use datasynth_tables::EdgeTable;

    fn two_cliques() -> (EdgeTable, u64) {
        let mut et = EdgeTable::new("e");
        for base in [0u64, 8] {
            for a in 0..8 {
                for b in (a + 1)..8 {
                    et.push(base + a, base + b);
                }
            }
        }
        et.push(0, 8); // one bridge
        (et, 16)
    }

    #[test]
    fn refinement_repairs_a_random_assignment() {
        let (et, n) = two_cliques();
        let csr = Csr::undirected(&et, n);
        let jpd = Jpd::from_matrix(&[vec![0.5, 0.01], vec![0.01, 0.5]]);
        let sizes = [8u64, 8];
        let input = MatchInput {
            group_sizes: &sizes,
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let mut assign = random_matching(&sizes, n, 3).group_of;
        let mut rng = SplitMix64::new(4);
        let stats = refine_assignment(&input, &mut assign, 5000, &mut rng);
        assert!(stats.accepted > 0, "{stats:?}");
        assert!(
            stats.l1_after < 0.3 * stats.l1_before,
            "L1 {} -> {}",
            stats.l1_before,
            stats.l1_after
        );
        // The planted cliques must be (almost) recovered.
        let observed = empirical_jpd(&assign, &et, 2);
        assert!(observed.diagonal_mass() > 0.9, "{observed:?}");
    }

    #[test]
    fn group_sizes_are_invariant_under_refinement() {
        let (et, n) = two_cliques();
        let csr = Csr::undirected(&et, n);
        let jpd = Jpd::uniform(4);
        let sizes = [2u64, 4, 4, 6];
        let input = MatchInput {
            group_sizes: &sizes,
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let mut assign = random_matching(&sizes, n, 7).group_of;
        let mut rng = SplitMix64::new(8);
        refine_assignment(&input, &mut assign, 2000, &mut rng);
        let mut got = [0u64; 4];
        for &g in assign.iter() {
            got[g as usize] += 1;
        }
        assert_eq!(got, sizes);
    }

    #[test]
    fn objective_never_worsens() {
        let (et, n) = two_cliques();
        let csr = Csr::undirected(&et, n);
        let jpd = Jpd::homophilous(&[1.0, 1.0], 0.7);
        let sizes = [8u64, 8];
        let input = MatchInput {
            group_sizes: &sizes,
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let mut assign = random_matching(&sizes, n, 11).group_of;
        let mut rng = SplitMix64::new(12);
        let stats = refine_assignment(&input, &mut assign, 1000, &mut rng);
        assert!(stats.l1_after <= stats.l1_before + 1e-9);
        // The maintained counts must agree with a from-scratch recount.
        let recount = refine_assignment(&input, &mut assign.clone(), 0, &mut rng);
        assert!(
            (recount.l1_before - stats.l1_after).abs() < 1e-9,
            "incremental {} vs recount {}",
            stats.l1_after,
            recount.l1_before
        );
    }

    #[test]
    fn self_loops_are_handled() {
        let mut et = EdgeTable::from_pairs("e", [(0u64, 0u64), (1, 1), (0, 2), (1, 3)]);
        et.push(2, 3);
        let csr = Csr::undirected(&et, 4);
        let jpd = Jpd::uniform(2);
        let sizes = [2u64, 2];
        let input = MatchInput {
            group_sizes: &sizes,
            jpd: &jpd,
            csr: &csr,
            num_edges: et.len(),
        };
        let mut assign = vec![0u32, 0, 1, 1];
        let mut rng = SplitMix64::new(13);
        let stats = refine_assignment(&input, &mut assign, 500, &mut rng);
        // Verify the invariant: incremental counts match recount.
        let recount = refine_assignment(&input, &mut assign.clone(), 0, &mut rng);
        assert!((recount.l1_before - stats.l1_after).abs() < 1e-9);
    }
}
