//! Matching results and the mapping function `f`.
//!
//! SBM-Part produces a *group* per structure node; the mapping function
//! assigns each node a concrete property-table id whose value belongs to
//! that group. Property ids are handed out in id order within each group,
//! which keeps the whole pipeline deterministic.

use datasynth_prng::SplitMix64;
use datasynth_tables::{PropertyTable, TableError, Value};

/// Result of a matching run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchResult {
    /// Group (property-value index) per structure node.
    pub group_of: Vec<u32>,
    /// The mapping `f`: `mapping[node] = property table id`.
    pub mapping: Vec<u64>,
}

impl MatchResult {
    /// Build from a group assignment, handing out the property ids of each
    /// group in ascending order.
    pub fn from_assignment(group_of: Vec<u32>, group_sizes: &[u64]) -> Self {
        let mapping = assignment_to_mapping(&group_of, group_sizes);
        Self { group_of, mapping }
    }
}

/// Derive the node→property-id mapping from a group assignment: property
/// ids are laid out group-by-group (`group 0` owns ids `0..q0`, `group 1`
/// owns `q0..q0+q1`, ...) matching how the experiment protocol builds its
/// property tables.
pub fn assignment_to_mapping(group_of: &[u32], group_sizes: &[u64]) -> Vec<u64> {
    let mut next = Vec::with_capacity(group_sizes.len());
    let mut acc = 0u64;
    for &q in group_sizes {
        next.push(acc);
        acc += q;
    }
    group_of
        .iter()
        .map(|&g| {
            let id = next[g as usize];
            next[g as usize] += 1;
            id
        })
        .collect()
}

/// Derive the node→property-id mapping when each group's property ids are
/// an arbitrary (not contiguous) id list — the general case when matching
/// against a real property table: `ids_by_group[g]` lists the PT rows
/// holding value `g`, and nodes assigned to `g` consume them in order.
pub fn assignment_to_mapping_with_ids(group_of: &[u32], ids_by_group: &[Vec<u64>]) -> Vec<u64> {
    let mut next = vec![0usize; ids_by_group.len()];
    group_of
        .iter()
        .map(|&g| {
            let g = g as usize;
            let id = ids_by_group[g][next[g]];
            next[g] += 1;
            id
        })
        .collect()
}

/// Random matching baseline: assign nodes to groups uniformly (respecting
/// sizes) with no regard to structure — what DataSynth does "in those
/// cases where an edge type is not correlated with any property".
pub fn random_matching(group_sizes: &[u64], num_nodes: u64, seed: u64) -> MatchResult {
    let total: u64 = group_sizes.iter().sum();
    assert_eq!(total, num_nodes, "group sizes must sum to node count");
    let mut labels: Vec<u32> = Vec::with_capacity(num_nodes as usize);
    for (g, &q) in group_sizes.iter().enumerate() {
        labels.extend(std::iter::repeat_n(g as u32, q as usize));
    }
    SplitMix64::new(seed).shuffle(&mut labels);
    MatchResult::from_assignment(labels, group_sizes)
}

/// Materialize the matched property column: `out[node] = pt[mapping[node]]`.
pub fn apply_mapping(pt: &PropertyTable, mapping: &[u64]) -> Result<PropertyTable, TableError> {
    let values: Result<Vec<Value>, TableError> = mapping.iter().map(|&id| pt.value(id)).collect();
    PropertyTable::from_values(pt.name().to_owned(), pt.value_type(), values?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_tables::ValueType;

    #[test]
    fn mapping_is_a_bijection_respecting_groups() {
        let group_of = vec![1u32, 0, 1, 0, 1];
        let sizes = [2u64, 3];
        let mapping = assignment_to_mapping(&group_of, &sizes);
        // Group 0 owns ids 0..2, group 1 owns 2..5.
        assert_eq!(mapping, vec![2, 0, 3, 1, 4]);
        let mut sorted = mapping.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn mapping_with_scattered_ids() {
        // Value "a" sits at PT rows 1 and 4; value "b" at 0, 2, 3.
        let ids_by_group = vec![vec![1u64, 4], vec![0u64, 2, 3]];
        let group_of = vec![1u32, 0, 1, 1, 0];
        let mapping = assignment_to_mapping_with_ids(&group_of, &ids_by_group);
        assert_eq!(mapping, vec![0, 1, 2, 3, 4]);
        let mut sorted = mapping;
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3, 4], "bijection");
    }

    #[test]
    fn random_matching_respects_sizes_and_seed() {
        let r1 = random_matching(&[3, 7], 10, 9);
        let r2 = random_matching(&[3, 7], 10, 9);
        assert_eq!(r1, r2);
        let zeros = r1.group_of.iter().filter(|&&g| g == 0).count();
        assert_eq!(zeros, 3);
    }

    #[test]
    fn apply_mapping_reorders_values() {
        let pt = PropertyTable::from_values(
            "p",
            ValueType::Text,
            ["a", "a", "b", "b", "b"].map(Value::from),
        )
        .unwrap();
        // Nodes 0,1 are group-1 ("b"-ids 2,3), node 2 is group-0 ("a"-id 0).
        let mapped = apply_mapping(&pt, &[2, 3, 0]).unwrap();
        let vals: Vec<String> = mapped
            .iter()
            .map(|v| v.as_text().unwrap().to_owned())
            .collect();
        assert_eq!(vals, vec!["b", "b", "a"]);
    }

    #[test]
    fn apply_mapping_out_of_range_errors() {
        let pt = PropertyTable::from_values("p", ValueType::Long, [1i64].map(Value::from)).unwrap();
        assert!(apply_mapping(&pt, &[5]).is_err());
    }
}
