//! Bipartite SBM-Part: "a small variation of SBM-Part can also be applied
//! to bi-partite graphs ... If the bi-partite graph is between two
//! different node types, the input would contain two PTs instead of one"
//! (§4.2). Tail nodes and head nodes carry separate group systems; the
//! target is a `k1 × k2` distribution over (tail value, head value).

use datasynth_prng::SplitMix64;
use datasynth_tables::{Csr, EdgeTable};

use crate::matcher::assignment_to_mapping;

/// Inputs of a bipartite matching run.
#[derive(Debug)]
pub struct BipartiteInput<'a> {
    /// Group sizes for the tail-side property values (sums to `num_tails`).
    pub tail_group_sizes: &'a [u64],
    /// Group sizes for the head-side property values (sums to `num_heads`).
    pub head_group_sizes: &'a [u64],
    /// Target `P(X, Y)`: `target[i][j]` is the probability that a random
    /// edge connects tail value `i` to head value `j` (normalized here).
    pub target: &'a [Vec<f64>],
    /// The bipartite edge table (tails `0..num_tails`, heads `0..num_heads`).
    pub edges: &'a EdgeTable,
    /// Tail-side node count.
    pub num_tails: u64,
    /// Head-side node count.
    pub num_heads: u64,
}

/// Result: assignments and mappings for both sides.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BipartiteResult {
    /// Group per tail node.
    pub tail_group_of: Vec<u32>,
    /// Group per head node.
    pub head_group_of: Vec<u32>,
    /// Tail node → tail property id.
    pub tail_mapping: Vec<u64>,
    /// Head node → head property id.
    pub head_mapping: Vec<u64>,
}

/// Run bipartite SBM-Part with a seeded random interleaved stream order.
pub fn sbm_part_bipartite(input: &BipartiteInput<'_>, seed: u64) -> BipartiteResult {
    let (n1, n2) = (input.num_tails as usize, input.num_heads as usize);
    let (k1, k2) = (input.tail_group_sizes.len(), input.head_group_sizes.len());
    assert_eq!(input.target.len(), k1, "target rows must match k1");
    assert!(
        input.target.iter().all(|r| r.len() == k2),
        "target cols must match k2"
    );
    assert_eq!(
        input.tail_group_sizes.iter().sum::<u64>(),
        n1 as u64,
        "tail sizes"
    );
    assert_eq!(
        input.head_group_sizes.iter().sum::<u64>(),
        n2 as u64,
        "head sizes"
    );

    let m = input.edges.len() as f64;
    let total: f64 = input.target.iter().flatten().sum();
    assert!(total > 0.0, "empty target");
    // W[i][j] = expected number of edges between tail group i, head group j.
    let target: Vec<f64> = input
        .target
        .iter()
        .flatten()
        .map(|&p| p / total * m)
        .collect();
    let mut current = vec![0.0f64; k1 * k2];

    // Directed adjacencies: tail -> heads, and the reverse.
    let out = Csr::directed(input.edges, input.num_tails);
    let reversed = EdgeTable::from_pairs("rev", input.edges.iter().map(|(t, h)| (h, t)));
    let back = Csr::directed(&reversed, input.num_heads);

    // Interleaved random stream over both sides.
    let mut order: Vec<(bool, u64)> = (0..n1 as u64)
        .map(|v| (false, v))
        .chain((0..n2 as u64).map(|v| (true, v)))
        .collect();
    SplitMix64::new(seed).shuffle(&mut order);

    let mut tail_assign = vec![u32::MAX; n1];
    let mut head_assign = vec![u32::MAX; n2];
    let mut tail_sizes = vec![0u64; k1];
    let mut head_sizes = vec![0u64; k2];
    let mut counts = vec![0u64; k1.max(k2)];
    let mut touched: Vec<u32> = Vec::with_capacity(64);

    for (is_head, v) in order {
        let (neighbors, other_assign, my_sizes, my_caps, k_mine) = if is_head {
            (
                back.neighbors(v),
                &tail_assign,
                &mut head_sizes,
                input.head_group_sizes,
                k2,
            )
        } else {
            (
                out.neighbors(v),
                &head_assign,
                &mut tail_sizes,
                input.tail_group_sizes,
                k1,
            )
        };
        for &u in neighbors {
            let g = other_assign[u as usize];
            if g != u32::MAX {
                if counts[g as usize] == 0 {
                    touched.push(g);
                }
                counts[g as usize] += 1;
            }
        }
        let cell = |mine: usize, other: usize| {
            if is_head {
                other * k2 + mine // tails index rows
            } else {
                mine * k2 + other
            }
        };
        let mut best: Option<(f64, f64, u32)> = None;
        for t in 0..k_mine {
            if my_sizes[t] >= my_caps[t] {
                continue;
            }
            let mut gain = 0.0;
            for &p in &touched {
                let idx = cell(t, p as usize);
                let x = current[idx] - target[idx];
                let c = counts[p as usize] as f64;
                gain += -2.0 * x * c - c * c;
            }
            let fill = my_sizes[t] as f64 / my_caps[t] as f64;
            let key = (-(gain * (1.0 - fill)), fill, t as u32);
            if best.is_none_or(|b| key < b) {
                best = Some(key);
            }
        }
        let (_, _, t) = best.expect("sizes sum to side count");
        my_sizes[t as usize] += 1;
        for g in touched.drain(..) {
            current[cell(t as usize, g as usize)] += counts[g as usize] as f64;
            counts[g as usize] = 0;
        }
        if is_head {
            head_assign[v as usize] = t;
        } else {
            tail_assign[v as usize] = t;
        }
    }

    let tail_mapping = assignment_to_mapping(&tail_assign, input.tail_group_sizes);
    let head_mapping = assignment_to_mapping(&head_assign, input.head_group_sizes);
    BipartiteResult {
        tail_group_of: tail_assign,
        head_group_of: head_assign,
        tail_mapping,
        head_mapping,
    }
}

/// Empirical bipartite joint distribution of the matched labels.
pub fn empirical_bipartite_jpd(
    tail_labels: &[u32],
    head_labels: &[u32],
    edges: &EdgeTable,
    k1: usize,
    k2: usize,
) -> Vec<Vec<f64>> {
    let mut counts = vec![vec![0.0f64; k2]; k1];
    for (t, h) in edges.iter() {
        counts[tail_labels[t as usize] as usize][head_labels[h as usize] as usize] += 1.0;
    }
    let total: f64 = counts.iter().flatten().sum();
    if total > 0.0 {
        for row in &mut counts {
            for v in row {
                *v /= total;
            }
        }
    }
    counts
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Planted bipartite blocks (block-diagonal complete bipartite
    /// graphs); with a diagonal target the stream must converge to the
    /// planted alignment. Streaming cold-start misplaces a handful of
    /// early nodes, so we check dominance, not perfection.
    #[test]
    fn recovers_planted_bipartite_blocks() {
        let b = 20u64; // block side length
        let mut et = EdgeTable::new("e");
        for block in 0..2u64 {
            for t in 0..b {
                for h in 0..b {
                    et.push(block * b + t, block * b + h);
                }
            }
        }
        let target = vec![vec![0.5, 0.0], vec![0.0, 0.5]];
        let input = BipartiteInput {
            tail_group_sizes: &[b, b],
            head_group_sizes: &[b, b],
            target: &target,
            edges: &et,
            num_tails: 2 * b,
            num_heads: 2 * b,
        };
        let r = sbm_part_bipartite(&input, 3);
        let observed = empirical_bipartite_jpd(&r.tail_group_of, &r.head_group_of, &et, 2, 2);
        let diag = observed[0][0] + observed[1][1];
        assert!(diag > 0.85, "diagonal mass {diag}: {observed:?}");
    }

    #[test]
    fn sizes_are_exact_on_both_sides() {
        let et = EdgeTable::from_pairs("e", (0..40u64).map(|i| (i % 10, i % 7)));
        let target = vec![vec![1.0; 3]; 2];
        let input = BipartiteInput {
            tail_group_sizes: &[4, 6],
            head_group_sizes: &[2, 2, 3],
            target: &target,
            edges: &et,
            num_tails: 10,
            num_heads: 7,
        };
        let r = sbm_part_bipartite(&input, 5);
        let mut t_sizes = [0u64; 2];
        for &g in &r.tail_group_of {
            t_sizes[g as usize] += 1;
        }
        assert_eq!(t_sizes, [4, 6]);
        let mut h_sizes = [0u64; 3];
        for &g in &r.head_group_of {
            h_sizes[g as usize] += 1;
        }
        assert_eq!(h_sizes, [2, 2, 3]);
        // Mappings are bijections.
        let mut tm = r.tail_mapping.clone();
        tm.sort_unstable();
        assert_eq!(tm, (0..10).collect::<Vec<_>>());
        let mut hm = r.head_mapping.clone();
        hm.sort_unstable();
        assert_eq!(hm, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic() {
        let et = EdgeTable::from_pairs("e", (0..20u64).map(|i| (i % 5, i % 4)));
        let target = vec![vec![1.0, 2.0], vec![2.0, 1.0]];
        let input = BipartiteInput {
            tail_group_sizes: &[2, 3],
            head_group_sizes: &[2, 2],
            target: &target,
            edges: &et,
            num_tails: 5,
            num_heads: 4,
        };
        assert_eq!(sbm_part_bipartite(&input, 7), sbm_part_bipartite(&input, 7));
    }
}
