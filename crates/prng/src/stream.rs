//! Per-table independent random streams.
//!
//! The paper: *"In order to ensure independence between properties,
//! DataSynth builds a different r() for each PT."* A [`TableStream`] is that
//! `r`: it is derived from the pipeline's master seed plus the table label
//! (e.g. `"Person.name"`), supports O(1) access by instance id, and can hand
//! out a sequential sub-stream when a generator needs several draws for one
//! instance.

use crate::hash::seed_from_label;
use crate::philox::Philox2x64;
use crate::splitmix::{SkipSeed, SplitMix64};

/// An independent random stream bound to one (node/edge type, property)
/// pair, addressable by instance id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStream {
    skip: SkipSeed,
}

impl TableStream {
    /// Derive the stream for `label` under `master` seed.
    pub fn derive(master: u64, label: &str) -> Self {
        Self {
            skip: SkipSeed::new(seed_from_label(master, label)),
        }
    }

    /// Wrap an explicit seed (tests, persistence).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            skip: SkipSeed::new(seed),
        }
    }

    /// The single draw `r(id)` — the value passed to a property generator.
    #[inline]
    pub fn value(&self, id: u64) -> u64 {
        self.skip.at(id)
    }

    /// A sequential generator rooted at `id`, for multi-draw generators.
    #[inline]
    pub fn substream(&self, id: u64) -> SplitMix64 {
        self.skip.substream(id)
    }

    /// Seed backing this stream.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.skip.seed()
    }
}

/// A counter-based random stream for *structure* generation, backed by
/// [`Philox2x64`].
///
/// Where [`TableStream`] addresses property values by instance id, a
/// `CounterStream` addresses independent *work slots* of a structure
/// generator (an edge index, a pair-index window, an SBM block window) by
/// slot counter: `substream(i)` is a pure function of `(key, i)`, so any
/// partition of the slot space can be generated on any worker in any order
/// and still concatenate to the same edge list. This is what makes
/// chunkable structure generators thread-count independent.
///
/// Philox rather than the cheaper skip-seed stream because structure slots
/// consume many correlated draws each (e.g. RMAT's per-level quadrant
/// jitter), where long-range correlations in a weaker stream could visibly
/// bias topology.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterStream {
    philox: Philox2x64,
}

impl CounterStream {
    /// Create a stream keyed by `key` (usually one draw off the structure
    /// task's seeded [`SplitMix64`], so chunked and sequential runs share
    /// their derivation).
    #[inline]
    pub fn new(key: u64) -> Self {
        Self {
            philox: Philox2x64::new(key),
        }
    }

    /// Derive the stream for `label` under `master` seed.
    pub fn derive(master: u64, label: &str) -> Self {
        Self::new(seed_from_label(master, label))
    }

    /// The single draw for slot `i`.
    #[inline]
    pub fn value(&self, i: u64) -> u64 {
        self.philox.at_single(i)
    }

    /// A sequential generator rooted at slot `i`, for slots that need
    /// several draws (or a data-dependent number of them).
    #[inline]
    pub fn substream(&self, i: u64) -> SplitMix64 {
        SplitMix64::new(self.philox.at_single(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_between_tables() {
        let a = TableStream::derive(1, "Person.name");
        let b = TableStream::derive(1, "Person.sex");
        let same = (0..1000).filter(|&i| a.value(i) == b.value(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_random_access_stable() {
        let s = TableStream::derive(9, "Message.topic");
        let forward: Vec<u64> = (0..100).map(|i| s.value(i)).collect();
        let backward: Vec<u64> = (0..100).rev().map(|i| s.value(i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "order of access must not matter"
        );
    }

    #[test]
    fn substream_is_deterministic_per_id() {
        let s = TableStream::derive(2, "knows.creationDate");
        let mut x = s.substream(42);
        let mut y = s.substream(42);
        for _ in 0..10 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn master_seed_changes_everything() {
        let a = TableStream::derive(1, "t");
        let b = TableStream::derive(2, "t");
        assert_ne!(a.value(0), b.value(0));
    }

    #[test]
    fn counter_stream_is_order_insensitive() {
        let s = CounterStream::new(77);
        let forward: Vec<u64> = (0..100).map(|i| s.value(i)).collect();
        let backward: Vec<u64> = (0..100).rev().map(|i| s.value(i)).collect();
        assert_eq!(forward, backward.into_iter().rev().collect::<Vec<_>>());
    }

    #[test]
    fn counter_substreams_are_deterministic_and_distinct() {
        let s = CounterStream::new(5);
        let mut a = s.substream(3);
        let mut b = s.substream(3);
        let mut c = s.substream(4);
        let mut collisions = 0;
        for _ in 0..100 {
            let va = a.next_u64();
            assert_eq!(va, b.next_u64());
            if va == c.next_u64() {
                collisions += 1;
            }
        }
        assert_eq!(collisions, 0);
    }

    #[test]
    fn counter_stream_key_matters() {
        assert_ne!(
            CounterStream::new(1).value(0),
            CounterStream::new(2).value(0)
        );
        assert_ne!(
            CounterStream::derive(1, "structure.knows").value(0),
            CounterStream::derive(1, "structure.likes").value(0)
        );
    }
}
