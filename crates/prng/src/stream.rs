//! Per-table independent random streams.
//!
//! The paper: *"In order to ensure independence between properties,
//! DataSynth builds a different r() for each PT."* A [`TableStream`] is that
//! `r`: it is derived from the pipeline's master seed plus the table label
//! (e.g. `"Person.name"`), supports O(1) access by instance id, and can hand
//! out a sequential sub-stream when a generator needs several draws for one
//! instance.

use crate::hash::seed_from_label;
use crate::splitmix::{SkipSeed, SplitMix64};

/// An independent random stream bound to one (node/edge type, property)
/// pair, addressable by instance id.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableStream {
    skip: SkipSeed,
}

impl TableStream {
    /// Derive the stream for `label` under `master` seed.
    pub fn derive(master: u64, label: &str) -> Self {
        Self {
            skip: SkipSeed::new(seed_from_label(master, label)),
        }
    }

    /// Wrap an explicit seed (tests, persistence).
    pub fn from_seed(seed: u64) -> Self {
        Self {
            skip: SkipSeed::new(seed),
        }
    }

    /// The single draw `r(id)` — the value passed to a property generator.
    #[inline]
    pub fn value(&self, id: u64) -> u64 {
        self.skip.at(id)
    }

    /// A sequential generator rooted at `id`, for multi-draw generators.
    #[inline]
    pub fn substream(&self, id: u64) -> SplitMix64 {
        self.skip.substream(id)
    }

    /// Seed backing this stream.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.skip.seed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_differ_between_tables() {
        let a = TableStream::derive(1, "Person.name");
        let b = TableStream::derive(1, "Person.sex");
        let same = (0..1000).filter(|&i| a.value(i) == b.value(i)).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn stream_is_random_access_stable() {
        let s = TableStream::derive(9, "Message.topic");
        let forward: Vec<u64> = (0..100).map(|i| s.value(i)).collect();
        let backward: Vec<u64> = (0..100).rev().map(|i| s.value(i)).collect();
        assert_eq!(
            forward,
            backward.into_iter().rev().collect::<Vec<_>>(),
            "order of access must not matter"
        );
    }

    #[test]
    fn substream_is_deterministic_per_id() {
        let s = TableStream::derive(2, "knows.creationDate");
        let mut x = s.substream(42);
        let mut y = s.substream(42);
        for _ in 0..10 {
            assert_eq!(x.next_u64(), y.next_u64());
        }
    }

    #[test]
    fn master_seed_changes_everything() {
        let a = TableStream::derive(1, "t");
        let b = TableStream::derive(2, "t");
        assert_ne!(a.value(0), b.value(0));
    }
}
