//! Inverse-transform samplers over [`SplitMix64`] draws.
//!
//! Every distribution here is sampled by pure inverse transform (or alias
//! lookup) from independent uniform draws, so the value sequence depends
//! only on the RNG state — the determinism the in-place generation scheme
//! relies on.

use crate::splitmix::SplitMix64;

/// Map a raw draw to the unit interval `[0, 1)` using the top 53 bits.
#[inline]
pub fn u64_to_unit_f64(x: u64) -> f64 {
    (x >> 11) as f64 / (1u64 << 53) as f64
}

/// A distribution that can draw one value per call.
pub trait Sampler {
    /// The sampled type.
    type Output;

    /// Draw one value.
    fn sample(&self, rng: &mut SplitMix64) -> Self::Output;
}

// ---------------------------------------------------------------------------
// Uniform.
// ---------------------------------------------------------------------------

/// Uniform integers in the inclusive range `[lo, hi]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UniformU64 {
    lo: u64,
    hi: u64,
}

impl UniformU64 {
    /// Inclusive bounds (`lo <= hi`).
    pub fn new(lo: u64, hi: u64) -> Self {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi}]");
        Self { lo, hi }
    }

    /// Lower bound.
    pub fn lo(&self) -> u64 {
        self.lo
    }

    /// Upper bound.
    pub fn hi(&self) -> u64 {
        self.hi
    }
}

impl Sampler for UniformU64 {
    type Output = u64;
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        rng.next_range_inclusive(self.lo, self.hi)
    }
}

/// Uniform floats in `[lo, hi)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UniformF64 {
    lo: f64,
    hi: f64,
}

impl UniformF64 {
    /// Half-open bounds (`lo <= hi`).
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo <= hi, "uniform bounds inverted: [{lo}, {hi})");
        Self { lo, hi }
    }
}

impl Sampler for UniformF64 {
    type Output = f64;
    fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.lo + rng.next_f64() * (self.hi - self.lo)
    }
}

// ---------------------------------------------------------------------------
// Zipf.
// ---------------------------------------------------------------------------

/// Zipf over ranks `1..=n` with exponent `s`: `P(k) ∝ k^-s`.
#[derive(Debug, Clone)]
pub struct Zipf {
    s: f64,
    n: u64,
    /// `cdf[i]` = P(K <= i+1); length n.
    cdf: Vec<f64>,
}

impl Zipf {
    /// Exponent `s > 0`, support `1..=n`.
    pub fn new(s: f64, n: u64) -> Self {
        assert!(n >= 1, "zipf needs a nonempty support");
        assert!(s > 0.0 && s.is_finite(), "zipf exponent must be positive");
        let mut cdf = Vec::with_capacity(n as usize);
        let mut acc = 0.0f64;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { s, n, cdf }
    }

    /// Support size.
    pub fn n(&self) -> u64 {
        self.n
    }

    /// Exponent.
    pub fn s(&self) -> f64 {
        self.s
    }

    /// Probability of rank `k` (0 outside `1..=n`).
    pub fn pmf(&self, k: u64) -> f64 {
        if k < 1 || k > self.n {
            return 0.0;
        }
        let i = (k - 1) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

impl Sampler for Zipf {
    type Output = u64;
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        (self.cdf.partition_point(|&c| c < u) as u64 + 1).min(self.n)
    }
}

// ---------------------------------------------------------------------------
// Truncated discrete power law.
// ---------------------------------------------------------------------------

/// Discrete power law `P(k) ∝ k^-alpha` truncated to `kmin..=kmax`.
#[derive(Debug, Clone)]
pub struct DiscretePowerLaw {
    kmin: u64,
    kmax: u64,
    mean: f64,
    /// `cdf[i]` = P(K <= kmin + i).
    cdf: Vec<f64>,
}

impl DiscretePowerLaw {
    /// Exponent `alpha`, inclusive support `kmin..=kmax` (`1 <= kmin <= kmax`).
    pub fn new(alpha: f64, kmin: u64, kmax: u64) -> Self {
        assert!(kmin >= 1 && kmin <= kmax, "bad support [{kmin}, {kmax}]");
        let mut cdf = Vec::with_capacity((kmax - kmin + 1) as usize);
        let mut acc = 0.0f64;
        let mut weighted = 0.0f64;
        for k in kmin..=kmax {
            let w = (k as f64).powf(-alpha);
            acc += w;
            weighted += k as f64 * w;
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self {
            kmin,
            kmax,
            mean: weighted / total,
            cdf,
        }
    }

    /// Lower support bound.
    pub fn kmin(&self) -> u64 {
        self.kmin
    }

    /// Upper support bound.
    pub fn kmax(&self) -> u64 {
        self.kmax
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Probability of `k` (0 outside the support).
    pub fn pmf(&self, k: u64) -> f64 {
        if k < self.kmin || k > self.kmax {
            return 0.0;
        }
        let i = (k - self.kmin) as usize;
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }
}

impl Sampler for DiscretePowerLaw {
    type Output = u64;
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        (self.kmin + self.cdf.partition_point(|&c| c < u) as u64).min(self.kmax)
    }
}

// ---------------------------------------------------------------------------
// Geometric.
// ---------------------------------------------------------------------------

/// `P(X = k) = p (1-p)^k` for `k = 0, 1, 2, ...`.
pub fn geometric_pmf(p: f64, k: u64) -> f64 {
    p * (1.0 - p).powi(k.min(i32::MAX as u64) as i32)
}

/// Geometric distribution on `0, 1, 2, ...` with success probability `p`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
}

impl Geometric {
    /// `0 < p <= 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric p out of (0, 1]: {p}");
        Self { p }
    }

    /// Success probability.
    pub fn p(&self) -> f64 {
        self.p
    }
}

impl Sampler for Geometric {
    type Output = u64;
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        if self.p >= 1.0 {
            return 0;
        }
        // Inverse transform: floor(ln(1-u) / ln(1-p)).
        let u = rng.next_f64();
        let k = (1.0 - u).ln() / (1.0 - self.p).ln();
        if k.is_finite() {
            k.floor().max(0.0) as u64
        } else {
            0
        }
    }
}

// ---------------------------------------------------------------------------
// Bounded Pareto (continuous).
// ---------------------------------------------------------------------------

/// Continuous Pareto truncated to `[lo, hi]` with shape `alpha`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoundedPareto {
    alpha: f64,
    lo: f64,
    hi: f64,
}

impl BoundedPareto {
    /// Shape `alpha > 0`, bounds `0 < lo <= hi`.
    pub fn new(alpha: f64, lo: f64, hi: f64) -> Self {
        assert!(alpha > 0.0, "pareto shape must be positive");
        assert!(0.0 < lo && lo <= hi, "bad pareto bounds [{lo}, {hi}]");
        Self { alpha, lo, hi }
    }

    /// Construct with shape `alpha` and upper bound `hi`, solving for the
    /// lower bound so the distribution's mean is `target_mean` (how LFR
    /// turns an *average* degree plus a *max* degree into a sampler).
    /// `None` when no lower bound in `(0, hi]` achieves the target.
    pub fn with_floor_mean(alpha: f64, hi: f64, target_mean: f64) -> Option<Self> {
        let positive = alpha > 0.0 && hi > 0.0 && target_mean > 0.0;
        if !positive || target_mean > hi {
            return None;
        }
        let mean_for = |lo: f64| Self::new(alpha, lo, hi).mean_numeric();
        let mut lo = hi * 1e-9;
        let mut hi_bound = hi;
        if mean_for(lo) > target_mean {
            return None;
        }
        for _ in 0..80 {
            let mid = 0.5 * (lo + hi_bound);
            if mean_for(mid) < target_mean {
                lo = mid;
            } else {
                hi_bound = mid;
            }
        }
        Some(Self::new(alpha, 0.5 * (lo + hi_bound), hi))
    }

    /// Mean by midpoint integration of the quantile (robust across the
    /// `alpha = 1` special case of the closed form).
    fn mean_numeric(&self) -> f64 {
        const STEPS: u32 = 2048;
        (0..STEPS)
            .map(|i| self.quantile((i as f64 + 0.5) / STEPS as f64))
            .sum::<f64>()
            / STEPS as f64
    }

    /// Inverse CDF: monotone from `lo` (u = 0) to `hi` (u = 1).
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let la = self.lo.powf(self.alpha);
        let ha = self.hi.powf(self.alpha);
        // F^-1(u) = (H^a L^a / (H^a - u (H^a - L^a)))^(1/a)
        let denom = ha - u * (ha - la);
        if denom <= 0.0 {
            return self.hi;
        }
        ((ha * la) / denom)
            .powf(1.0 / self.alpha)
            .clamp(self.lo, self.hi)
    }
}

impl Sampler for BoundedPareto {
    type Output = f64;
    fn sample(&self, rng: &mut SplitMix64) -> f64 {
        self.quantile(rng.next_f64())
    }
}

// ---------------------------------------------------------------------------
// Normal.
// ---------------------------------------------------------------------------

/// Gaussian via Box–Muller (two uniform draws per sample).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mean: f64,
    std_dev: f64,
}

impl Normal {
    /// Mean and (nonnegative) standard deviation.
    pub fn new(mean: f64, std_dev: f64) -> Self {
        assert!(std_dev >= 0.0, "negative std dev {std_dev}");
        Self { mean, std_dev }
    }
}

impl Sampler for Normal {
    type Output = f64;
    fn sample(&self, rng: &mut SplitMix64) -> f64 {
        // Avoid u1 = 0 for the logarithm.
        let u1 = (rng.next_u64() >> 11).max(1) as f64 / (1u64 << 53) as f64;
        let u2 = rng.next_f64();
        let z = (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos();
        self.mean + self.std_dev * z
    }
}

// ---------------------------------------------------------------------------
// Empirical.
// ---------------------------------------------------------------------------

/// A distribution learned from observed `(value, weight)` pairs.
#[derive(Debug, Clone)]
pub struct Empirical {
    values: Vec<u64>,
    /// `cdf[i]` = P(V <= values[i]) after normalization.
    cdf: Vec<f64>,
    mean: f64,
}

impl Empirical {
    /// From a weighted histogram (weights need not be normalized).
    pub fn from_histogram(hist: &[(u64, f64)]) -> Self {
        assert!(!hist.is_empty(), "empty histogram");
        let total: f64 = hist.iter().map(|&(_, w)| w).sum();
        assert!(total > 0.0, "histogram weights sum to zero");
        let mut values = Vec::with_capacity(hist.len());
        let mut cdf = Vec::with_capacity(hist.len());
        let mut acc = 0.0;
        let mut mean = 0.0;
        for &(v, w) in hist {
            assert!(w >= 0.0, "negative weight {w}");
            acc += w / total;
            mean += v as f64 * w / total;
            values.push(v);
            cdf.push(acc);
        }
        Self { values, cdf, mean }
    }

    /// From raw observations (each weighted 1).
    pub fn from_observations(obs: &[u64]) -> Self {
        assert!(!obs.is_empty(), "no observations");
        let mut counts = std::collections::BTreeMap::new();
        for &v in obs {
            *counts.entry(v).or_insert(0.0f64) += 1.0;
        }
        let hist: Vec<(u64, f64)> = counts.into_iter().collect();
        Self::from_histogram(&hist)
    }

    /// Expected value.
    pub fn mean(&self) -> f64 {
        self.mean
    }
}

impl Sampler for Empirical {
    type Output = u64;
    fn sample(&self, rng: &mut SplitMix64) -> u64 {
        let u = rng.next_f64();
        let i = self.cdf.partition_point(|&c| c < u);
        self.values[i.min(self.values.len() - 1)]
    }
}

// ---------------------------------------------------------------------------
// Categorical + alias table.
// ---------------------------------------------------------------------------

/// Categorical over indices `0..weights.len()` by cumulative inverse
/// transform (O(log n) per draw, cheap to build).
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Nonnegative weights, at least one positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "no categories");
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w >= 0.0, "negative weight {w}");
            acc += w / total;
            cdf.push(acc);
        }
        Self { cdf }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// True when there are no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Probability of category `i` (0 out of range).
    pub fn probability(&self, i: usize) -> f64 {
        if i >= self.cdf.len() {
            return 0.0;
        }
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Category for a unit-interval position (for skip-seed driven draws).
    pub fn index_from_unit(&self, u: f64) -> usize {
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

impl Sampler for Categorical {
    type Output = usize;
    fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.index_from_unit(rng.next_f64())
    }
}

/// Walker alias table: O(n) build, O(1) per draw.
#[derive(Debug, Clone)]
pub struct AliasTable {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl AliasTable {
    /// Nonnegative weights, at least one positive.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "no categories");
        let n = weights.len();
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights sum to zero");
        let mut scaled: Vec<f64> = weights.iter().map(|&w| w * n as f64 / total).collect();
        let mut small: Vec<usize> = Vec::new();
        let mut large: Vec<usize> = Vec::new();
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        let mut prob = vec![1.0f64; n];
        let mut alias: Vec<usize> = (0..n).collect();
        while let (Some(&s), Some(&l)) = (small.last(), large.last()) {
            small.pop();
            prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        // Leftovers (numerical slack) keep probability 1.
        Self { prob, alias }
    }

    /// Number of categories.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// True when there are no categories (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// O(1) category from a single raw draw (slot from the high bits,
    /// threshold from the low bits).
    pub fn index_from_u64(&self, x: u64) -> usize {
        let n = self.prob.len() as u64;
        let slot = (((x >> 32) * n) >> 32) as usize;
        let u = (x & 0xFFFF_FFFF) as f64 / (1u64 << 32) as f64;
        if u < self.prob[slot] {
            slot
        } else {
            self.alias[slot]
        }
    }
}

impl Sampler for AliasTable {
    type Output = usize;
    fn sample(&self, rng: &mut SplitMix64) -> usize {
        self.index_from_u64(rng.next_u64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn histogram(samples: impl Iterator<Item = u64>, len: usize) -> Vec<u64> {
        let mut h = vec![0u64; len];
        for s in samples {
            h[s as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_u64_covers_inclusive_range() {
        let d = UniformU64::new(3, 7);
        let mut rng = SplitMix64::new(1);
        let h = histogram((0..10_000).map(|_| d.sample(&mut rng)), 8);
        assert_eq!(h[0] + h[1] + h[2], 0);
        for (k, &count) in h.iter().enumerate().take(8).skip(3) {
            assert!(count > 1500, "k={k} count {count}");
        }
    }

    #[test]
    fn zipf_pmf_sums_to_one_and_is_decreasing() {
        let z = Zipf::new(1.2, 50);
        let total: f64 = (1..=50).map(|k| z.pmf(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(z.pmf(k) >= z.pmf(k + 1));
        }
        assert_eq!(z.pmf(0), 0.0);
        assert_eq!(z.pmf(51), 0.0);
    }

    #[test]
    fn zipf_sample_frequency_tracks_pmf() {
        let z = Zipf::new(1.0, 10);
        let mut rng = SplitMix64::new(2);
        let n = 100_000;
        let h = histogram((0..n).map(|_| z.sample(&mut rng)), 11);
        let f1 = h[1] as f64 / n as f64;
        assert!((f1 - z.pmf(1)).abs() < 0.01, "f1 {f1} pmf {}", z.pmf(1));
    }

    #[test]
    fn power_law_support_and_mean() {
        let d = DiscretePowerLaw::new(2.0, 2, 60);
        let mut rng = SplitMix64::new(3);
        let mut sum = 0.0;
        let n = 50_000;
        for _ in 0..n {
            let v = d.sample(&mut rng);
            assert!((2..=60).contains(&v));
            sum += v as f64;
        }
        assert!((sum / n as f64 - d.mean()).abs() < 0.1);
    }

    #[test]
    fn geometric_pmf_and_sampling_agree() {
        let p = 0.4;
        let g = Geometric::new(p);
        let mut rng = SplitMix64::new(4);
        let n = 100_000;
        let zeros = (0..n).filter(|_| g.sample(&mut rng) == 0).count();
        assert!((zeros as f64 / n as f64 - geometric_pmf(p, 0)).abs() < 0.01);
    }

    #[test]
    fn bounded_pareto_endpoints() {
        let d = BoundedPareto::new(1.5, 2.0, 50.0);
        assert!((d.quantile(0.0) - 2.0).abs() < 1e-9);
        assert!((d.quantile(1.0) - 50.0).abs() < 1e-9);
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((2.0..=50.0).contains(&v));
        }
    }

    #[test]
    fn normal_moments() {
        let d = Normal::new(10.0, 2.0);
        let mut rng = SplitMix64::new(6);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.05, "mean {mean}");
        assert!((var - 4.0).abs() < 0.1, "var {var}");
    }

    #[test]
    fn empirical_reproduces_histogram() {
        let e = Empirical::from_histogram(&[(2, 9.0), (10, 1.0)]);
        assert!((e.mean() - 2.8).abs() < 1e-12);
        let mut rng = SplitMix64::new(7);
        let n = 50_000;
        let tens = (0..n).filter(|_| e.sample(&mut rng) == 10).count();
        assert!((tens as f64 / n as f64 - 0.1).abs() < 0.01);
    }

    #[test]
    fn empirical_from_observations() {
        let e = Empirical::from_observations(&[1, 1, 1, 5]);
        assert!((e.mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn categorical_and_alias_agree_on_distribution() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let cat = Categorical::new(&weights);
        let alias = AliasTable::new(&weights);
        let mut rng = SplitMix64::new(8);
        let n = 100_000;
        let hc = histogram((0..n).map(|_| cat.sample(&mut rng) as u64), 4);
        let ha = histogram((0..n).map(|_| alias.sample(&mut rng) as u64), 4);
        for i in 0..4 {
            let expect = weights[i] / 10.0;
            assert!((hc[i] as f64 / n as f64 - expect).abs() < 0.01, "cat {i}");
            assert!((ha[i] as f64 / n as f64 - expect).abs() < 0.01, "alias {i}");
        }
    }

    #[test]
    fn alias_single_category() {
        let a = AliasTable::new(&[42.0]);
        let mut rng = SplitMix64::new(9);
        assert_eq!(a.sample(&mut rng), 0);
        assert_eq!(a.index_from_u64(u64::MAX), 0);
    }

    #[test]
    fn unit_interval_mapping() {
        assert_eq!(u64_to_unit_f64(0), 0.0);
        let almost_one = u64_to_unit_f64(u64::MAX);
        assert!(almost_one < 1.0 && almost_one > 0.999_999);
    }
}
