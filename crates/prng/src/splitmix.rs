//! SplitMix64: a tiny, fast generator whose state advances by a fixed
//! constant, which makes *jumping* to the `i`-th draw an O(1) operation —
//! exactly the "PRNG with skip seed" the paper borrows from Myriad.

use crate::hash::mix64;

/// Weyl-sequence increment (odd, irrational-ratio constant).
pub const GOLDEN_GAMMA: u64 = 0x9E37_79B9_7F4A_7C15;

/// Sequential SplitMix64 generator.
///
/// The canonical use inside DataSynth is as a *per-instance sub-stream*:
/// seed it with `SkipSeed::at(id)` and draw as many values as a property
/// generator needs for that one instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Create a generator; two generators with equal seeds are identical.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Next raw 64-bit draw.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA);
        mix64(self.state)
    }

    /// Next draw in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        crate::dist::u64_to_unit_f64(self.next_u64())
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift method
    /// (unbiased; the rejection loop triggers with probability < 2^-32 for
    /// any realistic bound).
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below(0)");
        loop {
            let x = self.next_u64();
            let m = u128::from(x) * u128::from(bound);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform integer in `[lo, hi]` (inclusive).
    #[inline]
    pub fn next_range_inclusive(&mut self, lo: u64, hi: u64) -> u64 {
        debug_assert!(lo <= hi);
        if lo == 0 && hi == u64::MAX {
            return self.next_u64();
        }
        lo + self.next_below(hi - lo + 1)
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Jump the stream forward by `n` draws in O(1).
    #[inline]
    pub fn jump(&mut self, n: u64) {
        self.state = self.state.wrapping_add(GOLDEN_GAMMA.wrapping_mul(n));
    }

    /// Fisher–Yates shuffle driven by this stream (deterministic).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }

    /// Sample `k` distinct indices out of `[0, n)` without replacement
    /// (Floyd's algorithm; O(k) expected work, deterministic order-insensitive
    /// set, returned sorted).
    pub fn sample_indices(&mut self, n: u64, k: usize) -> Vec<u64> {
        assert!(k as u64 <= n, "cannot sample {k} of {n}");
        let mut chosen = std::collections::HashSet::with_capacity(k);
        let mut out = Vec::with_capacity(k);
        for j in (n - k as u64)..n {
            let t = self.next_below(j + 1);
            let v = if chosen.contains(&t) { j } else { t };
            chosen.insert(v);
            out.push(v);
        }
        out.sort_unstable();
        out
    }

    /// Split off an independent child generator (splittable PRNG).
    #[inline]
    pub fn split(&mut self) -> SplitMix64 {
        SplitMix64::new(mix64(self.next_u64()))
    }
}

/// Random-access ("skip seed") view over a SplitMix64 stream: `at(i)` is the
/// value the sequential generator would produce as its `i`-th draw, computed
/// in O(1). This implements the paper's `r : (i: Long) -> Long`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkipSeed {
    seed: u64,
}

impl SkipSeed {
    /// Wrap a seed; equal seeds give identical streams.
    #[inline]
    pub fn new(seed: u64) -> Self {
        Self { seed }
    }

    /// The `i`-th draw of the stream, in O(1).
    #[inline]
    pub fn at(&self, i: u64) -> u64 {
        mix64(
            self.seed
                .wrapping_add(GOLDEN_GAMMA.wrapping_mul(i.wrapping_add(1))),
        )
    }

    /// A sequential sub-stream rooted at draw `i`; lets one instance consume
    /// arbitrarily many random values while staying regenerable from `i`.
    #[inline]
    pub fn substream(&self, i: u64) -> SplitMix64 {
        SplitMix64::new(self.at(i))
    }

    /// Underlying seed (for persistence / debugging).
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skip_seed_matches_sequential() {
        let skip = SkipSeed::new(0xDEAD_BEEF);
        let mut seq = SplitMix64::new(0xDEAD_BEEF);
        for i in 0..1000 {
            assert_eq!(skip.at(i), seq.next_u64(), "draw {i}");
        }
    }

    #[test]
    fn jump_equals_discarding() {
        let mut a = SplitMix64::new(7);
        let mut b = SplitMix64::new(7);
        for _ in 0..123 {
            a.next_u64();
        }
        b.jump(123);
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn next_below_is_in_range_and_covers() {
        let mut rng = SplitMix64::new(1);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.next_below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(99);
        for _ in 0..10_000 {
            let f = rng.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn next_f64_mean_is_half() {
        let mut rng = SplitMix64::new(5);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.next_f64()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation_and_deterministic() {
        let mut v1: Vec<u32> = (0..100).collect();
        let mut v2: Vec<u32> = (0..100).collect();
        SplitMix64::new(3).shuffle(&mut v1);
        SplitMix64::new(3).shuffle(&mut v2);
        assert_eq!(v1, v2);
        let mut sorted = v1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v1, (0..100).collect::<Vec<_>>(), "should actually permute");
    }

    #[test]
    fn sample_indices_distinct_in_range() {
        let mut rng = SplitMix64::new(11);
        let sample = rng.sample_indices(1000, 50);
        assert_eq!(sample.len(), 50);
        assert!(sample.windows(2).all(|w| w[0] < w[1]), "sorted & distinct");
        assert!(sample.iter().all(|&v| v < 1000));
    }

    #[test]
    fn sample_indices_full_population() {
        let mut rng = SplitMix64::new(11);
        let sample = rng.sample_indices(10, 10);
        assert_eq!(sample, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn split_streams_are_uncorrelated_enough() {
        let mut parent = SplitMix64::new(42);
        let mut a = parent.split();
        let mut b = parent.split();
        let equal = (0..1000).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(equal, 0);
    }

    #[test]
    fn range_inclusive_hits_both_ends() {
        let mut rng = SplitMix64::new(4);
        let mut lo_seen = false;
        let mut hi_seen = false;
        for _ in 0..2000 {
            match rng.next_range_inclusive(10, 13) {
                10 => lo_seen = true,
                13 => hi_seen = true,
                v => assert!((10..=13).contains(&v)),
            }
        }
        assert!(lo_seen && hi_seen);
    }
}
