//! Deterministic, randomly-accessible pseudo-random number generation for
//! in-place data generation.
//!
//! DataSynth (like Myriad before it) regenerates any property value from its
//! instance `id` alone: each property table owns a *skip-seed* PRNG `r` with
//! an O(1) `r(id)` operation, and the property generator is a pure function
//! of `(id, r(id), deps...)`. This crate provides:
//!
//! * [`SplitMix64`] — a fast sequential generator with O(1) jump,
//! * [`SkipSeed`] — the random-access view (`at(i)` returns the *i*-th draw),
//! * [`Philox2x64`] — a counter-based generator used where higher stream
//!   quality matters (structure generation),
//! * [`TableStream`] — per-table independent streams derived from a master
//!   seed and a table label,
//! * [`CounterStream`] — Philox-backed per-slot streams for chunkable
//!   structure generation (edge *i* as a pure function of `(key, i)`),
//! * [`dist`] — inverse-transform samplers (uniform, categorical, zipf,
//!   geometric, bounded power-law, normal, exponential, empirical).
//!
//! Everything in this crate is free of I/O and global state, and fully
//! deterministic: the same seed always produces the same sequence on every
//! platform.

pub mod dist;
mod hash;
mod philox;
mod splitmix;
mod stream;

pub use hash::{fnv1a_64, fx_mix, mix64, seed_from_label};
pub use philox::Philox2x64;
pub use splitmix::{SkipSeed, SplitMix64, GOLDEN_GAMMA};
pub use stream::{CounterStream, TableStream};
