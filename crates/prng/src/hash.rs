//! Small, fast, dependency-free hashing used for seed derivation.

/// Final mixing function of SplitMix64 (Stafford variant 13).
///
/// Bijective on `u64`; turns a weakly-random counter into a value that
/// passes statistical tests. This is the work-horse of every O(1)
/// random-access draw in this crate.
#[inline]
pub fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// FNV-1a over a byte string; used to hash table labels into seeds.
#[inline]
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    const OFFSET: u64 = 0xCBF2_9CE4_8422_2325;
    const PRIME: u64 = 0x0000_0100_0000_01B3;
    let mut h = OFFSET;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(PRIME);
    }
    h
}

/// FxHash-style one-word mixer (rustc's integer hash): cheap enough for hot
/// per-node hashing, good enough for bucket spreading.
#[inline]
pub fn fx_mix(word: u64) -> u64 {
    const K: u64 = 0x51_7C_C1_B7_27_22_0A_95;
    word.rotate_left(5).bitxor_mix(K)
}

trait BitxorMix {
    fn bitxor_mix(self, k: u64) -> u64;
}

impl BitxorMix for u64 {
    #[inline]
    fn bitxor_mix(self, k: u64) -> u64 {
        (self ^ k).wrapping_mul(k)
    }
}

/// Derive an independent stream seed from a master seed and a textual label.
///
/// Different labels yield statistically independent streams even when the
/// labels share long prefixes; this is what guarantees the paper's
/// "DataSynth builds a different r() for each property table".
#[inline]
pub fn seed_from_label(master: u64, label: &str) -> u64 {
    mix64(master ^ fnv1a_64(label.as_bytes()).rotate_left(17))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mix64_is_bijective_on_samples() {
        // A bijection cannot collide; spot-check a large sample.
        let mut seen = std::collections::HashSet::new();
        for i in 0..100_000u64 {
            assert!(seen.insert(mix64(i)), "collision at {i}");
        }
    }

    #[test]
    fn mix64_changes_half_the_bits_on_average() {
        let mut total = 0u32;
        let n = 10_000u64;
        for i in 0..n {
            total += (mix64(i) ^ mix64(i + 1)).count_ones();
        }
        let avg = f64::from(total) / n as f64;
        assert!((avg - 32.0).abs() < 1.0, "avalanche average {avg}");
    }

    #[test]
    fn fnv_distinguishes_labels() {
        assert_ne!(fnv1a_64(b"Person.name"), fnv1a_64(b"Person.sex"));
        assert_ne!(fnv1a_64(b""), fnv1a_64(b"\0"));
    }

    #[test]
    fn seeds_for_different_labels_differ() {
        let a = seed_from_label(42, "Person.country");
        let b = seed_from_label(42, "Person.sex");
        let c = seed_from_label(43, "Person.country");
        assert_ne!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn seed_derivation_is_stable() {
        // Pin the value: exporters rely on cross-run stability.
        assert_eq!(seed_from_label(0, "x"), seed_from_label(0, "x"));
    }

    #[test]
    fn fx_mix_spreads_small_ints() {
        let a = fx_mix(1);
        let b = fx_mix(2);
        assert_ne!(a & 0xFFFF, b & 0xFFFF, "low bits must differ");
    }
}
