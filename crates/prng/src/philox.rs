//! Philox 2×64 counter-based generator (Salmon et al., SC'11).
//!
//! Counter-based generators give the same O(1) random access as
//! [`crate::SkipSeed`] but with cryptographically-inspired mixing, at ~3× the
//! cost. Structure generators use it where long-range correlations in a
//! cheaper stream could visibly bias graph topology (e.g. RMAT quadrant
//! choices which consume many correlated draws per edge).

const MULTIPLIER: u64 = 0xD2B7_4407_B1CE_6E93;
const WEYL: u64 = 0x9E37_79B9_7F4A_7C15;
const ROUNDS: usize = 10;

/// Philox 2×64-10: maps `(key, counter)` to two 64-bit outputs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Philox2x64 {
    key: u64,
}

impl Philox2x64 {
    /// Create a generator keyed by `key` (the "seed").
    #[inline]
    pub fn new(key: u64) -> Self {
        Self { key }
    }

    /// The pair of outputs for counter `ctr`.
    #[inline]
    pub fn at(&self, ctr: u64) -> (u64, u64) {
        let mut x0 = ctr;
        let mut x1 = 0xA5A5_A5A5_A5A5_A5A5u64; // domain-separation constant
        let mut k = self.key;
        for _ in 0..ROUNDS {
            let prod = u128::from(x0) * u128::from(MULTIPLIER);
            let hi = (prod >> 64) as u64;
            let lo = prod as u64;
            x0 = hi ^ k ^ x1;
            x1 = lo;
            k = k.wrapping_add(WEYL);
        }
        (x0, x1)
    }

    /// First output word only (convenience for single-draw users).
    #[inline]
    pub fn at_single(&self, ctr: u64) -> u64 {
        self.at(ctr).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_key_counter() {
        let g = Philox2x64::new(123);
        assert_eq!(g.at(0), g.at(0));
        assert_ne!(g.at(0), g.at(1));
        assert_ne!(Philox2x64::new(1).at(0), Philox2x64::new(2).at(0));
    }

    #[test]
    fn no_collisions_in_prefix() {
        let g = Philox2x64::new(7);
        let mut seen = std::collections::HashSet::new();
        for ctr in 0..50_000u64 {
            assert!(seen.insert(g.at(ctr)), "collision at {ctr}");
        }
    }

    #[test]
    fn output_bits_balanced() {
        let g = Philox2x64::new(99);
        let mut ones = 0u64;
        let n = 10_000u64;
        for ctr in 0..n {
            let (a, b) = g.at(ctr);
            ones += u64::from(a.count_ones() + b.count_ones());
        }
        let frac = ones as f64 / (n as f64 * 128.0);
        assert!((frac - 0.5).abs() < 0.01, "bit balance {frac}");
    }

    #[test]
    fn adjacent_counters_decorrelated() {
        // Avalanche across counters: flipping the low counter bit should
        // flip about half the output bits.
        let g = Philox2x64::new(5);
        let mut total = 0u32;
        let n = 4096u64;
        for ctr in 0..n {
            let (a0, _) = g.at(2 * ctr);
            let (a1, _) = g.at(2 * ctr + 1);
            total += (a0 ^ a1).count_ones();
        }
        let avg = f64::from(total) / n as f64;
        assert!((avg - 32.0).abs() < 1.0, "avalanche {avg}");
    }
}
