//! Property-based tests on the sampling library's invariants.

use proptest::prelude::*;

use datasynth_prng::dist::{
    geometric_pmf, AliasTable, BoundedPareto, DiscretePowerLaw, Geometric, Sampler, Zipf,
};
use datasynth_prng::{mix64, seed_from_label, SplitMix64};

proptest! {
    /// Zipf pmf is a probability distribution for any parameters.
    #[test]
    fn zipf_pmf_normalizes(s in 0.2f64..3.0, n in 1u64..200) {
        let z = Zipf::new(s, n);
        let total: f64 = (1..=n).map(|k| z.pmf(k)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9, "sum {total}");
    }

    /// Discrete power-law samples stay within their declared support.
    #[test]
    fn power_law_support(seed: u64, exp in 1.1f64..3.5, kmin in 1u64..10, span in 1u64..100) {
        let d = DiscretePowerLaw::new(exp, kmin, kmin + span);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            let v = d.sample(&mut rng);
            prop_assert!((kmin..=kmin + span).contains(&v));
        }
    }

    /// Bounded Pareto quantile is monotone and within bounds for any shape.
    #[test]
    fn pareto_quantile_monotone(exp in 1.01f64..4.0, kmin in 0.5f64..10.0, mult in 1.1f64..50.0) {
        let d = BoundedPareto::new(exp, kmin, kmin * mult);
        let mut last = 0.0f64;
        for i in 0..=20 {
            let q = d.quantile(i as f64 / 20.0 * 0.999);
            prop_assert!(q >= kmin - 1e-9 && q <= kmin * mult + 1e-9);
            prop_assert!(q + 1e-12 >= last);
            last = q;
        }
    }

    /// Geometric pmf terms are non-increasing and bounded by p.
    #[test]
    fn geometric_pmf_shape(p in 0.01f64..1.0, i in 0u64..200) {
        let now = geometric_pmf(p, i);
        let next = geometric_pmf(p, i + 1);
        prop_assert!(now <= p + 1e-12);
        prop_assert!(next <= now + 1e-12);
    }

    /// Geometric samples for high p concentrate at zero.
    #[test]
    fn geometric_high_p(seed: u64) {
        let d = Geometric::new(0.95);
        let mut rng = SplitMix64::new(seed);
        let zeros = (0..100).filter(|_| d.sample(&mut rng) == 0).count();
        prop_assert!(zeros > 75, "zeros {zeros}");
    }

    /// Alias table draws stay on the support for arbitrary weights.
    #[test]
    fn alias_on_support(
        seed: u64,
        weights in prop::collection::vec(0.001f64..1000.0, 1..100),
    ) {
        let table = AliasTable::new(&weights);
        let mut rng = SplitMix64::new(seed);
        for _ in 0..64 {
            prop_assert!(table.sample(&mut rng) < weights.len());
            prop_assert!(table.index_from_u64(rng.next_u64()) < weights.len());
        }
    }

    /// mix64 is injective under xor-shift perturbations of the input.
    #[test]
    fn mix64_distinguishes(a: u64, b: u64) {
        prop_assume!(a != b);
        prop_assert_ne!(mix64(a), mix64(b));
    }

    /// Jump-ahead equals step-by-step discarding for any distance.
    #[test]
    fn jump_consistency(seed: u64, skip in 0u64..5_000) {
        let mut a = SplitMix64::new(seed);
        let mut b = SplitMix64::new(seed);
        for _ in 0..skip {
            a.next_u64();
        }
        b.jump(skip);
        prop_assert_eq!(a.next_u64(), b.next_u64());
    }

    /// Label-derived seeds never collide with the raw master seed stream
    /// for differing labels (streams must be independent).
    #[test]
    fn label_streams_differ(master: u64, suffix in "[a-z]{1,8}") {
        let a = seed_from_label(master, "Person.name");
        let b = seed_from_label(master, &format!("Person.{suffix}"));
        prop_assume!(suffix != "name");
        prop_assert_ne!(a, b);
    }

    /// sample_indices returns sorted distinct in-range values of length k.
    #[test]
    fn sample_indices_contract(seed: u64, n in 1u64..2_000, frac in 0.0f64..1.0) {
        let k = ((n as f64 * frac) as usize).min(n as usize);
        let mut rng = SplitMix64::new(seed);
        let picks = rng.sample_indices(n, k);
        prop_assert_eq!(picks.len(), k);
        prop_assert!(picks.windows(2).all(|w| w[0] < w[1]));
        prop_assert!(picks.iter().all(|&v| v < n));
    }
}
