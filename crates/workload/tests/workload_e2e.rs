//! End-to-end workload generation against a real generated graph:
//! template coverage, curated selectivity, and seed determinism.
//!
//! This test crate builds the graph by hand (structure + property tables)
//! rather than through `datasynth-core`, keeping the dependency graph
//! acyclic: workload -> {schema, tables, analysis, prng} only.

use datasynth_prng::{SplitMix64, TableStream};
use datasynth_schema::parse_schema;
use datasynth_tables::{EdgeTable, PropertyGraph, PropertyTable, Value, ValueType};
use datasynth_workload::{QueryMix, SelectivityClass, WorkloadGenerator};

const DSL: &str = r#"
graph social {
  node Person [count = 500] {
    country: text = dictionary("countries");
    age: long = uniform(18, 80);
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person {
    structure = lfr(avg_degree = 8, max_degree = 24);
    correlate country with homophily(0.8);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.4);
  }
}
"#;

const COUNTRIES: &[&str] = &["ES", "FR", "DE", "IT", "PT", "NL"];
const TOPICS: &[&str] = &["music", "sports", "news"];

/// A small deterministic stand-in for the full pipeline.
fn build_graph(seed: u64) -> PropertyGraph {
    let n_person = 500u64;
    let mut g = PropertyGraph::new();
    g.add_node_type("Person", n_person);

    let country_stream = TableStream::derive(seed, "Person.country");
    g.insert_node_property(
        "Person",
        "country",
        PropertyTable::from_values(
            "Person.country",
            ValueType::Text,
            (0..n_person)
                .map(|i| Value::Text(COUNTRIES[(country_stream.value(i) % 6) as usize].into())),
        )
        .unwrap(),
    );
    let age_stream = TableStream::derive(seed, "Person.age");
    g.insert_node_property(
        "Person",
        "age",
        PropertyTable::from_values(
            "Person.age",
            ValueType::Long,
            (0..n_person).map(|i| Value::Long(18 + (age_stream.value(i) % 63) as i64)),
        )
        .unwrap(),
    );

    // knows: a skewed random graph (few hubs, many leaves).
    let mut rng = SplitMix64::new(seed ^ 0xE1);
    let mut knows = EdgeTable::new("knows");
    for _ in 0..2_000 {
        let a = rng.next_below(n_person);
        // Square the draw to skew endpoints toward low ids (hubs).
        let b = {
            let x = rng.next_f64();
            ((x * x) * n_person as f64) as u64
        };
        if a != b {
            knows.push(a.min(b), a.max(b));
        }
    }
    knows.dedup();
    g.insert_edge_table("knows", "Person", "Person", knows);

    // creates: geometric out-degrees, fresh message ids.
    let mut creates = EdgeTable::new("creates");
    let mut next = 0u64;
    for src in 0..n_person {
        let k = (rng.next_f64() * 3.0) as u64;
        for _ in 0..k {
            creates.push(src, next);
            next += 1;
        }
    }
    g.add_node_type("Message", next);
    let topic_stream = TableStream::derive(seed, "Message.topic");
    g.insert_node_property(
        "Message",
        "topic",
        PropertyTable::from_values(
            "Message.topic",
            ValueType::Text,
            (0..next).map(|i| Value::Text(TOPICS[(topic_stream.value(i) % 3) as usize].into())),
        )
        .unwrap(),
    );
    g.insert_edge_table("creates", "Person", "Message", creates);
    assert!(g.validate().is_empty());
    g
}

#[test]
fn hundred_queries_cover_all_kinds() {
    let schema = parse_schema(DSL).unwrap();
    let graph = build_graph(42);
    let wl = WorkloadGenerator::new(&schema, &graph)
        .with_seed(42)
        .generate(100)
        .unwrap();
    assert_eq!(wl.queries.len(), 100);
    assert_eq!(
        wl.instantiated_kinds(),
        vec![
            "community_agg",
            "expand_1hop",
            "expand_2hop",
            "path_2",
            "point_lookup",
            "property_scan",
        ],
        "all six template kinds must be instantiated"
    );
    for q in &wl.queries {
        assert!(!q.cypher.is_empty() && !q.gremlin.is_empty());
        assert!(q.binding().band.0 <= q.binding().expected_rows);
        assert!(q.binding().expected_rows <= q.binding().band.1);
    }
}

#[test]
fn same_seed_is_byte_identical() {
    let schema = parse_schema(DSL).unwrap();
    let graph = build_graph(42);
    let a = WorkloadGenerator::new(&schema, &graph)
        .with_seed(7)
        .generate(60)
        .unwrap();
    let b = WorkloadGenerator::new(&schema, &graph)
        .with_seed(7)
        .generate(60)
        .unwrap();
    assert_eq!(a, b);
    assert_eq!(a.manifest_json(), b.manifest_json());

    let c = WorkloadGenerator::new(&schema, &graph)
        .with_seed(8)
        .generate(60)
        .unwrap();
    assert_ne!(
        a.manifest_json(),
        c.manifest_json(),
        "different seeds should curate different parameters"
    );
}

#[test]
fn point_class_instances_stay_small() {
    let schema = parse_schema(DSL).unwrap();
    let graph = build_graph(42);
    let wl = WorkloadGenerator::new(&schema, &graph)
        .with_seed(42)
        .generate(120)
        .unwrap();
    // Every point-class query's band must sit below every scan-class
    // query's band *within the same template family sharing a candidate
    // pool*; globally we at least check point lookups are singletons.
    for q in &wl.queries {
        let t = wl
            .templates
            .iter()
            .find(|t| t.id == q.template_id())
            .unwrap();
        if t.id.starts_with("point_lookup") {
            assert_eq!(q.binding().expected_rows, 1);
        }
        if t.selectivity == SelectivityClass::Scan {
            assert!(
                q.binding().band.1 >= q.binding().band.0,
                "band must be ordered"
            );
        }
    }
}

#[test]
fn empty_types_forfeit_quota_to_producing_templates() {
    // A graph where Message resolved to zero instances: every
    // Message-touching template has an empty candidate pool, and its
    // quota must flow to the templates that can produce queries.
    let schema = parse_schema(DSL).unwrap();
    let mut graph = build_graph(42);
    let mut empty = PropertyGraph::new();
    for (name, count) in graph.node_types() {
        empty.add_node_type(name, if name == "Message" { 0 } else { count });
    }
    std::mem::swap(&mut graph, &mut empty);
    let src = empty; // the original graph
    for nt in ["Person"] {
        for (prop, table) in src.node_properties_of(nt) {
            graph.insert_node_property(nt, prop, table.clone());
        }
    }
    graph.insert_node_property(
        "Message",
        "topic",
        datasynth_tables::PropertyTable::new("Message.topic", ValueType::Text),
    );
    graph.insert_edge_table(
        "knows",
        "Person",
        "Person",
        src.edges("knows").unwrap().clone(),
    );
    graph.insert_edge_table("creates", "Person", "Message", EdgeTable::new("creates"));
    assert!(graph.validate().is_empty());

    let wl = WorkloadGenerator::new(&schema, &graph)
        .with_seed(42)
        .generate(50)
        .unwrap();
    assert_eq!(
        wl.queries.len(),
        50,
        "forfeited quota must be redistributed, not dropped"
    );
    assert!(wl
        .queries
        .iter()
        .all(|q| !q.template_id().contains("Message") || q.template_id().contains("creates")));
}

#[test]
fn tiny_count_lands_on_nonempty_pool_even_if_first_templates_are_empty() {
    // The first-declared node type is empty, so largest-remainder
    // apportionment hands the whole (tiny) quota to templates with no
    // candidates; backfill must find the later, populated templates.
    let dsl = r#"
graph sparse {
  node Ghost [count = 0] {
    tag: text = dictionary("topics");
  }
  node Person [count = 20] {
    country: text = dictionary("countries");
  }
}
"#;
    let schema = parse_schema(dsl).unwrap();
    let mut g = PropertyGraph::new();
    g.add_node_type("Ghost", 0);
    g.insert_node_property(
        "Ghost",
        "tag",
        datasynth_tables::PropertyTable::new("Ghost.tag", ValueType::Text),
    );
    g.add_node_type("Person", 20);
    g.insert_node_property(
        "Person",
        "country",
        datasynth_tables::PropertyTable::from_values(
            "Person.country",
            ValueType::Text,
            (0..20).map(|i| datasynth_tables::Value::Text(COUNTRIES[i % 6].into())),
        )
        .unwrap(),
    );
    assert!(g.validate().is_empty());

    for count in [1usize, 2, 3] {
        let wl = WorkloadGenerator::new(&schema, &g)
            .with_seed(42)
            .generate(count)
            .unwrap();
        assert_eq!(wl.queries.len(), count, "count {count}");
        assert!(wl
            .queries
            .iter()
            .all(|q| q.template_id().contains("Person")));
    }
}

#[test]
fn mix_restricts_kinds() {
    let schema = parse_schema(DSL).unwrap();
    let graph = build_graph(42);
    let wl = WorkloadGenerator::new(&schema, &graph)
        .with_seed(42)
        .with_mix(QueryMix::parse("point:1,expand1:1").unwrap())
        .generate(40)
        .unwrap();
    assert_eq!(wl.queries.len(), 40);
    assert_eq!(wl.instantiated_kinds(), vec!["expand_1hop", "point_lookup"]);
}

#[test]
fn write_to_round_trips_files() {
    let schema = parse_schema(DSL).unwrap();
    let graph = build_graph(42);
    let wl = WorkloadGenerator::new(&schema, &graph)
        .with_seed(42)
        .generate(12)
        .unwrap();
    let dir = std::env::temp_dir().join(format!("datasynth-wl-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    wl.write_to(&dir).unwrap();
    let manifest = std::fs::read_to_string(dir.join("workload.json")).unwrap();
    for q in &wl.queries {
        assert!(manifest.contains(&q.id));
        let cy = std::fs::read_to_string(dir.join(format!("cypher/{}.cypher", q.id))).unwrap();
        assert_eq!(cy.trim_end(), q.cypher);
    }
    std::fs::remove_dir_all(&dir).unwrap();
}
