//! Query-mix specification: how the requested query count is apportioned
//! across template kinds.

use std::collections::BTreeMap;

use crate::error::WorkloadError;
use crate::template::QueryTemplate;

/// The recognized kind keys (canonical names plus CLI-friendly aliases).
const KINDS: &[(&str, &str)] = &[
    ("point_lookup", "point"),
    ("expand_1hop", "expand1"),
    ("expand_2hop", "expand2"),
    ("property_scan", "scan"),
    ("path_2", "path"),
    ("community_agg", "agg"),
    ("as_of_lookup", "asof"),
    ("expand_window", "window"),
    ("window_agg", "wagg"),
];

fn canonical(key: &str) -> Option<&'static str> {
    KINDS
        .iter()
        .find(|(canon, alias)| *canon == key || *alias == key)
        .map(|(canon, _)| *canon)
}

/// Relative weights per template kind. An empty mix weights every kind
/// equally.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QueryMix {
    weights: BTreeMap<&'static str, f64>,
}

impl QueryMix {
    /// Uniform mix over whatever kinds the schema derives.
    pub fn uniform() -> Self {
        Self::default()
    }

    /// Parse `kind:weight,kind:weight` (e.g. `point:2,expand1:5,scan:1`).
    /// Kinds accept canonical (`expand_1hop`) or alias (`expand1`) names;
    /// omitted kinds get weight 0 when any are given.
    pub fn parse(spec: &str) -> Result<Self, WorkloadError> {
        let mut weights = BTreeMap::new();
        for part in spec.split(',').filter(|p| !p.trim().is_empty()) {
            let (key, w) = part
                .split_once(':')
                .ok_or_else(|| WorkloadError::BadMix(format!("missing ':' in {part:?}")))?;
            let kind = canonical(key.trim())
                .ok_or_else(|| WorkloadError::BadMix(format!("unknown kind {key:?}")))?;
            let weight: f64 = w
                .trim()
                .parse()
                .map_err(|_| WorkloadError::BadMix(format!("bad weight {w:?}")))?;
            if weight < 0.0 || !weight.is_finite() {
                return Err(WorkloadError::BadMix(format!(
                    "weight in {part:?} must be a finite, nonnegative number"
                )));
            }
            if weights.insert(kind, weight).is_some() {
                return Err(WorkloadError::BadMix(format!("kind {key:?} given twice")));
            }
        }
        if weights.is_empty() {
            // An empty spec would silently behave as the uniform mix —
            // reject it so e.g. an unset shell variable fails loudly.
            return Err(WorkloadError::BadMix(
                "empty mix specification (expected kind:weight[,kind:weight...])".into(),
            ));
        }
        Ok(Self { weights })
    }

    /// Weight of one kind under this mix.
    pub fn weight(&self, kind_keyword: &str) -> f64 {
        if self.weights.is_empty() {
            1.0
        } else {
            self.weights.get(kind_keyword).copied().unwrap_or(0.0)
        }
    }

    /// Deterministically apportion `total` queries over `templates` by
    /// largest remainder: each kind gets its weight share, split evenly
    /// over the kind's templates. Errors when the mix zeroes every
    /// derived kind.
    pub fn apportion(
        &self,
        templates: &[QueryTemplate],
        total: usize,
    ) -> Result<Vec<usize>, WorkloadError> {
        if templates.is_empty() || total == 0 {
            return Ok(vec![0; templates.len()]);
        }
        let mut kind_count: BTreeMap<&str, usize> = BTreeMap::new();
        for t in templates {
            *kind_count.entry(t.kind.keyword()).or_default() += 1;
        }
        // A kind the user positively weighted but the schema cannot derive
        // would silently vanish from the delivered mix; fail loudly.
        for (kind, w) in &self.weights {
            if *w > 0.0 && !kind_count.contains_key(kind) {
                return Err(WorkloadError::BadMix(format!(
                    "kind {kind:?} has weight {w} but the schema derives no such templates"
                )));
            }
        }
        self.apportion_within(templates, total, kind_count)
    }

    /// Apportion over a template subset without the unmatched-kind check —
    /// used when redistributing quota forfeited by empty candidate pools,
    /// where some weighted kinds legitimately have no surviving templates.
    pub(crate) fn apportion_lenient(
        &self,
        templates: &[QueryTemplate],
        total: usize,
    ) -> Result<Vec<usize>, WorkloadError> {
        if templates.is_empty() || total == 0 {
            return Ok(vec![0; templates.len()]);
        }
        let mut kind_count: BTreeMap<&str, usize> = BTreeMap::new();
        for t in templates {
            *kind_count.entry(t.kind.keyword()).or_default() += 1;
        }
        self.apportion_within(templates, total, kind_count)
    }

    fn apportion_within(
        &self,
        templates: &[QueryTemplate],
        total: usize,
        kind_count: BTreeMap<&str, usize>,
    ) -> Result<Vec<usize>, WorkloadError> {
        let weights: Vec<f64> = templates
            .iter()
            .map(|t| {
                let kw = t.kind.keyword();
                self.weight(kw) / kind_count[kw] as f64
            })
            .collect();
        let sum: f64 = weights.iter().sum();
        if sum <= 0.0 {
            return Err(WorkloadError::BadMix(
                "mix assigns zero weight to every derived template kind".into(),
            ));
        }
        let quotas: Vec<f64> = weights.iter().map(|w| total as f64 * w / sum).collect();
        let mut counts: Vec<usize> = quotas.iter().map(|q| q.floor() as usize).collect();
        let assigned: usize = counts.iter().sum();
        // Distribute the remainder by descending fractional part, index
        // order breaking ties.
        let mut order: Vec<usize> = (0..templates.len()).collect();
        order.sort_by(|&a, &b| {
            let fa = quotas[a] - quotas[a].floor();
            let fb = quotas[b] - quotas[b].floor();
            fb.partial_cmp(&fa).unwrap().then(a.cmp(&b))
        });
        for &i in order.iter().take(total - assigned) {
            counts[i] += 1;
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::template::{SelectivityClass, TemplateKind};

    fn templates() -> Vec<QueryTemplate> {
        let kinds = vec![
            TemplateKind::PointLookup {
                node_type: "A".into(),
            },
            TemplateKind::PointLookup {
                node_type: "B".into(),
            },
            TemplateKind::Expand1 {
                edge: "e".into(),
                source: "A".into(),
                target: "A".into(),
                directed: false,
            },
        ];
        kinds
            .into_iter()
            .enumerate()
            .map(|(i, kind)| QueryTemplate {
                id: format!("t{i}"),
                selectivity: SelectivityClass::Point,
                kind,
            })
            .collect()
    }

    #[test]
    fn uniform_mix_balances_kinds_not_templates() {
        let counts = QueryMix::uniform().apportion(&templates(), 100).unwrap();
        assert_eq!(counts.iter().sum::<usize>(), 100);
        // point_lookup (2 templates) and expand_1hop (1 template) each get
        // half: 25/25/50.
        assert_eq!(counts, vec![25, 25, 50]);
    }

    #[test]
    fn parse_accepts_aliases_and_zeroes_omitted() {
        let mix = QueryMix::parse("point:3, expand1:1").unwrap();
        assert_eq!(mix.weight("point_lookup"), 3.0);
        assert_eq!(mix.weight("expand_1hop"), 1.0);
        assert_eq!(mix.weight("property_scan"), 0.0);
        let counts = mix.apportion(&templates(), 8).unwrap();
        assert_eq!(counts, vec![3, 3, 2]);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(QueryMix::parse("nope:1").is_err());
        assert!(QueryMix::parse("point").is_err());
        assert!(QueryMix::parse("point:x").is_err());
        assert!(QueryMix::parse("point:-1").is_err());
        assert!(QueryMix::parse("point:NaN").is_err());
        assert!(QueryMix::parse("point:inf").is_err());
        assert!(QueryMix::parse("").is_err());
        assert!(QueryMix::parse(",").is_err());
        let err = QueryMix::parse("point:5,point:1").unwrap_err();
        assert!(err.to_string().contains("twice"), "{err}");
    }

    #[test]
    fn zero_total_weight_is_an_error() {
        let mix = QueryMix::parse("scan:1").unwrap(); // no scan templates here
        assert!(mix.apportion(&templates(), 10).is_err());
    }

    #[test]
    fn unmatched_positive_kind_is_an_error_even_with_matches() {
        // point matches, agg does not: the user's 50% agg request cannot
        // be honored, so it must fail rather than silently degrade.
        let mix = QueryMix::parse("point:1,agg:1").unwrap();
        let err = mix.apportion(&templates(), 10).unwrap_err();
        assert!(err.to_string().contains("community_agg"), "{err}");
    }

    #[test]
    fn apportion_is_exact_and_deterministic() {
        let mix = QueryMix::parse("point:1,expand1:2").unwrap();
        for total in [1usize, 7, 99, 100] {
            let a = mix.apportion(&templates(), total).unwrap();
            let b = mix.apportion(&templates(), total).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.iter().sum::<usize>(), total);
        }
    }
}
