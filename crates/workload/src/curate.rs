//! Parameter curation: sample real node ids and property values from the
//! generated tables, compute each candidate's **exact** result size
//! against the graph, and bin candidates so every query instance lands in
//! its template's selectivity class.
//!
//! Cardinalities are exact, not heuristic: `expected_rows` is the number
//! of rows the reference executor (`datasynth-engine`) produces for the
//! binding, counted with the same traversal semantics (for aggregation
//! templates, the rows *aggregated* — the work — rather than the
//! collapsed group rows). This is what lets the bench harness
//! machine-check every executed query against its curated band.

use datasynth_prng::TableStream;
use datasynth_schema::Schema;
use datasynth_tables::{PropertyGraph, Value};
use datasynth_temporal::TypeClock;

use crate::error::WorkloadError;
use crate::template::{QueryTemplate, SelectivityClass, TemplateKind};

/// Cap on sampled id candidates per template.
const MAX_CANDIDATES: u64 = 256;

/// Rows whose insert timestamps seed the window estimator per edge type.
const TS_SAMPLE: u64 = 64;

/// Stream-index base for window draws, far past the id-sampling range
/// (`sample_ids` consumes at most `16 * MAX_CANDIDATES` indices) so the
/// two draw families never overlap.
const WINDOW_DRAW_BASE: u64 = u64::MAX / 4;

/// One curated parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A node id (type-local, `0..n`).
    Id(u64),
    /// A property value.
    Value(Value),
}

impl ParamValue {
    /// Render for the JSON manifest (unquoted).
    pub fn render(&self) -> String {
        match self {
            ParamValue::Id(i) => i.to_string(),
            ParamValue::Value(v) => v.render(),
        }
    }

    /// True when the manifest/queries must quote this as a string.
    pub fn is_textual(&self) -> bool {
        matches!(
            self,
            ParamValue::Value(Value::Text(_)) | ParamValue::Value(Value::Date(_))
        )
    }
}

/// A named, curated parameter binding.
#[derive(Debug, Clone, PartialEq)]
pub struct CuratedParam {
    /// Parameter name (`id`, `value`).
    pub name: String,
    /// Curated value.
    pub value: ParamValue,
}

/// One full parameter binding for a template, with its cardinality
/// estimate and the selectivity band it was drawn from.
#[derive(Debug, Clone, PartialEq)]
pub struct Binding {
    /// Parameters in template order.
    pub params: Vec<CuratedParam>,
    /// Estimated result rows for this binding.
    pub expected_rows: u64,
    /// `[lo, hi]` estimated-row band of the bin the binding came from.
    pub band: (u64, u64),
}

/// A candidate parameter set with its result-size estimate.
struct Candidate {
    params: Vec<CuratedParam>,
    est: u64,
}

impl Candidate {
    fn id(id: u64, est: u64) -> Self {
        Candidate {
            params: vec![CuratedParam {
                name: "id".to_owned(),
                value: ParamValue::Id(id),
            }],
            est,
        }
    }

    fn value(value: Value, est: u64) -> Self {
        Candidate {
            params: vec![CuratedParam {
                name: "value".to_owned(),
                value: ParamValue::Value(value),
            }],
            est,
        }
    }

    /// Deterministic tie-break key after the estimate.
    fn render_key(&self) -> String {
        let parts: Vec<String> = self.params.iter().map(|p| p.value.render()).collect();
        parts.join("|")
    }
}

fn date_param(name: &str, days: i64) -> CuratedParam {
    CuratedParam {
        name: name.to_owned(),
        value: ParamValue::Value(Value::Date(days)),
    }
}

fn temporal_err(e: impl std::fmt::Display) -> WorkloadError {
    WorkloadError::Temporal(e.to_string())
}

/// Shared, lazily built degree vectors keyed by `(edge, directed)`.
type DegreeCache =
    std::cell::RefCell<std::collections::BTreeMap<(String, bool), std::rc::Rc<Vec<u32>>>>;

/// Shared value-frequency tables keyed by `(node_type, property)`.
type FrequencyCache = std::cell::RefCell<
    std::collections::BTreeMap<(String, String), std::rc::Rc<Vec<(Value, u64)>>>,
>;

/// Source-side adjacency: per source row, the `(neighbor id, edge row)`
/// entries reachable in one hop. Keyed by `(edge, directed)`.
type Adjacency = std::rc::Rc<Vec<Vec<(u64, u64)>>>;
type AdjacencyCache = std::cell::RefCell<std::collections::BTreeMap<(String, bool), Adjacency>>;

/// Sorted insert timestamps of *every* row of an edge type, keyed by edge
/// name — the exact arrival picture window aggregates count against.
type EdgeTsCache = std::cell::RefCell<std::collections::BTreeMap<String, std::rc::Rc<Vec<i64>>>>;

/// Curates parameters for templates against one generated graph.
pub struct Curator<'a> {
    graph: &'a PropertyGraph,
    seed: u64,
    /// Schema backing the graph; required only for temporal templates,
    /// whose timestamp parameters replay the [`TypeClock`] draws.
    schema: Option<&'a Schema>,
    /// Degree vectors are O(E) to build and shared by every template
    /// touching the same edge type (Expand1/Expand2/CommunityAgg plus
    /// each Path2 pair), so cache them per `(edge, directed)`.
    degree_cache: DegreeCache,
    /// Value frequencies are O(n) scans shared by PropertyScan and
    /// CommunityAgg over the same property (and by the redistribution
    /// pass calling `bindings` again), so cache them too.
    frequency_cache: FrequencyCache,
    /// Adjacency lists power the exact 2-hop / path / window counts;
    /// O(E) to build and shared across templates on the same edge type.
    adjacency_cache: AdjacencyCache,
    /// Sorted per-row insert timestamps per edge type (window aggregates).
    edge_ts_cache: EdgeTsCache,
}

impl<'a> Curator<'a> {
    /// Curate from `graph` under `seed` (independent streams are derived
    /// per template, so template order does not matter).
    pub fn new(graph: &'a PropertyGraph, seed: u64) -> Self {
        Self {
            graph,
            seed,
            schema: None,
            degree_cache: Default::default(),
            frequency_cache: Default::default(),
            adjacency_cache: Default::default(),
            edge_ts_cache: Default::default(),
        }
    }

    /// Attach the schema so temporal templates can rebuild per-type
    /// clocks. The seed must match the one the graph was generated
    /// under, or curated timestamps will miss the emitted op log.
    pub fn with_schema(mut self, schema: &'a Schema) -> Self {
        self.schema = Some(schema);
        self
    }

    /// Rebuild the insert/delete clock for a temporal table, replaying
    /// the same streams the [`TemporalSink`](datasynth_temporal) drew
    /// from during generation.
    fn clock_for(&self, table: &str) -> Result<TypeClock, WorkloadError> {
        let schema = self.schema.ok_or_else(|| {
            WorkloadError::Temporal(format!(
                "template over {table:?} needs a schema (Curator::with_schema)"
            ))
        })?;
        let def = schema
            .nodes
            .iter()
            .find(|n| n.name == table)
            .and_then(|n| n.temporal.as_ref())
            .or_else(|| {
                schema
                    .edges
                    .iter()
                    .find(|e| e.name == table)
                    .and_then(|e| e.temporal.as_ref())
            })
            .ok_or_else(|| {
                WorkloadError::Temporal(format!("type {table:?} has no temporal annotation"))
            })?;
        TypeClock::new(self.seed, table, def).map_err(temporal_err)
    }

    /// Produce `count` curated bindings for `template`. Returns an empty
    /// vector when the graph has no candidates (e.g. an empty node type);
    /// errors when the template references tables the graph lacks.
    pub fn bindings(
        &self,
        template: &QueryTemplate,
        count: usize,
    ) -> Result<Vec<Binding>, WorkloadError> {
        let stream = TableStream::derive(self.seed, &format!("workload.{}", template.id));
        let candidates = self.candidates(template, &stream)?;
        Ok(select(candidates, template.selectivity, count, &stream))
    }

    fn node_count(&self, node_type: &str) -> Result<u64, WorkloadError> {
        self.graph
            .node_count(node_type)
            .ok_or_else(|| WorkloadError::MissingNodeType(node_type.to_owned()))
    }

    /// Per-node degree vector for an edge type viewed from its source
    /// side. Full degrees only apply to undirected same-type edges; for
    /// everything else — directed, or undirected across two types, where
    /// head ids live in the *target* type's id space — only the tail side
    /// counts neighbors reachable from a source node.
    fn source_degrees(
        &self,
        edge: &str,
        directed: bool,
    ) -> Result<std::rc::Rc<Vec<u32>>, WorkloadError> {
        let key = (edge.to_owned(), directed);
        if let Some(cached) = self.degree_cache.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let table = self
            .graph
            .edges(edge)
            .ok_or_else(|| WorkloadError::MissingEdgeType(edge.to_owned()))?;
        let meta = self.graph.edge_meta(edge).expect("meta exists with table");
        let n = self.node_count(&meta.source)?;
        let deg = std::rc::Rc::new(if !directed && meta.source == meta.target {
            table.degrees(n)
        } else {
            table.out_degrees(n)
        });
        self.degree_cache.borrow_mut().insert(key, deg.clone());
        Ok(deg)
    }

    /// Source-side adjacency with edge-row provenance, under the same
    /// direction rules as [`Self::source_degrees`]: undirected same-type
    /// edges list both endpoints' views, everything else lists the tail
    /// side only. `adj[row]` holds `(neighbor id, edge row)` pairs, so
    /// exact 2-hop, path and per-edge timestamp counts all read off it.
    fn source_adjacency(&self, edge: &str, directed: bool) -> Result<Adjacency, WorkloadError> {
        let key = (edge.to_owned(), directed);
        if let Some(cached) = self.adjacency_cache.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let table = self
            .graph
            .edges(edge)
            .ok_or_else(|| WorkloadError::MissingEdgeType(edge.to_owned()))?;
        let meta = self.graph.edge_meta(edge).expect("meta exists with table");
        let n = self.node_count(&meta.source)? as usize;
        let both = !directed && meta.source == meta.target;
        let mut adj: Vec<Vec<(u64, u64)>> = vec![Vec::new(); n];
        for (row, (t, h)) in table.iter().enumerate() {
            adj[t as usize].push((h, row as u64));
            if both {
                adj[h as usize].push((t, row as u64));
            }
        }
        let adj = std::rc::Rc::new(adj);
        self.adjacency_cache.borrow_mut().insert(key, adj.clone());
        Ok(adj)
    }

    fn value_frequencies(
        &self,
        node_type: &str,
        property: &str,
    ) -> Result<std::rc::Rc<Vec<(Value, u64)>>, WorkloadError> {
        let key = (node_type.to_owned(), property.to_owned());
        if let Some(cached) = self.frequency_cache.borrow().get(&key) {
            return Ok(cached.clone());
        }
        let table = self
            .graph
            .node_property(node_type, property)
            .ok_or_else(|| {
                WorkloadError::MissingProperty(node_type.to_owned(), property.to_owned())
            })?;
        let freqs = std::rc::Rc::new(table.value_frequencies());
        self.frequency_cache.borrow_mut().insert(key, freqs.clone());
        Ok(freqs)
    }

    fn candidates(
        &self,
        template: &QueryTemplate,
        stream: &TableStream,
    ) -> Result<Vec<Candidate>, WorkloadError> {
        match &template.kind {
            TemplateKind::PointLookup { node_type } => {
                let n = self.node_count(node_type)?;
                Ok(sample_ids(n, stream)
                    .into_iter()
                    .map(|id| Candidate::id(id, 1))
                    .collect())
            }
            TemplateKind::Expand1 {
                edge,
                source,
                directed,
                ..
            } => {
                let n = self.node_count(source)?;
                let deg = self.source_degrees(edge, *directed)?;
                Ok(id_candidates_by_degree(n, &deg, stream))
            }
            TemplateKind::Expand2 {
                edge,
                node_type,
                directed,
            } => {
                let n = self.node_count(node_type)?;
                let adj = self.source_adjacency(edge, *directed)?;
                // Exact distinct 2-hop count, with the renderers'
                // relationship-uniqueness convention: the undirected walk
                // excludes the start vertex it backtracks to, the directed
                // walk keeps a start reachable over reciprocal edges.
                Ok(sample_ids(n, stream)
                    .into_iter()
                    .map(|id| {
                        let mut seen = std::collections::BTreeSet::new();
                        for &(v, _) in &adj[id as usize] {
                            for &(w, _) in &adj[v as usize] {
                                if *directed || w != id {
                                    seen.insert(w);
                                }
                            }
                        }
                        Candidate::id(id, seen.len() as u64)
                    })
                    .collect())
            }
            TemplateKind::Path2 {
                first_edge,
                second_edge,
                start,
                mid,
                first_directed,
                second_directed,
                ..
            } => {
                let n = self.node_count(start)?;
                let adj1 = self.source_adjacency(first_edge, *first_directed)?;
                let mid_n = self.node_count(mid)?;
                let deg2 = self.source_degrees(second_edge, *second_directed)?;
                debug_assert_eq!(deg2.len() as u64, mid_n);
                // Exact path count: one result row per (first hop, second
                // hop) pair, so sum the mid vertices' second-hop degrees.
                Ok(sample_ids(n, stream)
                    .into_iter()
                    .map(|id| {
                        let est = adj1[id as usize]
                            .iter()
                            .map(|&(v, _)| u64::from(deg2[v as usize]))
                            .sum();
                        Candidate::id(id, est)
                    })
                    .collect())
            }
            TemplateKind::PropertyScan {
                node_type,
                property,
            } => {
                let freqs = self.value_frequencies(node_type, property)?;
                Ok(sampled_indices(freqs.len(), stream)
                    .into_iter()
                    .map(|i| {
                        let (v, freq) = &freqs[i];
                        Candidate::value(v.clone(), *freq)
                    })
                    .collect())
            }
            TemplateKind::CommunityAgg {
                edge,
                node_type,
                property,
                directed,
            } => {
                let freqs = self.value_frequencies(node_type, property)?;
                let deg = self.source_degrees(edge, *directed)?;
                let col = self
                    .graph
                    .node_property(node_type, property)
                    .ok_or_else(|| {
                        WorkloadError::MissingProperty(node_type.to_owned(), property.to_owned())
                    })?;
                // Exact edges touched before the group-by collapses them:
                // the summed degree of the value's community.
                Ok(sampled_indices(freqs.len(), stream)
                    .into_iter()
                    .map(|i| {
                        let (value, _) = &freqs[i];
                        let est = col
                            .iter()
                            .enumerate()
                            .filter(|(_, v)| v == value)
                            .map(|(row, _)| u64::from(deg[row]))
                            .sum();
                        Candidate::value(value.clone(), est)
                    })
                    .collect())
            }
            TemplateKind::AsOfLookup { node_type } => {
                let n = self.node_count(node_type)?;
                let clock = self.clock_for(node_type)?;
                sample_ids(n, stream)
                    .into_iter()
                    .map(|id| {
                        // As-of exactly the row's own insert day: the
                        // lookup observes the node the moment it appears.
                        let ts = clock.insert_ts(id).map_err(temporal_err)?;
                        Ok(Candidate {
                            params: vec![
                                CuratedParam {
                                    name: "id".to_owned(),
                                    value: ParamValue::Id(id),
                                },
                                date_param("ts", ts),
                            ],
                            est: 1,
                        })
                    })
                    .collect()
            }
            TemplateKind::WindowExpand {
                edge,
                source,
                directed,
                ..
            } => {
                let n = self.node_count(source)?;
                let adj = self.source_adjacency(edge, *directed)?;
                let sample = self.edge_ts_sample(edge)?;
                if sample.is_empty() {
                    return Ok(Vec::new());
                }
                let clock = self.clock_for(edge)?;
                // Exact per-candidate count: incident edges whose insert
                // timestamp falls inside the drawn window.
                sample_ids(n, stream)
                    .into_iter()
                    .enumerate()
                    .map(|(i, id)| {
                        let (from, to) = draw_window(&sample, stream, i as u64);
                        let mut est = 0u64;
                        for &(_, row) in &adj[id as usize] {
                            let ts = clock.insert_ts(row).map_err(temporal_err)?;
                            if (from..=to).contains(&ts) {
                                est += 1;
                            }
                        }
                        Ok(Candidate {
                            params: vec![
                                CuratedParam {
                                    name: "id".to_owned(),
                                    value: ParamValue::Id(id),
                                },
                                date_param("from", from),
                                date_param("to", to),
                            ],
                            est,
                        })
                    })
                    .collect()
            }
            TemplateKind::WindowAgg { edge, .. } => {
                let rows = self.edge_rows(edge)?;
                let sample = self.edge_ts_sample(edge)?;
                if sample.is_empty() {
                    return Ok(Vec::new());
                }
                let all_ts = self.edge_all_ts(edge)?;
                Ok((0..rows.min(MAX_CANDIDATES))
                    .map(|i| {
                        let (from, to) = draw_window(&sample, stream, i);
                        // Exact rows aggregated: edges arriving in window.
                        let est = (all_ts.partition_point(|&t| t <= to)
                            - all_ts.partition_point(|&t| t < from))
                            as u64;
                        Candidate {
                            params: vec![date_param("from", from), date_param("to", to)],
                            est,
                        }
                    })
                    .collect())
            }
        }
    }

    fn edge_rows(&self, edge: &str) -> Result<u64, WorkloadError> {
        Ok(self
            .graph
            .edges(edge)
            .ok_or_else(|| WorkloadError::MissingEdgeType(edge.to_owned()))?
            .len())
    }

    /// Sorted insert timestamps of up to [`TS_SAMPLE`] evenly spaced edge
    /// rows: a cheap empirical picture of the arrival distribution that
    /// window bounds and coverage estimates are drawn from.
    fn edge_ts_sample(&self, edge: &str) -> Result<Vec<i64>, WorkloadError> {
        let rows = self.edge_rows(edge)?;
        if rows == 0 {
            return Ok(Vec::new());
        }
        let clock = self.clock_for(edge)?;
        let take = rows.min(TS_SAMPLE);
        let mut out = Vec::with_capacity(take as usize);
        for i in 0..take {
            let ts = clock.insert_ts(i * rows / take).map_err(temporal_err)?;
            out.push(ts);
        }
        out.sort_unstable();
        Ok(out)
    }

    /// Sorted insert timestamps of **every** row of an edge type — the
    /// exact population window aggregates are counted against. Built once
    /// per edge (one clock replay over the table) and cached.
    fn edge_all_ts(&self, edge: &str) -> Result<std::rc::Rc<Vec<i64>>, WorkloadError> {
        if let Some(cached) = self.edge_ts_cache.borrow().get(edge) {
            return Ok(cached.clone());
        }
        let rows = self.edge_rows(edge)?;
        let clock = self.clock_for(edge)?;
        let mut out = Vec::with_capacity(rows as usize);
        for row in 0..rows {
            out.push(clock.insert_ts(row).map_err(temporal_err)?);
        }
        out.sort_unstable();
        let out = std::rc::Rc::new(out);
        self.edge_ts_cache
            .borrow_mut()
            .insert(edge.to_owned(), out.clone());
        Ok(out)
    }
}

/// Draw an inclusive `[from, to]` window over the sampled timestamps for
/// candidate `i`.
fn draw_window(sample: &[i64], stream: &TableStream, i: u64) -> (i64, i64) {
    let len = sample.len() as u64;
    let a = (stream.value(WINDOW_DRAW_BASE + 2 * i) % len) as usize;
    let b = (stream.value(WINDOW_DRAW_BASE + 2 * i + 1) % len) as usize;
    let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
    (sample[lo], sample[hi])
}

/// Up to [`MAX_CANDIDATES`] distinct ids in `0..n`, deterministic in the
/// stream (and independent of visit order).
fn sample_ids(n: u64, stream: &TableStream) -> Vec<u64> {
    if n == 0 {
        return Vec::new();
    }
    let want = n.min(MAX_CANDIDATES) as usize;
    if n <= MAX_CANDIDATES {
        return (0..n).collect();
    }
    let mut seen = std::collections::BTreeSet::new();
    let mut out = Vec::with_capacity(want);
    let mut i = 0u64;
    while out.len() < want && i < 16 * MAX_CANDIDATES {
        let id = stream.value(i) % n;
        if seen.insert(id) {
            out.push(id);
        }
        i += 1;
    }
    out
}

/// Up to [`MAX_CANDIDATES`] distinct indices into a candidate list of
/// `len` items — the value-pool analogue of [`sample_ids`], so
/// high-cardinality properties (uuid-like text, continuous doubles) don't
/// force cloning and sorting millions of values per template.
fn sampled_indices(len: usize, stream: &TableStream) -> Vec<usize> {
    sample_ids(len as u64, stream)
        .into_iter()
        .map(|i| i as usize)
        .collect()
}

fn id_candidates_by_degree(n: u64, degrees: &[u32], stream: &TableStream) -> Vec<Candidate> {
    sample_ids(n, stream)
        .into_iter()
        .map(|id| Candidate::id(id, u64::from(degrees[id as usize])))
        .collect()
}

/// Sort candidates by estimate, split into point/medium/scan terciles,
/// and draw `count` bindings from the tercile matching `class`.
fn select(
    mut candidates: Vec<Candidate>,
    class: SelectivityClass,
    count: usize,
    stream: &TableStream,
) -> Vec<Binding> {
    if candidates.is_empty() || count == 0 {
        return Vec::new();
    }
    candidates.sort_by(|a, b| {
        a.est
            .cmp(&b.est)
            .then_with(|| a.render_key().cmp(&b.render_key()))
    });
    let len = candidates.len();
    let (lo, hi) = match class {
        SelectivityClass::Point => (0, len.div_ceil(3)),
        SelectivityClass::Medium => (len / 3, (2 * len).div_ceil(3)),
        SelectivityClass::Scan => (2 * len / 3, len),
    };
    let bin = &candidates[lo..hi.max(lo + 1).min(len)];
    let band = (bin[0].est, bin[bin.len() - 1].est);
    // A stream index far past the id-sampling range decorrelates the
    // starting offset from the candidate draws.
    let offset = stream.value(u64::MAX / 2) as usize % bin.len();
    (0..count)
        .map(|i| {
            let c = &bin[(offset + i) % bin.len()];
            Binding {
                params: c.params.clone(),
                expected_rows: c.est,
                band,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_tables::{EdgeTable, PropertyTable, ValueType};

    fn graph() -> PropertyGraph {
        let mut g = PropertyGraph::new();
        g.add_node_type("Person", 6);
        g.insert_node_property(
            "Person",
            "country",
            PropertyTable::from_values(
                "Person.country",
                ValueType::Text,
                ["ES", "ES", "ES", "FR", "FR", "DE"].map(Value::from),
            )
            .unwrap(),
        );
        // Degrees (directed out): 0 -> 3 edges, 1 -> 2, 2 -> 1, rest 0.
        g.insert_edge_table(
            "knows",
            "Person",
            "Person",
            EdgeTable::from_pairs(
                "knows",
                [(0u64, 1u64), (0, 2), (0, 3), (1, 2), (1, 4), (2, 5)],
            ),
        );
        g
    }

    fn template(kind: TemplateKind) -> QueryTemplate {
        QueryTemplate {
            id: format!("{}:test", kind.keyword()),
            selectivity: kind.selectivity(),
            kind,
        }
    }

    #[test]
    fn point_lookup_bindings_are_single_row() {
        let g = graph();
        let c = Curator::new(&g, 42);
        let t = template(TemplateKind::PointLookup {
            node_type: "Person".into(),
        });
        let bindings = c.bindings(&t, 4).unwrap();
        assert_eq!(bindings.len(), 4);
        for b in &bindings {
            assert_eq!(b.expected_rows, 1);
            assert!(matches!(b.params[0].value, ParamValue::Id(id) if id < 6));
        }
    }

    #[test]
    fn scan_class_picks_frequent_values() {
        let g = graph();
        let c = Curator::new(&g, 42);
        let mut t = template(TemplateKind::PropertyScan {
            node_type: "Person".into(),
            property: "country".into(),
        });
        t.selectivity = SelectivityClass::Scan;
        let bindings = c.bindings(&t, 3).unwrap();
        for b in &bindings {
            // The most frequent value is ES (3 of 6 rows).
            assert_eq!(
                b.params[0].value,
                ParamValue::Value(Value::Text("ES".into()))
            );
            assert_eq!(b.expected_rows, 3);
        }
    }

    #[test]
    fn point_class_picks_rare_values() {
        let g = graph();
        let c = Curator::new(&g, 42);
        let mut t = template(TemplateKind::PropertyScan {
            node_type: "Person".into(),
            property: "country".into(),
        });
        t.selectivity = SelectivityClass::Point;
        let bindings = c.bindings(&t, 2).unwrap();
        for b in &bindings {
            assert_eq!(
                b.params[0].value,
                ParamValue::Value(Value::Text("DE".into()))
            );
            assert_eq!(b.expected_rows, 1);
        }
    }

    #[test]
    fn expansion_estimates_use_degrees() {
        let g = graph();
        let c = Curator::new(&g, 7);
        let mut t = template(TemplateKind::Expand1 {
            edge: "knows".into(),
            source: "Person".into(),
            target: "Person".into(),
            directed: true,
        });
        t.selectivity = SelectivityClass::Scan;
        let bindings = c.bindings(&t, 1).unwrap();
        // The scan tercile of out-degrees {0,0,0,1,2,3} holds the hubs.
        assert!(bindings[0].expected_rows >= 2);
    }

    #[test]
    fn bindings_are_seed_deterministic() {
        let g = graph();
        let t = template(TemplateKind::Expand1 {
            edge: "knows".into(),
            source: "Person".into(),
            target: "Person".into(),
            directed: false,
        });
        let a = Curator::new(&g, 1).bindings(&t, 5).unwrap();
        let b = Curator::new(&g, 1).bindings(&t, 5).unwrap();
        assert_eq!(a, b);
        let c = Curator::new(&g, 2).bindings(&t, 5).unwrap();
        assert!(!c.is_empty());
    }

    #[test]
    fn missing_tables_are_reported() {
        let g = graph();
        let c = Curator::new(&g, 1);
        let t = template(TemplateKind::PointLookup {
            node_type: "Ghost".into(),
        });
        assert!(matches!(
            c.bindings(&t, 1),
            Err(WorkloadError::MissingNodeType(_))
        ));
        let t = template(TemplateKind::PropertyScan {
            node_type: "Person".into(),
            property: "ghost".into(),
        });
        assert!(matches!(
            c.bindings(&t, 1),
            Err(WorkloadError::MissingProperty(..))
        ));
    }

    #[test]
    fn undirected_cross_type_edge_does_not_mix_id_spaces() {
        // 3 People, 50 Reviews: head ids exceed the Person id space, so
        // a full-degree count over n_source would index out of bounds.
        let mut g = PropertyGraph::new();
        g.add_node_type("Person", 3);
        g.add_node_type("Review", 50);
        g.insert_edge_table(
            "writes",
            "Person",
            "Review",
            EdgeTable::from_pairs("writes", (0..50u64).map(|r| (r % 3, r))),
        );
        let c = Curator::new(&g, 5);
        let t = template(TemplateKind::Expand1 {
            edge: "writes".into(),
            source: "Person".into(),
            target: "Review".into(),
            directed: false, // DSL `--` between two different types
        });
        let bindings = c.bindings(&t, 3).unwrap();
        assert_eq!(bindings.len(), 3);
        for b in &bindings {
            // Out-degrees are 17 or 16; a mixed-space count would differ.
            assert!((16..=17).contains(&b.expected_rows), "{b:?}");
        }
    }

    fn temporal_schema() -> Schema {
        datasynth_schema::parse_schema(
            r#"graph g {
                node Person [count = 6] {
                    country: text = one_of("ES", "FR", "DE");
                    temporal { arrival = date_between("2010-01-01", "2011-01-01"); }
                }
                edge knows: Person -> Person {
                    structure = erdos_renyi(p = 0.2);
                    temporal {
                        arrival = date_between("2012-01-01", "2013-01-01");
                        lifetime = uniform(10, 100);
                    }
                }
            }"#,
        )
        .unwrap()
    }

    #[test]
    fn as_of_params_replay_the_generation_clock() {
        let g = graph();
        let schema = temporal_schema();
        let c = Curator::new(&g, 42).with_schema(&schema);
        let t = template(TemplateKind::AsOfLookup {
            node_type: "Person".into(),
        });
        let clock =
            TypeClock::new(42, "Person", schema.nodes[0].temporal.as_ref().unwrap()).unwrap();
        let bindings = c.bindings(&t, 6).unwrap();
        assert_eq!(bindings.len(), 6);
        for b in &bindings {
            let ParamValue::Id(id) = b.params[0].value else {
                panic!("first param must be the node id: {b:?}");
            };
            assert_eq!(b.params[1].name, "ts");
            assert_eq!(
                b.params[1].value,
                ParamValue::Value(Value::Date(clock.insert_ts(id).unwrap())),
                "as-of bound must be the row's own arrival"
            );
            assert_eq!(b.expected_rows, 1);
        }
    }

    #[test]
    fn window_params_stay_inside_the_generated_range() {
        let g = graph();
        let schema = temporal_schema();
        let c = Curator::new(&g, 42).with_schema(&schema);
        let clock =
            TypeClock::new(42, "knows", schema.edges[0].temporal.as_ref().unwrap()).unwrap();
        // The generated edge timestamps the windows must bracket.
        let all_ts: Vec<i64> = (0..6).map(|r| clock.insert_ts(r).unwrap()).collect();
        let (min_ts, max_ts) = (*all_ts.iter().min().unwrap(), *all_ts.iter().max().unwrap());
        for kind in [
            TemplateKind::WindowExpand {
                edge: "knows".into(),
                source: "Person".into(),
                target: "Person".into(),
                directed: true,
            },
            TemplateKind::WindowAgg {
                edge: "knows".into(),
                source: "Person".into(),
                target: "Person".into(),
                directed: true,
            },
        ] {
            let t = template(kind);
            let bindings = c.bindings(&t, 5).unwrap();
            assert_eq!(bindings.len(), 5, "{}", t.id);
            for b in &bindings {
                let from = param_date(b, "from");
                let to = param_date(b, "to");
                assert!(from <= to, "inverted window in {b:?}");
                assert!(
                    from >= min_ts && to <= max_ts,
                    "window [{from}, {to}] escapes generated range [{min_ts}, {max_ts}]"
                );
            }
        }
    }

    fn param_date(b: &Binding, name: &str) -> i64 {
        match b.params.iter().find(|p| p.name == name) {
            Some(CuratedParam {
                value: ParamValue::Value(Value::Date(d)),
                ..
            }) => *d,
            other => panic!("expected date param {name:?}, got {other:?}"),
        }
    }

    #[test]
    fn temporal_templates_demand_schema_and_annotations() {
        let g = graph();
        let t = template(TemplateKind::AsOfLookup {
            node_type: "Person".into(),
        });
        // No schema attached at all.
        let err = Curator::new(&g, 42).bindings(&t, 1).unwrap_err();
        assert!(matches!(err, WorkloadError::Temporal(_)), "{err}");
        assert!(err.to_string().contains("with_schema"), "{err}");
        // Schema attached, but the type lacks a temporal annotation.
        let bare = datasynth_schema::parse_schema(
            r#"graph g {
                node Person [count = 6] { country: text = one_of("ES", "FR"); }
            }"#,
        )
        .unwrap();
        let err = Curator::new(&g, 42)
            .with_schema(&bare)
            .bindings(&t, 1)
            .unwrap_err();
        assert!(matches!(err, WorkloadError::Temporal(_)), "{err}");
        assert!(err.to_string().contains("temporal annotation"), "{err}");
    }

    /// The estimates the bands are built from are exact result counts —
    /// hand-checked here on the 6-node fixture — because the bench
    /// harness asserts executed row counts against these very numbers.
    #[test]
    fn multi_hop_and_aggregate_estimates_are_exact() {
        let g = graph();
        let c = Curator::new(&g, 42);
        let stream = TableStream::derive(42, "test");
        let by_key = |t: &QueryTemplate| -> std::collections::BTreeMap<String, u64> {
            c.candidates(t, &stream)
                .unwrap()
                .iter()
                .map(|c| (c.render_key(), c.est))
                .collect()
        };

        // Directed 2-hop from 0: {1,2,3} -> {2,4} u {5} u {} = 3 distinct.
        let est = by_key(&template(TemplateKind::Expand2 {
            edge: "knows".into(),
            node_type: "Person".into(),
            directed: true,
        }));
        assert_eq!(est["0"], 3);
        // Undirected 2-hop from 0 excludes the start: {1,2,4,5}.
        let est = by_key(&template(TemplateKind::Expand2 {
            edge: "knows".into(),
            node_type: "Person".into(),
            directed: false,
        }));
        assert_eq!(est["0"], 4);

        // Paths 0 -> {1,2,3} -> *: out-degrees 2 + 1 + 0 = 3 rows.
        let est = by_key(&template(TemplateKind::Path2 {
            first_edge: "knows".into(),
            second_edge: "knows".into(),
            start: "Person".into(),
            mid: "Person".into(),
            end: "Person".into(),
            first_directed: true,
            second_directed: true,
        }));
        assert_eq!(est["0"], 3);

        // Community ES = rows {0,1,2}, summed out-degrees 3 + 2 + 1 = 6.
        let est = by_key(&template(TemplateKind::CommunityAgg {
            edge: "knows".into(),
            node_type: "Person".into(),
            property: "country".into(),
            directed: true,
        }));
        assert_eq!(est["ES"], 6);
        assert_eq!(est["DE"], 0);
    }

    #[test]
    fn band_brackets_every_estimate() {
        let g = graph();
        let c = Curator::new(&g, 3);
        let t = template(TemplateKind::Expand1 {
            edge: "knows".into(),
            source: "Person".into(),
            target: "Person".into(),
            directed: true,
        });
        for b in c.bindings(&t, 8).unwrap() {
            assert!(b.band.0 <= b.expected_rows && b.expected_rows <= b.band.1);
        }
    }
}
