//! Schema-driven query-workload generation.
//!
//! A property graph generator is only a *benchmark* generator when the
//! graphs come with something to run against them (gMark derives query
//! workloads from the same schema that shapes the graph; SP²Bench ships
//! parameterized query mixes with curated bindings). This crate is that
//! missing half for DataSynth:
//!
//! 1. **Templates** ([`derive_templates`]) — walk the schema's node and
//!    edge types and derive pattern templates: point lookups, 1-hop and
//!    2-hop neighborhood expansions, property-filtered scans, two-edge
//!    path queries, and aggregation over structure-correlated communities.
//!    Temporally annotated types additionally derive as-of point lookups
//!    and time-windowed expansion/aggregation templates whose timestamp
//!    parameters replay the op-log clocks (`datasynth-temporal`).
//!    Each template carries a selectivity class (point / medium / scan).
//! 2. **Parameter curation** ([`Curator`]) — sample real node ids and
//!    property values from the generated tables, estimate each
//!    candidate's result size from `crates/analysis` degree statistics,
//!    and bin candidates so instances land in their template's
//!    selectivity class. All sampling runs on seeded `crates/prng`
//!    streams: the same master seed always yields the same workload.
//! 3. **Rendering** ([`render_cypher`], [`render_gremlin`]) — serialize
//!    every instantiated query to Cypher and Gremlin text, plus a
//!    `workload.json` manifest (template id, params, expected-cardinality
//!    band) via [`Workload::write_to`].
//!
//! ```no_run
//! use datasynth_schema::parse_schema;
//! use datasynth_workload::WorkloadGenerator;
//! # let schema = parse_schema("graph g { node A [count = 10] { x: long = uniform(0, 9); } }").unwrap();
//! # let graph = datasynth_tables::PropertyGraph::new();
//! let workload = WorkloadGenerator::new(&schema, &graph)
//!     .with_seed(42)
//!     .generate(100)
//!     .unwrap();
//! workload.write_to(std::path::Path::new("queries")).unwrap();
//! ```

mod curate;
mod error;
mod manifest;
mod mix;
mod plan;
mod render;
mod sink;
mod template;

pub use curate::{Binding, CuratedParam, Curator, ParamValue};
pub use error::WorkloadError;
pub use manifest::{QueryInstance, Workload};
pub use mix::QueryMix;
pub use plan::QueryPlan;
pub use render::{render_cypher, render_gremlin};
pub use sink::WorkloadSink;
pub use template::{derive_templates, QueryTemplate, SelectivityClass, TemplateKind};

use datasynth_schema::Schema;
use datasynth_tables::PropertyGraph;

/// End-to-end workload generation: derive templates from the schema,
/// apportion a query budget over them by mix, curate parameters from the
/// graph, and render both dialects.
pub struct WorkloadGenerator<'a> {
    schema: &'a Schema,
    graph: &'a PropertyGraph,
    seed: u64,
    mix: QueryMix,
}

impl<'a> WorkloadGenerator<'a> {
    /// Generator over one schema + generated graph pair.
    pub fn new(schema: &'a Schema, graph: &'a PropertyGraph) -> Self {
        Self {
            schema,
            graph,
            seed: 42,
            mix: QueryMix::uniform(),
        }
    }

    /// Set the master seed (default 42). Use the same seed that generated
    /// the graph to make graph + workload one reproducible artifact.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the query mix (default: uniform over derived kinds).
    pub fn with_mix(mut self, mix: QueryMix) -> Self {
        self.mix = mix;
        self
    }

    /// Generate `count` queries. Templates whose candidate pool is empty
    /// (e.g. a node type that resolved to zero instances) forfeit their
    /// quota, which is redistributed over the templates that did produce
    /// bindings — the workload only falls short of `count` when *no*
    /// template has candidates.
    pub fn generate(&self, count: usize) -> Result<Workload, WorkloadError> {
        let templates = derive_templates(self.schema);
        if templates.is_empty() {
            return Err(WorkloadError::NoTemplates);
        }
        let quotas = self.mix.apportion(&templates, count)?;
        let curator = Curator::new(self.graph, self.seed).with_schema(self.schema);
        let mut per_template: Vec<Vec<crate::curate::Binding>> = Vec::new();
        for (template, quota) in templates.iter().zip(&quotas) {
            per_template.push(if *quota == 0 {
                Vec::new()
            } else {
                curator.bindings(template, *quota)?
            });
        }

        // Redistribute quota forfeited by empty candidate pools. Backfill
        // targets are templates the mix does not exclude whose pool is
        // non-empty — including ones the rounding gave zero quota, which
        // must be probed.
        let produced: usize = per_template.iter().map(Vec::len).sum();
        if produced < count {
            let mut eligible: Vec<usize> = Vec::new();
            for (i, template) in templates.iter().enumerate() {
                if self.mix.weight(template.kind.keyword()) <= 0.0 {
                    continue;
                }
                if !per_template[i].is_empty() || !curator.bindings(template, 1)?.is_empty() {
                    eligible.push(i);
                }
            }
            if !eligible.is_empty() {
                // Re-apportion the shortfall by the same mix weights so the
                // delivered kind ratios track the request as closely as the
                // surviving templates allow.
                let eligible_templates: Vec<QueryTemplate> =
                    eligible.iter().map(|&i| templates[i].clone()).collect();
                let extra = self
                    .mix
                    .apportion_lenient(&eligible_templates, count - produced)?;
                for (&i, &add) in eligible.iter().zip(&extra) {
                    if add == 0 {
                        continue;
                    }
                    let have = per_template[i].len();
                    // bindings(k) is a prefix of bindings(k + n): asking
                    // for more and keeping the tail continues the draw.
                    let more = curator.bindings(&templates[i], have + add)?;
                    per_template[i].extend(more.into_iter().skip(have));
                }
            }
        }

        let mut queries = Vec::with_capacity(count);
        for (template, bindings) in templates.iter().zip(per_template) {
            for binding in bindings {
                let id = format!("q{:04}", queries.len() + 1);
                // The plan is the primary artifact; both text dialects are
                // rendered *from* it (as the engine executes from it).
                let plan = QueryPlan {
                    template_id: template.id.clone(),
                    kind: template.kind.clone(),
                    binding,
                };
                queries.push(QueryInstance {
                    id,
                    cypher: render_cypher(&plan),
                    gremlin: render_gremlin(&plan),
                    plan,
                });
            }
        }
        Ok(Workload {
            schema_name: self.schema.name.clone(),
            seed: self.seed,
            templates,
            queries,
        })
    }
}
