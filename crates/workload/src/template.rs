//! Query-template derivation: walk the schema's node and edge types and
//! emit the pattern templates the benchmark workload instantiates.

use datasynth_schema::Schema;

use std::fmt;

/// How many rows a query instance is expected to touch/return.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SelectivityClass {
    /// A handful of rows (key lookups, low-degree expansions).
    Point,
    /// A bounded intermediate result (typical neighborhoods, mid-frequency
    /// predicates).
    Medium,
    /// A large fraction of a type (hubs, frequent values, aggregations).
    Scan,
}

impl SelectivityClass {
    /// Manifest keyword.
    pub fn keyword(self) -> &'static str {
        match self {
            SelectivityClass::Point => "point",
            SelectivityClass::Medium => "medium",
            SelectivityClass::Scan => "scan",
        }
    }
}

impl fmt::Display for SelectivityClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.keyword())
    }
}

/// The shape of one derived query template.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TemplateKind {
    /// Fetch one node of `node_type` by id.
    PointLookup {
        /// Node type to look up.
        node_type: String,
    },
    /// 1-hop neighborhood of a bound source node along `edge`.
    Expand1 {
        /// Edge type name.
        edge: String,
        /// Source node type.
        source: String,
        /// Target node type.
        target: String,
        /// Whether the edge is directed (`->` in the DSL).
        directed: bool,
    },
    /// 2-hop neighborhood along a same-type `edge` (source == target).
    Expand2 {
        /// Edge type name.
        edge: String,
        /// The (single) endpoint node type.
        node_type: String,
        /// Whether the edge is directed.
        directed: bool,
    },
    /// Count nodes of `node_type` filtered by equality on `property`.
    PropertyScan {
        /// Node type to scan.
        node_type: String,
        /// Property filtered on.
        property: String,
    },
    /// Two-edge path from a bound start node across distinct edge types.
    Path2 {
        /// First edge type.
        first_edge: String,
        /// Second edge type.
        second_edge: String,
        /// Start node type (source of `first_edge`).
        start: String,
        /// Middle node type (target of `first_edge` = source of
        /// `second_edge`).
        mid: String,
        /// End node type (target of `second_edge`).
        end: String,
        /// Whether `first_edge` is directed.
        first_directed: bool,
        /// Whether `second_edge` is directed.
        second_directed: bool,
    },
    /// Group-by aggregation over the neighborhood of one "community"
    /// (all nodes sharing the structure-correlated property value).
    CommunityAgg {
        /// Edge type whose correlation defines the communities.
        edge: String,
        /// The (single) endpoint node type.
        node_type: String,
        /// The structure-correlated property.
        property: String,
        /// Whether the edge is directed.
        directed: bool,
    },
    /// Fetch one node by id *as of* a point in time: returns it only if
    /// its insert timestamp is at or before the bound `ts`. Derived for
    /// temporally-annotated node types; `ts` is curated as the sampled
    /// node's own arrival, so the lookup always observes a live row.
    AsOfLookup {
        /// Node type to look up.
        node_type: String,
    },
    /// 1-hop expansion restricted to edges whose insert timestamp falls
    /// inside a curated `[from, to]` window. Derived for
    /// temporally-annotated edge types.
    WindowExpand {
        /// Edge type name.
        edge: String,
        /// Source node type.
        source: String,
        /// Target node type.
        target: String,
        /// Whether the edge is directed.
        directed: bool,
    },
    /// Per-day count of edges inserted inside a curated `[from, to]`
    /// window — the temporal analogue of a scan. Derived for
    /// temporally-annotated edge types.
    WindowAgg {
        /// Edge type name.
        edge: String,
        /// Source node type.
        source: String,
        /// Target node type.
        target: String,
        /// Whether the edge is directed.
        directed: bool,
    },
}

impl TemplateKind {
    /// Manifest keyword for the kind (also the `--query-mix` key).
    pub fn keyword(&self) -> &'static str {
        match self {
            TemplateKind::PointLookup { .. } => "point_lookup",
            TemplateKind::Expand1 { .. } => "expand_1hop",
            TemplateKind::Expand2 { .. } => "expand_2hop",
            TemplateKind::PropertyScan { .. } => "property_scan",
            TemplateKind::Path2 { .. } => "path_2",
            TemplateKind::CommunityAgg { .. } => "community_agg",
            TemplateKind::AsOfLookup { .. } => "as_of_lookup",
            TemplateKind::WindowExpand { .. } => "expand_window",
            TemplateKind::WindowAgg { .. } => "window_agg",
        }
    }

    /// The selectivity class instances of this kind are curated toward.
    pub fn selectivity(&self) -> SelectivityClass {
        match self {
            TemplateKind::PointLookup { .. } => SelectivityClass::Point,
            TemplateKind::Expand1 { .. } => SelectivityClass::Medium,
            TemplateKind::Expand2 { .. } => SelectivityClass::Scan,
            TemplateKind::PropertyScan { .. } => SelectivityClass::Medium,
            TemplateKind::Path2 { .. } => SelectivityClass::Medium,
            TemplateKind::CommunityAgg { .. } => SelectivityClass::Scan,
            TemplateKind::AsOfLookup { .. } => SelectivityClass::Point,
            TemplateKind::WindowExpand { .. } => SelectivityClass::Medium,
            TemplateKind::WindowAgg { .. } => SelectivityClass::Scan,
        }
    }
}

/// One derived template: a stable id, the pattern shape, and the
/// selectivity class its parameters are curated toward.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryTemplate {
    /// Stable identifier, e.g. `expand_1hop:knows`.
    pub id: String,
    /// Pattern shape.
    pub kind: TemplateKind,
    /// Curation target.
    pub selectivity: SelectivityClass,
}

impl QueryTemplate {
    fn new(kind: TemplateKind, discriminator: &str) -> Self {
        Self {
            id: format!("{}:{}", kind.keyword(), discriminator),
            selectivity: kind.selectivity(),
            kind,
        }
    }
}

/// Derive the workload templates implied by a schema, in deterministic
/// (declaration) order:
///
/// * a point lookup per node type,
/// * a 1-hop expansion per edge type,
/// * a 2-hop expansion per same-type edge type,
/// * a property-filtered scan per `(node type, property)`,
/// * a two-edge path per composable ordered pair of distinct edge types,
/// * a community aggregation per structure-correlated edge type,
/// * and, for temporally-annotated types, an as-of point lookup per node
///   type plus a time-windowed expansion and a window aggregation per
///   edge type.
pub fn derive_templates(schema: &Schema) -> Vec<QueryTemplate> {
    let mut out = Vec::new();

    for node in &schema.nodes {
        out.push(QueryTemplate::new(
            TemplateKind::PointLookup {
                node_type: node.name.clone(),
            },
            &node.name,
        ));
        if node.temporal.is_some() {
            out.push(QueryTemplate::new(
                TemplateKind::AsOfLookup {
                    node_type: node.name.clone(),
                },
                &node.name,
            ));
        }
        for prop in &node.properties {
            out.push(QueryTemplate::new(
                TemplateKind::PropertyScan {
                    node_type: node.name.clone(),
                    property: prop.name.clone(),
                },
                &format!("{}.{}", node.name, prop.name),
            ));
        }
    }

    for edge in &schema.edges {
        out.push(QueryTemplate::new(
            TemplateKind::Expand1 {
                edge: edge.name.clone(),
                source: edge.source.clone(),
                target: edge.target.clone(),
                directed: edge.directed,
            },
            &edge.name,
        ));
        if edge.source == edge.target {
            out.push(QueryTemplate::new(
                TemplateKind::Expand2 {
                    edge: edge.name.clone(),
                    node_type: edge.source.clone(),
                    directed: edge.directed,
                },
                &edge.name,
            ));
        }
        if edge.temporal.is_some() {
            out.push(QueryTemplate::new(
                TemplateKind::WindowExpand {
                    edge: edge.name.clone(),
                    source: edge.source.clone(),
                    target: edge.target.clone(),
                    directed: edge.directed,
                },
                &edge.name,
            ));
            out.push(QueryTemplate::new(
                TemplateKind::WindowAgg {
                    edge: edge.name.clone(),
                    source: edge.source.clone(),
                    target: edge.target.clone(),
                    directed: edge.directed,
                },
                &edge.name,
            ));
        }
        if let Some(corr) = &edge.correlation {
            // Correlations are only legal on same-type edges; the property
            // lives on the (source) node type.
            out.push(QueryTemplate::new(
                TemplateKind::CommunityAgg {
                    edge: edge.name.clone(),
                    node_type: edge.source.clone(),
                    property: corr.property.clone(),
                    directed: edge.directed,
                },
                &edge.name,
            ));
        }
    }

    for first in &schema.edges {
        for second in &schema.edges {
            if first.name == second.name || first.target != second.source {
                continue;
            }
            out.push(QueryTemplate::new(
                TemplateKind::Path2 {
                    first_edge: first.name.clone(),
                    second_edge: second.name.clone(),
                    start: first.source.clone(),
                    mid: first.target.clone(),
                    end: second.target.clone(),
                    first_directed: first.directed,
                    second_directed: second.directed,
                },
                &format!("{}-{}", first.name, second.name),
            ));
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;

    const DSL: &str = r#"
graph social {
  node Person [count = 100] {
    country: text = dictionary("countries");
    age: long = uniform(18, 80);
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person {
    structure = lfr(avg_degree = 8, max_degree = 20);
    correlate country with homophily(0.8);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.4);
  }
}
"#;

    #[test]
    fn derives_all_six_kinds() {
        let schema = parse_schema(DSL).unwrap();
        let templates = derive_templates(&schema);
        let kinds: std::collections::BTreeSet<&str> =
            templates.iter().map(|t| t.kind.keyword()).collect();
        assert_eq!(
            kinds.into_iter().collect::<Vec<_>>(),
            vec![
                "community_agg",
                "expand_1hop",
                "expand_2hop",
                "path_2",
                "point_lookup",
                "property_scan",
            ]
        );
    }

    #[test]
    fn template_ids_are_unique_and_stable() {
        let schema = parse_schema(DSL).unwrap();
        let a = derive_templates(&schema);
        let b = derive_templates(&schema);
        assert_eq!(a, b, "derivation must be deterministic");
        let ids: std::collections::BTreeSet<&str> = a.iter().map(|t| t.id.as_str()).collect();
        assert_eq!(ids.len(), a.len(), "duplicate template id");
    }

    #[test]
    fn expand2_only_for_same_type_edges() {
        let schema = parse_schema(DSL).unwrap();
        let templates = derive_templates(&schema);
        let two_hop: Vec<&QueryTemplate> = templates
            .iter()
            .filter(|t| matches!(t.kind, TemplateKind::Expand2 { .. }))
            .collect();
        assert_eq!(two_hop.len(), 1);
        assert_eq!(two_hop[0].id, "expand_2hop:knows");
    }

    #[test]
    fn path_composes_heterogeneous_edges() {
        let schema = parse_schema(DSL).unwrap();
        let templates = derive_templates(&schema);
        assert!(templates.iter().any(|t| t.id == "path_2:knows-creates"));
        // creates: Person -> Message cannot be followed by knows.
        assert!(!templates.iter().any(|t| t.id == "path_2:creates-knows"));
    }

    #[test]
    fn temporal_templates_require_temporal_annotations() {
        // The base DSL has none: no temporal kinds may appear.
        let schema = parse_schema(DSL).unwrap();
        assert!(!derive_templates(&schema).iter().any(|t| matches!(
            t.kind,
            TemplateKind::AsOfLookup { .. }
                | TemplateKind::WindowExpand { .. }
                | TemplateKind::WindowAgg { .. }
        )));
        let temporal = parse_schema(
            r#"graph g {
                node Person [count = 10] {
                    age: long = uniform(1, 9);
                    temporal { arrival = date_between("2010-01-01", "2011-01-01"); }
                }
                edge knows: Person -- Person {
                    structure = erdos_renyi(p = 0.2);
                    temporal {
                        arrival = date_between("2010-01-01", "2011-01-01");
                        lifetime = uniform(10, 100);
                    }
                }
            }"#,
        )
        .unwrap();
        let ids: Vec<String> = derive_templates(&temporal)
            .iter()
            .map(|t| t.id.clone())
            .collect();
        assert!(ids.contains(&"as_of_lookup:Person".to_owned()), "{ids:?}");
        assert!(ids.contains(&"expand_window:knows".to_owned()), "{ids:?}");
        assert!(ids.contains(&"window_agg:knows".to_owned()), "{ids:?}");
    }

    #[test]
    fn selectivity_classes_follow_kind() {
        let schema = parse_schema(DSL).unwrap();
        for t in derive_templates(&schema) {
            assert_eq!(t.selectivity, t.kind.selectivity());
        }
    }
}
