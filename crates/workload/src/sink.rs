//! One-pass workload curation: a [`GraphSink`] that captures the tables
//! parameter curation samples from, then derives the workload when the
//! generation run finishes — no separate materialized-graph pass.

use datasynth_core::{GraphSink, SinkError, SinkManifest};
use datasynth_schema::Schema;
use datasynth_tables::{EdgeTable, PropertyGraph, PropertyTable};

use crate::{QueryMix, Workload, WorkloadGenerator};

/// Accumulates generation output and, at [`finish`](GraphSink::finish),
/// runs [`WorkloadGenerator`] over it. Pair it with export sinks in a
/// `MultiSink` so graph data and benchmark queries come out of a single
/// generation pass.
///
/// Curation samples node ids, property values and degree statistics, so
/// this sink retains node counts, property columns and edge tables until
/// the run ends (edge property columns are dropped on arrival — no
/// template parameterizes over them).
pub struct WorkloadSink<'a> {
    schema: &'a Schema,
    seed: u64,
    mix: QueryMix,
    count: usize,
    graph: PropertyGraph,
    workload: Option<Workload>,
}

impl<'a> WorkloadSink<'a> {
    /// A sink curating against `schema`, with seed 42, the uniform mix,
    /// and a 100-query budget.
    pub fn new(schema: &'a Schema) -> Self {
        Self {
            schema,
            seed: 42,
            mix: QueryMix::uniform(),
            count: 100,
            graph: PropertyGraph::new(),
            workload: None,
        }
    }

    /// Set the master seed — use the generation seed so graph + workload
    /// stay one reproducible artifact.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Set the query mix.
    pub fn with_mix(mut self, mix: QueryMix) -> Self {
        self.mix = mix;
        self
    }

    /// Set the number of queries to generate.
    pub fn with_count(mut self, count: usize) -> Self {
        self.count = count;
        self
    }

    /// The curated workload (available after the run).
    pub fn workload(&self) -> Option<&Workload> {
        self.workload.as_ref()
    }

    /// Take the curated workload out of the sink.
    pub fn take_workload(&mut self) -> Option<Workload> {
        self.workload.take()
    }
}

impl GraphSink for WorkloadSink<'_> {
    /// Parameter curation samples ids, values and degree statistics across
    /// the whole graph; curating from one shard's slice would skew every
    /// selectivity estimate, so a partitioned run is rejected up front.
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        if !manifest.shard.is_full() {
            return Err(SinkError::unsupported(format!(
                "workload curation requires the full graph, not shard {}; \
                 run unsharded (workloads are derived once, not per shard)",
                manifest.shard
            )));
        }
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        self.graph.add_node_type(node_type, count);
        Ok(())
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        self.graph.insert_node_property(node_type, property, table);
        Ok(())
    }

    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        self.graph
            .insert_edge_table(edge_type, source, target, table);
        Ok(())
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        let workload = WorkloadGenerator::new(self.schema, &self.graph)
            .with_seed(self.seed)
            .with_mix(self.mix.clone())
            .generate(self.count)
            .map_err(|e| SinkError::invalid(format!("workload curation: {e}")))?;
        self.workload = Some(workload);
        // The sampled tables have served their purpose; free them.
        self.graph = PropertyGraph::new();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;
    use datasynth_tables::{Value, ValueType};

    #[test]
    fn curates_a_workload_at_finish() {
        let schema = parse_schema(
            r#"graph g {
                node A [count = 8] { x: long = uniform(0, 9); }
                edge e: A -- A { structure = erdos_renyi(p = 0.3); }
            }"#,
        )
        .unwrap();
        let mut sink = WorkloadSink::new(&schema).with_seed(7).with_count(12);
        sink.node_count("A", 8).unwrap();
        sink.node_property(
            "A",
            "x",
            PropertyTable::from_values(
                "A.x",
                ValueType::Long,
                [3i64, 1, 4, 1, 5, 9, 2, 6].map(Value::from),
            )
            .unwrap(),
        )
        .unwrap();
        sink.edges(
            "e",
            "A",
            "A",
            EdgeTable::from_pairs("e", [(0u64, 1u64), (1, 2), (2, 3), (4, 5)]),
        )
        .unwrap();
        assert!(sink.workload().is_none(), "not curated before finish");
        sink.finish().unwrap();
        let wl = sink.take_workload().expect("curated at finish");
        assert_eq!(wl.seed, 7);
        assert!(!wl.queries.is_empty());
    }
}
