//! Workload-generation errors.

use std::fmt;

/// Anything that can go wrong deriving or curating a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WorkloadError {
    /// The graph lacks a node type a template references.
    MissingNodeType(String),
    /// The graph lacks an edge type a template references.
    MissingEdgeType(String),
    /// The graph lacks a property table a template references.
    MissingProperty(String, String),
    /// A malformed `--query-mix` specification.
    BadMix(String),
    /// A temporal template could not be curated (no schema attached to
    /// the curator, missing temporal annotation, or a clock failure).
    Temporal(String),
    /// The schema derives no templates (no node or edge types).
    NoTemplates,
}

impl fmt::Display for WorkloadError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadError::MissingNodeType(t) => {
                write!(f, "graph has no node type {t:?}")
            }
            WorkloadError::MissingEdgeType(e) => {
                write!(f, "graph has no edge type {e:?}")
            }
            WorkloadError::MissingProperty(t, p) => {
                write!(f, "graph has no property table {t}.{p}")
            }
            WorkloadError::BadMix(msg) => write!(f, "bad query mix: {msg}"),
            WorkloadError::Temporal(msg) => write!(f, "temporal curation: {msg}"),
            WorkloadError::NoTemplates => {
                write!(f, "schema derives no query templates")
            }
        }
    }
}

impl std::error::Error for WorkloadError {}
