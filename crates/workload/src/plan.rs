//! The structured, renderer-independent form of an instantiated query.
//!
//! A [`QueryPlan`] is what a query *is* — the template kind (pattern
//! shape) plus the curated parameter binding — divorced from any query
//! language. The Cypher and Gremlin renderers consume plans to produce
//! text; the embedded engine (`datasynth-engine`) consumes the very same
//! plans to *execute* the query, so text rendering and execution can
//! never drift apart.

use datasynth_tables::Value;

use crate::curate::{Binding, ParamValue};
use crate::template::TemplateKind;

/// One instantiated query in structured form: pattern + parameters.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryPlan {
    /// Id of the template this instantiates (`kind:discriminator`).
    pub template_id: String,
    /// The pattern shape, with all type/edge names resolved.
    pub kind: TemplateKind,
    /// The curated parameter binding (values + cardinality estimate).
    pub binding: Binding,
}

impl QueryPlan {
    /// Look up a parameter by name.
    pub fn param(&self, name: &str) -> Option<&ParamValue> {
        self.binding
            .params
            .iter()
            .find(|p| p.name == name)
            .map(|p| &p.value)
    }

    /// The `id` parameter as a node id, when present and id-typed.
    pub fn id_param(&self) -> Option<u64> {
        match self.param("id") {
            Some(ParamValue::Id(id)) => Some(*id),
            _ => None,
        }
    }

    /// The `value` parameter, when present and value-typed.
    pub fn value_param(&self) -> Option<&Value> {
        match self.param("value") {
            Some(ParamValue::Value(v)) => Some(v),
            _ => None,
        }
    }

    /// A named date parameter (`ts`, `from`, `to`) as days since epoch.
    pub fn date_param(&self, name: &str) -> Option<i64> {
        match self.param(name) {
            Some(ParamValue::Value(Value::Date(d))) => Some(*d),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curate::CuratedParam;

    fn plan() -> QueryPlan {
        QueryPlan {
            template_id: "as_of_lookup:Person".into(),
            kind: TemplateKind::AsOfLookup {
                node_type: "Person".into(),
            },
            binding: Binding {
                params: vec![
                    CuratedParam {
                        name: "id".into(),
                        value: ParamValue::Id(7),
                    },
                    CuratedParam {
                        name: "ts".into(),
                        value: ParamValue::Value(Value::Date(14610)),
                    },
                ],
                expected_rows: 1,
                band: (1, 1),
            },
        }
    }

    #[test]
    fn typed_param_accessors() {
        let p = plan();
        assert_eq!(p.id_param(), Some(7));
        assert_eq!(p.date_param("ts"), Some(14610));
        assert_eq!(p.date_param("from"), None);
        assert_eq!(p.value_param(), None);
        assert!(p.param("ghost").is_none());
    }
}
