//! Render instantiated query plans to Cypher and Gremlin text.
//!
//! Both renderers are *consumers* of the structured [`QueryPlan`] — the
//! same object the embedded engine (`datasynth-engine`) executes — so the
//! emitted text and the reference execution can never disagree about what
//! a query means. Parameters are inlined as literals (the manifest keeps
//! them separately for engines that prefer prepared statements). Node ids
//! are the *type-local* dense ids the exporters write into each type's
//! `id` column, so `id(n)`/`has('id', ...)` refer to that property after
//! import. Temporal templates filter on the pseudo-property `_ts`: the
//! insert timestamp the op log (`datasynth-temporal`) assigns each row,
//! which importers replaying the update stream are expected to stamp
//! onto the element.

use crate::curate::{Binding, ParamValue};
use crate::plan::QueryPlan;
use crate::template::TemplateKind;

/// Escape a single-quoted string literal (shared by both dialects).
fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('\'');
    for ch in s.chars() {
        match ch {
            '\'' => out.push_str("\\'"),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out.push('\'');
    out
}

fn literal(p: &ParamValue) -> String {
    if p.is_textual() {
        quote(&p.render())
    } else {
        p.render()
    }
}

fn param<'b>(binding: &'b Binding, name: &str) -> &'b ParamValue {
    &binding
        .params
        .iter()
        .find(|p| p.name == name)
        .unwrap_or_else(|| panic!("binding lacks parameter {name:?}"))
        .value
}

/// Cypher relationship arrow for an edge, by direction.
fn cy_rel(edge: &str, directed: bool, hops: u8) -> String {
    let var = if hops == 2 {
        format!("[:{edge}*2]")
    } else {
        format!("[:{edge}]")
    };
    if directed {
        format!("-{var}->")
    } else {
        format!("-{var}-")
    }
}

/// Gremlin traversal step for an edge, by direction.
fn gr_step(edge: &str, directed: bool) -> String {
    if directed {
        format!(".out({})", quote(edge))
    } else {
        format!(".both({})", quote(edge))
    }
}

/// Render one instantiated plan to Cypher.
pub fn render_cypher(plan: &QueryPlan) -> String {
    let binding = &plan.binding;
    match &plan.kind {
        TemplateKind::PointLookup { node_type } => {
            let id = literal(param(binding, "id"));
            format!("MATCH (n:{node_type}) WHERE n.id = {id} RETURN n;")
        }
        TemplateKind::Expand1 {
            edge,
            source,
            target,
            directed,
        } => {
            let id = literal(param(binding, "id"));
            let rel = cy_rel(edge, *directed, 1);
            format!("MATCH (n:{source}){rel}(m:{target}) WHERE n.id = {id} RETURN m;")
        }
        TemplateKind::Expand2 {
            edge,
            node_type,
            directed,
        } => {
            let id = literal(param(binding, "id"));
            let rel = cy_rel(edge, *directed, 2);
            format!(
                "MATCH (n:{node_type}){rel}(m:{node_type}) WHERE n.id = {id} \
                 RETURN DISTINCT m;"
            )
        }
        TemplateKind::PropertyScan {
            node_type,
            property,
        } => {
            let value = literal(param(binding, "value"));
            format!("MATCH (n:{node_type}) WHERE n.{property} = {value} RETURN count(n);")
        }
        TemplateKind::Path2 {
            first_edge,
            second_edge,
            start,
            mid,
            end,
            first_directed,
            second_directed,
        } => {
            let id = literal(param(binding, "id"));
            let r1 = cy_rel(first_edge, *first_directed, 1);
            let r2 = cy_rel(second_edge, *second_directed, 1);
            format!(
                "MATCH (a:{start}){r1}(b:{mid}){r2}(c:{end}) WHERE a.id = {id} \
                 RETURN c;"
            )
        }
        TemplateKind::CommunityAgg {
            edge,
            node_type,
            property,
            directed,
        } => {
            let value = literal(param(binding, "value"));
            let rel = cy_rel(edge, *directed, 1);
            format!(
                "MATCH (n:{node_type}){rel}(m:{node_type}) WHERE n.{property} = {value} \
                 RETURN m.{property} AS grp, count(*) AS cnt ORDER BY cnt DESC;"
            )
        }
        TemplateKind::AsOfLookup { node_type } => {
            let id = literal(param(binding, "id"));
            let ts = literal(param(binding, "ts"));
            format!(
                "MATCH (n:{node_type}) WHERE n.id = {id} AND n._ts <= {ts} \
                 RETURN n;"
            )
        }
        TemplateKind::WindowExpand {
            edge,
            source,
            target,
            directed,
        } => {
            let id = literal(param(binding, "id"));
            let from = literal(param(binding, "from"));
            let to = literal(param(binding, "to"));
            let arrow = if *directed { "->" } else { "-" };
            format!(
                "MATCH (n:{source})-[r:{edge}]{arrow}(m:{target}) WHERE n.id = {id} \
                 AND r._ts >= {from} AND r._ts <= {to} RETURN m;"
            )
        }
        TemplateKind::WindowAgg {
            edge,
            source,
            target,
            directed,
        } => {
            let from = literal(param(binding, "from"));
            let to = literal(param(binding, "to"));
            let arrow = if *directed { "->" } else { "-" };
            format!(
                "MATCH (:{source})-[r:{edge}]{arrow}(:{target}) \
                 WHERE r._ts >= {from} AND r._ts <= {to} \
                 RETURN r._ts AS day, count(*) AS cnt ORDER BY day;"
            )
        }
    }
}

/// Render one instantiated plan to Gremlin.
pub fn render_gremlin(plan: &QueryPlan) -> String {
    let binding = &plan.binding;
    match &plan.kind {
        TemplateKind::PointLookup { node_type } => {
            let id = literal(param(binding, "id"));
            format!("g.V().hasLabel({}).has('id', {id})", quote(node_type))
        }
        TemplateKind::Expand1 {
            edge,
            source,
            directed,
            ..
        } => {
            let id = literal(param(binding, "id"));
            format!(
                "g.V().hasLabel({}).has('id', {id}){}",
                quote(source),
                gr_step(edge, *directed)
            )
        }
        TemplateKind::Expand2 {
            edge,
            node_type,
            directed,
        } => {
            let id = literal(param(binding, "id"));
            let step = gr_step(edge, *directed);
            if *directed {
                // `.out().out()` cannot backtrack in a simple graph, and
                // Cypher's `[:e*2]->` does include the start vertex when
                // reciprocal edges exist — so no start-vertex filter here.
                format!(
                    "g.V().hasLabel({}).has('id', {id}){step}{step}.dedup()",
                    quote(node_type)
                )
            } else {
                // `where(neq('n'))` excludes the start vertex a
                // `both().both()` walk backtracks to, matching Cypher's
                // relationship-uniqueness semantics on simple graphs.
                format!(
                    "g.V().hasLabel({}).has('id', {id}).as('n'){step}{step}.where(neq('n')).dedup()",
                    quote(node_type)
                )
            }
        }
        TemplateKind::PropertyScan {
            node_type,
            property,
        } => {
            let value = literal(param(binding, "value"));
            format!(
                "g.V().hasLabel({}).has({}, {value}).count()",
                quote(node_type),
                quote(property)
            )
        }
        TemplateKind::Path2 {
            first_edge,
            second_edge,
            start,
            first_directed,
            second_directed,
            ..
        } => {
            let id = literal(param(binding, "id"));
            format!(
                "g.V().hasLabel({}).has('id', {id}){}{}",
                quote(start),
                gr_step(first_edge, *first_directed),
                gr_step(second_edge, *second_directed)
            )
        }
        TemplateKind::CommunityAgg {
            edge,
            node_type,
            property,
            directed,
        } => {
            let value = literal(param(binding, "value"));
            format!(
                "g.V().hasLabel({}).has({}, {value}){}.groupCount().by({})",
                quote(node_type),
                quote(property),
                gr_step(edge, *directed),
                quote(property)
            )
        }
        TemplateKind::AsOfLookup { node_type } => {
            let id = literal(param(binding, "id"));
            let ts = literal(param(binding, "ts"));
            format!(
                "g.V().hasLabel({}).has('id', {id}).has('_ts', lte({ts}))",
                quote(node_type)
            )
        }
        TemplateKind::WindowExpand {
            edge,
            source,
            directed,
            ..
        } => {
            let id = literal(param(binding, "id"));
            let from = literal(param(binding, "from"));
            let to = literal(param(binding, "to"));
            let (edge_step, vertex_step) = if *directed {
                (format!(".outE({})", quote(edge)), ".inV()")
            } else {
                (format!(".bothE({})", quote(edge)), ".otherV()")
            };
            format!(
                "g.V().hasLabel({}).has('id', {id}){edge_step}\
                 .has('_ts', gte({from})).has('_ts', lte({to})){vertex_step}",
                quote(source)
            )
        }
        TemplateKind::WindowAgg { edge, .. } => {
            let from = literal(param(binding, "from"));
            let to = literal(param(binding, "to"));
            format!(
                "g.E().hasLabel({}).has('_ts', gte({from})).has('_ts', lte({to}))\
                 .groupCount().by('_ts')",
                quote(edge)
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curate::CuratedParam;
    use crate::template::{QueryTemplate, SelectivityClass};
    use datasynth_tables::Value;

    /// Test-local shims: build the plan from (template, binding) so each
    /// case below reads as "this pattern + these params => this text".
    fn render_cypher(t: &QueryTemplate, b: &Binding) -> String {
        super::render_cypher(&QueryPlan {
            template_id: t.id.clone(),
            kind: t.kind.clone(),
            binding: b.clone(),
        })
    }

    fn render_gremlin(t: &QueryTemplate, b: &Binding) -> String {
        super::render_gremlin(&QueryPlan {
            template_id: t.id.clone(),
            kind: t.kind.clone(),
            binding: b.clone(),
        })
    }

    fn binding(params: Vec<(&str, ParamValue)>) -> Binding {
        Binding {
            params: params
                .into_iter()
                .map(|(name, value)| CuratedParam {
                    name: name.into(),
                    value,
                })
                .collect(),
            expected_rows: 1,
            band: (1, 1),
        }
    }

    fn template(kind: TemplateKind) -> QueryTemplate {
        QueryTemplate {
            id: format!("{}:test", kind.keyword()),
            selectivity: SelectivityClass::Point,
            kind,
        }
    }

    #[test]
    fn point_lookup_renders_both_dialects() {
        let t = template(TemplateKind::PointLookup {
            node_type: "Person".into(),
        });
        let b = binding(vec![("id", ParamValue::Id(42))]);
        assert_eq!(
            render_cypher(&t, &b),
            "MATCH (n:Person) WHERE n.id = 42 RETURN n;"
        );
        assert_eq!(
            render_gremlin(&t, &b),
            "g.V().hasLabel('Person').has('id', 42)"
        );
    }

    #[test]
    fn undirected_expansion_uses_both() {
        let t = template(TemplateKind::Expand1 {
            edge: "knows".into(),
            source: "Person".into(),
            target: "Person".into(),
            directed: false,
        });
        let b = binding(vec![("id", ParamValue::Id(7))]);
        assert!(render_cypher(&t, &b).contains("-[:knows]-(m:Person)"));
        assert!(render_gremlin(&t, &b).contains(".both('knows')"));
    }

    #[test]
    fn directed_expansion_uses_out() {
        let t = template(TemplateKind::Expand1 {
            edge: "creates".into(),
            source: "Person".into(),
            target: "Message".into(),
            directed: true,
        });
        let b = binding(vec![("id", ParamValue::Id(7))]);
        assert!(render_cypher(&t, &b).contains("-[:creates]->(m:Message)"));
        assert!(render_gremlin(&t, &b).contains(".out('creates')"));
    }

    #[test]
    fn text_values_are_quoted_and_escaped() {
        let t = template(TemplateKind::PropertyScan {
            node_type: "Person".into(),
            property: "country".into(),
        });
        let b = binding(vec![(
            "value",
            ParamValue::Value(Value::Text("O'Brien".into())),
        )]);
        let cy = render_cypher(&t, &b);
        assert!(cy.contains("n.country = 'O\\'Brien'"), "{cy}");
        let gr = render_gremlin(&t, &b);
        assert!(gr.contains("'O\\'Brien'"), "{gr}");
    }

    #[test]
    fn numeric_values_are_bare() {
        let t = template(TemplateKind::PropertyScan {
            node_type: "Person".into(),
            property: "age".into(),
        });
        let b = binding(vec![("value", ParamValue::Value(Value::Long(30)))]);
        assert!(render_cypher(&t, &b).contains("n.age = 30 "));
        assert!(render_gremlin(&t, &b).contains("has('age', 30)"));
    }

    #[test]
    fn two_hop_renders_star_and_double_step() {
        let t = template(TemplateKind::Expand2 {
            edge: "knows".into(),
            node_type: "Person".into(),
            directed: false,
        });
        let b = binding(vec![("id", ParamValue::Id(3))]);
        assert!(render_cypher(&t, &b).contains("[:knows*2]"));
        let gr = render_gremlin(&t, &b);
        assert_eq!(gr.matches(".both('knows')").count(), 2, "{gr}");
        assert!(
            gr.ends_with(".where(neq('n')).dedup()"),
            "the start vertex must be excluded, as in Cypher: {gr}"
        );

        // Directed walks cannot backtrack, and Cypher keeps the start
        // vertex reachable over reciprocal edges — no filter.
        let td = template(TemplateKind::Expand2 {
            edge: "follows".into(),
            node_type: "Person".into(),
            directed: true,
        });
        let gd = render_gremlin(&td, &b);
        assert_eq!(gd.matches(".out('follows')").count(), 2, "{gd}");
        assert!(!gd.contains("neq"), "{gd}");
        assert!(gd.ends_with(".dedup()"));
    }

    #[test]
    fn temporal_kinds_render_ts_filters() {
        let t = template(TemplateKind::AsOfLookup {
            node_type: "Person".into(),
        });
        let b = binding(vec![
            ("id", ParamValue::Id(3)),
            ("ts", ParamValue::Value(Value::Date(14610))), // 2010-01-01
        ]);
        let cy = render_cypher(&t, &b);
        assert!(cy.contains("n._ts <= '2010-01-01'"), "{cy}");
        let gr = render_gremlin(&t, &b);
        assert!(gr.contains(".has('_ts', lte('2010-01-01'))"), "{gr}");

        let t = template(TemplateKind::WindowExpand {
            edge: "knows".into(),
            source: "Person".into(),
            target: "Person".into(),
            directed: true,
        });
        let b = binding(vec![
            ("id", ParamValue::Id(3)),
            ("from", ParamValue::Value(Value::Date(14610))),
            ("to", ParamValue::Value(Value::Date(14640))),
        ]);
        let cy = render_cypher(&t, &b);
        assert!(cy.contains("-[r:knows]->(m:Person)"), "{cy}");
        assert!(
            cy.contains("r._ts >= '2010-01-01' AND r._ts <= '2010-01-31'"),
            "{cy}"
        );
        let gr = render_gremlin(&t, &b);
        assert!(gr.contains(".outE('knows')"), "{gr}");
        assert!(gr.ends_with(".inV()"), "{gr}");

        let t = template(TemplateKind::WindowAgg {
            edge: "knows".into(),
            source: "Person".into(),
            target: "Person".into(),
            directed: false,
        });
        let b = binding(vec![
            ("from", ParamValue::Value(Value::Date(14610))),
            ("to", ParamValue::Value(Value::Date(14640))),
        ]);
        let cy = render_cypher(&t, &b);
        assert!(cy.contains("-[r:knows]-(:Person)"), "{cy}");
        assert!(cy.contains("RETURN r._ts AS day"), "{cy}");
        let gr = render_gremlin(&t, &b);
        assert!(gr.starts_with("g.E().hasLabel('knows')"), "{gr}");
        assert!(gr.ends_with(".groupCount().by('_ts')"), "{gr}");
    }

    #[test]
    fn path_chains_two_edges() {
        let t = template(TemplateKind::Path2 {
            first_edge: "knows".into(),
            second_edge: "creates".into(),
            start: "Person".into(),
            mid: "Person".into(),
            end: "Message".into(),
            first_directed: false,
            second_directed: true,
        });
        let b = binding(vec![("id", ParamValue::Id(5))]);
        let cy = render_cypher(&t, &b);
        assert!(
            cy.contains("-[:knows]-(b:Person)-[:creates]->(c:Message)"),
            "{cy}"
        );
    }
}
