//! The generated workload and its on-disk form: one `.cypher` and one
//! `.gremlin` file per query under `cypher/` and `gremlin/`, plus a
//! `workload.json` manifest binding template ids, curated parameters, and
//! expected-cardinality bands together.

use std::fs;
use std::io::{self, Write};
use std::path::Path;

use datasynth_tables::export::json_escape;

use crate::curate::Binding;
use crate::plan::QueryPlan;
use crate::template::QueryTemplate;

/// One instantiated query: the structured plan plus its two text
/// renderings. The plan is the primary artifact — the engine executes it
/// directly — and the Cypher/Gremlin strings are derived views.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryInstance {
    /// Stable instance id (`q0001`, ...).
    pub id: String,
    /// The renderer-independent plan: template kind + curated binding.
    pub plan: QueryPlan,
    /// Rendered Cypher text.
    pub cypher: String,
    /// Rendered Gremlin text.
    pub gremlin: String,
}

impl QueryInstance {
    /// Id of the template this instantiates.
    pub fn template_id(&self) -> &str {
        &self.plan.template_id
    }

    /// The curated binding (parameters + cardinality estimate).
    pub fn binding(&self) -> &Binding {
        &self.plan.binding
    }
}

/// A complete generated workload.
#[derive(Debug, Clone, PartialEq)]
pub struct Workload {
    /// Schema (graph) name the workload targets.
    pub schema_name: String,
    /// Master seed it was generated under.
    pub seed: u64,
    /// Derived templates, in derivation order (including ones the mix
    /// assigned zero queries).
    pub templates: Vec<QueryTemplate>,
    /// Instantiated queries, in template order.
    pub queries: Vec<QueryInstance>,
}

impl Workload {
    /// Distinct template kinds that actually produced queries.
    pub fn instantiated_kinds(&self) -> Vec<&'static str> {
        let mut kinds: Vec<&'static str> = Vec::new();
        for q in &self.queries {
            let kw = q.plan.kind.keyword();
            if !kinds.contains(&kw) {
                kinds.push(kw);
            }
        }
        kinds.sort_unstable();
        kinds
    }

    /// Serialize the manifest as pretty-printed JSON.
    pub fn manifest_json(&self) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!(
            "  \"schema\": \"{}\",\n",
            json_escape(&self.schema_name)
        ));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"query_count\": {},\n", self.queries.len()));
        s.push_str("  \"templates\": [\n");
        for (i, t) in self.templates.iter().enumerate() {
            // Small candidate bins cycle, so a template can repeat
            // parameter bindings; surface that so consumers know how many
            // of a template's queries are genuinely distinct probes.
            let mut total = 0usize;
            let mut distinct = std::collections::BTreeSet::new();
            for q in self.queries.iter().filter(|q| q.template_id() == t.id) {
                total += 1;
                distinct.insert(
                    q.binding()
                        .params
                        .iter()
                        .map(|p| p.value.render())
                        .collect::<Vec<_>>()
                        .join("\u{1f}"),
                );
            }
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"kind\": \"{}\", \"selectivity\": \"{}\", \
                 \"queries\": {total}, \"distinct_bindings\": {}}}{}\n",
                json_escape(&t.id),
                t.kind.keyword(),
                t.selectivity.keyword(),
                distinct.len(),
                if i + 1 < self.templates.len() {
                    ","
                } else {
                    ""
                }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"queries\": [\n");
        for (i, q) in self.queries.iter().enumerate() {
            let params: Vec<String> = q
                .binding()
                .params
                .iter()
                .map(|p| {
                    let rendered = p.value.render();
                    if p.value.is_textual() {
                        format!(
                            "\"{}\": \"{}\"",
                            json_escape(&p.name),
                            json_escape(&rendered)
                        )
                    } else {
                        format!("\"{}\": {}", json_escape(&p.name), rendered)
                    }
                })
                .collect();
            s.push_str(&format!(
                "    {{\"id\": \"{}\", \"template\": \"{}\", \"params\": {{{}}}, \
                 \"expected_rows\": {}, \"cardinality_band\": [{}, {}], \
                 \"cypher\": \"cypher/{}.cypher\", \"gremlin\": \"gremlin/{}.gremlin\"}}{}\n",
                json_escape(&q.id),
                json_escape(q.template_id()),
                params.join(", "),
                q.binding().expected_rows,
                q.binding().band.0,
                q.binding().band.1,
                json_escape(&q.id),
                json_escape(&q.id),
                if i + 1 < self.queries.len() { "," } else { "" }
            ));
        }
        s.push_str("  ]\n");
        s.push_str("}\n");
        s
    }

    /// Write the workload under `dir`: `workload.json` plus one file per
    /// query in `cypher/` and `gremlin/`. Creates directories as needed;
    /// the two query directories are cleared first so a rerun with a
    /// smaller `--queries` cannot leave stale files the manifest no
    /// longer describes.
    pub fn write_to(&self, dir: &Path) -> io::Result<()> {
        let cypher_dir = dir.join("cypher");
        let gremlin_dir = dir.join("gremlin");
        for d in [&cypher_dir, &gremlin_dir] {
            if d.is_dir() {
                fs::remove_dir_all(d)?;
            }
            fs::create_dir_all(d)?;
        }
        for q in &self.queries {
            let mut f = fs::File::create(cypher_dir.join(format!("{}.cypher", q.id)))?;
            writeln!(f, "{}", q.cypher)?;
            let mut f = fs::File::create(gremlin_dir.join(format!("{}.gremlin", q.id)))?;
            writeln!(f, "{}", q.gremlin)?;
        }
        fs::write(dir.join("workload.json"), self.manifest_json())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::curate::{CuratedParam, ParamValue};
    use crate::template::{SelectivityClass, TemplateKind};
    use datasynth_tables::Value;

    fn sample() -> Workload {
        let template = QueryTemplate {
            id: "point_lookup:Person".into(),
            kind: TemplateKind::PointLookup {
                node_type: "Person".into(),
            },
            selectivity: SelectivityClass::Point,
        };
        Workload {
            schema_name: "social".into(),
            seed: 42,
            templates: vec![template],
            queries: vec![QueryInstance {
                id: "q0001".into(),
                plan: QueryPlan {
                    template_id: "point_lookup:Person".into(),
                    kind: TemplateKind::PointLookup {
                        node_type: "Person".into(),
                    },
                    binding: Binding {
                        params: vec![
                            CuratedParam {
                                name: "id".into(),
                                value: ParamValue::Id(7),
                            },
                            CuratedParam {
                                name: "value".into(),
                                value: ParamValue::Value(Value::Text("a\"b".into())),
                            },
                        ],
                        expected_rows: 1,
                        band: (1, 3),
                    },
                },
                cypher: "MATCH (n) RETURN n;".into(),
                gremlin: "g.V()".into(),
            }],
        }
    }

    #[test]
    fn manifest_contains_all_sections() {
        let json = sample().manifest_json();
        assert!(json.contains("\"schema\": \"social\""));
        assert!(json.contains("\"seed\": 42"));
        assert!(json.contains("\"query_count\": 1"));
        assert!(json.contains("\"id\": \"point_lookup:Person\""));
        assert!(json.contains("\"selectivity\": \"point\""));
        assert!(json.contains("\"queries\": 1, \"distinct_bindings\": 1"));
        assert!(json.contains("\"id\": 7"));
        assert!(json.contains("\"value\": \"a\\\"b\""), "{json}");
        assert!(json.contains("\"cardinality_band\": [1, 3]"));
        assert!(json.contains("\"cypher\": \"cypher/q0001.cypher\""));
    }

    #[test]
    fn write_to_emits_per_query_files() {
        let dir =
            std::env::temp_dir().join(format!("datasynth-workload-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        sample().write_to(&dir).unwrap();
        assert!(dir.join("workload.json").is_file());
        assert_eq!(
            fs::read_to_string(dir.join("cypher/q0001.cypher")).unwrap(),
            "MATCH (n) RETURN n;\n"
        );
        assert_eq!(
            fs::read_to_string(dir.join("gremlin/q0001.gremlin")).unwrap(),
            "g.V()\n"
        );
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rewrite_clears_stale_query_files() {
        let dir =
            std::env::temp_dir().join(format!("datasynth-workload-stale-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut w = sample();
        w.write_to(&dir).unwrap();
        assert!(dir.join("cypher/q0001.cypher").is_file());
        // A smaller rerun must not leave the old files behind.
        w.queries.clear();
        w.write_to(&dir).unwrap();
        assert!(!dir.join("cypher/q0001.cypher").exists());
        assert!(!dir.join("gremlin/q0001.gremlin").exists());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn instantiated_kinds_dedup() {
        let w = sample();
        assert_eq!(w.instantiated_kinds(), vec!["point_lookup"]);
    }

    #[test]
    fn json_escape_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }
}
