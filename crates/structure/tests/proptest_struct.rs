//! Property-based tests over the structure generators' invariants.

use proptest::prelude::*;

use datasynth_prng::{CounterStream, SplitMix64};
use datasynth_structure::{
    build_generator, configuration_model, even_out_degree_sum, BarabasiAlbert, ConfigModelOptions,
    LfrGenerator, LfrParams, Params, PlantedPartition, RmatGenerator, StructureGenerator,
    WattsStrogatz,
};
use datasynth_tables::EdgeTable;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The configuration model never exceeds any node's requested degree
    /// and never emits self-loops or duplicates under default options.
    #[test]
    fn config_model_respects_degrees(
        seed: u64,
        degrees in prop::collection::vec(0u32..12, 4..120),
    ) {
        let mut d = degrees.clone();
        even_out_degree_sum(&mut d);
        let mut rng = SplitMix64::new(seed);
        let et = configuration_model(&d, ConfigModelOptions::default(), &mut rng);
        let got = et.degrees(d.len() as u64);
        for (v, (&g, &want)) in got.iter().zip(&d).enumerate() {
            prop_assert!(g <= want, "node {v}: {g} > {want}");
        }
        let mut c = et.clone();
        c.canonicalize_undirected();
        prop_assert_eq!(c.dedup(), 0);
        prop_assert!(et.iter().all(|(t, h)| t != h));
    }

    /// RMAT respects arbitrary (non power of two) node counts.
    #[test]
    fn rmat_endpoints_in_range(seed: u64, n in 2u64..3_000) {
        let g = RmatGenerator::new(0.57, 0.19, 0.19, 4, false);
        let et = g.run(n, &mut SplitMix64::new(seed));
        prop_assert_eq!(et.len(), 4 * n);
        prop_assert!(et.iter().all(|(t, h)| t < n && h < n));
    }

    /// LFR always produces a simple graph whose planted labels are dense
    /// and whose realized mean degree tracks the requested one.
    #[test]
    fn lfr_invariants(seed: u64, mixing in 0.05f64..0.5, n in 300u64..1_200) {
        let g = LfrGenerator::new(LfrParams {
            average_degree: 8.0,
            max_degree: 24,
            mixing,
            min_community: 8,
            max_community: 48,
            ..LfrParams::default()
        });
        let (et, labels) = g.run_with_partition(n, &mut SplitMix64::new(seed));
        prop_assert_eq!(labels.len() as u64, n);
        let k = labels.iter().copied().max().unwrap() as usize + 1;
        // Labels dense: every community inhabited.
        let mut seen = vec![false; k];
        for &l in &labels {
            seen[l as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        // Simple graph.
        prop_assert!(et.iter().all(|(t, h)| t != h && t < n && h < n));
        let mut c = et.clone();
        c.canonicalize_undirected();
        prop_assert_eq!(c.dedup(), 0);
        // Mean degree in a sane band around the target.
        let mean = 2.0 * et.len() as f64 / n as f64;
        prop_assert!((5.0..11.0).contains(&mean), "mean degree {mean}");
    }

    /// Watts–Strogatz at any rewiring rate keeps the graph simple.
    #[test]
    fn ws_simple(seed: u64, beta in 0.0f64..1.0, n in 10u64..500) {
        let et = WattsStrogatz::new(4, beta).run(n, &mut SplitMix64::new(seed));
        prop_assert!(et.iter().all(|(t, h)| t != h && t < n && h < n));
        let mut c = et.clone();
        c.canonicalize_undirected();
        prop_assert_eq!(c.dedup(), 0);
    }

    /// Barabási–Albert stays connected for any m.
    #[test]
    fn ba_connected(seed: u64, m in 1u64..6, n in 10u64..600) {
        let et = BarabasiAlbert::new(m).unwrap().run(n, &mut SplitMix64::new(seed));
        prop_assert_eq!(datasynth_analysis::largest_component_size(&et, n), n);
    }

    /// For every chunkable generator, concatenating `run_range` over an
    /// arbitrary partition of the slot space (then `finalize`) reproduces
    /// `run` byte-for-byte — the invariant behind thread-count-independent
    /// structure generation.
    #[test]
    fn run_range_concatenation_equals_whole_run(
        seed: u64,
        n in 50u64..1_500,
        step in 1u64..40,
    ) {
        let generators: Vec<(&str, Params)> = vec![
            ("erdos_renyi", Params::new().with_num("p", 0.01)),
            ("rmat", Params::new().with_num("edge_factor", 4.0)),
            ("rmat", Params::new().with_num("edge_factor", 2.0).with_num("simplify", 1.0)),
            ("sbm", Params::new().with_num("groups", 3.0).with_num("group_size", 120.0)),
        ];
        for (name, params) in generators {
            let g = build_generator(name, &params).unwrap();
            prop_assert!(g.chunkable(), "{name} should be chunkable");
            let whole = g.run(n, &mut SplitMix64::new(seed));
            // Same key derivation as run(): the rng's first draw.
            let stream = CounterStream::new(SplitMix64::new(seed).next_u64());
            let slots = g.num_slots(n);
            let mut parts = EdgeTable::new(g.name());
            let mut at = 0;
            while at < slots {
                let next = (at + step).min(slots);
                parts.extend_from(&g.run_range(n, at..next, &stream));
                at = next;
            }
            prop_assert_eq!(&whole, &g.finalize(parts), "{} differs under partition", name);
        }
    }

    /// Non-chunkable generators keep the sequential contract and say so.
    #[test]
    fn sequential_generators_report_not_chunkable(m in 1u64..4) {
        for name in ["barabasi_albert", "watts_strogatz", "lfr", "bter", "darwini"] {
            let g = build_generator(name, &Params::new().with_num("m", m as f64)).unwrap();
            prop_assert!(!g.chunkable(), "{name} must not claim chunkability");
        }
    }

    /// `num_nodes_for_edges` inverts `run` to within 30% for every
    /// registered generator with defaults.
    #[test]
    fn sizing_roundtrip(seed: u64, target_m in 2_000u64..20_000) {
        for name in ["rmat", "lfr", "barabasi_albert", "watts_strogatz"] {
            let g = build_generator(name, &Params::new()).unwrap();
            let n = g.num_nodes_for_edges(target_m);
            let m = g.run(n, &mut SplitMix64::new(seed)).len() as f64;
            let rel = (m - target_m as f64).abs() / target_m as f64;
            prop_assert!(rel < 0.3, "{name}: asked {target_m}, got {m}");
        }
    }
}
