//! R-MAT (Chakrabarti, Zhan, Faloutsos; SDM'04), the Graph-500 generator:
//! each edge picks one of four adjacency-matrix quadrants recursively,
//! yielding power-law-ish degrees. The paper evaluates SBM-Part on RMAT
//! scales 18/20/22 with default parameters.

use std::ops::Range;

use datasynth_prng::{CounterStream, SplitMix64};
use datasynth_tables::EdgeTable;

use crate::chunk;
use crate::{BuildError, Capabilities, StructureGenerator};

/// R-MAT generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RmatGenerator {
    a: f64,
    b: f64,
    c: f64,
    edge_factor: u64,
    noise: f64,
    simplify: bool,
}

impl RmatGenerator {
    /// Graph-500 defaults: `(a,b,c,d) = (0.57, 0.19, 0.19, 0.05)`,
    /// 16 edges per node, no simplification (duplicates and self-loops are
    /// kept, as in the reference implementation — the paper's "67M edges"
    /// for scale 22 is `16 · 2^22` generated, not distinct, edges).
    pub fn graph500() -> Self {
        Self::new(0.57, 0.19, 0.19, 16, false)
    }

    /// Custom quadrant probabilities (`d = 1 - a - b - c`).
    pub fn new(a: f64, b: f64, c: f64, edge_factor: u64, simplify: bool) -> Self {
        assert!(a > 0.0 && b >= 0.0 && c >= 0.0, "bad probabilities");
        assert!(a + b + c <= 1.0 + 1e-9, "probabilities exceed 1");
        Self {
            a,
            b,
            c,
            edge_factor,
            noise: 0.1,
            simplify,
        }
    }

    /// Per-level multiplicative noise on the quadrant probabilities
    /// (smoothens the degree distribution; Graph-500 uses a similar trick).
    /// Rejects values outside `[0, 0.5]` — reachable from DSL/builder
    /// params, so this must be an error, not a panic.
    pub fn with_noise(mut self, noise: f64) -> Result<Self, BuildError> {
        if !(0.0..=0.5).contains(&noise) {
            return Err(BuildError::InvalidParam {
                generator: "rmat",
                param: "noise",
                reason: format!("must be in [0, 0.5], got {noise}"),
            });
        }
        self.noise = noise;
        Ok(self)
    }

    /// Generate a graph of `scale` (n = 2^scale), the conventional RMAT
    /// parameterization.
    pub fn run_scale(&self, scale: u32, rng: &mut SplitMix64) -> EdgeTable {
        self.run(1u64 << scale, rng)
    }

    /// Recursion depth for a graph over `n` nodes.
    fn levels(n: u64) -> u32 {
        if n <= 1 {
            0
        } else {
            64 - (n - 1).leading_zeros().min(63)
        }
    }

    fn sample_edge(&self, levels: u32, rng: &mut SplitMix64) -> (u64, u64) {
        let mut t = 0u64;
        let mut h = 0u64;
        for _ in 0..levels {
            t <<= 1;
            h <<= 1;
            // Jitter the quadrant probabilities per level.
            let jit = |p: f64, r: &mut SplitMix64| {
                let u = 2.0 * r.next_f64() - 1.0; // [-1, 1)
                (p * (1.0 + self.noise * u)).max(0.0)
            };
            let (pa, pb, pc) = (jit(self.a, rng), jit(self.b, rng), jit(self.c, rng));
            let pd = (1.0 - self.a - self.b - self.c).max(0.0);
            let pd = jit(pd / 1.0, rng);
            let total = pa + pb + pc + pd;
            let u = rng.next_f64() * total;
            if u < pa {
                // top-left: nothing set
            } else if u < pa + pb {
                h |= 1;
            } else if u < pa + pb + pc {
                t |= 1;
            } else {
                t |= 1;
                h |= 1;
            }
        }
        (t, h)
    }
}

impl StructureGenerator for RmatGenerator {
    fn name(&self) -> &'static str {
        "rmat"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        chunk::run_chunked(self, n, rng)
    }

    fn chunkable(&self) -> bool {
        true
    }

    /// One slot per edge: each quadrant descent (with its out-of-range
    /// resampling for non-power-of-two `n`) draws only from its own
    /// counter substream.
    fn num_slots(&self, n: u64) -> u64 {
        self.edge_factor * n
    }

    fn run_range(&self, n: u64, range: Range<u64>, stream: &CounterStream) -> EdgeTable {
        let mut et = EdgeTable::with_capacity("rmat", (range.end - range.start) as usize);
        if n == 0 {
            return et;
        }
        let levels = Self::levels(n);
        for i in range {
            let mut rng = stream.substream(i);
            loop {
                let (t, h) = self.sample_edge(levels, &mut rng);
                // When n is not a power of two, resample out-of-range
                // endpoints (in-range by construction otherwise).
                if t < n && h < n {
                    et.push(t, h);
                    break;
                }
            }
        }
        et
    }

    fn finalize(&self, mut et: EdgeTable) -> EdgeTable {
        if self.simplify {
            et.remove_self_loops();
            et.canonicalize_undirected();
            et.dedup();
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        (num_edges / self.edge_factor).max(1)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            power_law: true,
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::{power_law_alpha_mle, DegreeStats};

    #[test]
    fn edge_count_matches_scale() {
        let g = RmatGenerator::graph500();
        let et = g.run_scale(10, &mut SplitMix64::new(1));
        assert_eq!(et.len(), 16 << 10);
        assert!(et.max_node_id().unwrap() < 1 << 10);
    }

    #[test]
    fn degrees_are_heavy_tailed() {
        let g = RmatGenerator::graph500();
        let et = g.run_scale(12, &mut SplitMix64::new(2));
        let deg = et.degrees(1 << 12);
        let stats = DegreeStats::from_degrees(&deg).unwrap();
        // Skew: max far above mean, variance far above Poisson.
        assert!(f64::from(stats.max) > 8.0 * stats.mean, "max {}", stats.max);
        assert!(stats.variance > 4.0 * stats.mean, "var {}", stats.variance);
        let alpha = power_law_alpha_mle(&deg, 8).expect("enough tail");
        assert!(alpha > 1.2 && alpha < 4.0, "alpha {alpha}");
    }

    #[test]
    fn non_power_of_two_sizes_work() {
        let g = RmatGenerator::new(0.57, 0.19, 0.19, 4, false);
        let n = 1000; // not a power of two
        let et = g.run(n, &mut SplitMix64::new(3));
        assert_eq!(et.len(), 4 * n);
        assert!(et.max_node_id().unwrap() < n);
    }

    #[test]
    fn simplify_removes_loops_and_dups() {
        let g = RmatGenerator::new(0.57, 0.19, 0.19, 16, true);
        let et = g.run(256, &mut SplitMix64::new(4));
        for (t, h) in et.iter() {
            assert!(t < h, "canonical, no self-loops");
        }
        let mut c = et.clone();
        assert_eq!(c.dedup(), 0);
        assert!(et.len() < 16 * 256, "duplicates were collapsed");
    }

    #[test]
    fn sizing_inverse() {
        let g = RmatGenerator::graph500();
        assert_eq!(g.num_nodes_for_edges(16 << 22), 1 << 22);
    }

    #[test]
    fn deterministic() {
        let g = RmatGenerator::graph500();
        assert_eq!(
            g.run_scale(8, &mut SplitMix64::new(7)),
            g.run_scale(8, &mut SplitMix64::new(7))
        );
    }

    #[test]
    fn noise_out_of_range_is_an_error_not_a_panic() {
        let err = RmatGenerator::graph500().with_noise(0.9).unwrap_err();
        assert!(matches!(
            err,
            BuildError::InvalidParam { param: "noise", .. }
        ));
        assert!(err.to_string().contains("0.5"), "{err}");
    }

    #[test]
    fn run_equals_partitioned_run_range_including_simplify() {
        // Simplification is a finalize post-pass, so it must commute with
        // any slot partition of the raw edges.
        let g = RmatGenerator::new(0.57, 0.19, 0.19, 4, true);
        let n = 300u64; // not a power of two: exercises resampling
        let whole = g.run(n, &mut SplitMix64::new(21));
        let stream = CounterStream::new(SplitMix64::new(21).next_u64());
        let slots = g.num_slots(n);
        let mut parts = EdgeTable::new(g.name());
        let mut at = 0;
        while at < slots {
            let next = (at + 97).min(slots);
            parts.extend_from(&g.run_range(n, at..next, &stream));
            at = next;
        }
        assert_eq!(whole, g.finalize(parts));
    }

    #[test]
    fn hub_bias_follows_quadrant_probabilities() {
        // With a dominant, low ids should accumulate more degree.
        let g = RmatGenerator::new(0.7, 0.1, 0.1, 8, false)
            .with_noise(0.0)
            .unwrap();
        let n = 1u64 << 10;
        let et = g.run(n, &mut SplitMix64::new(5));
        let deg = et.degrees(n);
        let low: u64 = deg[..(n / 4) as usize].iter().map(|&d| u64::from(d)).sum();
        let high: u64 = deg[(3 * n / 4) as usize..]
            .iter()
            .map(|&d| u64::from(d))
            .sum();
        assert!(low > 3 * high, "low {low} vs high {high}");
    }
}
