//! Barabási–Albert preferential attachment.

use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::{BuildError, Capabilities, StructureGenerator};

/// BA model: nodes arrive one at a time and attach `m` edges to existing
/// nodes with probability proportional to degree (implemented with the
/// repeated-endpoint list trick, O(m·n)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BarabasiAlbert {
    m: u64,
}

impl BarabasiAlbert {
    /// Create with `m >= 1` attachments per arriving node. `m = 0` is an
    /// error (not a panic): the value arrives straight from DSL/builder
    /// params through the registry.
    pub fn new(m: u64) -> Result<Self, BuildError> {
        if m < 1 {
            return Err(BuildError::InvalidParam {
                generator: "barabasi_albert",
                param: "m",
                reason: "need at least one edge per arriving node".into(),
            });
        }
        Ok(Self { m })
    }
}

impl StructureGenerator for BarabasiAlbert {
    fn name(&self) -> &'static str {
        "barabasi_albert"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let m = self.m;
        let mut et = EdgeTable::with_capacity("barabasi_albert", (n * m) as usize);
        if n == 0 {
            return et;
        }
        // Seed: a small clique over the first m+1 nodes (or all of them).
        let seed_n = (m + 1).min(n);
        let mut endpoints: Vec<u64> = Vec::with_capacity(2 * (n * m) as usize);
        for h in 1..seed_n {
            for t in 0..h {
                et.push(t, h);
                endpoints.push(t);
                endpoints.push(h);
            }
        }
        for v in seed_n..n {
            // BTreeSet, not HashSet: the set is *iterated* below, and
            // HashSet order is randomly seeded per instance — it made BA
            // output differ between two identically-seeded runs.
            let mut targets = std::collections::BTreeSet::new();
            while (targets.len() as u64) < m.min(v) {
                let pick = endpoints[rng.next_below(endpoints.len() as u64) as usize];
                targets.insert(pick);
            }
            for &t in &targets {
                et.push(t, v);
                endpoints.push(t);
                endpoints.push(v);
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        (num_edges / self.m).max(self.m + 1)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            power_law: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::{largest_component_size, power_law_alpha_mle};

    #[test]
    fn connected_and_right_size() {
        let g = BarabasiAlbert::new(3).unwrap();
        let n = 2000;
        let et = g.run(n, &mut SplitMix64::new(1));
        // Seed clique contributes C(4,2)=6 edges; the rest 3 per node.
        assert_eq!(et.len(), 6 + (n - 4) * 3);
        assert_eq!(largest_component_size(&et, n), n);
    }

    #[test]
    fn power_law_exponent_near_three() {
        let g = BarabasiAlbert::new(2).unwrap();
        let n = 20_000;
        let et = g.run(n, &mut SplitMix64::new(2));
        let deg = et.degrees(n);
        let alpha = power_law_alpha_mle(&deg, 10).unwrap();
        assert!((2.2..4.2).contains(&alpha), "alpha {alpha}");
    }

    #[test]
    fn no_self_loops_or_duplicate_targets() {
        let g = BarabasiAlbert::new(4).unwrap();
        let et = g.run(500, &mut SplitMix64::new(3));
        for (t, h) in et.iter() {
            assert_ne!(t, h);
        }
        let mut c = et.clone();
        c.canonicalize_undirected();
        assert_eq!(c.dedup(), 0);
    }

    #[test]
    fn tiny_graphs() {
        let g = BarabasiAlbert::new(3).unwrap();
        assert!(g.run(0, &mut SplitMix64::new(4)).is_empty());
        let et = g.run(2, &mut SplitMix64::new(4));
        assert_eq!(et.len(), 1); // just the (truncated) seed clique
    }

    #[test]
    fn zero_m_is_an_error_not_a_panic() {
        let err = BarabasiAlbert::new(0).unwrap_err();
        assert!(matches!(err, BuildError::InvalidParam { param: "m", .. }));
    }

    #[test]
    fn byte_deterministic_across_runs() {
        // Regression: the target set used to be a HashSet whose iteration
        // order is randomly seeded per instance, so two identically-seeded
        // runs diverged after the first multi-target node.
        let g = BarabasiAlbert::new(3).unwrap();
        assert_eq!(
            g.run(1000, &mut SplitMix64::new(9)),
            g.run(1000, &mut SplitMix64::new(9))
        );
    }
}
