//! BTER (Block Two-level Erdős–Rényi; Kolda et al., SISC'14): reproduces a
//! target degree distribution *and* the average clustering coefficient per
//! degree by packing nodes into small dense affinity blocks (phase 1) and
//! wiring the leftover degree with a Chung–Lu pass (phase 2).

use datasynth_prng::dist::Sampler;
use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::degree_seq::chung_lu;
use crate::{Capabilities, DegreeDist, StructureGenerator};

/// Target clustering-coefficient-per-degree profile.
#[derive(Debug, Clone)]
pub enum CcProfile {
    /// Same target for every degree.
    Constant(f64),
    /// `cc(d) = c0 · exp(-(d-1)/scale)` — the empirically common decay.
    ExponentialDecay {
        /// Clustering at degree 1–2.
        c0: f64,
        /// Decay scale in degrees.
        scale: f64,
    },
    /// Explicit table: `cc[d]` for degree `d` (last entry extends).
    Table(Vec<f64>),
}

impl CcProfile {
    /// Target mean local clustering for degree `d`.
    pub fn at(&self, d: u32) -> f64 {
        let v = match self {
            CcProfile::Constant(c) => *c,
            CcProfile::ExponentialDecay { c0, scale } => {
                c0 * (-(f64::from(d.saturating_sub(1))) / scale).exp()
            }
            CcProfile::Table(t) => {
                if t.is_empty() {
                    0.0
                } else {
                    t[(d as usize).min(t.len() - 1)]
                }
            }
        };
        v.clamp(0.0, 1.0)
    }
}

/// BTER generator: degree distribution + clustering-per-degree profile.
#[derive(Debug, Clone)]
pub struct BterGenerator {
    degree_dist: DegreeDist,
    cc: CcProfile,
}

impl BterGenerator {
    /// Create from a degree distribution and a clustering profile.
    pub fn new(degree_dist: DegreeDist, cc: CcProfile) -> Self {
        Self { degree_dist, cc }
    }
}

impl StructureGenerator for BterGenerator {
    fn name(&self) -> &'static str {
        "bter"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        // Sample the target degree of every node.
        let degrees: Vec<u32> = (0..n)
            .map(|_| {
                let d = match &self.degree_dist {
                    DegreeDist::Constant(k) => *k,
                    other => {
                        // Route through the shared draw.
                        struct W<'a>(&'a DegreeDist);
                        impl Sampler for W<'_> {
                            type Output = u64;
                            fn sample(&self, rng: &mut SplitMix64) -> u64 {
                                match self.0 {
                                    DegreeDist::Constant(k) => *k,
                                    DegreeDist::Uniform(d) => d.sample(rng),
                                    DegreeDist::Zipf(d) => d.sample(rng),
                                    DegreeDist::PowerLaw(d) => d.sample(rng),
                                    DegreeDist::Geometric(d) => d.sample(rng),
                                    DegreeDist::Empirical(d) => d.sample(rng),
                                }
                            }
                        }
                        W(other).sample(rng)
                    }
                };
                d.clamp(1, u64::from(u32::MAX)) as u32
            })
            .collect();

        // Sort node indices by degree ascending; blocks take consecutive
        // runs so every block's minimum degree is its first member's.
        let mut by_degree: Vec<u32> = (0..n as u32).collect();
        by_degree.sort_by_key(|&v| degrees[v as usize]);

        let mut et = EdgeTable::with_capacity(
            "bter",
            degrees.iter().map(|&d| d as usize).sum::<usize>() / 2,
        );
        let mut excess: Vec<f64> = degrees.iter().map(|&d| f64::from(d)).collect();

        // Phase 1: affinity blocks of size (d_min + 1), density cc^(1/3)
        // (an ER block of density ρ has expected local clustering ρ³ ... so
        // ρ = cc^(1/3) hits the target).
        let mut i = 0usize;
        while i < by_degree.len() {
            let d_min = degrees[by_degree[i] as usize];
            if d_min < 2 {
                i += 1; // degree-1 nodes only participate in phase 2
                continue;
            }
            let bsize = ((d_min + 1) as usize).min(by_degree.len() - i);
            if bsize < 3 {
                break; // tail too small to form a meaningful block
            }
            let rho = self.cc.at(d_min).powf(1.0 / 3.0);
            let block = &by_degree[i..i + bsize];
            for a in 0..bsize {
                for b in (a + 1)..bsize {
                    if rng.next_bool(rho) {
                        let (u, v) = (u64::from(block[a]), u64::from(block[b]));
                        et.push(u.min(v), u.max(v));
                    }
                }
            }
            let within = rho * (bsize as f64 - 1.0);
            for &v in block {
                excess[v as usize] = (excess[v as usize] - within).max(0.0);
            }
            i += bsize;
        }

        // Phase 2: Chung–Lu over the excess degree.
        let m2 = (excess.iter().sum::<f64>() / 2.0).round() as u64;
        if m2 > 0 {
            let phase2 = chung_lu(&excess, m2, rng);
            et.extend_from(&phase2);
        }
        et.canonicalize_undirected();
        et.dedup();
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        let mean = match &self.degree_dist {
            DegreeDist::Constant(k) => *k as f64,
            DegreeDist::PowerLaw(d) => d.mean(),
            DegreeDist::Empirical(d) => d.mean(),
            DegreeDist::Uniform(d) => (d.lo() + d.hi()) as f64 / 2.0,
            _ => 4.0,
        };
        ((2.0 * num_edges as f64 / mean.max(1.0)).round() as u64).max(2)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            degree_distribution: true,
            avg_clustering_per_degree: true,
            communities: true, // emergent from the affinity blocks
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::{average_clustering, degree_assortativity, DegreeStats};
    use datasynth_prng::dist::DiscretePowerLaw;
    use datasynth_tables::Csr;

    fn power_law_bter(cc: CcProfile) -> BterGenerator {
        BterGenerator::new(DegreeDist::PowerLaw(DiscretePowerLaw::new(2.0, 2, 60)), cc)
    }

    #[test]
    fn clustering_tracks_target() {
        let hi = power_law_bter(CcProfile::Constant(0.6));
        let lo = power_law_bter(CcProfile::Constant(0.05));
        let n = 4000;
        let et_hi = hi.run(n, &mut SplitMix64::new(1));
        let et_lo = lo.run(n, &mut SplitMix64::new(1));
        let mut rng = SplitMix64::new(2);
        let mut csr_hi = Csr::undirected(&et_hi, n);
        csr_hi.sort_neighborhoods();
        let mut csr_lo = Csr::undirected(&et_lo, n);
        csr_lo.sort_neighborhoods();
        let cc_hi = average_clustering(&csr_hi, 800, &mut rng);
        let cc_lo = average_clustering(&csr_lo, 800, &mut rng);
        assert!(
            cc_hi > 3.0 * cc_lo,
            "target 0.6 gave {cc_hi}, target 0.05 gave {cc_lo}"
        );
        assert!(cc_hi > 0.25, "high-target clustering {cc_hi}");
    }

    #[test]
    fn degree_distribution_roughly_preserved() {
        let g = power_law_bter(CcProfile::Constant(0.3));
        let n = 5000;
        let et = g.run(n, &mut SplitMix64::new(3));
        let stats = DegreeStats::from_degrees(&et.degrees(n)).unwrap();
        let target = DiscretePowerLaw::new(2.0, 2, 60).mean();
        assert!(
            (stats.mean - target).abs() / target < 0.35,
            "mean {} vs target {target}",
            stats.mean
        );
    }

    #[test]
    fn assortativity_is_positive() {
        // BTER's block structure makes graphs assortative (paper §3).
        let g = power_law_bter(CcProfile::Constant(0.4));
        let n = 4000;
        let et = g.run(n, &mut SplitMix64::new(4));
        let r = degree_assortativity(&et, n).unwrap();
        assert!(r > 0.0, "assortativity {r}");
    }

    #[test]
    fn simple_graph_output() {
        let g = power_law_bter(CcProfile::ExponentialDecay {
            c0: 0.8,
            scale: 15.0,
        });
        let et = g.run(1000, &mut SplitMix64::new(5));
        for (t, h) in et.iter() {
            assert!(t < h);
        }
        let mut c = et.clone();
        assert_eq!(c.dedup(), 0);
    }

    #[test]
    fn cc_profile_shapes() {
        let decay = CcProfile::ExponentialDecay {
            c0: 0.9,
            scale: 10.0,
        };
        assert!(decay.at(2) > decay.at(20));
        let table = CcProfile::Table(vec![0.0, 0.5, 0.25]);
        assert_eq!(table.at(1), 0.5);
        assert_eq!(table.at(99), 0.25, "last entry extends");
        assert_eq!(CcProfile::Constant(2.0).at(5), 1.0, "clamped");
    }
}
