//! Planted Stochastic Block Model.
//!
//! SBM-Part assumes the target correlation is SBM-shaped; generating *from*
//! a planted SBM gives matching tests a ground truth where the optimal
//! assignment (and its score) is known.

use std::ops::Range;

use datasynth_prng::{CounterStream, SplitMix64};
use datasynth_tables::EdgeTable;

use crate::chunk::{self, pair_from_index, sample_indices_in, SLOT_PAIRS};
use crate::{Capabilities, PlantedPartition, StructureGenerator};

/// SBM with explicit group sizes and a full inter-group edge-probability
/// matrix (symmetric; the diagonal is within-group density).
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedSbm {
    sizes: Vec<u64>,
    density: Vec<Vec<f64>>,
}

impl PlantedSbm {
    /// Create from group sizes and a `k × k` symmetric density matrix.
    pub fn new(sizes: Vec<u64>, density: Vec<Vec<f64>>) -> Self {
        let k = sizes.len();
        assert!(k > 0, "need at least one group");
        assert_eq!(density.len(), k, "square matrix required");
        for row in &density {
            assert_eq!(row.len(), k, "square matrix required");
            for &p in row {
                assert!((0.0..=1.0).contains(&p), "density out of range");
            }
        }
        for i in 0..k {
            for j in 0..k {
                assert!(
                    (density[i][j] - density[j][i]).abs() < 1e-12,
                    "matrix must be symmetric"
                );
            }
        }
        Self { sizes, density }
    }

    /// Homophilous shorthand: `k` equal groups, `p_intra` inside,
    /// `p_inter` across.
    pub fn homophilous(k: usize, group_size: u64, p_intra: f64, p_inter: f64) -> Self {
        let density = (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| if i == j { p_intra } else { p_inter })
                    .collect()
            })
            .collect();
        Self::new(vec![group_size; k], density)
    }

    /// Planted group sizes.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Total nodes across groups.
    pub fn total_nodes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    fn labels(&self) -> Vec<u32> {
        let mut labels = Vec::with_capacity(self.total_nodes() as usize);
        for (g, &s) in self.sizes.iter().enumerate() {
            labels.extend(std::iter::repeat_n(g as u32, s as usize));
        }
        labels
    }

    /// Enumerate the upper-triangle blocks `(i, j)` with their node-id
    /// offsets and linearized pair-space sizes — the independent-edge units
    /// of the model, each of which divides into [`SLOT_PAIRS`]-wide slots.
    fn blocks(&self) -> Vec<SbmBlock> {
        let offsets: Vec<u64> = {
            let mut acc = 0;
            self.sizes
                .iter()
                .map(|&s| {
                    let off = acc;
                    acc += s;
                    off
                })
                .collect()
        };
        let k = self.sizes.len();
        let mut blocks = Vec::with_capacity(k * (k + 1) / 2);
        for i in 0..k {
            for j in i..k {
                let pairs = if i == j {
                    let s = self.sizes[i];
                    if s < 2 {
                        0
                    } else {
                        s * (s - 1) / 2
                    }
                } else {
                    self.sizes[i] * self.sizes[j]
                };
                blocks.push(SbmBlock {
                    off_i: offsets[i],
                    off_j: offsets[j],
                    cols: self.sizes[j],
                    diagonal: i == j,
                    density: self.density[i][j],
                    pairs,
                });
            }
        }
        blocks
    }

    /// Expected edge count.
    pub fn expected_edges(&self) -> f64 {
        let k = self.sizes.len();
        let mut total = 0.0;
        for i in 0..k {
            for j in i..k {
                let pairs = if i == j {
                    (self.sizes[i] * self.sizes[i].saturating_sub(1)) as f64 / 2.0
                } else {
                    (self.sizes[i] * self.sizes[j]) as f64
                };
                total += pairs * self.density[i][j];
            }
        }
        total
    }
}

/// One upper-triangle block of the model, as a unit of independent edges.
struct SbmBlock {
    off_i: u64,
    off_j: u64,
    /// Column count of the cross block (`sizes[j]`); unused on diagonals.
    cols: u64,
    diagonal: bool,
    density: f64,
    /// Linearized pair-space size of the block.
    pairs: u64,
}

impl SbmBlock {
    fn slots(&self) -> u64 {
        chunk::slots_for_pairs(self.pairs)
    }

    /// Decode a block-local pair index into global `(tail, head)` ids.
    fn pair(&self, idx: u64) -> (u64, u64) {
        if self.diagonal {
            let (t, h) = pair_from_index(idx);
            (self.off_i + t, self.off_j + h)
        } else {
            (self.off_i + idx / self.cols, self.off_j + idx % self.cols)
        }
    }
}

impl StructureGenerator for PlantedSbm {
    fn name(&self) -> &'static str {
        "sbm"
    }

    /// `n` is ignored — the planted sizes define the node count (the trait
    /// is still useful so SBM plugs into the same pipeline slots).
    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        chunk::run_chunked(self, n, rng)
    }

    fn chunkable(&self) -> bool {
        true
    }

    fn num_slots(&self, _n: u64) -> u64 {
        self.blocks().iter().map(SbmBlock::slots).sum()
    }

    fn run_range(&self, _n: u64, range: Range<u64>, stream: &CounterStream) -> EdgeTable {
        let mut et = EdgeTable::new("sbm");
        let mut base = 0u64;
        for block in self.blocks() {
            let end = base + block.slots();
            let lo_slot = range.start.max(base);
            let hi_slot = range.end.min(end);
            for slot in lo_slot..hi_slot {
                let lo = (slot - base) * SLOT_PAIRS;
                let hi = (lo + SLOT_PAIRS).min(block.pairs);
                let mut rng = stream.substream(slot);
                sample_indices_in(lo, hi, block.density, &mut rng, |idx| {
                    let (t, h) = block.pair(idx);
                    et.push(t, h);
                });
            }
            base = end;
            if base >= range.end {
                break;
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, _num_edges: u64) -> u64 {
        self.total_nodes()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            communities: true,
            scalable: true,
            ..Default::default()
        }
    }
}

impl PlantedPartition for PlantedSbm {
    fn run_with_partition(&self, n: u64, rng: &mut SplitMix64) -> (EdgeTable, Vec<u32>) {
        (self.run(n, rng), self.labels())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::modularity;

    #[test]
    fn labels_follow_sizes() {
        let sbm = PlantedSbm::homophilous(3, 10, 0.5, 0.01);
        let (_, labels) = sbm.run_with_partition(0, &mut SplitMix64::new(1));
        assert_eq!(labels.len(), 30);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[10], 1);
        assert_eq!(labels[29], 2);
    }

    #[test]
    fn edge_count_near_expectation() {
        let sbm = PlantedSbm::homophilous(4, 100, 0.2, 0.01);
        let (et, _) = sbm.run_with_partition(0, &mut SplitMix64::new(2));
        let expected = sbm.expected_edges();
        let got = et.len() as f64;
        assert!(
            (got - expected).abs() < 6.0 * expected.sqrt(),
            "{got} vs {expected}"
        );
    }

    #[test]
    fn homophily_shows_in_modularity() {
        let sbm = PlantedSbm::homophilous(4, 50, 0.4, 0.01);
        let (et, labels) = sbm.run_with_partition(0, &mut SplitMix64::new(3));
        let q = modularity(&et, 200, &labels);
        assert!(q > 0.5, "planted split modularity {q}");
    }

    #[test]
    fn asymmetric_sizes_and_zero_blocks() {
        let sbm = PlantedSbm::new(vec![5, 20], vec![vec![1.0, 0.0], vec![0.0, 0.1]]);
        let (et, labels) = sbm.run_with_partition(0, &mut SplitMix64::new(4));
        assert_eq!(labels.len(), 25);
        // Group 0 is a complete K5 = 10 edges; no cross edges at all.
        let cross = et
            .iter()
            .filter(|&(t, h)| labels[t as usize] != labels[h as usize])
            .count();
        assert_eq!(cross, 0);
        let k5 = et.iter().filter(|&(t, h)| t < 5 && h < 5).count();
        assert_eq!(k5, 10);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_matrix() {
        PlantedSbm::new(vec![2, 2], vec![vec![0.1, 0.2], vec![0.3, 0.1]]);
    }

    #[test]
    fn run_equals_partitioned_run_range() {
        use datasynth_prng::CounterStream;
        // Sizes straddling the slot width so several blocks span multiple
        // slots, plus a zero-density block and a sub-2 group.
        let sbm = PlantedSbm::new(
            vec![1, 300, 250],
            vec![
                vec![0.0, 0.5, 0.0],
                vec![0.5, 0.08, 0.01],
                vec![0.0, 0.01, 0.12],
            ],
        );
        let whole = sbm.run(0, &mut SplitMix64::new(13));
        let stream = CounterStream::new(SplitMix64::new(13).next_u64());
        let slots = sbm.num_slots(0);
        assert!(slots > 3, "expected a multi-slot pair space, got {slots}");
        let mut parts = EdgeTable::new(sbm.name());
        let mut at = 0;
        while at < slots {
            let next = (at + 2).min(slots);
            parts.extend_from(&sbm.run_range(0, at..next, &stream));
            at = next;
        }
        assert_eq!(whole, sbm.finalize(parts));
    }
}
