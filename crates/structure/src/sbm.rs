//! Planted Stochastic Block Model.
//!
//! SBM-Part assumes the target correlation is SBM-shaped; generating *from*
//! a planted SBM gives matching tests a ground truth where the optimal
//! assignment (and its score) is known.

use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::{Capabilities, PlantedPartition, StructureGenerator};

/// SBM with explicit group sizes and a full inter-group edge-probability
/// matrix (symmetric; the diagonal is within-group density).
#[derive(Debug, Clone, PartialEq)]
pub struct PlantedSbm {
    sizes: Vec<u64>,
    density: Vec<Vec<f64>>,
}

impl PlantedSbm {
    /// Create from group sizes and a `k × k` symmetric density matrix.
    pub fn new(sizes: Vec<u64>, density: Vec<Vec<f64>>) -> Self {
        let k = sizes.len();
        assert!(k > 0, "need at least one group");
        assert_eq!(density.len(), k, "square matrix required");
        for row in &density {
            assert_eq!(row.len(), k, "square matrix required");
            for &p in row {
                assert!((0.0..=1.0).contains(&p), "density out of range");
            }
        }
        #[allow(clippy::needless_range_loop)] // matrix (i, j) indexing
        for i in 0..k {
            for j in 0..k {
                assert!(
                    (density[i][j] - density[j][i]).abs() < 1e-12,
                    "matrix must be symmetric"
                );
            }
        }
        Self { sizes, density }
    }

    /// Homophilous shorthand: `k` equal groups, `p_intra` inside,
    /// `p_inter` across.
    pub fn homophilous(k: usize, group_size: u64, p_intra: f64, p_inter: f64) -> Self {
        let density = (0..k)
            .map(|i| {
                (0..k)
                    .map(|j| if i == j { p_intra } else { p_inter })
                    .collect()
            })
            .collect();
        Self::new(vec![group_size; k], density)
    }

    /// Planted group sizes.
    pub fn sizes(&self) -> &[u64] {
        &self.sizes
    }

    /// Total nodes across groups.
    pub fn total_nodes(&self) -> u64 {
        self.sizes.iter().sum()
    }

    fn labels(&self) -> Vec<u32> {
        let mut labels = Vec::with_capacity(self.total_nodes() as usize);
        for (g, &s) in self.sizes.iter().enumerate() {
            labels.extend(std::iter::repeat_n(g as u32, s as usize));
        }
        labels
    }

    /// Expected edge count.
    pub fn expected_edges(&self) -> f64 {
        let k = self.sizes.len();
        let mut total = 0.0;
        for i in 0..k {
            for j in i..k {
                let pairs = if i == j {
                    (self.sizes[i] * self.sizes[i].saturating_sub(1)) as f64 / 2.0
                } else {
                    (self.sizes[i] * self.sizes[j]) as f64
                };
                total += pairs * self.density[i][j];
            }
        }
        total
    }
}

impl StructureGenerator for PlantedSbm {
    fn name(&self) -> &'static str {
        "sbm"
    }

    /// `n` is ignored — the planted sizes define the node count (the trait
    /// is still useful so SBM plugs into the same pipeline slots).
    fn run(&self, _n: u64, rng: &mut SplitMix64) -> EdgeTable {
        self.run_with_partition(0, rng).0
    }

    fn num_nodes_for_edges(&self, _num_edges: u64) -> u64 {
        self.total_nodes()
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            communities: true,
            ..Default::default()
        }
    }
}

impl PlantedPartition for PlantedSbm {
    fn run_with_partition(&self, _n: u64, rng: &mut SplitMix64) -> (EdgeTable, Vec<u32>) {
        let labels = self.labels();
        let offsets: Vec<u64> = {
            let mut acc = 0;
            self.sizes
                .iter()
                .map(|&s| {
                    let off = acc;
                    acc += s;
                    off
                })
                .collect()
        };
        let mut et = EdgeTable::with_capacity("sbm", self.expected_edges() as usize);
        let k = self.sizes.len();
        for i in 0..k {
            for j in i..k {
                let p = self.density[i][j];
                if p <= 0.0 {
                    continue;
                }
                if i == j {
                    sample_block_diag(&mut et, offsets[i], self.sizes[i], p, rng);
                } else {
                    sample_block_cross(
                        &mut et,
                        offsets[i],
                        self.sizes[i],
                        offsets[j],
                        self.sizes[j],
                        p,
                        rng,
                    );
                }
            }
        }
        (et, labels)
    }
}

/// Geometric skip sampling over the `s·(s-1)/2` pairs of one group.
fn sample_block_diag(et: &mut EdgeTable, off: u64, s: u64, p: f64, rng: &mut SplitMix64) {
    if s < 2 {
        return;
    }
    let total = s * (s - 1) / 2;
    visit_sampled_indices(total, p, rng, |idx| {
        let h = ((1.0 + (1.0 + 8.0 * idx as f64).sqrt()) / 2.0).floor() as u64;
        let h = if h * (h - 1) / 2 > idx { h - 1 } else { h };
        let h = if (h + 1) * h / 2 <= idx { h + 1 } else { h };
        let t = idx - h * (h - 1) / 2;
        et.push(off + t, off + h);
    });
}

/// Geometric skip sampling over the `s1·s2` cross pairs of two groups.
fn sample_block_cross(
    et: &mut EdgeTable,
    off1: u64,
    s1: u64,
    off2: u64,
    s2: u64,
    p: f64,
    rng: &mut SplitMix64,
) {
    visit_sampled_indices(s1 * s2, p, rng, |idx| {
        et.push(off1 + idx / s2, off2 + idx % s2);
    });
}

fn visit_sampled_indices(total: u64, p: f64, rng: &mut SplitMix64, mut f: impl FnMut(u64)) {
    if p >= 1.0 {
        for idx in 0..total {
            f(idx);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut idx: i128 = -1;
    loop {
        let u = rng.next_f64();
        let skip = ((1.0 - u).ln() / log_q).floor() as i128 + 1;
        idx += skip.max(1);
        if idx >= total as i128 {
            return;
        }
        f(idx as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::modularity;

    #[test]
    fn labels_follow_sizes() {
        let sbm = PlantedSbm::homophilous(3, 10, 0.5, 0.01);
        let (_, labels) = sbm.run_with_partition(0, &mut SplitMix64::new(1));
        assert_eq!(labels.len(), 30);
        assert_eq!(labels[0], 0);
        assert_eq!(labels[10], 1);
        assert_eq!(labels[29], 2);
    }

    #[test]
    fn edge_count_near_expectation() {
        let sbm = PlantedSbm::homophilous(4, 100, 0.2, 0.01);
        let (et, _) = sbm.run_with_partition(0, &mut SplitMix64::new(2));
        let expected = sbm.expected_edges();
        let got = et.len() as f64;
        assert!(
            (got - expected).abs() < 6.0 * expected.sqrt(),
            "{got} vs {expected}"
        );
    }

    #[test]
    fn homophily_shows_in_modularity() {
        let sbm = PlantedSbm::homophilous(4, 50, 0.4, 0.01);
        let (et, labels) = sbm.run_with_partition(0, &mut SplitMix64::new(3));
        let q = modularity(&et, 200, &labels);
        assert!(q > 0.5, "planted split modularity {q}");
    }

    #[test]
    fn asymmetric_sizes_and_zero_blocks() {
        let sbm = PlantedSbm::new(vec![5, 20], vec![vec![1.0, 0.0], vec![0.0, 0.1]]);
        let (et, labels) = sbm.run_with_partition(0, &mut SplitMix64::new(4));
        assert_eq!(labels.len(), 25);
        // Group 0 is a complete K5 = 10 edges; no cross edges at all.
        let cross = et
            .iter()
            .filter(|&(t, h)| labels[t as usize] != labels[h as usize])
            .count();
        assert_eq!(cross, 0);
        let k5 = et.iter().filter(|&(t, h)| t < 5 && h < 5).count();
        assert_eq!(k5, 10);
    }

    #[test]
    #[should_panic(expected = "symmetric")]
    fn rejects_asymmetric_matrix() {
        PlantedSbm::new(vec![2, 2], vec![vec![0.1, 0.2], vec![0.3, 0.1]]);
    }
}
