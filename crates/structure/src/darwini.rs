//! Darwini-style refinement of BTER (Edunov et al., 2016): instead of one
//! clustering target per degree, nodes carry individually sampled
//! clustering targets, and affinity blocks group nodes with similar
//! *(degree, clustering)* demands. This captures the clustering coefficient
//! **distribution** per degree rather than just its mean — the `ccdd`
//! column of the paper's Table 1.

use datasynth_prng::dist::{Normal, Sampler};
use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::bter::CcProfile;
use crate::degree_seq::chung_lu;
use crate::{BuildError, Capabilities, DegreeDist, StructureGenerator};

/// Darwini-style generator: per-node clustering targets drawn around a
/// degree-dependent mean with configurable spread.
#[derive(Debug, Clone)]
pub struct DarwiniGenerator {
    degree_dist: DegreeDist,
    cc_mean: CcProfile,
    cc_spread: f64,
    buckets: u32,
}

impl DarwiniGenerator {
    /// Create; `cc_spread` is the std-dev of per-node clustering targets
    /// around the profile mean, `buckets` the number of clustering bins
    /// used when forming blocks. Both arrive straight from DSL/builder
    /// params through the registry, so out-of-range values are errors, not
    /// panics.
    pub fn new(
        degree_dist: DegreeDist,
        cc_mean: CcProfile,
        cc_spread: f64,
        buckets: u32,
    ) -> Result<Self, BuildError> {
        if !(0.0..=0.5).contains(&cc_spread) {
            return Err(BuildError::InvalidParam {
                generator: "darwini",
                param: "cc_spread",
                reason: format!("must be in [0, 0.5], got {cc_spread}"),
            });
        }
        if buckets < 1 {
            return Err(BuildError::InvalidParam {
                generator: "darwini",
                param: "buckets",
                reason: "need at least one clustering bucket".into(),
            });
        }
        Ok(Self {
            degree_dist,
            cc_mean,
            cc_spread,
            buckets,
        })
    }

    fn draw_degree(&self, rng: &mut SplitMix64) -> u32 {
        let d = match &self.degree_dist {
            DegreeDist::Constant(k) => *k,
            DegreeDist::Uniform(d) => d.sample(rng),
            DegreeDist::Zipf(d) => d.sample(rng),
            DegreeDist::PowerLaw(d) => d.sample(rng),
            DegreeDist::Geometric(d) => d.sample(rng),
            DegreeDist::Empirical(d) => d.sample(rng),
        };
        d.clamp(1, u64::from(u32::MAX)) as u32
    }
}

impl StructureGenerator for DarwiniGenerator {
    fn name(&self) -> &'static str {
        "darwini"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        // Per-node degree and clustering demand.
        let degrees: Vec<u32> = (0..n).map(|_| self.draw_degree(rng)).collect();
        let cc_targets: Vec<f64> = degrees
            .iter()
            .map(|&d| {
                let mean = self.cc_mean.at(d);
                let noise = Normal::new(mean, self.cc_spread).sample(rng);
                noise.clamp(0.0, 1.0)
            })
            .collect();

        // Bucket nodes by (degree, cc bin); each bucket forms BTER-style
        // blocks of size (degree + 1).
        let bucket_of = |v: usize| {
            let bin = (cc_targets[v] * f64::from(self.buckets)).floor() as u32;
            (degrees[v], bin.min(self.buckets - 1))
        };
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_by_key(|&v| bucket_of(v as usize));

        let mut et = EdgeTable::with_capacity(
            "darwini",
            degrees.iter().map(|&d| d as usize).sum::<usize>() / 2,
        );
        let mut excess: Vec<f64> = degrees.iter().map(|&d| f64::from(d)).collect();

        let mut i = 0usize;
        while i < order.len() {
            let v0 = order[i] as usize;
            let d_min = degrees[v0];
            if d_min < 2 {
                i += 1;
                continue;
            }
            let key = bucket_of(v0);
            // Block is at most d_min+1 nodes from the same bucket.
            let mut bsize = 1usize;
            while i + bsize < order.len()
                && bsize < (d_min + 1) as usize
                && bucket_of(order[i + bsize] as usize) == key
            {
                bsize += 1;
            }
            if bsize >= 3 {
                let rho = cc_targets[v0].powf(1.0 / 3.0);
                let block = &order[i..i + bsize];
                for a in 0..bsize {
                    for b in (a + 1)..bsize {
                        if rng.next_bool(rho) {
                            let (u, v) = (u64::from(block[a]), u64::from(block[b]));
                            et.push(u.min(v), u.max(v));
                        }
                    }
                }
                let within = rho * (bsize as f64 - 1.0);
                for &v in block {
                    excess[v as usize] = (excess[v as usize] - within).max(0.0);
                }
            }
            i += bsize;
        }

        let m2 = (excess.iter().sum::<f64>() / 2.0).round() as u64;
        if m2 > 0 {
            et.extend_from(&chung_lu(&excess, m2, rng));
        }
        et.canonicalize_undirected();
        et.dedup();
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        let mean = match &self.degree_dist {
            DegreeDist::Constant(k) => *k as f64,
            DegreeDist::PowerLaw(d) => d.mean(),
            DegreeDist::Empirical(d) => d.mean(),
            _ => 4.0,
        };
        ((2.0 * num_edges as f64 / mean.max(1.0)).round() as u64).max(2)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            degree_distribution: true,
            avg_clustering_per_degree: true,
            clustering_per_degree_dist: true,
            communities: true,
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::{local_clustering, Summary};
    use datasynth_prng::dist::DiscretePowerLaw;
    use datasynth_tables::Csr;

    fn generator(spread: f64) -> DarwiniGenerator {
        DarwiniGenerator::new(
            DegreeDist::PowerLaw(DiscretePowerLaw::new(2.0, 3, 40)),
            CcProfile::Constant(0.4),
            spread,
            8,
        )
        .unwrap()
    }

    #[test]
    fn bad_spread_and_buckets_are_errors_not_panics() {
        let dist = || DegreeDist::PowerLaw(DiscretePowerLaw::new(2.0, 3, 40));
        let err = DarwiniGenerator::new(dist(), CcProfile::Constant(0.4), 0.9, 8).unwrap_err();
        assert!(matches!(
            err,
            BuildError::InvalidParam {
                param: "cc_spread",
                ..
            }
        ));
        let err = DarwiniGenerator::new(dist(), CcProfile::Constant(0.4), 0.1, 0).unwrap_err();
        assert!(matches!(
            err,
            BuildError::InvalidParam {
                param: "buckets",
                ..
            }
        ));
    }

    #[test]
    fn produces_simple_graph_with_clustering() {
        let g = generator(0.15);
        let n = 3000;
        let et = g.run(n, &mut SplitMix64::new(1));
        for (t, h) in et.iter() {
            assert!(t < h);
        }
        let mut csr = Csr::undirected(&et, n);
        csr.sort_neighborhoods();
        let ccs: Vec<f64> = (0..n).map(|v| local_clustering(&csr, v)).collect();
        let s = Summary::from_samples(&ccs).unwrap();
        assert!(s.mean > 0.1, "mean clustering {}", s.mean);
    }

    #[test]
    fn spread_widens_clustering_distribution() {
        let n = 3000;
        let narrow = generator(0.0).run(n, &mut SplitMix64::new(2));
        let wide = generator(0.3).run(n, &mut SplitMix64::new(2));
        let spread_of = |et: &EdgeTable| {
            let mut csr = Csr::undirected(et, n);
            csr.sort_neighborhoods();
            // Only mid-degree nodes: clustering is well-defined there.
            let ccs: Vec<f64> = (0..n)
                .filter(|&v| csr.degree(v) >= 4)
                .map(|v| local_clustering(&csr, v))
                .collect();
            Summary::from_samples(&ccs).unwrap().std_dev
        };
        let (sn, sw) = (spread_of(&narrow), spread_of(&wide));
        assert!(sw > sn, "wide {sw} must exceed narrow {sn}");
    }

    #[test]
    fn deterministic() {
        let g = generator(0.1);
        assert_eq!(
            g.run(500, &mut SplitMix64::new(3)),
            g.run(500, &mut SplitMix64::new(3))
        );
    }
}
