//! Shared machinery for *chunkable* (counter-based) structure generation.
//!
//! A chunkable generator partitions its work into fixed, generator-defined
//! slots — an edge index for RMAT, a window of linearized pair indices for
//! Erdős–Rényi and SBM blocks — and samples each slot from an independent
//! [`CounterStream`] substream. Because the partition is fixed (it never
//! depends on the thread count) and each slot is a pure function of
//! `(stream key, slot index)`, concatenating any ordered partition of the
//! slot range reproduces the sequential output byte-for-byte.

use std::ops::Range;

use datasynth_prng::{CounterStream, SplitMix64};
use datasynth_tables::EdgeTable;

use crate::StructureGenerator;

/// Pair indices per work slot for generators that sample a linearized pair
/// space. Small enough that modest graphs split into many slots, large
/// enough that per-slot stream setup is amortized away.
pub(crate) const SLOT_PAIRS: u64 = 1 << 14;

/// Number of [`SLOT_PAIRS`]-wide slots covering `total` pair indices.
pub(crate) fn slots_for_pairs(total: u64) -> u64 {
    total.div_ceil(SLOT_PAIRS)
}

/// Visit the Bernoulli(`p`)-sampled indices of `[lo, hi)` via geometric
/// skips drawn from `rng`. Restarting the skip chain at a slot boundary
/// does not change the distribution — the Bernoulli process is memoryless —
/// which is exactly what makes fixed-width slots a valid parallel unit.
pub(crate) fn sample_indices_in(
    lo: u64,
    hi: u64,
    p: f64,
    rng: &mut SplitMix64,
    mut f: impl FnMut(u64),
) {
    if p <= 0.0 || lo >= hi {
        return;
    }
    if p >= 1.0 {
        for idx in lo..hi {
            f(idx);
        }
        return;
    }
    let log_q = (1.0 - p).ln();
    let mut idx: i128 = i128::from(lo) - 1;
    loop {
        let u = rng.next_f64();
        let skip = ((1.0 - u).ln() / log_q).floor() as i128 + 1;
        idx += skip.max(1);
        if idx >= i128::from(hi) {
            return;
        }
        f(idx as u64);
    }
}

/// Decode a linearized strict-lower-triangle index into `(t, h)` with
/// `t < h`: the inverse of `idx = h(h-1)/2 + t` for `0 <= t < h`.
pub(crate) fn pair_from_index(idx: u64) -> (u64, u64) {
    let h = ((1.0 + (1.0 + 8.0 * idx as f64).sqrt()) / 2.0).floor() as u64;
    // Guard against float rounding at large indices.
    let h = if h * (h - 1) / 2 > idx { h - 1 } else { h };
    let h = if (h + 1) * h / 2 <= idx { h + 1 } else { h };
    let t = idx - h * (h - 1) / 2;
    (t, h)
}

/// The canonical `k`-way row partition used by sharded generation: shard
/// `index` of `count` owns the global rows `[n*index/count, n*(index+1)/count)`
/// of an `n`-row table. The windows of all `count` shards are disjoint,
/// ordered by shard index, and tile `0..n` exactly — so concatenating the
/// shards' row slices in index order reconstructs the full table. The
/// partition is a pure function of `(n, index, count)`: every shard (and
/// every sink) derives the same windows independently, with no
/// coordination.
///
/// # Panics
///
/// Panics when `count == 0` or `index >= count`; callers validate shard
/// specs before reaching this function.
pub fn shard_window(n: u64, index: u64, count: u64) -> Range<u64> {
    assert!(count > 0, "shard count must be positive");
    assert!(
        index < count,
        "shard index {index} out of range for {count} shards"
    );
    // u128 intermediates: n * count must not overflow for any u64 inputs.
    let lo = ((n as u128 * index as u128) / count as u128) as u64;
    let hi = ((n as u128 * (index as u128 + 1)) / count as u128) as u64;
    lo..hi
}

/// Run a chunkable generator over its whole slot range on one thread,
/// deriving the counter key from `rng` — the reference semantics that any
/// partitioned `run_range` execution must reproduce byte-for-byte. This is
/// the canonical `run()` body for chunkable generators; the pipeline runner
/// performs the same derivation, splitting the slot range across workers.
pub fn run_chunked<G: StructureGenerator + ?Sized>(
    g: &G,
    n: u64,
    rng: &mut SplitMix64,
) -> EdgeTable {
    let stream = CounterStream::new(rng.next_u64());
    let et = g.run_range(n, 0..g.num_slots(n), &stream);
    g.finalize(et)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_roundtrip() {
        let mut idx = 0u64;
        for h in 1..40u64 {
            for t in 0..h {
                assert_eq!(pair_from_index(idx), (t, h), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn sample_indices_edge_probabilities() {
        let mut rng = SplitMix64::new(1);
        let mut seen = Vec::new();
        sample_indices_in(10, 20, 1.0, &mut rng, |i| seen.push(i));
        assert_eq!(seen, (10..20).collect::<Vec<_>>());
        seen.clear();
        sample_indices_in(10, 20, 0.0, &mut rng, |i| seen.push(i));
        assert!(seen.is_empty());
        sample_indices_in(20, 10, 0.5, &mut rng, |i| seen.push(i));
        assert!(seen.is_empty(), "empty window samples nothing");
    }

    #[test]
    fn sample_indices_stays_in_window_and_concentrates() {
        let mut total = 0u64;
        for slot in 0..50u64 {
            let mut rng = SplitMix64::new(slot);
            let (lo, hi) = (slot * 1000, slot * 1000 + 1000);
            sample_indices_in(lo, hi, 0.1, &mut rng, |i| {
                assert!((lo..hi).contains(&i));
                total += 1;
            });
        }
        // 50 windows x 1000 indices x p=0.1 = 5000 expected.
        assert!((4400..5600).contains(&total), "sampled {total}");
    }

    #[test]
    fn shard_windows_tile_the_row_space() {
        for &n in &[0u64, 1, 7, 1000, 1001] {
            for k in 1..=8u64 {
                let mut next = 0u64;
                for i in 0..k {
                    let w = shard_window(n, i, k);
                    assert_eq!(w.start, next, "n={n} k={k} i={i} must be contiguous");
                    assert!(w.end >= w.start);
                    next = w.end;
                }
                assert_eq!(next, n, "n={n} k={k} must be exhaustive");
            }
        }
        // Balanced to within one row.
        for i in 0..7u64 {
            let w = shard_window(100, i, 7);
            assert!((w.end - w.start).abs_diff(100 / 7) <= 1);
        }
    }

    #[test]
    fn shard_window_survives_huge_tables() {
        // n * count overflows u64; u128 arithmetic must still tile exactly.
        let n = u64::MAX;
        let mut next = 0u64;
        for i in 0..5 {
            let w = shard_window(n, i, 5);
            assert_eq!(w.start, next);
            assert!(w.end > w.start);
            next = w.end;
        }
        assert_eq!(next, n);
    }

    #[test]
    fn slots_cover_the_pair_space() {
        assert_eq!(slots_for_pairs(0), 0);
        assert_eq!(slots_for_pairs(1), 1);
        assert_eq!(slots_for_pairs(SLOT_PAIRS), 1);
        assert_eq!(slots_for_pairs(SLOT_PAIRS + 1), 2);
    }
}
