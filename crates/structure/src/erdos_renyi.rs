//! Erdős–Rényi random graphs: `G(n, p)` with geometric skip sampling and
//! `G(n, m)` with distinct-pair sampling.

use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::{Capabilities, StructureGenerator};

/// `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`. Sampling skips over non-edges geometrically, so the
/// cost is O(m), not O(n²).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gnp {
    p: f64,
}

impl Gnp {
    /// Create with edge probability `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        Self { p }
    }

    fn pair_from_index(idx: u64) -> (u64, u64) {
        // Inverse of idx = h(h-1)/2 + t for 0 <= t < h.
        let h = ((1.0 + (1.0 + 8.0 * idx as f64).sqrt()) / 2.0).floor() as u64;
        // Guard against float rounding at large indices.
        let h = if h * (h - 1) / 2 > idx { h - 1 } else { h };
        let h = if (h + 1) * h / 2 <= idx { h + 1 } else { h };
        let t = idx - h * (h - 1) / 2;
        (t, h)
    }
}

impl StructureGenerator for Gnp {
    fn name(&self) -> &'static str {
        "erdos_renyi"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut et = EdgeTable::new("erdos_renyi");
        if n < 2 || self.p <= 0.0 {
            return et;
        }
        let total_pairs = n * (n - 1) / 2;
        if self.p >= 1.0 {
            for h in 1..n {
                for t in 0..h {
                    et.push(t, h);
                }
            }
            return et;
        }
        // Geometric skips over the linearized pair index.
        let log_q = (1.0 - self.p).ln();
        let mut idx: i128 = -1;
        loop {
            let u = rng.next_f64();
            let skip = ((1.0 - u).ln() / log_q).floor() as i128 + 1;
            idx += skip.max(1);
            if idx >= total_pairs as i128 {
                break;
            }
            let (t, h) = Self::pair_from_index(idx as u64);
            et.push(t, h);
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        if self.p <= 0.0 {
            return 0;
        }
        // m = p n(n-1)/2  =>  n ≈ (1 + sqrt(1 + 8m/p)) / 2.
        let m = num_edges as f64;
        ((1.0 + (1.0 + 8.0 * m / self.p).sqrt()) / 2.0).round() as u64
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scalable: true,
            ..Default::default()
        }
    }
}

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gnm {
    m: u64,
}

impl Gnm {
    /// Create with edge count `m`.
    pub fn new(m: u64) -> Self {
        Self { m }
    }
}

impl StructureGenerator for Gnm {
    fn name(&self) -> &'static str {
        "gnm"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut et = EdgeTable::with_capacity("gnm", self.m as usize);
        if n < 2 {
            return et;
        }
        let total_pairs = n * (n - 1) / 2;
        let m = self.m.min(total_pairs);
        let mut chosen = std::collections::HashSet::with_capacity(m as usize);
        while (chosen.len() as u64) < m {
            let idx = rng.next_below(total_pairs);
            if chosen.insert(idx) {
                let (t, h) = Gnp::pair_from_index(idx);
                et.push(t, h);
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        // Any n with enough pairs works; pick the density of sqrt scaling.
        (((num_edges * 2) as f64).sqrt().ceil() as u64).max(2)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pair_index_roundtrip() {
        let mut idx = 0u64;
        for h in 1..40u64 {
            for t in 0..h {
                assert_eq!(Gnp::pair_from_index(idx), (t, h), "idx {idx}");
                idx += 1;
            }
        }
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let g = Gnp::new(0.01);
        let mut rng = SplitMix64::new(1);
        let n = 1000u64;
        let et = g.run(n, &mut rng);
        let expected = 0.01 * (n * (n - 1) / 2) as f64;
        let got = et.len() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "{got} vs {expected}"
        );
        // All edges valid and canonical.
        for (t, h) in et.iter() {
            assert!(t < h && h < n);
        }
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let et = Gnp::new(1.0).run(5, &mut SplitMix64::new(2));
        assert_eq!(et.len(), 10);
    }

    #[test]
    fn gnp_p_zero_is_empty() {
        assert!(Gnp::new(0.0).run(100, &mut SplitMix64::new(3)).is_empty());
    }

    #[test]
    fn gnp_sizing_inverse() {
        let g = Gnp::new(0.5);
        let n = g.num_nodes_for_edges(1000);
        let pairs = (n * (n - 1) / 2) as f64;
        assert!((pairs * 0.5 - 1000.0).abs() / 1000.0 < 0.1);
    }

    #[test]
    fn gnm_exact_count_distinct() {
        let g = Gnm::new(200);
        let et = g.run(100, &mut SplitMix64::new(4));
        assert_eq!(et.len(), 200);
        let mut c = et.clone();
        c.canonicalize_undirected();
        assert_eq!(c.dedup(), 0);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = Gnm::new(1000);
        let et = g.run(5, &mut SplitMix64::new(5));
        assert_eq!(et.len(), 10);
    }
}
