//! Erdős–Rényi random graphs: `G(n, p)` with geometric skip sampling and
//! `G(n, m)` with distinct-pair sampling.

use std::ops::Range;

use datasynth_prng::{CounterStream, SplitMix64};
use datasynth_tables::EdgeTable;

use crate::chunk::{self, pair_from_index, sample_indices_in, SLOT_PAIRS};
use crate::{Capabilities, StructureGenerator};

/// `G(n, p)`: every unordered pair is an edge independently with
/// probability `p`. Sampling skips over non-edges geometrically, so the
/// cost is O(m), not O(n²) — and because each pair is an independent
/// Bernoulli draw, the pair space divides into fixed windows sampled from
/// counter substreams: this generator is *chunkable*.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Gnp {
    p: f64,
}

impl Gnp {
    /// Create with edge probability `p ∈ [0, 1]`.
    pub fn new(p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "p out of range: {p}");
        Self { p }
    }

    fn total_pairs(n: u64) -> u64 {
        if n < 2 {
            0
        } else {
            n * (n - 1) / 2
        }
    }
}

impl StructureGenerator for Gnp {
    fn name(&self) -> &'static str {
        "erdos_renyi"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        chunk::run_chunked(self, n, rng)
    }

    fn chunkable(&self) -> bool {
        true
    }

    fn num_slots(&self, n: u64) -> u64 {
        if self.p <= 0.0 {
            return 0;
        }
        chunk::slots_for_pairs(Self::total_pairs(n))
    }

    fn run_range(&self, n: u64, range: Range<u64>, stream: &CounterStream) -> EdgeTable {
        let total = Self::total_pairs(n);
        let mut et = EdgeTable::new("erdos_renyi");
        for slot in range {
            let lo = slot * SLOT_PAIRS;
            let hi = (lo + SLOT_PAIRS).min(total);
            let mut rng = stream.substream(slot);
            sample_indices_in(lo, hi, self.p, &mut rng, |idx| {
                let (t, h) = pair_from_index(idx);
                et.push(t, h);
            });
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        if self.p <= 0.0 {
            return 0;
        }
        // m = p n(n-1)/2  =>  n ≈ (1 + sqrt(1 + 8m/p)) / 2.
        let m = num_edges as f64;
        ((1.0 + (1.0 + 8.0 * m / self.p).sqrt()) / 2.0).round() as u64
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scalable: true,
            ..Default::default()
        }
    }
}

/// `G(n, m)`: exactly `m` distinct edges drawn uniformly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Gnm {
    m: u64,
}

impl Gnm {
    /// Create with edge count `m`.
    pub fn new(m: u64) -> Self {
        Self { m }
    }
}

impl StructureGenerator for Gnm {
    fn name(&self) -> &'static str {
        "gnm"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut et = EdgeTable::with_capacity("gnm", self.m as usize);
        if n < 2 {
            return et;
        }
        let total_pairs = n * (n - 1) / 2;
        let m = self.m.min(total_pairs);
        let mut chosen = std::collections::HashSet::with_capacity(m as usize);
        while (chosen.len() as u64) < m {
            let idx = rng.next_below(total_pairs);
            if chosen.insert(idx) {
                let (t, h) = pair_from_index(idx);
                et.push(t, h);
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        // Any n with enough pairs works; pick the density of sqrt scaling.
        (((num_edges * 2) as f64).sqrt().ceil() as u64).max(2)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn run_equals_partitioned_run_range() {
        let g = Gnp::new(0.02);
        let n = 800u64;
        let whole = g.run(n, &mut SplitMix64::new(9));
        // Same key derivation as run(): first draw off the rng.
        let stream = CounterStream::new(SplitMix64::new(9).next_u64());
        let slots = g.num_slots(n);
        let mut parts = EdgeTable::new(g.name());
        let mut at = 0;
        while at < slots {
            let next = (at + 3).min(slots);
            parts.extend_from(&g.run_range(n, at..next, &stream));
            at = next;
        }
        assert_eq!(whole, g.finalize(parts));
        assert!(slots > 1, "n=800 must split into several slots");
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let g = Gnp::new(0.01);
        let mut rng = SplitMix64::new(1);
        let n = 1000u64;
        let et = g.run(n, &mut rng);
        let expected = 0.01 * (n * (n - 1) / 2) as f64;
        let got = et.len() as f64;
        assert!(
            (got - expected).abs() < 5.0 * expected.sqrt(),
            "{got} vs {expected}"
        );
        // All edges valid and canonical.
        for (t, h) in et.iter() {
            assert!(t < h && h < n);
        }
    }

    #[test]
    fn gnp_p_one_is_complete() {
        let et = Gnp::new(1.0).run(5, &mut SplitMix64::new(2));
        assert_eq!(et.len(), 10);
    }

    #[test]
    fn gnp_p_zero_is_empty() {
        assert!(Gnp::new(0.0).run(100, &mut SplitMix64::new(3)).is_empty());
    }

    #[test]
    fn gnp_sizing_inverse() {
        let g = Gnp::new(0.5);
        let n = g.num_nodes_for_edges(1000);
        let pairs = (n * (n - 1) / 2) as f64;
        assert!((pairs * 0.5 - 1000.0).abs() / 1000.0 < 0.1);
    }

    #[test]
    fn gnm_exact_count_distinct() {
        let g = Gnm::new(200);
        let et = g.run(100, &mut SplitMix64::new(4));
        assert_eq!(et.len(), 200);
        let mut c = et.clone();
        c.canonicalize_undirected();
        assert_eq!(c.dedup(), 0);
    }

    #[test]
    fn gnm_caps_at_complete_graph() {
        let g = Gnm::new(1000);
        let et = g.run(5, &mut SplitMix64::new(5));
        assert_eq!(et.len(), 10);
    }
}
