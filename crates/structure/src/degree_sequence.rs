//! Degree-sequence-driven structure generation: the paper's example of an
//! SG initialized with *"a file with an empirical degree distribution"*.
//! Degrees are drawn per node from the given distribution and wired with
//! the configuration model.

use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::degree_seq::{configuration_model, even_out_degree_sum, ConfigModelOptions};
use crate::{Capabilities, DegreeDist, StructureGenerator};

/// Configuration-model generator over an arbitrary degree distribution
/// (constant, uniform, zipf, power-law, geometric, or empirical).
#[derive(Debug, Clone)]
pub struct DegreeSequenceGenerator {
    dist: DegreeDist,
    options: ConfigModelOptions,
}

impl DegreeSequenceGenerator {
    /// Create with simple-graph wiring (no self-loops, no multi-edges).
    pub fn new(dist: DegreeDist) -> Self {
        Self {
            dist,
            options: ConfigModelOptions::default(),
        }
    }

    /// Override the wiring options.
    pub fn with_options(mut self, options: ConfigModelOptions) -> Self {
        self.options = options;
        self
    }

    fn draw(&self, rng: &mut SplitMix64) -> u32 {
        use datasynth_prng::dist::Sampler;
        let d = match &self.dist {
            DegreeDist::Constant(v) => *v,
            DegreeDist::Uniform(d) => d.sample(rng),
            DegreeDist::Zipf(d) => d.sample(rng),
            DegreeDist::PowerLaw(d) => d.sample(rng),
            DegreeDist::Geometric(d) => d.sample(rng),
            DegreeDist::Empirical(d) => d.sample(rng),
        };
        d.min(u64::from(u32::MAX)) as u32
    }

    fn mean_degree(&self) -> f64 {
        match &self.dist {
            DegreeDist::Constant(k) => *k as f64,
            DegreeDist::Uniform(d) => (d.lo() + d.hi()) as f64 / 2.0,
            DegreeDist::PowerLaw(d) => d.mean(),
            DegreeDist::Empirical(d) => d.mean(),
            DegreeDist::Geometric(_) => 1.5,
            DegreeDist::Zipf(d) => {
                let n = d.n().min(10_000);
                (1..=n).map(|k| k as f64 * d.pmf(k)).sum()
            }
        }
    }
}

impl StructureGenerator for DegreeSequenceGenerator {
    fn name(&self) -> &'static str {
        "degree_sequence"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut degrees: Vec<u32> = (0..n)
            .map(|_| {
                // A node cannot have more simple-graph neighbors than n-1.
                self.draw(rng).min(n.saturating_sub(1) as u32)
            })
            .collect();
        if degrees.is_empty() {
            return EdgeTable::new("degree_sequence");
        }
        even_out_degree_sum(&mut degrees);
        configuration_model(&degrees, self.options, rng)
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        let mean = self.mean_degree().max(f64::MIN_POSITIVE);
        ((2.0 * num_edges as f64 / mean).round() as u64).max(2)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            degree_distribution: true,
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::DegreeStats;
    use datasynth_prng::dist::Empirical;

    #[test]
    fn empirical_distribution_is_reproduced() {
        // An "empirical" degree histogram: mostly 2s, a few 10s.
        let dist = DegreeDist::Empirical(Empirical::from_histogram(&[(2, 9.0), (10, 1.0)]));
        let g = DegreeSequenceGenerator::new(dist);
        let n = 4000;
        let et = g.run(n, &mut SplitMix64::new(1));
        let stats = DegreeStats::from_degrees(&et.degrees(n)).unwrap();
        let target = 0.9 * 2.0 + 0.1 * 10.0; // 2.8
        assert!(
            (stats.mean - target).abs() < 0.3,
            "mean {} vs {target}",
            stats.mean
        );
        // Degree-10 nodes exist.
        assert!(et.degrees(n).iter().any(|&d| d >= 9));
    }

    #[test]
    fn output_is_simple() {
        let g = DegreeSequenceGenerator::new(DegreeDist::Constant(4));
        let et = g.run(500, &mut SplitMix64::new(2));
        for (t, h) in et.iter() {
            assert_ne!(t, h);
        }
        let mut c = et.clone();
        c.canonicalize_undirected();
        assert_eq!(c.dedup(), 0);
    }

    #[test]
    fn degrees_capped_by_population() {
        let g = DegreeSequenceGenerator::new(DegreeDist::Constant(100));
        let n = 10;
        let et = g.run(n, &mut SplitMix64::new(3));
        assert!(et.degrees(n).iter().all(|&d| d <= 9));
    }

    #[test]
    fn sizing_inverse() {
        let g = DegreeSequenceGenerator::new(DegreeDist::Constant(8));
        assert_eq!(g.num_nodes_for_edges(4000), 1000);
    }
}
