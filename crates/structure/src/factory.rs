//! Name-based generator construction: the bridge from DSL `structure =
//! name(args...)` clauses to concrete [`StructureGenerator`] boxes.

use std::fmt;

use datasynth_prng::dist::{DiscretePowerLaw, Geometric, UniformU64, Zipf};

use crate::bter::CcProfile;
use crate::{
    BarabasiAlbert, BterGenerator, DarwiniGenerator, DegreeDist, Gnm, Gnp, LfrGenerator, LfrParams,
    OneToManyGenerator, OneToOneGenerator, Params, PlantedSbm, RmatGenerator, StructureGenerator,
    WattsStrogatz,
};

/// Errors from [`build_generator`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No generator registered under this name.
    UnknownGenerator(String),
    /// A required parameter is absent.
    MissingParam {
        /// Generator name.
        generator: &'static str,
        /// Parameter name.
        param: &'static str,
    },
    /// A parameter value is out of range or mistyped.
    BadParam {
        /// Generator name.
        generator: &'static str,
        /// Parameter name.
        param: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownGenerator(name) => write!(f, "unknown structure generator {name}"),
            BuildError::MissingParam { generator, param } => {
                write!(f, "{generator}: missing parameter {param}")
            }
            BuildError::BadParam {
                generator,
                param,
                reason,
            } => write!(f, "{generator}: bad parameter {param}: {reason}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// Names accepted by [`build_generator`] (canonical spellings).
pub const GENERATOR_NAMES: &[&str] = &[
    "rmat",
    "lfr",
    "bter",
    "darwini",
    "erdos_renyi",
    "gnm",
    "barabasi_albert",
    "watts_strogatz",
    "sbm",
    "degree_sequence",
    "one_to_many",
    "one_to_one",
];

fn degree_dist_from(generator: &'static str, params: &Params) -> Result<DegreeDist, BuildError> {
    let kind = params.get_str("dist").unwrap_or("power_law");
    let bad = |param: &'static str, reason: &str| BuildError::BadParam {
        generator,
        param,
        reason: reason.to_owned(),
    };
    Ok(match kind {
        "constant" => DegreeDist::Constant(params.u64_or("k", 1)),
        "uniform" => {
            let lo = params.u64_or("min", 0);
            let hi = params.u64_or("max", 4);
            if lo > hi {
                return Err(bad("min", "min exceeds max"));
            }
            DegreeDist::Uniform(UniformU64::new(lo, hi))
        }
        "zipf" => DegreeDist::Zipf(Zipf::new(
            params.f64_or("exponent", 1.5),
            params.u64_or("max", 1000).max(1),
        )),
        "power_law" => {
            let kmin = params.u64_or("min", 1).max(1);
            let kmax = params.u64_or("max", 100);
            if kmin > kmax {
                return Err(bad("min", "min exceeds max"));
            }
            DegreeDist::PowerLaw(DiscretePowerLaw::new(
                params.f64_or("exponent", 2.0),
                kmin,
                kmax,
            ))
        }
        "geometric" => {
            let p = params.f64_or("p", 0.4);
            if !(p > 0.0 && p <= 1.0) {
                return Err(bad("p", "must be in (0, 1]"));
            }
            DegreeDist::Geometric(Geometric::new(p))
        }
        other => {
            return Err(bad("dist", &format!("unknown distribution {other}")));
        }
    })
}

/// Construct a structure generator from its DSL name and parameters.
pub fn build_generator(
    name: &str,
    params: &Params,
) -> Result<Box<dyn StructureGenerator + Send + Sync>, BuildError> {
    Ok(match name {
        "rmat" => {
            let a = params.f64_or("a", 0.57);
            let b = params.f64_or("b", 0.19);
            let c = params.f64_or("c", 0.19);
            if a + b + c > 1.0 + 1e-9 || a <= 0.0 || b < 0.0 || c < 0.0 {
                return Err(BuildError::BadParam {
                    generator: "rmat",
                    param: "a/b/c",
                    reason: "quadrant probabilities must be nonnegative and sum <= 1".into(),
                });
            }
            let g = RmatGenerator::new(
                a,
                b,
                c,
                params.u64_or("edge_factor", 16).max(1),
                params.u64_or("simplify", 0) == 1,
            )
            .with_noise(params.f64_or("noise", 0.1).clamp(0.0, 0.5));
            Box::new(g)
        }
        "lfr" => {
            let p = LfrParams {
                average_degree: params.f64_or("avg_degree", 20.0),
                max_degree: params.u64_or("max_degree", 50),
                degree_exponent: params.f64_or("degree_exponent", 2.0),
                community_exponent: params.f64_or("community_exponent", 1.0),
                min_community: params.u64_or("min_community", 10),
                max_community: params.u64_or("max_community", 50),
                mixing: params.f64_or("mixing", 0.1),
            };
            if !(0.0..=1.0).contains(&p.mixing) {
                return Err(BuildError::BadParam {
                    generator: "lfr",
                    param: "mixing",
                    reason: "must be in [0, 1]".into(),
                });
            }
            Box::new(LfrGenerator::new(p))
        }
        "bter" => {
            let dd = degree_dist_from("bter", params)?;
            let cc = if let Some(c) = params.get_f64("cc") {
                CcProfile::Constant(c)
            } else {
                CcProfile::ExponentialDecay {
                    c0: params.f64_or("cc_max", 0.6),
                    scale: params.f64_or("cc_scale", 15.0),
                }
            };
            Box::new(BterGenerator::new(dd, cc))
        }
        "darwini" => {
            let dd = degree_dist_from("darwini", params)?;
            let cc = CcProfile::ExponentialDecay {
                c0: params.f64_or("cc_max", 0.6),
                scale: params.f64_or("cc_scale", 15.0),
            };
            Box::new(DarwiniGenerator::new(
                dd,
                cc,
                params.f64_or("cc_spread", 0.1).clamp(0.0, 0.5),
                params.u64_or("buckets", 8).max(1) as u32,
            ))
        }
        "erdos_renyi" | "gnp" => {
            let p = params.get_f64("p").ok_or(BuildError::MissingParam {
                generator: "erdos_renyi",
                param: "p",
            })?;
            if !(0.0..=1.0).contains(&p) {
                return Err(BuildError::BadParam {
                    generator: "erdos_renyi",
                    param: "p",
                    reason: "must be in [0, 1]".into(),
                });
            }
            Box::new(Gnp::new(p))
        }
        "gnm" => {
            let m = params.get_u64("m").ok_or(BuildError::MissingParam {
                generator: "gnm",
                param: "m",
            })?;
            Box::new(Gnm::new(m))
        }
        "barabasi_albert" | "ba" => Box::new(BarabasiAlbert::new(params.u64_or("m", 3).max(1))),
        "watts_strogatz" | "ws" => {
            let k = params.u64_or("k", 4);
            if k < 2 || k % 2 == 1 {
                return Err(BuildError::BadParam {
                    generator: "watts_strogatz",
                    param: "k",
                    reason: "must be even and >= 2".into(),
                });
            }
            Box::new(WattsStrogatz::new(
                k,
                params.f64_or("beta", 0.1).clamp(0.0, 1.0),
            ))
        }
        "sbm" => {
            let k = params.u64_or("groups", 4).max(1) as usize;
            let size = params.u64_or("group_size", 100).max(1);
            Box::new(PlantedSbm::homophilous(
                k,
                size,
                params.f64_or("p_intra", 0.1).clamp(0.0, 1.0),
                params.f64_or("p_inter", 0.01).clamp(0.0, 1.0),
            ))
        }
        "degree_sequence" | "configuration_model" => Box::new(crate::DegreeSequenceGenerator::new(
            degree_dist_from("degree_sequence", params)?,
        )),
        "one_to_many" => Box::new(OneToManyGenerator::new(degree_dist_from(
            "one_to_many",
            params,
        )?)),
        "one_to_one" => Box::new(OneToOneGenerator),
        other => return Err(BuildError::UnknownGenerator(other.to_owned())),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_prng::SplitMix64;

    type BuildResult = Result<Box<dyn StructureGenerator + Send + Sync>, BuildError>;

    fn expect_err(r: BuildResult) -> BuildError {
        match r {
            Err(e) => e,
            Ok(g) => panic!("expected an error, built {}", g.name()),
        }
    }

    #[test]
    fn every_registered_name_builds_with_defaults() {
        for &name in GENERATOR_NAMES {
            let mut params = Params::new();
            if name == "erdos_renyi" {
                params = params.with_num("p", 0.05);
            }
            if name == "gnm" {
                params = params.with_num("m", 100.0);
            }
            let g = build_generator(name, &params).unwrap_or_else(|e| panic!("{name} failed: {e}"));
            let et = g.run(64, &mut SplitMix64::new(1));
            // SBM ignores n; everything must at least produce a table.
            assert!(!et.is_empty() || name == "one_to_many", "{name} empty");
        }
    }

    #[test]
    fn unknown_name_is_reported() {
        let err = expect_err(build_generator("nope", &Params::new()));
        assert!(matches!(err, BuildError::UnknownGenerator(_)));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn missing_param_is_reported() {
        let err = expect_err(build_generator("erdos_renyi", &Params::new()));
        assert!(matches!(
            err,
            BuildError::MissingParam {
                generator: "erdos_renyi",
                param: "p"
            }
        ));
    }

    #[test]
    fn bad_param_is_reported() {
        let err = expect_err(build_generator(
            "watts_strogatz",
            &Params::new().with_num("k", 3.0),
        ));
        assert!(matches!(err, BuildError::BadParam { .. }));
        let err = expect_err(build_generator(
            "one_to_many",
            &Params::new().with_text("dist", "unheard_of"),
        ));
        assert!(err.to_string().contains("unheard_of"));
    }

    #[test]
    fn aliases_resolve() {
        assert!(build_generator("ba", &Params::new()).is_ok());
        assert!(build_generator("gnp", &Params::new().with_num("p", 0.1)).is_ok());
        assert!(build_generator("ws", &Params::new()).is_ok());
    }
}
