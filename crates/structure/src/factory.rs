//! The shipped structure-generator library, expressed as registry
//! entries: one constructor function per DSL name, all parameter
//! extraction going through [`ParamReader`] so errors are uniform.

use std::sync::OnceLock;

use datasynth_prng::dist::{DiscretePowerLaw, Geometric, UniformU64, Zipf};

use crate::bter::CcProfile;
use crate::params::ParamReader;
use crate::registry::{BoxedStructureGenerator, BuildError, StructureRegistry};
use crate::{
    BarabasiAlbert, BterGenerator, DarwiniGenerator, DegreeDist, Gnm, Gnp, LfrGenerator, LfrParams,
    OneToManyGenerator, OneToOneGenerator, Params, PlantedSbm, RmatGenerator, WattsStrogatz,
};

/// Names shipped by [`StructureRegistry::builtin`] (canonical spellings;
/// the registry also knows the aliases `gnp`, `ba`, `ws` and
/// `configuration_model`).
pub const GENERATOR_NAMES: &[&str] = &[
    "rmat",
    "lfr",
    "bter",
    "darwini",
    "erdos_renyi",
    "gnm",
    "barabasi_albert",
    "watts_strogatz",
    "sbm",
    "degree_sequence",
    "one_to_many",
    "one_to_one",
];

fn degree_dist_from(r: ParamReader<'_>) -> Result<DegreeDist, BuildError> {
    Ok(match r.str_or("dist", "power_law") {
        "constant" => DegreeDist::Constant(r.u64_or("k", 1)),
        "uniform" => {
            let lo = r.u64_or("min", 0);
            let hi = r.u64_or("max", 4);
            if lo > hi {
                return Err(r.bad("min", "min exceeds max"));
            }
            DegreeDist::Uniform(UniformU64::new(lo, hi))
        }
        "zipf" => DegreeDist::Zipf(Zipf::new(
            r.f64_or("exponent", 1.5),
            r.u64_or("max", 1000).max(1),
        )),
        "power_law" => {
            let kmin = r.u64_or("min", 1).max(1);
            let kmax = r.u64_or("max", 100);
            if kmin > kmax {
                return Err(r.bad("min", "min exceeds max"));
            }
            DegreeDist::PowerLaw(DiscretePowerLaw::new(r.f64_or("exponent", 2.0), kmin, kmax))
        }
        "geometric" => {
            let p = r.f64_or("p", 0.4);
            if !(p > 0.0 && p <= 1.0) {
                return Err(r.bad("p", "must be in (0, 1]"));
            }
            DegreeDist::Geometric(Geometric::new(p))
        }
        other => {
            return Err(r.bad("dist", format!("unknown distribution {other}")));
        }
    })
}

fn rmat(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("rmat");
    let a = r.f64_or("a", 0.57);
    let b = r.f64_or("b", 0.19);
    let c = r.f64_or("c", 0.19);
    if a + b + c > 1.0 + 1e-9 || a <= 0.0 || b < 0.0 || c < 0.0 {
        return Err(r.bad(
            "a/b/c",
            "quadrant probabilities must be nonnegative and sum <= 1",
        ));
    }
    let g = RmatGenerator::new(
        a,
        b,
        c,
        r.u64_or("edge_factor", 16).max(1),
        r.u64_or("simplify", 0) == 1,
    )
    .with_noise(r.f64_or("noise", 0.1))?;
    Ok(Box::new(g))
}

fn lfr(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("lfr");
    let p = LfrParams {
        average_degree: r.f64_or("avg_degree", 20.0),
        max_degree: r.u64_or("max_degree", 50),
        degree_exponent: r.f64_or("degree_exponent", 2.0),
        community_exponent: r.f64_or("community_exponent", 1.0),
        min_community: r.u64_or("min_community", 10),
        max_community: r.u64_or("max_community", 50),
        mixing: r.f64_in("mixing", 0.1, 0.0, 1.0)?,
    };
    Ok(Box::new(LfrGenerator::new(p)))
}

fn bter(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("bter");
    let dd = degree_dist_from(r)?;
    let cc = if let Some(c) = r.get_f64("cc") {
        CcProfile::Constant(c)
    } else {
        CcProfile::ExponentialDecay {
            c0: r.f64_or("cc_max", 0.6),
            scale: r.f64_or("cc_scale", 15.0),
        }
    };
    Ok(Box::new(BterGenerator::new(dd, cc)))
}

fn darwini(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("darwini");
    let dd = degree_dist_from(r)?;
    let cc = CcProfile::ExponentialDecay {
        c0: r.f64_or("cc_max", 0.6),
        scale: r.f64_or("cc_scale", 15.0),
    };
    let buckets = r.u64_or("buckets", 8);
    let buckets = u32::try_from(buckets).map_err(|_| r.bad("buckets", "exceeds u32 range"))?;
    Ok(Box::new(DarwiniGenerator::new(
        dd,
        cc,
        r.f64_or("cc_spread", 0.1),
        buckets,
    )?))
}

fn erdos_renyi(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("erdos_renyi");
    Ok(Box::new(Gnp::new(r.require_f64_in("p", 0.0, 1.0)?)))
}

fn gnm(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("gnm");
    Ok(Box::new(Gnm::new(r.require_u64("m")?)))
}

fn barabasi_albert(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("barabasi_albert");
    Ok(Box::new(BarabasiAlbert::new(r.u64_or("m", 3))?))
}

fn watts_strogatz(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("watts_strogatz");
    let k = r.u64_or("k", 4);
    if k < 2 || k % 2 == 1 {
        return Err(r.bad("k", "must be even and >= 2"));
    }
    Ok(Box::new(WattsStrogatz::new(
        k,
        r.f64_or("beta", 0.1).clamp(0.0, 1.0),
    )))
}

fn sbm(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    let r = params.reader("sbm");
    Ok(Box::new(PlantedSbm::homophilous(
        r.u64_or("groups", 4).max(1) as usize,
        r.u64_or("group_size", 100).max(1),
        r.f64_or("p_intra", 0.1).clamp(0.0, 1.0),
        r.f64_or("p_inter", 0.01).clamp(0.0, 1.0),
    )))
}

fn degree_sequence(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    Ok(Box::new(crate::DegreeSequenceGenerator::new(
        degree_dist_from(params.reader("degree_sequence"))?,
    )))
}

fn one_to_many(params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    Ok(Box::new(OneToManyGenerator::new(degree_dist_from(
        params.reader("one_to_many"),
    )?)))
}

fn one_to_one(_params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    Ok(Box::new(OneToOneGenerator))
}

/// Fill `registry` with the shipped generators and their DSL aliases.
pub(crate) fn register_builtins(registry: &mut StructureRegistry) {
    registry.register("rmat", rmat);
    registry.register("lfr", lfr);
    registry.register("bter", bter);
    registry.register("darwini", darwini);
    registry.register("erdos_renyi", erdos_renyi);
    registry.register("gnm", gnm);
    registry.register("barabasi_albert", barabasi_albert);
    registry.register("watts_strogatz", watts_strogatz);
    registry.register("sbm", sbm);
    registry.register("degree_sequence", degree_sequence);
    registry.register("one_to_many", one_to_many);
    registry.register("one_to_one", one_to_one);
    registry.alias("gnp", "erdos_renyi");
    registry.alias("ba", "barabasi_albert");
    registry.alias("ws", "watts_strogatz");
    registry.alias("configuration_model", "degree_sequence");
}

fn builtin() -> &'static StructureRegistry {
    static BUILTIN: OnceLock<StructureRegistry> = OnceLock::new();
    BUILTIN.get_or_init(StructureRegistry::builtin)
}

/// Construct a structure generator from the *builtin* registry; kept as a
/// convenience for code that needs no user extensions. The pipeline
/// resolves through the [`StructureRegistry`] carried by `DataSynth`.
pub fn build_generator(name: &str, params: &Params) -> Result<BoxedStructureGenerator, BuildError> {
    builtin().build(name, params)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::StructureGenerator;
    use datasynth_prng::SplitMix64;

    type BuildResult = Result<Box<dyn StructureGenerator + Send + Sync>, BuildError>;

    fn expect_err(r: BuildResult) -> BuildError {
        match r {
            Err(e) => e,
            Ok(g) => panic!("expected an error, built {}", g.name()),
        }
    }

    #[test]
    fn every_registered_name_builds_with_defaults() {
        for &name in GENERATOR_NAMES {
            let mut params = Params::new();
            if name == "erdos_renyi" {
                params = params.with_num("p", 0.05);
            }
            if name == "gnm" {
                params = params.with_num("m", 100.0);
            }
            let g = build_generator(name, &params).unwrap_or_else(|e| panic!("{name} failed: {e}"));
            let et = g.run(64, &mut SplitMix64::new(1));
            // SBM ignores n; everything must at least produce a table.
            assert!(!et.is_empty() || name == "one_to_many", "{name} empty");
        }
    }

    #[test]
    fn canonical_names_match_the_registry() {
        let registry = StructureRegistry::builtin();
        for &name in GENERATOR_NAMES {
            assert!(registry.contains(name), "{name} missing from builtin()");
        }
    }

    #[test]
    fn unknown_name_is_reported() {
        let err = expect_err(build_generator("nope", &Params::new()));
        assert!(matches!(err, BuildError::UnknownGenerator { .. }));
        assert!(err.to_string().contains("nope"));
    }

    #[test]
    fn missing_param_is_reported() {
        let err = expect_err(build_generator("erdos_renyi", &Params::new()));
        assert!(matches!(
            err,
            BuildError::MissingParam {
                generator: "erdos_renyi",
                param: "p"
            }
        ));
    }

    #[test]
    fn bad_param_is_reported() {
        let err = expect_err(build_generator(
            "watts_strogatz",
            &Params::new().with_num("k", 3.0),
        ));
        assert!(matches!(err, BuildError::InvalidParam { .. }));
        let err = expect_err(build_generator(
            "one_to_many",
            &Params::new().with_text("dist", "unheard_of"),
        ));
        assert!(err.to_string().contains("unheard_of"));
    }

    #[test]
    fn constructor_asserts_surface_as_registry_errors_not_panics() {
        // Each of these used to trip an `assert!` inside the generator
        // constructor; all are reachable from DSL/builder params.
        let err = expect_err(build_generator(
            "barabasi_albert",
            &Params::new().with_num("m", 0.0),
        ));
        assert!(
            matches!(
                err,
                BuildError::InvalidParam {
                    generator: "barabasi_albert",
                    param: "m",
                    ..
                }
            ),
            "{err:?}"
        );
        let err = expect_err(build_generator(
            "rmat",
            &Params::new().with_num("noise", 0.9),
        ));
        assert!(
            matches!(
                err,
                BuildError::InvalidParam {
                    generator: "rmat",
                    param: "noise",
                    ..
                }
            ),
            "{err:?}"
        );
        let err = expect_err(build_generator(
            "darwini",
            &Params::new().with_num("cc_spread", 0.75),
        ));
        assert!(
            matches!(
                err,
                BuildError::InvalidParam {
                    generator: "darwini",
                    param: "cc_spread",
                    ..
                }
            ),
            "{err:?}"
        );
        let err = expect_err(build_generator(
            "darwini",
            &Params::new().with_num("buckets", 0.0),
        ));
        assert!(
            matches!(
                err,
                BuildError::InvalidParam {
                    generator: "darwini",
                    param: "buckets",
                    ..
                }
            ),
            "{err:?}"
        );
    }

    #[test]
    fn aliases_resolve() {
        assert!(build_generator("ba", &Params::new()).is_ok());
        assert!(build_generator("gnp", &Params::new().with_num("p", 0.1)).is_ok());
        assert!(build_generator("ws", &Params::new()).is_ok());
    }
}
