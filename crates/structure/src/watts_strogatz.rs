//! Watts–Strogatz small-world graphs.

use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::{Capabilities, StructureGenerator};

/// WS model: ring lattice where each node connects to its `k` nearest
/// neighbors (`k` even), each edge rewired with probability `beta`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WattsStrogatz {
    k: u64,
    beta: f64,
}

impl WattsStrogatz {
    /// Create; `k` must be even and `beta ∈ [0, 1]`.
    pub fn new(k: u64, beta: f64) -> Self {
        assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
        assert!((0.0..=1.0).contains(&beta), "beta out of range");
        Self { k, beta }
    }
}

impl StructureGenerator for WattsStrogatz {
    fn name(&self) -> &'static str {
        "watts_strogatz"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut et = EdgeTable::with_capacity("watts_strogatz", (n * self.k / 2) as usize);
        if n <= self.k {
            // Degenerate: complete graph.
            for h in 1..n {
                for t in 0..h {
                    et.push(t, h);
                }
            }
            return et;
        }
        let mut existing = std::collections::HashSet::new();
        let key = |a: u64, b: u64| if a < b { (a, b) } else { (b, a) };
        for v in 0..n {
            for j in 1..=self.k / 2 {
                let mut u = (v + j) % n;
                if rng.next_bool(self.beta) {
                    // Rewire to a uniform non-self, non-duplicate target.
                    for _ in 0..32 {
                        let cand = rng.next_below(n);
                        if cand != v && !existing.contains(&key(v, cand)) {
                            u = cand;
                            break;
                        }
                    }
                }
                if existing.insert(key(v, u)) {
                    et.push(v.min(u), v.max(u));
                }
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        (2 * num_edges / self.k).max(self.k + 1)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            clustering: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::{average_clustering, estimate_diameter};
    use datasynth_tables::Csr;

    #[test]
    fn zero_beta_is_a_lattice() {
        let g = WattsStrogatz::new(4, 0.0);
        let n = 100;
        let et = g.run(n, &mut SplitMix64::new(1));
        assert_eq!(et.len(), n * 2);
        let deg = et.degrees(n);
        assert!(deg.iter().all(|&d| d == 4), "regular lattice");
    }

    #[test]
    fn rewiring_shrinks_diameter_and_keeps_clustering_positive() {
        let n = 500;
        let lattice = WattsStrogatz::new(6, 0.0).run(n, &mut SplitMix64::new(2));
        let small_world = WattsStrogatz::new(6, 0.1).run(n, &mut SplitMix64::new(2));
        let mut rng = SplitMix64::new(3);
        let d_lat = estimate_diameter(&Csr::undirected(&lattice, n), &mut rng);
        let d_sw = estimate_diameter(&Csr::undirected(&small_world, n), &mut rng);
        assert!(d_sw < d_lat, "rewired {d_sw} vs lattice {d_lat}");
        let mut csr = Csr::undirected(&small_world, n);
        csr.sort_neighborhoods();
        let cc = average_clustering(&csr, 200, &mut rng);
        assert!(cc > 0.2, "clustering {cc} should survive light rewiring");
    }

    #[test]
    fn beta_one_is_random_but_same_edge_count_bound() {
        let g = WattsStrogatz::new(4, 1.0);
        let n = 200;
        let et = g.run(n, &mut SplitMix64::new(4));
        assert!(et.len() <= n * 2);
        assert!(et.len() > n * 2 - 20, "few rewire failures");
        for (t, h) in et.iter() {
            assert_ne!(t, h);
        }
    }

    #[test]
    fn tiny_n_degenerates_to_clique() {
        let g = WattsStrogatz::new(4, 0.5);
        let et = g.run(4, &mut SplitMix64::new(5));
        assert_eq!(et.len(), 6);
    }
}
