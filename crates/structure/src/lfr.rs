//! LFR benchmark graphs (Lancichinetti, Fortunato, Radicchi; PRE'08):
//! power-law degrees, power-law community sizes, and a mixing factor μ
//! giving each node a (1-μ) fraction of intra-community edges.
//!
//! The paper's evaluation generates LFR graphs with average degree 20,
//! maximum degree 50, community sizes in [10, 50] and μ = 0.1 — those are
//! the defaults of [`LfrParams`].

use datasynth_prng::dist::{BoundedPareto, DiscretePowerLaw, Sampler};
use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::{Capabilities, PlantedPartition, StructureGenerator};

/// LFR parameters; `Default` matches the paper's configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfrParams {
    /// Target average degree.
    pub average_degree: f64,
    /// Maximum degree.
    pub max_degree: u64,
    /// Degree power-law exponent τ1.
    pub degree_exponent: f64,
    /// Community-size power-law exponent τ2.
    pub community_exponent: f64,
    /// Minimum community size.
    pub min_community: u64,
    /// Maximum community size.
    pub max_community: u64,
    /// Mixing factor μ: fraction of each node's edges leaving its community.
    pub mixing: f64,
}

impl Default for LfrParams {
    fn default() -> Self {
        Self {
            average_degree: 20.0,
            max_degree: 50,
            degree_exponent: 2.0,
            community_exponent: 1.0,
            min_community: 10,
            max_community: 50,
            mixing: 0.1,
        }
    }
}

/// LFR generator.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LfrGenerator {
    params: LfrParams,
}

impl LfrGenerator {
    /// Create from parameters (validated).
    pub fn new(params: LfrParams) -> Self {
        assert!((0.0..=1.0).contains(&params.mixing), "mixing out of range");
        assert!(
            params.min_community >= 2 && params.min_community <= params.max_community,
            "bad community size range"
        );
        assert!(
            params.average_degree > 1.0 && params.average_degree < params.max_degree as f64,
            "bad degree target"
        );
        Self { params }
    }

    /// The paper's configuration.
    pub fn paper_defaults() -> Self {
        Self::new(LfrParams::default())
    }

    /// Accessors for reports.
    pub fn params(&self) -> &LfrParams {
        &self.params
    }

    fn sample_degrees(&self, n: u64, rng: &mut SplitMix64) -> Vec<u32> {
        let p = &self.params;
        let pareto = BoundedPareto::with_floor_mean(
            p.degree_exponent,
            p.max_degree as f64,
            p.average_degree,
        )
        .expect("degree target within range");
        (0..n)
            .map(|_| {
                let d = pareto.sample(rng).floor() as u64;
                d.clamp(1, p.max_degree) as u32
            })
            .collect()
    }

    fn sample_community_sizes(&self, n: u64, rng: &mut SplitMix64) -> Vec<u64> {
        let p = &self.params;
        if n <= p.min_community {
            return vec![n];
        }
        let dist = DiscretePowerLaw::new(p.community_exponent, p.min_community, p.max_community);
        let mut sizes = Vec::new();
        let mut total = 0u64;
        while total < n {
            let s = dist.sample(rng);
            sizes.push(s);
            total += s;
        }
        // Shave the overshoot off the largest communities, never dropping
        // below the minimum size.
        let mut excess = total - n;
        while excess > 0 {
            let (idx, _) = sizes
                .iter()
                .enumerate()
                .max_by_key(|(_, &s)| s)
                .expect("nonempty");
            if sizes[idx] > p.min_community {
                sizes[idx] -= 1;
                excess -= 1;
            } else {
                // Everything is at the minimum: drop one community and give
                // its mass to the others.
                let dropped = sizes.pop().expect("nonempty");
                for _ in 0..dropped.min(excess) {
                    excess -= 1;
                    if excess == 0 {
                        break;
                    }
                }
                let mut leftover = dropped.saturating_sub(dropped.min(excess));
                let mut i = 0;
                while leftover > 0 && !sizes.is_empty() {
                    let len = sizes.len();
                    sizes[i % len] += 1;
                    leftover -= 1;
                    i += 1;
                }
                break;
            }
        }
        debug_assert_eq!(sizes.iter().sum::<u64>(), n);
        sizes
    }

    /// Assign nodes to communities such that each node's internal degree
    /// fits (`int_deg <= size - 1`). Candidate communities are drawn with
    /// probability proportional to *remaining capacity* (a slot vector with
    /// swap-remove), so large communities naturally absorb the high-degree
    /// nodes that only they can host. Nodes that still fail to fit get their
    /// internal degree clamped; the clamped-off stubs become external edges.
    fn assign_communities(
        sizes: &[u64],
        int_degrees: &mut [u32],
        rng: &mut SplitMix64,
    ) -> Vec<u32> {
        let n = int_degrees.len();
        let mut labels = vec![u32::MAX; n];
        // One slot per unit of capacity.
        let mut slots: Vec<u32> = Vec::with_capacity(n);
        for (c, &s) in sizes.iter().enumerate() {
            slots.extend(std::iter::repeat_n(c as u32, s as usize));
        }
        // Hardest-to-place (highest internal degree) first.
        let mut order: Vec<u32> = (0..n as u32).collect();
        rng.shuffle(&mut order);
        order.sort_by_key(|&v| std::cmp::Reverse(int_degrees[v as usize]));
        for &v in &order {
            let v = v as usize;
            let need = u64::from(int_degrees[v]);
            let mut placed = false;
            for _try in 0..32 {
                let i = rng.next_below(slots.len() as u64) as usize;
                let c = slots[i] as usize;
                if sizes[c] > need {
                    labels[v] = c as u32;
                    slots.swap_remove(i);
                    placed = true;
                    break;
                }
            }
            if !placed {
                // Fall back to the largest community that still has a slot.
                let i = (0..slots.len())
                    .max_by_key(|&i| sizes[slots[i] as usize])
                    .expect("capacity equals node count");
                let c = slots[i] as usize;
                labels[v] = c as u32;
                slots.swap_remove(i);
                int_degrees[v] = int_degrees[v].min((sizes[c] - 1) as u32);
            }
        }
        labels
    }
}

impl StructureGenerator for LfrGenerator {
    fn name(&self) -> &'static str {
        "lfr"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        self.run_with_partition(n, rng).0
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        // m ≈ n · avg_degree / 2.
        ((2.0 * num_edges as f64 / self.params.average_degree).round() as u64).max(2)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            power_law: true,
            degree_distribution: true,
            communities: true,
            ..Default::default()
        }
    }
}

impl PlantedPartition for LfrGenerator {
    fn run_with_partition(&self, n: u64, rng: &mut SplitMix64) -> (EdgeTable, Vec<u32>) {
        assert!(n >= 2, "need at least two nodes");
        let degrees = self.sample_degrees(n, rng);
        let mut int_degrees: Vec<u32> = degrees
            .iter()
            .map(|&d| ((1.0 - self.params.mixing) * f64::from(d)).round() as u32)
            .collect();
        let sizes = self.sample_community_sizes(n, rng);
        let labels = Self::assign_communities(&sizes, &mut int_degrees, rng);

        let mut et = EdgeTable::with_capacity(
            "lfr",
            degrees.iter().map(|&d| d as usize).sum::<usize>() / 2,
        );

        // Intra-community wiring: Havel–Hakimi builds the exact internal
        // degree sequence (communities can be nearly complete at low μ,
        // where random stub pairing would collapse), then double-edge swaps
        // randomize. Internal stubs that are not graphical inside their
        // community are returned and converted to external stubs.
        let k = sizes.len();
        let mut members: Vec<Vec<u64>> = vec![Vec::new(); k];
        for (v, &c) in labels.iter().enumerate() {
            members[c as usize].push(v as u64);
        }
        let mut ext_extra = vec![0u32; degrees.len()];
        for comm in &members {
            let demands: Vec<u32> = comm.iter().map(|&v| int_degrees[v as usize]).collect();
            let (mut edges, leftover) = havel_hakimi(&demands);
            let swap_attempts = 2 * edges.len();
            double_edge_swaps(&mut edges, swap_attempts, rng);
            for (a, b) in edges {
                et.push(comm[a], comm[b]);
            }
            for (i, l) in leftover.into_iter().enumerate() {
                ext_extra[comm[i] as usize] += l;
            }
        }

        // Inter-community wiring: global pairing forbidding intra pairs.
        let mut ext_stubs: Vec<u64> = Vec::new();
        for (v, (&d, &i)) in degrees.iter().zip(&int_degrees).enumerate() {
            let ext = d.saturating_sub(i) + ext_extra[v];
            ext_stubs.extend(std::iter::repeat_n(v as u64, ext as usize));
        }
        for (t, h) in constrained_pairing(ext_stubs, rng, 8, |t, h| {
            labels[t as usize] == labels[h as usize]
        }) {
            et.push(t, h);
        }

        (et, labels)
    }
}

/// Havel–Hakimi construction over local node indices `0..demands.len()`:
/// returns the realized simple-graph edges plus, per node, the demand that
/// could not be realized (non-graphical leftovers). Exact when the sequence
/// is graphical.
pub(crate) fn havel_hakimi(demands: &[u32]) -> (Vec<(usize, usize)>, Vec<u32>) {
    let n = demands.len();
    let mut remaining: Vec<(u32, usize)> =
        demands.iter().enumerate().map(|(i, &d)| (d, i)).collect();
    let mut edges = Vec::with_capacity(demands.iter().map(|&d| d as usize).sum::<usize>() / 2);
    loop {
        // Highest remaining demand first.
        remaining.sort_unstable_by(|a, b| b.cmp(a));
        let (d0, v0) = remaining[0];
        if d0 == 0 {
            break;
        }
        remaining[0].0 = 0;
        let take = (d0 as usize).min(remaining.len() - 1);
        for item in remaining.iter_mut().skip(1).take(take) {
            if item.0 == 0 {
                break; // out of partners; the shortfall surfaces below
            }
            item.0 -= 1;
            edges.push((v0.min(item.1), v0.max(item.1)));
        }
    }
    // Leftover = demand minus realized degree (non-zero only when the
    // sequence is not graphical within this community).
    let mut leftover = vec![0u32; n];
    let mut realized = vec![0u32; n];
    for &(a, b) in &edges {
        realized[a] += 1;
        realized[b] += 1;
    }
    for i in 0..n {
        leftover[i] = demands[i].saturating_sub(realized[i]);
    }
    (edges, leftover)
}

/// Randomize a simple graph in place with double-edge swaps
/// (`(a,b),(c,d) -> (a,d),(c,b)`) that preserve the degree sequence and
/// reject self-loops and duplicates.
pub(crate) fn double_edge_swaps(
    edges: &mut [(usize, usize)],
    attempts: usize,
    rng: &mut SplitMix64,
) {
    if edges.len() < 2 {
        return;
    }
    let canon = |a: usize, b: usize| (a.min(b), a.max(b));
    let mut present: std::collections::HashSet<(usize, usize)> =
        edges.iter().map(|&(a, b)| canon(a, b)).collect();
    let m = edges.len() as u64;
    for _ in 0..attempts {
        let i = rng.next_below(m) as usize;
        let j = rng.next_below(m) as usize;
        if i == j {
            continue;
        }
        let (a, b) = edges[i];
        let (c, d) = edges[j];
        let (e1, e2) = (canon(a, d), canon(c, b));
        if a == d || c == b || present.contains(&e1) || present.contains(&e2) {
            continue;
        }
        present.remove(&canon(a, b));
        present.remove(&canon(c, d));
        present.insert(e1);
        present.insert(e2);
        edges[i] = e1;
        edges[j] = e2;
    }
}

/// Pair up stubs into edges, repairing self-loops, duplicates and pairs
/// rejected by `forbid` via random head swaps; irreparable pairs are
/// dropped. Duplicate detection is sort-based so memory overhead stays at
/// O(m) words.
pub(crate) fn constrained_pairing(
    mut stubs: Vec<u64>,
    rng: &mut SplitMix64,
    passes: usize,
    forbid: impl Fn(u64, u64) -> bool,
) -> Vec<(u64, u64)> {
    if stubs.len() < 2 {
        return Vec::new();
    }
    if stubs.len() % 2 == 1 {
        stubs.pop();
    }
    rng.shuffle(&mut stubs);
    let half = stubs.len() / 2;
    let (tails, heads) = stubs.split_at_mut(half);

    let canon = |t: u64, h: u64| if t <= h { (t, h) } else { (h, t) };
    for _ in 0..passes {
        let mut bad = mark_invalid(tails, heads, &forbid, canon);
        if bad.is_empty() {
            break;
        }
        // Swap each bad head with a random partner (possibly also bad —
        // two wrongs often make two rights here).
        for i in bad.drain(..) {
            let j = rng.next_below(half as u64) as usize;
            heads.swap(i, j);
        }
    }

    let final_bad: std::collections::HashSet<usize> = mark_invalid(tails, heads, &forbid, canon)
        .into_iter()
        .collect();
    tails
        .iter()
        .zip(heads.iter())
        .enumerate()
        .filter(|(i, _)| !final_bad.contains(i))
        .map(|(_, (&t, &h))| canon(t, h))
        .collect()
}

fn mark_invalid(
    tails: &[u64],
    heads: &[u64],
    forbid: &impl Fn(u64, u64) -> bool,
    canon: impl Fn(u64, u64) -> (u64, u64),
) -> Vec<usize> {
    let mut bad = Vec::new();
    let mut keyed: Vec<((u64, u64), u32)> = tails
        .iter()
        .zip(heads)
        .enumerate()
        .map(|(i, (&t, &h))| (canon(t, h), i as u32))
        .collect();
    keyed.sort_unstable();
    for w in keyed.windows(2) {
        if w[0].0 == w[1].0 {
            bad.push(w[1].1 as usize); // duplicate
        }
    }
    for (i, (&t, &h)) in tails.iter().zip(heads).enumerate() {
        if t == h || forbid(t, h) {
            bad.push(i);
        }
    }
    bad.sort_unstable();
    bad.dedup();
    bad
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_analysis::{largest_component_size, modularity, DegreeStats};

    #[test]
    fn sizes_partition_exactly() {
        let g = LfrGenerator::paper_defaults();
        let mut rng = SplitMix64::new(1);
        for n in [50u64, 500, 5000] {
            let sizes = g.sample_community_sizes(n, &mut rng);
            assert_eq!(sizes.iter().sum::<u64>(), n, "n = {n}");
            for &s in &sizes {
                assert!(s <= g.params.max_community + 5, "size {s}");
            }
        }
    }

    #[test]
    fn paper_configuration_statistics() {
        let g = LfrGenerator::paper_defaults();
        let n = 10_000;
        let (et, labels) = g.run_with_partition(n, &mut SplitMix64::new(2));
        let stats = DegreeStats::from_degrees(&et.degrees(n)).unwrap();
        assert!(
            (stats.mean - 20.0).abs() < 1.5,
            "average degree {}",
            stats.mean
        );
        assert!(stats.max <= 51, "max degree {}", stats.max);
        // μ = 0.1: about 10% of edge endpoints leave their community.
        let cross = et
            .iter()
            .filter(|&(t, h)| labels[t as usize] != labels[h as usize])
            .count() as f64;
        let mix = cross / et.len() as f64;
        assert!((mix - 0.1).abs() < 0.05, "observed mixing {mix}");
    }

    #[test]
    fn planted_partition_has_high_modularity() {
        let g = LfrGenerator::paper_defaults();
        let n = 5000;
        let (et, labels) = g.run_with_partition(n, &mut SplitMix64::new(3));
        let q = modularity(&et, n, &labels);
        assert!(q > 0.6, "modularity {q}");
    }

    #[test]
    fn graph_is_simple() {
        let g = LfrGenerator::paper_defaults();
        let n = 2000;
        let (et, _) = g.run_with_partition(n, &mut SplitMix64::new(4));
        for (t, h) in et.iter() {
            assert_ne!(t, h, "self-loop");
        }
        let mut c = et.clone();
        c.canonicalize_undirected();
        assert_eq!(c.dedup(), 0, "duplicate edges");
    }

    #[test]
    fn mostly_connected_at_low_mixing() {
        let g = LfrGenerator::paper_defaults();
        let n = 3000;
        let (et, _) = g.run_with_partition(n, &mut SplitMix64::new(5));
        let lcc = largest_component_size(&et, n);
        assert!(lcc as f64 > 0.95 * n as f64, "LCC {lcc} of {n}");
    }

    #[test]
    fn sizing_inverse() {
        let g = LfrGenerator::paper_defaults();
        let n = g.num_nodes_for_edges(100_000);
        assert!((n as f64 - 10_000.0).abs() < 200.0, "n = {n}");
    }

    #[test]
    fn deterministic() {
        let g = LfrGenerator::paper_defaults();
        let a = g.run_with_partition(1000, &mut SplitMix64::new(6));
        let b = g.run_with_partition(1000, &mut SplitMix64::new(6));
        assert_eq!(a, b);
    }

    #[test]
    fn havel_hakimi_exact_on_graphical_sequence() {
        let demands = [3u32, 3, 2, 2, 2];
        let (edges, leftover) = havel_hakimi(&demands);
        assert_eq!(edges.len(), 6);
        assert!(leftover.iter().all(|&l| l == 0), "graphical: no leftover");
        let mut realized = [0u32; 5];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            assert_ne!(a, b);
            assert!(seen.insert((a, b)), "duplicate edge ({a},{b})");
            realized[a] += 1;
            realized[b] += 1;
        }
        assert_eq!(realized, demands);
    }

    #[test]
    fn havel_hakimi_reports_non_graphical_leftover() {
        // Sum odd and demand exceeding n-1: cannot be fully realized.
        let (edges, leftover) = havel_hakimi(&[5, 1, 1]);
        let total_left: u32 = leftover.iter().sum();
        assert!(total_left >= 3, "leftover {leftover:?}");
        for &(a, b) in &edges {
            assert_ne!(a, b);
        }
    }

    #[test]
    fn havel_hakimi_complete_graph() {
        let demands = [4u32; 5];
        let (edges, leftover) = havel_hakimi(&demands);
        assert_eq!(edges.len(), 10);
        assert!(leftover.iter().all(|&l| l == 0));
    }

    #[test]
    fn double_edge_swaps_preserve_degrees_and_simplicity() {
        let (mut edges, _) = havel_hakimi(&[3u32, 3, 2, 2, 2, 2, 2, 2]);
        let before = edges.clone();
        let mut deg_before = [0u32; 8];
        for &(a, b) in &edges {
            deg_before[a] += 1;
            deg_before[b] += 1;
        }
        double_edge_swaps(&mut edges, 200, &mut SplitMix64::new(8));
        assert_ne!(edges, before, "swaps should change something");
        let mut deg_after = [0u32; 8];
        let mut seen = std::collections::HashSet::new();
        for &(a, b) in &edges {
            assert_ne!(a, b);
            assert!(seen.insert((a.min(b), a.max(b))));
            deg_after[a] += 1;
            deg_after[b] += 1;
        }
        assert_eq!(deg_before, deg_after);
    }

    #[test]
    fn constrained_pairing_respects_forbid() {
        let stubs: Vec<u64> = (0..100).flat_map(|v| [v, v]).collect();
        let mut rng = SplitMix64::new(7);
        // Forbid pairs whose endpoints share parity.
        let pairs = constrained_pairing(stubs, &mut rng, 8, |a, b| a % 2 == b % 2);
        assert!(!pairs.is_empty());
        for (t, h) in pairs {
            assert_ne!(t % 2, h % 2, "({t},{h}) violates the predicate");
        }
    }
}
