//! Loosely-typed parameter bags, the bridge between the DSL's
//! `generator(name = value, ...)` syntax and concrete generator
//! constructors.

use std::collections::BTreeMap;
use std::fmt;

use crate::registry::BuildError;

/// A single parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Fractional numeric parameter.
    Num(f64),
    /// Integer parameter, carried exactly (no f64 round-trip).
    Int(i64),
    /// String parameter.
    Text(String),
}

/// Named parameters for a generator, as parsed from the DSL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    map: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a numeric parameter (builder style).
    pub fn with_num(mut self, key: &str, value: f64) -> Self {
        self.map.insert(key.to_owned(), ParamValue::Num(value));
        self
    }

    /// Insert an exact integer parameter (builder style).
    pub fn with_long(mut self, key: &str, value: i64) -> Self {
        self.map.insert(key.to_owned(), ParamValue::Int(value));
        self
    }

    /// Insert a string parameter (builder style).
    pub fn with_text(mut self, key: &str, value: &str) -> Self {
        self.map
            .insert(key.to_owned(), ParamValue::Text(value.to_owned()));
        self
    }

    /// Insert any value.
    pub fn insert(&mut self, key: impl Into<String>, value: ParamValue) {
        self.map.insert(key.into(), value);
    }

    /// Numeric lookup.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.map.get(key)? {
            ParamValue::Num(v) => Some(*v),
            ParamValue::Int(v) => Some(*v as f64),
            ParamValue::Text(_) => None,
        }
    }

    /// Numeric lookup with default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get_f64(key).unwrap_or(default)
    }

    /// Integer lookup (rejects non-integral numerics). Exact-integer
    /// parameters convert without an f64 round-trip.
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        match self.map.get(key)? {
            ParamValue::Int(v) => u64::try_from(*v).ok(),
            ParamValue::Num(v) => (*v >= 0.0 && v.fract() == 0.0).then_some(*v as u64),
            ParamValue::Text(_) => None,
        }
    }

    /// Integer lookup with default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.get_u64(key).unwrap_or(default)
    }

    /// String lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.map.get(key)? {
            ParamValue::Text(s) => Some(s),
            ParamValue::Num(_) | ParamValue::Int(_) => None,
        }
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Typed extraction scoped to a generator name: lookups that fail
    /// produce uniform [`BuildError`]s instead of per-call-site
    /// boilerplate.
    pub fn reader(&self, generator: &'static str) -> ParamReader<'_> {
        ParamReader {
            generator,
            params: self,
        }
    }
}

/// A [`Params`] view bound to the generator being constructed; every
/// failing lookup knows which generator to blame. Obtain via
/// [`Params::reader`].
#[derive(Debug, Clone, Copy)]
pub struct ParamReader<'a> {
    generator: &'static str,
    params: &'a Params,
}

impl<'a> ParamReader<'a> {
    /// The underlying parameter bag.
    pub fn params(&self) -> &'a Params {
        self.params
    }

    /// Numeric lookup.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        self.params.get_f64(key)
    }

    /// Numeric lookup with default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.params.f64_or(key, default)
    }

    /// Integer lookup with default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.params.u64_or(key, default)
    }

    /// String lookup.
    pub fn get_str(&self, key: &str) -> Option<&'a str> {
        self.params.get_str(key)
    }

    /// String lookup with default.
    pub fn str_or(&self, key: &str, default: &'a str) -> &'a str {
        self.params.get_str(key).unwrap_or(default)
    }

    /// Numeric lookup that must be present.
    pub fn require_f64(&self, key: &'static str) -> Result<f64, BuildError> {
        self.params.get_f64(key).ok_or(BuildError::MissingParam {
            generator: self.generator,
            param: key,
        })
    }

    /// Integer lookup that must be present.
    pub fn require_u64(&self, key: &'static str) -> Result<u64, BuildError> {
        self.params.get_u64(key).ok_or(BuildError::MissingParam {
            generator: self.generator,
            param: key,
        })
    }

    /// Numeric lookup with default, rejected outside `[lo, hi]`.
    pub fn f64_in(
        &self,
        key: &'static str,
        default: f64,
        lo: f64,
        hi: f64,
    ) -> Result<f64, BuildError> {
        let v = self.f64_or(key, default);
        if (lo..=hi).contains(&v) {
            Ok(v)
        } else {
            Err(self.bad(key, format!("must be in [{lo}, {hi}]")))
        }
    }

    /// Required numeric lookup, rejected outside `[lo, hi]`.
    pub fn require_f64_in(&self, key: &'static str, lo: f64, hi: f64) -> Result<f64, BuildError> {
        let v = self.require_f64(key)?;
        if (lo..=hi).contains(&v) {
            Ok(v)
        } else {
            Err(self.bad(key, format!("must be in [{lo}, {hi}]")))
        }
    }

    /// A [`BuildError::InvalidParam`] for `key`, for custom checks.
    pub fn bad(&self, key: &'static str, reason: impl Into<String>) -> BuildError {
        BuildError::InvalidParam {
            generator: self.generator,
            param: key,
            reason: reason.into(),
        }
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.map {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match v {
                ParamValue::Num(n) => write!(f, "{k} = {n}")?,
                ParamValue::Int(n) => write!(f, "{k} = {n}")?,
                ParamValue::Text(s) => write!(f, "{k} = \"{s}\"")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_lookups() {
        let p = Params::new()
            .with_num("scale", 18.0)
            .with_num("mixing", 0.1)
            .with_text("mode", "simple");
        assert_eq!(p.get_u64("scale"), Some(18));
        assert_eq!(p.get_f64("mixing"), Some(0.1));
        assert_eq!(p.get_u64("mixing"), None, "fractional is not u64");
        assert_eq!(p.get_str("mode"), Some("simple"));
        assert_eq!(p.get_f64("mode"), None);
        assert_eq!(p.u64_or("missing", 7), 7);
        assert!(p.contains("scale"));
    }

    #[test]
    fn exact_integer_params_skip_the_f64_funnel() {
        let p = Params::new().with_long("n", 9_007_199_254_740_993);
        assert_eq!(p.get_u64("n"), Some(9_007_199_254_740_993));
        assert_eq!(Params::new().with_long("n", -3).get_u64("n"), None);
        assert_eq!(Params::new().with_long("n", 20).get_f64("n"), Some(20.0));
    }

    #[test]
    fn reader_produces_uniform_errors() {
        let p = Params::new().with_num("p", 1.5);
        let r = p.reader("test_gen");
        assert_eq!(r.f64_or("p", 0.0), 1.5);
        assert!(matches!(
            r.require_f64("missing"),
            Err(BuildError::MissingParam {
                generator: "test_gen",
                param: "missing"
            })
        ));
        let err = r.require_f64_in("p", 0.0, 1.0).unwrap_err();
        assert_eq!(
            err.to_string(),
            "test_gen: invalid parameter p: must be in [0, 1]"
        );
        assert!(r.f64_in("q", 0.5, 0.0, 1.0).is_ok(), "default in range");
        assert_eq!(r.str_or("mode", "simple"), "simple");
    }

    #[test]
    fn display_is_stable() {
        let p = Params::new().with_num("b", 2.0).with_text("a", "x");
        assert_eq!(p.to_string(), "a = \"x\", b = 2");
    }
}
