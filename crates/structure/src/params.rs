//! Loosely-typed parameter bags, the bridge between the DSL's
//! `generator(name = value, ...)` syntax and concrete generator
//! constructors.

use std::collections::BTreeMap;
use std::fmt;

/// A single parameter value.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// Numeric parameter (integers are carried exactly up to 2^53).
    Num(f64),
    /// String parameter.
    Text(String),
}

/// Named parameters for a generator, as parsed from the DSL.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Params {
    map: BTreeMap<String, ParamValue>,
}

impl Params {
    /// Empty bag.
    pub fn new() -> Self {
        Self::default()
    }

    /// Insert a numeric parameter (builder style).
    pub fn with_num(mut self, key: &str, value: f64) -> Self {
        self.map.insert(key.to_owned(), ParamValue::Num(value));
        self
    }

    /// Insert a string parameter (builder style).
    pub fn with_text(mut self, key: &str, value: &str) -> Self {
        self.map
            .insert(key.to_owned(), ParamValue::Text(value.to_owned()));
        self
    }

    /// Insert any value.
    pub fn insert(&mut self, key: impl Into<String>, value: ParamValue) {
        self.map.insert(key.into(), value);
    }

    /// Numeric lookup.
    pub fn get_f64(&self, key: &str) -> Option<f64> {
        match self.map.get(key)? {
            ParamValue::Num(v) => Some(*v),
            ParamValue::Text(_) => None,
        }
    }

    /// Numeric lookup with default.
    pub fn f64_or(&self, key: &str, default: f64) -> f64 {
        self.get_f64(key).unwrap_or(default)
    }

    /// Integer lookup (rejects non-integral numerics).
    pub fn get_u64(&self, key: &str) -> Option<u64> {
        let v = self.get_f64(key)?;
        (v >= 0.0 && v.fract() == 0.0).then_some(v as u64)
    }

    /// Integer lookup with default.
    pub fn u64_or(&self, key: &str, default: u64) -> u64 {
        self.get_u64(key).unwrap_or(default)
    }

    /// String lookup.
    pub fn get_str(&self, key: &str) -> Option<&str> {
        match self.map.get(key)? {
            ParamValue::Text(s) => Some(s),
            ParamValue::Num(_) => None,
        }
    }

    /// Whether a key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Iterate entries in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &ParamValue)> {
        self.map.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl fmt::Display for Params {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (k, v) in &self.map {
            if !first {
                write!(f, ", ")?;
            }
            first = false;
            match v {
                ParamValue::Num(n) => write!(f, "{k} = {n}")?,
                ParamValue::Text(s) => write!(f, "{k} = \"{s}\"")?,
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn typed_lookups() {
        let p = Params::new()
            .with_num("scale", 18.0)
            .with_num("mixing", 0.1)
            .with_text("mode", "simple");
        assert_eq!(p.get_u64("scale"), Some(18));
        assert_eq!(p.get_f64("mixing"), Some(0.1));
        assert_eq!(p.get_u64("mixing"), None, "fractional is not u64");
        assert_eq!(p.get_str("mode"), Some("simple"));
        assert_eq!(p.get_f64("mode"), None);
        assert_eq!(p.u64_or("missing", 7), 7);
        assert!(p.contains("scale"));
    }

    #[test]
    fn display_is_stable() {
        let p = Params::new().with_num("b", 2.0).with_text("a", "x");
        assert_eq!(p.to_string(), "a = \"x\", b = 2");
    }
}
