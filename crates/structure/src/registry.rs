//! The open structure-generator registry: names map to boxed constructor
//! closures, so user-defined generators plug into the pipeline (DSL and
//! builder alike) without touching this crate.

use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use std::sync::Arc;

use datasynth_tables::suggest::closest_match;

use crate::params::Params;
use crate::StructureGenerator;

/// Errors from building a structure generator by name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// No generator registered under this name.
    UnknownGenerator {
        /// The name that failed to resolve.
        name: String,
        /// Every name registered at lookup time (sorted).
        known: Vec<String>,
        /// Closest registered name by edit distance, if any is close.
        suggestion: Option<String>,
    },
    /// A required parameter is absent.
    MissingParam {
        /// Generator name.
        generator: &'static str,
        /// Parameter name.
        param: &'static str,
    },
    /// A parameter value is out of range or mistyped.
    InvalidParam {
        /// Generator name.
        generator: &'static str,
        /// Parameter name.
        param: &'static str,
        /// Human-readable reason.
        reason: String,
    },
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::UnknownGenerator {
                name,
                known,
                suggestion,
            } => {
                write!(f, "unknown structure generator {name}")?;
                if let Some(s) = suggestion {
                    write!(f, " (did you mean {s:?}?)")?;
                }
                if !known.is_empty() {
                    write!(f, "; registered: {}", known.join(", "))?;
                }
                Ok(())
            }
            BuildError::MissingParam { generator, param } => {
                write!(f, "{generator}: missing parameter {param}")
            }
            BuildError::InvalidParam {
                generator,
                param,
                reason,
            } => write!(f, "{generator}: invalid parameter {param}: {reason}"),
        }
    }
}

impl std::error::Error for BuildError {}

/// A boxed structure generator, as the registry produces it.
pub type BoxedStructureGenerator = Box<dyn StructureGenerator + Send + Sync>;

type Ctor = Arc<dyn Fn(&Params) -> Result<BoxedStructureGenerator, BuildError> + Send + Sync>;

/// Name → constructor map for structure generators.
///
/// [`StructureRegistry::builtin`] holds the shipped generator library;
/// [`register`](StructureRegistry::register) adds (or overrides) entries,
/// making user-defined generators resolvable from the DSL's
/// `structure = name(...)` clause and from `SchemaBuilder` programs.
///
/// ```
/// use datasynth_prng::SplitMix64;
/// use datasynth_structure::{
///     Capabilities, Params, StructureGenerator, StructureRegistry,
/// };
/// use datasynth_tables::EdgeTable;
///
/// struct Star;
///
/// impl StructureGenerator for Star {
///     fn name(&self) -> &'static str {
///         "star"
///     }
///     fn run(&self, n: u64, _rng: &mut SplitMix64) -> EdgeTable {
///         let mut et = EdgeTable::with_capacity("star", n.saturating_sub(1) as usize);
///         for i in 1..n {
///             et.push(0, i);
///         }
///         et
///     }
///     fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
///         num_edges + 1
///     }
///     fn capabilities(&self) -> Capabilities {
///         Capabilities::default()
///     }
/// }
///
/// let mut registry = StructureRegistry::builtin();
/// registry.register("star", |_params: &Params| Ok(Box::new(Star) as _));
/// let generator = registry.build("star", &Params::new()).unwrap();
/// assert_eq!(generator.run(5, &mut SplitMix64::new(1)).len(), 4);
/// ```
#[derive(Clone, Default)]
pub struct StructureRegistry {
    ctors: BTreeMap<String, Ctor>,
    /// Alias → canonical name, resolved at [`build`](Self::build) time so
    /// overriding a canonical entry also takes effect for its aliases.
    aliases: BTreeMap<String, String>,
}

impl StructureRegistry {
    /// A registry with no entries (useful to expose a restricted menu).
    pub fn empty() -> Self {
        Self {
            ctors: BTreeMap::new(),
            aliases: BTreeMap::new(),
        }
    }

    /// The shipped generator library (RMAT, LFR, BTER, … and their DSL
    /// aliases).
    pub fn builtin() -> Self {
        let mut registry = Self::empty();
        crate::factory::register_builtins(&mut registry);
        registry
    }

    /// Register `ctor` under `name`, replacing any previous entry. A
    /// direct registration shadows any alias of the same name.
    pub fn register<F>(&mut self, name: impl Into<String>, ctor: F)
    where
        F: Fn(&Params) -> Result<BoxedStructureGenerator, BuildError> + Send + Sync + 'static,
    {
        self.ctors.insert(name.into(), Arc::new(ctor));
    }

    /// Register `alias` to resolve like `name`. The alias is late-bound:
    /// re-registering `name` later redirects the alias too. Returns
    /// `false` (and registers nothing) when `name` is unknown.
    pub fn alias(&mut self, alias: impl Into<String>, name: &str) -> bool {
        if !self.ctors.contains_key(name) {
            return false;
        }
        self.aliases.insert(alias.into(), name.to_owned());
        true
    }

    fn resolve(&self, name: &str) -> Option<&Ctor> {
        self.ctors.get(name).or_else(|| {
            self.aliases
                .get(name)
                .and_then(|target| self.ctors.get(target))
        })
    }

    /// Construct a generator from its registry name and parameters.
    pub fn build(
        &self,
        name: &str,
        params: &Params,
    ) -> Result<BoxedStructureGenerator, BuildError> {
        match self.resolve(name) {
            Some(ctor) => ctor(params),
            None => Err(self.unknown(name)),
        }
    }

    /// Whether `name` resolves (directly or through an alias).
    pub fn contains(&self, name: &str) -> bool {
        self.resolve(name).is_some()
    }

    /// Every registered name (including aliases), sorted.
    pub fn names(&self) -> Vec<&str> {
        self.ctors
            .keys()
            .chain(self.aliases.keys())
            .map(String::as_str)
            .collect::<BTreeSet<_>>()
            .into_iter()
            .collect()
    }

    /// The error reported for an unresolvable `name`: carries the full
    /// registered-name list and a closest-match suggestion.
    pub fn unknown(&self, name: &str) -> BuildError {
        let known = self.names();
        BuildError::UnknownGenerator {
            suggestion: closest_match(name, known.iter().copied()),
            known: known.into_iter().map(str::to_owned).collect(),
            name: name.to_owned(),
        }
    }
}

impl fmt::Debug for StructureRegistry {
    /// Debug as the name list (closures have no useful representation).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("StructureRegistry")
            .field("names", &self.names())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Gnm;
    use datasynth_prng::SplitMix64;

    #[test]
    fn registered_closure_resolves_and_builds() {
        let mut registry = StructureRegistry::empty();
        registry.register("pairs", |params: &Params| {
            Ok(Box::new(Gnm::new(params.u64_or("m", 10))) as BoxedStructureGenerator)
        });
        assert!(registry.contains("pairs"));
        let g = registry
            .build("pairs", &Params::new().with_num("m", 25.0))
            .unwrap();
        assert_eq!(g.run(100, &mut SplitMix64::new(3)).len(), 25);
    }

    #[test]
    fn register_overrides_builtins() {
        let mut registry = StructureRegistry::builtin();
        registry.register("rmat", |_params: &Params| {
            Ok(Box::new(Gnm::new(1)) as BoxedStructureGenerator)
        });
        let g = registry.build("rmat", &Params::new()).unwrap();
        assert_eq!(g.name(), "gnm", "user entry shadows the builtin");
    }

    #[test]
    fn unknown_name_reports_suggestion_and_names() {
        let registry = StructureRegistry::builtin();
        let err = match registry.build("er_dos_renyi", &Params::new()) {
            Err(e) => e,
            Ok(g) => panic!("unexpectedly built {}", g.name()),
        };
        let msg = err.to_string();
        assert!(msg.contains("er_dos_renyi"), "{msg}");
        assert!(msg.contains("did you mean \"erdos_renyi\"?"), "{msg}");
        assert!(msg.contains("registered:"), "{msg}");
        assert!(msg.contains("lfr"), "{msg}");
    }

    #[test]
    fn distant_names_get_no_suggestion() {
        let registry = StructureRegistry::builtin();
        match registry.unknown("zzzzzzzzzzzzzzz") {
            BuildError::UnknownGenerator { suggestion, .. } => assert_eq!(suggestion, None),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn alias_tracks_target() {
        let mut registry = StructureRegistry::builtin();
        assert!(registry.alias("er", "erdos_renyi"));
        assert!(!registry.alias("nope_alias", "missing_target"));
        assert!(registry.contains("er"));
        assert!(!registry.contains("nope_alias"));
        assert!(registry.names().contains(&"er"));
    }

    #[test]
    fn overriding_a_canonical_name_redirects_its_aliases() {
        let mut registry = StructureRegistry::builtin();
        registry.register("erdos_renyi", |_params: &Params| {
            Ok(Box::new(Gnm::new(7)) as BoxedStructureGenerator)
        });
        // The DSL alias `gnp` must build the replacement, not the old
        // builtin it pointed at when the alias was created.
        let g = registry.build("gnp", &Params::new()).unwrap();
        assert_eq!(g.name(), "gnm", "alias resolves to the override");
        // A direct registration under the alias name shadows the alias.
        registry.register("gnp", |_params: &Params| {
            Ok(Box::new(Gnm::new(3)) as BoxedStructureGenerator)
        });
        let g = registry.build("gnp", &Params::new()).unwrap();
        assert_eq!(g.run(10, &mut SplitMix64::new(1)).len(), 3);
    }
}
