//! Capability metadata: which structural characteristics a generator can
//! explicitly configure. This regenerates the paper's Table 1 from the
//! implementations themselves instead of a hardcoded matrix.

/// Structural features a generator can be *configured* to reproduce
/// (a marked cell in Table 1 means "explicitly configurable").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Capabilities {
    /// Arbitrary (e.g. empirical) degree distributions.
    pub degree_distribution: bool,
    /// Power-law degree distribution (fixed family, tunable exponent).
    pub power_law: bool,
    /// Global/average clustering coefficient.
    pub clustering: bool,
    /// Average clustering coefficient per degree (BTER's `accd`).
    pub avg_clustering_per_degree: bool,
    /// Full clustering coefficient distribution per degree (Darwini's `ccdd`).
    pub clustering_per_degree_dist: bool,
    /// Planted community structure.
    pub communities: bool,
    /// Usable for 1→1 / 1→* cardinalities (bipartite attachment).
    pub cardinality_constrained: bool,
    /// Embarrassingly parallel / streaming generation.
    pub scalable: bool,
}

impl Capabilities {
    /// Render as the compact tag list used in the Table 1 report
    /// (dd, pl, cc, accd, ccdd, c — the paper's abbreviations).
    pub fn tags(&self) -> Vec<&'static str> {
        let mut t = Vec::new();
        if self.degree_distribution {
            t.push("dd");
        }
        if self.power_law {
            t.push("pl");
        }
        if self.clustering {
            t.push("cc");
        }
        if self.avg_clustering_per_degree {
            t.push("accd");
        }
        if self.clustering_per_degree_dist {
            t.push("ccdd");
        }
        if self.communities {
            t.push("c");
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tags_reflect_flags() {
        let c = Capabilities {
            power_law: true,
            communities: true,
            ..Default::default()
        };
        assert_eq!(c.tags(), vec!["pl", "c"]);
        assert!(Capabilities::default().tags().is_empty());
    }
}
