//! Structure Generators (SGs).
//!
//! The paper treats graph structure generation as pluggable: an SG exposes
//! `initialize(...)` (here: a constructor), `run(n) -> EdgeTable`, and
//! `getNumNodes(numEdges)` so the scale can be specified in edges. This
//! crate implements the generators the paper discusses — **RMAT** and
//! **LFR** (used in its evaluation), **BTER** (highlighted as the richest
//! tunable model) — plus the classic models any benchmarking toolbox needs
//! (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, planted SBM) and the
//! cardinality-constrained attachment generators used for 1→1 / 1→*
//! edge types such as the running example's `creates`.

mod attachment;
mod barabasi_albert;
mod bter;
mod capabilities;
mod darwini;
mod degree_seq;
mod degree_sequence;
mod erdos_renyi;
mod factory;
mod lfr;
mod params;
mod registry;
mod rmat;
mod sbm;
mod watts_strogatz;

pub use attachment::{DegreeDist, OneToManyGenerator, OneToOneGenerator};
pub use barabasi_albert::BarabasiAlbert;
pub use bter::{BterGenerator, CcProfile};
pub use capabilities::Capabilities;
pub use darwini::DarwiniGenerator;
pub use degree_seq::{chung_lu, configuration_model, even_out_degree_sum, ConfigModelOptions};
pub use degree_sequence::DegreeSequenceGenerator;
pub use erdos_renyi::{Gnm, Gnp};
pub use factory::{build_generator, GENERATOR_NAMES};
pub use lfr::{LfrGenerator, LfrParams};
pub use params::{ParamReader, ParamValue, Params};
pub use registry::{BoxedStructureGenerator, BuildError, StructureRegistry};
pub use rmat::RmatGenerator;
pub use sbm::PlantedSbm;
pub use watts_strogatz::WattsStrogatz;

use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

/// A pluggable graph structure generator (the paper's SG interface).
pub trait StructureGenerator {
    /// Identifier used by the DSL and reports.
    fn name(&self) -> &'static str;

    /// Generate the edges of a graph over nodes `0..n`, drawing randomness
    /// from `rng` (the paper's SGs carry internal state; we take the stream
    /// explicitly so generation stays deterministic and replayable).
    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable;

    /// Number of nodes to pass to [`Self::run`] so the resulting edge table
    /// has approximately `num_edges` edges (the paper's `getNumNodes`).
    fn num_nodes_for_edges(&self, num_edges: u64) -> u64;

    /// What this generator can reproduce (drives the Table 1 report).
    fn capabilities(&self) -> Capabilities;
}

/// Ground-truth-carrying generation: generators that plant a community
/// structure (LFR, SBM) can also return the labels they planted.
pub trait PlantedPartition: StructureGenerator {
    /// Generate edges together with the planted community label per node.
    fn run_with_partition(&self, n: u64, rng: &mut SplitMix64) -> (EdgeTable, Vec<u32>);
}
