//! Structure Generators (SGs).
//!
//! The paper treats graph structure generation as pluggable: an SG exposes
//! `initialize(...)` (here: a constructor), `run(n) -> EdgeTable`, and
//! `getNumNodes(numEdges)` so the scale can be specified in edges. This
//! crate implements the generators the paper discusses — **RMAT** and
//! **LFR** (used in its evaluation), **BTER** (highlighted as the richest
//! tunable model) — plus the classic models any benchmarking toolbox needs
//! (Erdős–Rényi, Barabási–Albert, Watts–Strogatz, planted SBM) and the
//! cardinality-constrained attachment generators used for 1→1 / 1→*
//! edge types such as the running example's `creates`.

mod attachment;
mod barabasi_albert;
mod bter;
mod capabilities;
mod chunk;
mod darwini;
mod degree_seq;
mod degree_sequence;
mod erdos_renyi;
mod factory;
mod lfr;
mod params;
mod registry;
mod rmat;
mod sbm;
mod watts_strogatz;

pub use attachment::{DegreeDist, OneToManyGenerator, OneToOneGenerator};
pub use barabasi_albert::BarabasiAlbert;
pub use bter::{BterGenerator, CcProfile};
pub use capabilities::Capabilities;
pub use chunk::{run_chunked, shard_window};
pub use darwini::DarwiniGenerator;
pub use degree_seq::{chung_lu, configuration_model, even_out_degree_sum, ConfigModelOptions};
pub use degree_sequence::DegreeSequenceGenerator;
pub use erdos_renyi::{Gnm, Gnp};
pub use factory::{build_generator, GENERATOR_NAMES};
pub use lfr::{LfrGenerator, LfrParams};
pub use params::{ParamReader, ParamValue, Params};
pub use registry::{BoxedStructureGenerator, BuildError, StructureRegistry};
pub use rmat::RmatGenerator;
pub use sbm::PlantedSbm;
pub use watts_strogatz::WattsStrogatz;

use std::ops::Range;

use datasynth_prng::{CounterStream, SplitMix64};
use datasynth_tables::EdgeTable;

/// A pluggable graph structure generator (the paper's SG interface).
pub trait StructureGenerator {
    /// Identifier used by the DSL and reports.
    fn name(&self) -> &'static str;

    /// Generate the edges of a graph over nodes `0..n`, drawing randomness
    /// from `rng` (the paper's SGs carry internal state; we take the stream
    /// explicitly so generation stays deterministic and replayable).
    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable;

    /// Number of nodes to pass to [`Self::run`] so the resulting edge table
    /// has approximately `num_edges` edges (the paper's `getNumNodes`).
    fn num_nodes_for_edges(&self, num_edges: u64) -> u64;

    /// What this generator can reproduce (drives the Table 1 report).
    fn capabilities(&self) -> Capabilities;

    /// Whether this generator supports counter-based chunked generation
    /// through [`run_range`](Self::run_range): its work divides into a
    /// fixed partition of independent slots, each a pure function of the
    /// stream key and the slot index, so slots can be generated on any
    /// worker in any grouping. Generators with inherently sequential state
    /// (preferential attachment, rewiring, community assembly) return
    /// `false` and are driven through [`run`](Self::run) alone.
    fn chunkable(&self) -> bool {
        false
    }

    /// Number of independent work slots behind [`run_range`](Self::run_range)
    /// for a graph over `n` nodes. Only meaningful when
    /// [`chunkable`](Self::chunkable) returns `true`.
    fn num_slots(&self, n: u64) -> u64 {
        let _ = n;
        0
    }

    /// Generate the edges of work slots `range` (a sub-range of
    /// `0..num_slots(n)`), sampling each slot from `stream`. The contract:
    /// concatenating the outputs over any ordered partition of the full
    /// slot range, then applying [`finalize`](Self::finalize), must be
    /// byte-identical to [`run`](Self::run) with the `rng` the stream key
    /// was drawn from — the invariant that makes structure generation
    /// independent of the worker count (see [`run_chunked`]).
    ///
    /// # Panics
    ///
    /// The default implementation panics: callers must gate on
    /// [`chunkable`](Self::chunkable).
    fn run_range(&self, n: u64, range: Range<u64>, stream: &CounterStream) -> EdgeTable {
        let _ = (n, range, stream);
        unimplemented!(
            "{}: run_range called on a non-chunkable generator",
            self.name()
        )
    }

    /// One-shot post-pass applied to the concatenated table of a chunked
    /// run (e.g. RMAT's optional simplification). Default: identity.
    fn finalize(&self, et: EdgeTable) -> EdgeTable {
        et
    }
}

/// Ground-truth-carrying generation: generators that plant a community
/// structure (LFR, SBM) can also return the labels they planted.
pub trait PlantedPartition: StructureGenerator {
    /// Generate edges together with the planted community label per node.
    fn run_with_partition(&self, n: u64, rng: &mut SplitMix64) -> (EdgeTable, Vec<u32>);
}
