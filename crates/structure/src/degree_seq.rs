//! Degree-sequence machinery shared by LFR and BTER: parity fixing, the
//! configuration model, and Chung–Lu weighted edge sampling.

use datasynth_prng::dist::AliasTable;
use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

/// Make the degree sum even by bumping the first node (a configuration
/// model needs an even number of stubs). Returns whether a bump happened.
pub fn even_out_degree_sum(degrees: &mut [u32]) -> bool {
    let sum: u64 = degrees.iter().map(|&d| u64::from(d)).sum();
    if sum % 2 == 1 {
        degrees[0] += 1;
        true
    } else {
        false
    }
}

/// Options for [`configuration_model`].
#[derive(Debug, Clone, Copy)]
pub struct ConfigModelOptions {
    /// Reject self-loops (dropped stubs after `rewire_passes`).
    pub forbid_self_loops: bool,
    /// Reject duplicate edges.
    pub forbid_multi_edges: bool,
    /// How many repair passes to run over invalid pairings.
    pub rewire_passes: usize,
}

impl Default for ConfigModelOptions {
    fn default() -> Self {
        Self {
            forbid_self_loops: true,
            forbid_multi_edges: true,
            rewire_passes: 8,
        }
    }
}

/// Configuration model: wire a given degree sequence into a graph by
/// pairing shuffled stubs. Invalid pairs (self-loops / duplicates, when
/// forbidden) are repaired by swapping with random partners for up to
/// `rewire_passes` passes; irreparable leftovers are dropped, so low-degree
/// tails keep their exact degrees and only a vanishing fraction of stubs is
/// lost (standard practice — the reference LFR code does the same).
pub fn configuration_model(
    degrees: &[u32],
    opts: ConfigModelOptions,
    rng: &mut SplitMix64,
) -> EdgeTable {
    let mut stubs: Vec<u64> =
        Vec::with_capacity(degrees.iter().map(|&d| d as usize).sum::<usize>());
    for (v, &d) in degrees.iter().enumerate() {
        stubs.extend(std::iter::repeat_n(v as u64, d as usize));
    }
    if stubs.len() % 2 == 1 {
        stubs.pop(); // odd stub cannot pair
    }
    rng.shuffle(&mut stubs);

    let half = stubs.len() / 2;
    let tails: Vec<u64> = stubs[..half].to_vec();
    let mut heads: Vec<u64> = stubs[half..].to_vec();

    let edge_key = |t: u64, h: u64| if t <= h { (t, h) } else { (h, t) };
    for _pass in 0..opts.rewire_passes {
        let mut seen = std::collections::HashSet::with_capacity(half);
        let mut bad: Vec<usize> = Vec::new();
        for i in 0..tails.len() {
            let is_loop = opts.forbid_self_loops && tails[i] == heads[i];
            let is_dup = opts.forbid_multi_edges && !seen.insert(edge_key(tails[i], heads[i]));
            if is_loop || is_dup {
                bad.push(i);
            }
        }
        if bad.is_empty() {
            break;
        }
        // Swap each bad pair's head with a random other pair's head.
        for &i in &bad {
            let j = rng.next_below(tails.len() as u64) as usize;
            heads.swap(i, j);
        }
    }

    // Final filter: drop any still-invalid pairs.
    let mut et = EdgeTable::with_capacity("config_model", tails.len());
    let mut seen = std::collections::HashSet::with_capacity(half);
    for (t, h) in tails.into_iter().zip(heads) {
        if opts.forbid_self_loops && t == h {
            continue;
        }
        if opts.forbid_multi_edges && !seen.insert(edge_key(t, h)) {
            continue;
        }
        et.push(t, h);
    }
    et
}

/// Chung–Lu model: sample `m` edges with endpoint probability proportional
/// to `weights`, rejecting self-loops and duplicates (bounded retries).
pub fn chung_lu(weights: &[f64], m: u64, rng: &mut SplitMix64) -> EdgeTable {
    let mut et = EdgeTable::with_capacity("chung_lu", m as usize);
    if weights.iter().all(|&w| w <= 0.0) || m == 0 {
        return et;
    }
    let alias = AliasTable::new(weights);
    let mut seen = std::collections::HashSet::with_capacity(m as usize);
    let mut attempts = 0u64;
    let max_attempts = m.saturating_mul(20).max(1000);
    while (et.len()) < m && attempts < max_attempts {
        attempts += 1;
        use datasynth_prng::dist::Sampler;
        let a = alias.sample(rng) as u64;
        let b = alias.sample(rng) as u64;
        if a == b {
            continue;
        }
        let key = if a < b { (a, b) } else { (b, a) };
        if seen.insert(key) {
            et.push(key.0, key.1);
        }
    }
    et
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parity_fix() {
        let mut d = vec![1, 1, 1];
        assert!(even_out_degree_sum(&mut d));
        assert_eq!(d, vec![2, 1, 1]);
        let mut e = vec![2, 2];
        assert!(!even_out_degree_sum(&mut e));
    }

    #[test]
    fn config_model_respects_degrees_closely() {
        let degrees: Vec<u32> = (0..200).map(|i| 2 + (i % 5)).collect();
        let mut d = degrees.clone();
        even_out_degree_sum(&mut d);
        let mut rng = SplitMix64::new(1);
        let et = configuration_model(&d, ConfigModelOptions::default(), &mut rng);
        let got = et.degrees(200);
        // Allow a small number of dropped stubs.
        let wanted: u64 = d.iter().map(|&x| u64::from(x)).sum();
        let realized: u64 = got.iter().map(|&x| u64::from(x)).sum();
        assert!(realized >= wanted - 8, "{realized} of {wanted} stubs kept");
        for (v, (&g, &w)) in got.iter().zip(&d).enumerate() {
            assert!(g <= w, "node {v} exceeded its degree");
        }
    }

    #[test]
    fn config_model_simple_graph_properties() {
        let d = vec![3u32; 100];
        let mut rng = SplitMix64::new(2);
        let et = configuration_model(&d, ConfigModelOptions::default(), &mut rng);
        for (t, h) in et.iter() {
            assert_ne!(t, h, "self-loop");
        }
        let mut canon = et.clone();
        canon.canonicalize_undirected();
        assert_eq!(canon.dedup(), 0, "no duplicate edges");
    }

    #[test]
    fn config_model_allows_loops_when_permitted() {
        let d = vec![2u32, 0, 0];
        let opts = ConfigModelOptions {
            forbid_self_loops: false,
            forbid_multi_edges: false,
            rewire_passes: 0,
        };
        let mut rng = SplitMix64::new(3);
        let et = configuration_model(&d, opts, &mut rng);
        assert_eq!(et.len(), 1);
        assert_eq!(et.edge(0), (0, 0));
    }

    #[test]
    fn chung_lu_favors_heavy_nodes() {
        let mut weights = vec![1.0; 100];
        weights[0] = 200.0;
        let mut rng = SplitMix64::new(4);
        let et = chung_lu(&weights, 300, &mut rng);
        let deg = et.degrees(100);
        assert!(deg[0] > 50, "hub degree {} should dominate", deg[0]);
        for (t, h) in et.iter() {
            assert_ne!(t, h);
        }
    }

    #[test]
    fn chung_lu_degenerate_inputs() {
        let mut rng = SplitMix64::new(5);
        assert!(chung_lu(&[0.0, 0.0], 10, &mut rng).is_empty());
        assert!(chung_lu(&[1.0, 1.0], 0, &mut rng).is_empty());
    }

    #[test]
    fn determinism() {
        let d = vec![4u32; 64];
        let a = configuration_model(&d, ConfigModelOptions::default(), &mut SplitMix64::new(9));
        let b = configuration_model(&d, ConfigModelOptions::default(), &mut SplitMix64::new(9));
        assert_eq!(a, b);
    }
}
