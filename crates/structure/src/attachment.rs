//! Cardinality-constrained attachment generators for 1→* and 1→1 edge
//! types (the running example's `creates`: one Person creates many
//! Messages, each Message has exactly one creator).
//!
//! These produce *bipartite* edge tables: tails range over the source type
//! (`0..n`), heads are freshly numbered targets (`0..total`), so the head
//! count is exactly the inferred instance count of the target type — this
//! is how DataSynth answers "how many Messages do I need?".

use datasynth_prng::dist::{DiscretePowerLaw, Empirical, Geometric, Sampler, UniformU64, Zipf};
use datasynth_prng::SplitMix64;
use datasynth_tables::EdgeTable;

use crate::{Capabilities, StructureGenerator};

/// Out-degree distribution for attachment generators.
#[derive(Debug, Clone)]
pub enum DegreeDist {
    /// Every source gets exactly `k` targets.
    Constant(u64),
    /// Uniform in an inclusive range.
    Uniform(UniformU64),
    /// Zipf-distributed (rank 1 = heaviest creator).
    Zipf(Zipf),
    /// Truncated discrete power law.
    PowerLaw(DiscretePowerLaw),
    /// Geometric (many sources create little, few create a lot).
    Geometric(Geometric),
    /// Learned from observed out-degrees.
    Empirical(Empirical),
}

impl DegreeDist {
    fn draw(&self, rng: &mut SplitMix64) -> u64 {
        match self {
            DegreeDist::Constant(k) => *k,
            DegreeDist::Uniform(d) => d.sample(rng),
            DegreeDist::Zipf(d) => d.sample(rng),
            DegreeDist::PowerLaw(d) => d.sample(rng),
            DegreeDist::Geometric(d) => d.sample(rng),
            DegreeDist::Empirical(d) => d.sample(rng),
        }
    }

    fn mean(&self) -> f64 {
        match self {
            DegreeDist::Constant(k) => *k as f64,
            DegreeDist::Uniform(d) => (d.lo() + d.hi()) as f64 / 2.0,
            // Zipf mean has no closed form here; estimate from pmf head.
            DegreeDist::Zipf(d) => {
                let n = d.n().min(10_000);
                (1..=n).map(|k| k as f64 * d.pmf(k)).sum()
            }
            DegreeDist::PowerLaw(d) => d.mean(),
            DegreeDist::Geometric(_) => 1.5, // E for p = .4; callers size loosely
            DegreeDist::Empirical(d) => d.mean(),
        }
    }
}

/// 1→* generator: each source node `i` gets `k_i ~ dist` outgoing edges to
/// freshly numbered target instances.
#[derive(Debug, Clone)]
pub struct OneToManyGenerator {
    dist: DegreeDist,
}

impl OneToManyGenerator {
    /// Create from an out-degree distribution.
    pub fn new(dist: DegreeDist) -> Self {
        Self { dist }
    }
}

impl StructureGenerator for OneToManyGenerator {
    fn name(&self) -> &'static str {
        "one_to_many"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut et = EdgeTable::with_capacity("one_to_many", n as usize);
        let mut next_target = 0u64;
        for src in 0..n {
            let k = self.dist.draw(rng);
            for _ in 0..k {
                et.push(src, next_target);
                next_target += 1;
            }
        }
        et
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        let mean = self.dist.mean().max(f64::MIN_POSITIVE);
        ((num_edges as f64 / mean).round() as u64).max(1)
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            degree_distribution: true,
            cardinality_constrained: true,
            scalable: true,
            ..Default::default()
        }
    }
}

/// 1→1 generator: a random bijection between `0..n` sources and `0..n`
/// targets.
#[derive(Debug, Clone, Copy, Default)]
pub struct OneToOneGenerator;

impl StructureGenerator for OneToOneGenerator {
    fn name(&self) -> &'static str {
        "one_to_one"
    }

    fn run(&self, n: u64, rng: &mut SplitMix64) -> EdgeTable {
        let mut perm: Vec<u64> = (0..n).collect();
        rng.shuffle(&mut perm);
        EdgeTable::from_pairs("one_to_one", (0..n).map(|i| (i, perm[i as usize])))
    }

    fn num_nodes_for_edges(&self, num_edges: u64) -> u64 {
        num_edges
    }

    fn capabilities(&self) -> Capabilities {
        Capabilities {
            cardinality_constrained: true,
            scalable: true,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn one_to_many_targets_are_dense_and_unique() {
        let g = OneToManyGenerator::new(DegreeDist::Uniform(UniformU64::new(0, 4)));
        let et = g.run(100, &mut SplitMix64::new(1));
        let mut heads: Vec<u64> = et.heads().to_vec();
        heads.sort_unstable();
        let expected: Vec<u64> = (0..et.len()).collect();
        assert_eq!(heads, expected, "heads must be 0..m exactly");
    }

    #[test]
    fn one_to_many_constant_degree() {
        let g = OneToManyGenerator::new(DegreeDist::Constant(3));
        let et = g.run(10, &mut SplitMix64::new(2));
        assert_eq!(et.len(), 30);
        assert_eq!(et.out_degrees(10), vec![3u32; 10]);
    }

    #[test]
    fn one_to_many_power_law_sizing() {
        let dist = DegreeDist::PowerLaw(DiscretePowerLaw::new(2.0, 1, 100));
        let g = OneToManyGenerator::new(dist);
        let target_edges = 10_000;
        let n = g.num_nodes_for_edges(target_edges);
        let et = g.run(n, &mut SplitMix64::new(3));
        let got = et.len() as f64;
        let rel = (got - target_edges as f64).abs() / target_edges as f64;
        assert!(
            rel < 0.15,
            "sized {n} sources -> {got} edges, wanted {target_edges}"
        );
    }

    #[test]
    fn one_to_one_is_a_bijection() {
        let g = OneToOneGenerator;
        let et = g.run(50, &mut SplitMix64::new(4));
        assert_eq!(et.len(), 50);
        let mut heads: Vec<u64> = et.heads().to_vec();
        heads.sort_unstable();
        assert_eq!(heads, (0..50).collect::<Vec<_>>());
        assert_eq!(et.tails(), (0..50).collect::<Vec<_>>().as_slice());
    }

    #[test]
    fn geometric_mirrors_long_tail() {
        let g = OneToManyGenerator::new(DegreeDist::Geometric(Geometric::new(0.4)));
        let et = g.run(10_000, &mut SplitMix64::new(5));
        let deg = et.out_degrees(10_000);
        let zeros = deg.iter().filter(|&&d| d == 0).count() as f64 / 10_000.0;
        assert!((zeros - 0.4).abs() < 0.02, "P(0) = {zeros}");
    }
}
