//! Bridges between the schema's [`GeneratorSpec`] and the concrete
//! registries (property generators, structure generators, JPDs).

use datasynth_matching::Jpd;
use datasynth_props::GenArg;
use datasynth_schema::{GeneratorSpec, SpecArg};
use datasynth_structure::{ParamValue, Params};

use crate::error::PipelineError;

/// Convert a property generator call's arguments (positional and weighted
/// only; named arguments are a structure-generator convention).
pub fn gen_args_of(spec: &GeneratorSpec) -> Result<Vec<GenArg>, PipelineError> {
    spec.args
        .iter()
        .map(|a| match a {
            SpecArg::Num(v) => Ok(GenArg::Num(*v)),
            SpecArg::Int(v) => Ok(GenArg::Int(*v)),
            SpecArg::Text(s) => Ok(GenArg::Text(s.clone())),
            SpecArg::Weighted(l, w) => Ok(GenArg::Weighted(l.clone(), *w)),
            SpecArg::Named(k, _) | SpecArg::NamedInt(k, _) | SpecArg::NamedText(k, _) => Err(PipelineError::Invalid(
                format!("property generator {:?} takes positional arguments, found named argument {k:?}", spec.name),
            )),
        })
        .collect()
}

/// Convert a structure generator call's arguments (named only).
pub fn structure_params_of(spec: &GeneratorSpec) -> Result<Params, PipelineError> {
    let mut params = Params::new();
    for a in &spec.args {
        match a {
            SpecArg::Named(k, v) => params.insert(k.clone(), ParamValue::Num(*v)),
            SpecArg::NamedInt(k, v) => params.insert(k.clone(), ParamValue::Int(*v)),
            SpecArg::NamedText(k, s) => params.insert(k.clone(), ParamValue::Text(s.clone())),
            other => {
                return Err(PipelineError::Invalid(format!(
                    "structure generator {:?} takes named arguments, found {other:?}",
                    spec.name
                )));
            }
        }
    }
    Ok(params)
}

/// Build the target JPD for a correlation clause, given the observed value
/// frequencies of the correlated property (in group order).
pub fn build_jpd(spec: &GeneratorSpec, frequencies: &[u64]) -> Result<Jpd, PipelineError> {
    let weights: Vec<f64> = frequencies.iter().map(|&f| f as f64).collect();
    match spec.name.as_str() {
        "homophily" => {
            let diag = spec
                .args
                .iter()
                .find_map(|a| match a {
                    SpecArg::Num(v) => Some(*v),
                    SpecArg::Int(v) => Some(*v as f64),
                    SpecArg::Named(k, v) if k == "diag" => Some(*v),
                    SpecArg::NamedInt(k, v) if k == "diag" => Some(*v as f64),
                    _ => None,
                })
                .unwrap_or(0.8);
            if !(0.0..=1.0).contains(&diag) {
                return Err(PipelineError::Invalid(
                    "homophily(diag) requires diag in [0, 1]".into(),
                ));
            }
            Ok(Jpd::homophilous(&weights, diag))
        }
        "uniform" => Ok(Jpd::uniform(weights.len())),
        "proportional" => {
            // P(i,j) ∝ w_i · w_j: what independent random matching yields;
            // useful as an explicit null model.
            let total: f64 = weights.iter().sum();
            let k = weights.len();
            let rows: Vec<Vec<f64>> = (0..k)
                .map(|i| {
                    (0..k)
                        .map(|j| weights[i] / total * weights[j] / total)
                        .collect()
                })
                .collect();
            Ok(Jpd::from_matrix(&rows))
        }
        other => Err(PipelineError::Invalid(format!(
            "unknown correlation target {other:?} (expected homophily, uniform or proportional)"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::Span;

    #[test]
    fn gen_args_convert_positional() {
        let spec = GeneratorSpec {
            name: "categorical".into(),
            args: vec![
                SpecArg::Weighted("M".into(), 0.5),
                SpecArg::Num(3.0),
                SpecArg::Text("x".into()),
            ],
            span: Span::SYNTHETIC,
        };
        let args = gen_args_of(&spec).unwrap();
        assert_eq!(args.len(), 3);
        assert!(matches!(&args[0], GenArg::Weighted(l, w) if l == "M" && *w == 0.5));
    }

    #[test]
    fn gen_args_reject_named() {
        let spec = GeneratorSpec {
            name: "uniform".into(),
            args: vec![SpecArg::Named("lo".into(), 0.0)],
            span: Span::SYNTHETIC,
        };
        assert!(gen_args_of(&spec).is_err());
    }

    #[test]
    fn structure_params_convert_named() {
        let spec = GeneratorSpec {
            name: "lfr".into(),
            args: vec![
                SpecArg::Named("mixing".into(), 0.1),
                SpecArg::NamedInt("avg_degree".into(), 20),
                SpecArg::NamedText("dist".into(), "zipf".into()),
            ],
            span: Span::SYNTHETIC,
        };
        let p = structure_params_of(&spec).unwrap();
        assert_eq!(p.get_f64("mixing"), Some(0.1));
        assert_eq!(p.get_f64("avg_degree"), Some(20.0));
        assert_eq!(p.get_u64("avg_degree"), Some(20));
        assert_eq!(p.get_str("dist"), Some("zipf"));
    }

    #[test]
    fn gen_args_carry_integers_exactly() {
        let spec = GeneratorSpec {
            name: "uniform".into(),
            args: vec![SpecArg::Int(0), SpecArg::Int(9_007_199_254_740_993)],
            span: Span::SYNTHETIC,
        };
        let args = gen_args_of(&spec).unwrap();
        assert_eq!(args[1], GenArg::Int(9_007_199_254_740_993));
    }

    #[test]
    fn structure_params_reject_positional() {
        let spec = GeneratorSpec {
            name: "lfr".into(),
            args: vec![SpecArg::Num(5.0)],
            span: Span::SYNTHETIC,
        };
        assert!(structure_params_of(&spec).is_err());
    }

    #[test]
    fn jpd_specs() {
        let freqs = [10u64, 30, 60];
        let homo = build_jpd(
            &GeneratorSpec {
                name: "homophily".into(),
                args: vec![SpecArg::Num(0.7)],
                span: Span::SYNTHETIC,
            },
            &freqs,
        )
        .unwrap();
        assert!((homo.diagonal_mass() - 0.7).abs() < 1e-9);
        let unif = build_jpd(&GeneratorSpec::bare("uniform"), &freqs).unwrap();
        assert_eq!(unif.k(), 3);
        let prop = build_jpd(&GeneratorSpec::bare("proportional"), &freqs).unwrap();
        assert!(prop.ordered_mass(2, 2) > prop.ordered_mass(0, 0));
        assert!(build_jpd(&GeneratorSpec::bare("magic"), &freqs).is_err());
    }
}
