//! The run report: everything one [`Session::run_into`](crate::Session::run_into)
//! learned about itself, in one deterministic structure.
//!
//! A [`RunReport`] wraps the run's completed [`SinkManifest`] (it derefs
//! to it, so manifest-only callers keep working) and adds the telemetry
//! the scheduler and sinks collected: per-task phase timings, per-table
//! byte counts, thread/shard configuration and a schema fingerprint.
//!
//! Determinism contract: every row, byte, hash and configuration field is
//! a pure function of `(schema, seed, shard)` — identical across thread
//! counts and across runs. Timing-class fields (durations, occupancy,
//! reorder depth, rows/sec) are measurements and carry no such guarantee;
//! [`to_json_stable`](RunReport::to_json_stable) renders the report with
//! them omitted, and *that* byte stream is what the test suite pins
//! across thread counts 1/2/7.

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::ops::Deref;
use std::time::Duration;

use datasynth_telemetry::json::escape as json_escape;
use datasynth_telemetry::{prometheus, Snapshot};

use crate::sink::SinkManifest;

/// Telemetry for one plan slot: what the task was, how many rows it
/// produced, and where its wall time went.
#[derive(Debug, Clone)]
pub struct TaskReport {
    /// The task, rendered (e.g. `generate property Person.country`).
    pub task: String,
    /// Task kind: `count`, `node_property`, `structure`, `match` or
    /// `edge_property`.
    pub kind: &'static str,
    /// Rows the task produced — window-sized in a sharded run for
    /// windowed tasks, full-sized for recomputed ones. Deterministic.
    pub rows: u64,
    /// Time spent in the ready queue before a worker picked the task up
    /// (zero in sequential runs).
    pub queue_wait: Duration,
    /// Coordinator time collecting the task's inputs.
    pub gather: Duration,
    /// Worker time running the task body.
    pub execute: Duration,
    /// Coordinator time storing the output and delivering the slot's
    /// scheduled artifacts to the sink.
    pub commit: Duration,
}

impl TaskReport {
    /// Total working time: gather + execute + commit (queue wait is
    /// idleness, not work).
    pub fn elapsed(&self) -> Duration {
        self.gather + self.execute + self.commit
    }
}

/// The structured result of one pipeline run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// The completed sink manifest: per-table row windows and content
    /// hashes. [`RunReport`] derefs here.
    pub manifest: SinkManifest,
    /// FNV-1a fingerprint of the schema's canonical DSL rendering: two
    /// runs with equal hashes generated the same schema.
    pub schema_hash: u64,
    /// The session's configured thread budget.
    pub threads: usize,
    /// Scheduler workers actually used (`min(threads, plan length)`).
    pub workers: usize,
    /// Per-task telemetry, in plan order.
    pub tasks: Vec<TaskReport>,
    /// Bytes written per table, summed over every metered sink attached
    /// to the run (empty when no metrics registry was attached).
    pub sink_bytes: BTreeMap<String, u64>,
    /// Wall-clock duration of the whole run.
    pub wall: Duration,
    /// Total execute time across all workers (the numerator of
    /// [`worker_occupancy`](Self::worker_occupancy)).
    pub busy: Duration,
    /// High-water mark of the reorder buffer: the most completed-but-
    /// undelivered tasks held at once (0 in sequential runs).
    pub max_reorder_depth: u64,
    /// Snapshot of the attached metrics registry, if any — scheduler and
    /// sink series beyond what the typed fields above carry.
    pub metrics: Option<Snapshot>,
}

impl Deref for RunReport {
    type Target = SinkManifest;

    fn deref(&self) -> &SinkManifest {
        &self.manifest
    }
}

impl RunReport {
    /// Take just the manifest (for persistence and
    /// [`SinkManifest::merge`]).
    pub fn into_manifest(self) -> SinkManifest {
        self.manifest
    }

    /// Total rows this run emitted across all tables (window-sized under
    /// sharding).
    pub fn total_rows(&self) -> u64 {
        self.manifest.tables.values().map(|t| t.hi - t.lo).sum()
    }

    /// Total bytes written across all tables and metered sinks.
    pub fn total_bytes(&self) -> u64 {
        self.sink_bytes.values().sum()
    }

    /// Fraction of the run's `workers x wall` budget spent executing
    /// tasks: 1.0 means every worker was busy the whole run.
    pub fn worker_occupancy(&self) -> f64 {
        let budget = self.wall.as_secs_f64() * self.workers as f64;
        if budget <= 0.0 {
            return 0.0;
        }
        (self.busy.as_secs_f64() / budget).min(1.0)
    }

    /// The full report as JSON, timings included. Row/byte/hash/config
    /// fields are deterministic; timing fields are measurements.
    pub fn to_json(&self) -> String {
        self.render_json(true)
    }

    /// The deterministic subset as JSON: identical bytes for identical
    /// `(schema, seed, shard)` at any thread count — every timing-class
    /// field omitted.
    pub fn to_json_stable(&self) -> String {
        self.render_json(false)
    }

    fn table_kind(&self, table: &str) -> &'static str {
        if table.starts_with('$') {
            // Sink-contributed tables ("$ops") — no DSL identifier can
            // start with '$', so the prefix is unambiguous.
            "ops"
        } else if self.manifest.nodes.iter().any(|n| n.name == table) {
            "node"
        } else {
            "edge"
        }
    }

    fn render_json(&self, timings: bool) -> String {
        let m = &self.manifest;
        let mut out = String::new();
        out.push_str("{\n");
        let _ = writeln!(out, "  \"graph\": \"{}\",", json_escape(&m.graph_name));
        let _ = writeln!(out, "  \"seed\": \"{:016x}\",", m.seed);
        let _ = writeln!(out, "  \"schema_hash\": \"{:016x}\",", self.schema_hash);
        let _ = writeln!(
            out,
            "  \"shard\": {{\"index\": {}, \"count\": {}}},",
            m.shard.index, m.shard.count
        );
        if timings {
            let _ = writeln!(out, "  \"threads\": {},", self.threads);
            let _ = writeln!(out, "  \"workers\": {},", self.workers);
        }
        out.push_str("  \"tasks\": [\n");
        for (i, t) in self.tasks.iter().enumerate() {
            let _ = write!(
                out,
                "    {{\"task\": \"{}\", \"kind\": \"{}\", \"rows\": {}",
                json_escape(&t.task),
                t.kind,
                t.rows
            );
            if timings {
                let _ = write!(
                    out,
                    ", \"queue_wait_us\": {}, \"gather_us\": {}, \"execute_us\": {}, \
                     \"commit_us\": {}, \"elapsed_us\": {}",
                    t.queue_wait.as_micros(),
                    t.gather.as_micros(),
                    t.execute.as_micros(),
                    t.commit.as_micros(),
                    t.elapsed().as_micros()
                );
            }
            out.push('}');
            out.push_str(if i + 1 < self.tasks.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        out.push_str("  \"tables\": [\n");
        let wall_secs = self.wall.as_secs_f64();
        for (i, (name, rows)) in m.tables.iter().enumerate() {
            let emitted = rows.hi - rows.lo;
            let _ = write!(
                out,
                "    {{\"table\": \"{}\", \"kind\": \"{}\", \"lo\": {}, \"hi\": {}, \
                 \"total\": {}, \"rows\": {}, \"content_hash\": \"{:016x}\", \"bytes\": {}",
                json_escape(name),
                self.table_kind(name),
                rows.lo,
                rows.hi,
                rows.total,
                emitted,
                rows.content_hash,
                self.sink_bytes.get(name).copied().unwrap_or(0)
            );
            if timings && wall_secs > 0.0 {
                let _ = write!(out, ", \"rows_per_sec\": {:.1}", emitted as f64 / wall_secs);
            }
            out.push('}');
            out.push_str(if i + 1 < m.tables.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        let _ = write!(
            out,
            "  \"totals\": {{\"rows\": {}, \"bytes\": {}, \"content_hash\": \"{:016x}\"",
            self.total_rows(),
            self.total_bytes(),
            m.content_hash()
        );
        if timings {
            let _ = write!(
                out,
                ", \"wall_us\": {}, \"busy_us\": {}, \"worker_occupancy\": {:.4}, \
                 \"max_reorder_depth\": {}",
                self.wall.as_micros(),
                self.busy.as_micros(),
                self.worker_occupancy(),
                self.max_reorder_depth
            );
        }
        out.push_str("}\n}\n");
        out
    }

    /// Render the report in the Prometheus text exposition format:
    /// run-level gauges, per-table row/byte counters, per-task phase
    /// timings — followed by every series of the attached metrics
    /// registry, if one was attached. Ready for a scrape endpoint.
    pub fn to_prometheus(&self) -> String {
        let m = &self.manifest;
        let mut out = String::new();
        let shard = format!("{}", m.shard);
        out.push_str("# TYPE datasynth_run_info gauge\n");
        prometheus::write_sample(
            &mut out,
            "datasynth_run_info",
            &[
                ("graph", m.graph_name.clone()),
                ("seed", format!("{:016x}", m.seed)),
                ("schema_hash", format!("{:016x}", self.schema_hash)),
                ("shard", shard),
            ],
            1,
        );
        out.push_str("# TYPE datasynth_threads gauge\n");
        prometheus::write_sample(&mut out, "datasynth_threads", &[], self.threads as u64);
        out.push_str("# TYPE datasynth_workers gauge\n");
        prometheus::write_sample(&mut out, "datasynth_workers", &[], self.workers as u64);
        out.push_str("# TYPE datasynth_wall_microseconds gauge\n");
        prometheus::write_sample(
            &mut out,
            "datasynth_wall_microseconds",
            &[],
            self.wall.as_micros() as u64,
        );
        out.push_str("# TYPE datasynth_reorder_depth_max gauge\n");
        prometheus::write_sample(
            &mut out,
            "datasynth_reorder_depth_max",
            &[],
            self.max_reorder_depth,
        );
        out.push_str("# TYPE datasynth_table_rows_total counter\n");
        for (name, rows) in &m.tables {
            prometheus::write_sample(
                &mut out,
                "datasynth_table_rows_total",
                &[
                    ("table", name.clone()),
                    ("kind", self.table_kind(name).to_owned()),
                ],
                rows.hi - rows.lo,
            );
        }
        if !self.sink_bytes.is_empty() {
            out.push_str("# TYPE datasynth_table_bytes_total counter\n");
            for (name, bytes) in &self.sink_bytes {
                prometheus::write_sample(
                    &mut out,
                    "datasynth_table_bytes_total",
                    &[("table", name.clone())],
                    *bytes,
                );
            }
        }
        out.push_str("# TYPE datasynth_task_execute_microseconds gauge\n");
        for t in &self.tasks {
            prometheus::write_sample(
                &mut out,
                "datasynth_task_execute_microseconds",
                &[("task", t.task.clone()), ("kind", t.kind.to_owned())],
                t.execute.as_micros() as u64,
            );
        }
        if let Some(metrics) = &self.metrics {
            out.push_str(&metrics.to_prometheus());
        }
        out
    }
}
