//! Streaming consumption of generation output: the [`GraphSink`] trait and
//! the stock sinks.
//!
//! The pipeline (structure → matching → properties) is incremental: each
//! task of the [`ExecutionPlan`](crate::ExecutionPlan) finishes one typed
//! artifact — a resolved node count, a node-property column, a finalized
//! edge table, an edge-property column. A [`GraphSink`] receives those
//! artifacts as soon as no downstream task needs them anymore, so consumers
//! that do not need the whole graph in memory (exporters, statistics,
//! workload curation) can process and discard tables while generation is
//! still running.
//!
//! Stock sinks:
//!
//! * [`InMemorySink`] — assembles a full
//!   [`PropertyGraph`](datasynth_tables::PropertyGraph);
//!   [`DataSynth::generate`](crate::DataSynth::generate) is sugar over it,
//! * [`CsvSink`] / [`JsonlSink`] — streaming exporters that open one writer
//!   per table and flush each file the moment its last column arrives,
//! * [`MultiSink`] — fans every event out to several sinks so export,
//!   statistics and workload curation share a single generation pass.
//!
//! # Writing a custom sink
//!
//! Implement the event methods you care about — every method defaults to a
//! no-op that drops its table. Tables arrive **by value**: keep them, or
//! drop them after extracting what you need — nothing is retained for you.
//! This sink counts edges without ever holding more than one table:
//!
//! ```
//! use datasynth_core::{DataSynth, GraphSink, SinkError};
//! use datasynth_tables::EdgeTable;
//!
//! #[derive(Default)]
//! struct EdgeCounter {
//!     edges: u64,
//! }
//!
//! impl GraphSink for EdgeCounter {
//!     fn edges(&mut self, _: &str, _: &str, _: &str, t: EdgeTable) -> Result<(), SinkError> {
//!         self.edges += t.len();
//!         Ok(())
//!     }
//! }
//!
//! let dsl = r#"graph g {
//!     node A [count = 100] { x: long = counter(); }
//!     edge e: A -- A { structure = erdos_renyi(p = 0.05); }
//! }"#;
//! let mut counter = EdgeCounter::default();
//! DataSynth::from_dsl(dsl)
//!     .unwrap()
//!     .session()
//!     .unwrap()
//!     .run_into(&mut counter)
//!     .unwrap();
//! assert!(counter.edges > 0);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::ops::Range;
use std::path::PathBuf;
use std::sync::Arc;

use datasynth_prng::{fnv1a_64, mix64};
use datasynth_schema::Schema;
use datasynth_structure::shard_window;
use datasynth_tables::export::{csv, jsonl};
use datasynth_tables::{Column, EdgeTable, PropertyGraph, PropertyTable, ValueType};
use datasynth_telemetry::{
    json::{self, Json},
    CountingWrite, MetricsRegistry,
};

/// Anything a sink can fail with.
#[derive(Debug)]
pub enum SinkError {
    /// An I/O failure while persisting.
    Io(io::Error),
    /// A protocol or consistency violation (with context).
    Invalid(String),
    /// The sink cannot operate under the announced run shape (for
    /// example, a whole-graph consumer driven by one shard of a
    /// partitioned run). The message says what to do instead.
    Unsupported(String),
}

impl SinkError {
    /// Shorthand for [`SinkError::Invalid`].
    pub fn invalid(msg: impl fmt::Display) -> Self {
        SinkError::Invalid(msg.to_string())
    }

    /// Shorthand for [`SinkError::Unsupported`].
    pub fn unsupported(msg: impl fmt::Display) -> Self {
        SinkError::Unsupported(msg.to_string())
    }
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Io(e) => write!(f, "io: {e}"),
            SinkError::Invalid(msg) => write!(f, "{msg}"),
            SinkError::Unsupported(msg) => write!(f, "unsupported: {msg}"),
        }
    }
}

impl std::error::Error for SinkError {}

impl From<io::Error> for SinkError {
    fn from(e: io::Error) -> Self {
        SinkError::Io(e)
    }
}

/// One property column a sink should expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyInfo {
    /// Property name.
    pub name: String,
    /// Column type.
    pub value_type: ValueType,
}

/// One node table a sink should expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTableInfo {
    /// Node type name.
    pub name: String,
    /// Properties in emission (name) order.
    pub properties: Vec<PropertyInfo>,
}

/// One edge table a sink should expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTableInfo {
    /// Edge type name.
    pub name: String,
    /// Source node type.
    pub source: String,
    /// Target node type.
    pub target: String,
    /// Properties in emission (name) order.
    pub properties: Vec<PropertyInfo>,
}

/// Which slice of a partitioned run this is: shard `index` of `count`.
/// `ShardSpec::default()` — shard 0 of 1 — is a full, unpartitioned run;
/// every run is described this way so sharded and unsharded execution
/// share one code path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// Zero-based shard index, `< count`.
    pub index: u64,
    /// Total number of shards, `>= 1`.
    pub count: u64,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec { index: 0, count: 1 }
    }
}

impl fmt::Display for ShardSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.index, self.count)
    }
}

impl ShardSpec {
    /// A validated spec: rejects `count == 0` and `index >= count`.
    pub fn new(index: u64, count: u64) -> Result<Self, SinkError> {
        if count == 0 {
            return Err(SinkError::invalid("shard count must be at least 1"));
        }
        if index >= count {
            return Err(SinkError::invalid(format!(
                "shard index {index} out of range: must be < {count}"
            )));
        }
        Ok(ShardSpec { index, count })
    }

    /// Whether this spec describes a full (single-shard) run.
    pub fn is_full(&self) -> bool {
        self.count == 1
    }

    /// This shard's global row window of an `n`-row table — the canonical
    /// partition every component derives independently
    /// (see [`shard_window`]).
    pub fn window(&self, n: u64) -> Range<u64> {
        shard_window(n, self.index, self.count)
    }
}

/// Where one table's rows landed in this run, recorded in the completed
/// [`SinkManifest`] that [`Session::run_into`](crate::Session::run_into)
/// returns: this shard emitted global rows `[lo, hi)` of a `total`-row
/// table, and `content_hash` commits to their contents.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TableRows {
    /// First global row emitted by this shard.
    pub lo: u64,
    /// One past the last global row emitted by this shard.
    pub hi: u64,
    /// Total rows of the table across all shards.
    pub total: u64,
    /// Order-independent content commitment: the wrapping sum of one
    /// 64-bit FNV-derived hash per (global row, column) cell, so shard
    /// hashes add up to exactly the full-table hash under
    /// [`SinkManifest::merge`].
    pub content_hash: u64,
}

/// Everything a run will emit, announced to sinks up front via
/// [`GraphSink::begin`] so they can preallocate writers and detect
/// completion per table without waiting for the run to end.
///
/// The manifest doubles as the run's **report**: `run_into` returns it
/// with [`tables`](Self::tables) filled in — per-table row windows and
/// content hashes — and [`merge`](Self::merge) fuses the reports of all
/// `k` shards of a partitioned run back into the report a single full run
/// would have produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkManifest {
    /// The schema's graph name.
    pub graph_name: String,
    /// The master seed of the run.
    pub seed: u64,
    /// Which shard of the row partition this run executes (0/1 = full).
    pub shard: ShardSpec,
    /// Node tables, sorted by type name.
    pub nodes: Vec<NodeTableInfo>,
    /// Edge tables, sorted by type name.
    pub edges: Vec<EdgeTableInfo>,
    /// Per-table row windows and content hashes, keyed by type name.
    /// Empty at [`GraphSink::begin`]; complete in the manifest returned by
    /// `run_into`.
    pub tables: BTreeMap<String, TableRows>,
    /// Whether this run emits an operation log (update stream) alongside
    /// the snapshot. Announced so sinks that cannot represent op streams
    /// can reject the run up front instead of silently dropping ops.
    pub ops: bool,
}

impl SinkManifest {
    /// Build the manifest for a schema. Types and properties are sorted by
    /// name — the same order the exporters use — so column order is
    /// independent of DSL declaration order.
    pub fn from_schema(schema: &Schema, seed: u64) -> Self {
        let prop_infos = |props: &[datasynth_schema::PropertyDef]| {
            let mut infos: Vec<PropertyInfo> = props
                .iter()
                .map(|p| PropertyInfo {
                    name: p.name.clone(),
                    value_type: p.value_type,
                })
                .collect();
            infos.sort_by(|a, b| a.name.cmp(&b.name));
            infos
        };
        let mut nodes: Vec<NodeTableInfo> = schema
            .nodes
            .iter()
            .map(|n| NodeTableInfo {
                name: n.name.clone(),
                properties: prop_infos(&n.properties),
            })
            .collect();
        nodes.sort_by(|a, b| a.name.cmp(&b.name));
        let mut edges: Vec<EdgeTableInfo> = schema
            .edges
            .iter()
            .map(|e| EdgeTableInfo {
                name: e.name.clone(),
                source: e.source.clone(),
                target: e.target.clone(),
                properties: prop_infos(&e.properties),
            })
            .collect();
        edges.sort_by(|a, b| a.name.cmp(&b.name));
        SinkManifest {
            graph_name: schema.name.clone(),
            seed,
            shard: ShardSpec::default(),
            nodes,
            edges,
            tables: BTreeMap::new(),
            ops: false,
        }
    }

    /// Builder-style shard annotation (used by sharded sessions).
    pub fn with_shard(mut self, shard: ShardSpec) -> Self {
        self.shard = shard;
        self
    }

    /// Builder-style op-log announcement (set by sessions running with
    /// `Session::with_ops`).
    pub fn with_ops(mut self, ops: bool) -> Self {
        self.ops = ops;
        self
    }

    /// One hash over the whole run: the per-table content hashes folded
    /// together with their table names. Two runs (or a merged shard set
    /// and a full run) agree on this iff they agree on every table.
    pub fn content_hash(&self) -> u64 {
        let mut h = 0u64;
        for (name, rows) in &self.tables {
            h = h.wrapping_add(fnv1a_64(name.as_bytes()) ^ rows.content_hash);
        }
        h
    }

    /// Fuse the completed manifests of all `k` shards of one partitioned
    /// run into the manifest the equivalent full run returns. Validates
    /// that the shards belong together (same graph, seed, schema, shard
    /// count), that every shard index `0..k` appears exactly once, and
    /// that each table's row windows are disjoint, ordered by shard index,
    /// and exhaustive over `0..total`. Content hashes are summed — by
    /// construction this equals the full run's per-table hash.
    pub fn merge(shards: &[SinkManifest]) -> Result<SinkManifest, SinkError> {
        let first = shards
            .first()
            .ok_or_else(|| SinkError::invalid("merge needs at least one shard manifest"))?;
        let k = first.shard.count;
        if shards.len() as u64 != k {
            return Err(SinkError::invalid(format!(
                "shard count mismatch: manifests declare {k} shards but {} were given",
                shards.len()
            )));
        }
        let mut by_index: Vec<Option<&SinkManifest>> = vec![None; k as usize];
        for m in shards {
            if m.graph_name != first.graph_name || m.seed != first.seed {
                return Err(SinkError::invalid(format!(
                    "cannot merge shards of different runs: {} (seed {}) vs {} (seed {})",
                    first.graph_name, first.seed, m.graph_name, m.seed
                )));
            }
            if m.nodes != first.nodes || m.edges != first.edges {
                return Err(SinkError::invalid(
                    "cannot merge shards generated from different schemas",
                ));
            }
            if m.shard.count != k {
                return Err(SinkError::invalid(format!(
                    "shard {} declares {} total shards, expected {k}",
                    m.shard.index, m.shard.count
                )));
            }
            if m.ops != first.ops {
                return Err(SinkError::invalid(
                    "cannot merge op-log shards with snapshot-only shards",
                ));
            }
            let slot = by_index.get_mut(m.shard.index as usize).ok_or_else(|| {
                SinkError::invalid(format!("shard index {} >= {k}", m.shard.index))
            })?;
            if slot.replace(m).is_some() {
                return Err(SinkError::invalid(format!(
                    "shard index {} appears more than once",
                    m.shard.index
                )));
            }
        }
        let ordered: Vec<&SinkManifest> = by_index
            .into_iter()
            .map(|s| s.expect("every index filled: k manifests, k distinct indices"))
            .collect();

        let mut tables: BTreeMap<String, TableRows> = BTreeMap::new();
        let table_names: Vec<&String> = first.tables.keys().collect();
        for m in &ordered {
            if m.tables.keys().collect::<Vec<_>>() != table_names {
                return Err(SinkError::invalid(format!(
                    "shard {} reports a different table set",
                    m.shard.index
                )));
            }
        }
        for &name in &table_names {
            let mut next = 0u64;
            let total = ordered[0].tables[name].total;
            let mut hash = 0u64;
            for m in &ordered {
                let rows = &m.tables[name];
                if rows.total != total {
                    return Err(SinkError::invalid(format!(
                        "table {name:?}: shard {} reports {} total rows, shard 0 reports {total}",
                        m.shard.index, rows.total
                    )));
                }
                if rows.lo != next || rows.hi < rows.lo {
                    return Err(SinkError::invalid(format!(
                        "table {name:?}: shard {} covers rows {}..{} but rows {next}.. are \
                         the next uncovered span — windows must tile the table in shard order",
                        m.shard.index, rows.lo, rows.hi
                    )));
                }
                next = rows.hi;
                hash = hash.wrapping_add(rows.content_hash);
            }
            if next != total {
                return Err(SinkError::invalid(format!(
                    "table {name:?}: shards cover rows 0..{next} of {total} — incomplete"
                )));
            }
            tables.insert(
                name.clone(),
                TableRows {
                    lo: 0,
                    hi: total,
                    total,
                    content_hash: hash,
                },
            );
        }

        Ok(SinkManifest {
            graph_name: first.graph_name.clone(),
            seed: first.seed,
            shard: ShardSpec::default(),
            nodes: first.nodes.clone(),
            edges: first.edges.clone(),
            tables,
            ops: first.ops,
        })
    }
}

// ---------------------------------------------------------------------------
// Manifest persistence: a small JSON encoding so shard manifests can
// travel between machines and be merged. The value model and parser are
// the workspace-shared `datasynth_telemetry::json` module.
// ---------------------------------------------------------------------------

/// The file name shard runs write their manifest under (`--out DIR` ⇒
/// `DIR/manifest.json`).
pub const MANIFEST_FILE: &str = "manifest.json";

impl From<json::JsonError> for SinkError {
    fn from(e: json::JsonError) -> Self {
        SinkError::invalid(format!("manifest {e}"))
    }
}

fn json_props(out: &mut String, props: &[PropertyInfo]) {
    out.push('[');
    for (i, p) in props.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        json::write_str(out, &p.name);
        out.push_str(",\"type\":");
        json::write_str(out, p.value_type.keyword());
        out.push('}');
    }
    out.push(']');
}

fn props_from_json(v: &Json, what: &str) -> Result<Vec<PropertyInfo>, SinkError> {
    v.arr_of(what)?
        .iter()
        .map(|p| {
            let name = p.key("name")?.str_of("property name")?.to_owned();
            let ty = p.key("type")?.str_of("property type")?;
            let value_type = ValueType::from_keyword(ty)
                .ok_or_else(|| SinkError::invalid(format!("unknown property type {ty:?}")))?;
            Ok(PropertyInfo { name, value_type })
        })
        .collect()
}

impl SinkManifest {
    /// Serialize the manifest (including row windows and content hashes)
    /// to JSON. Hashes and the seed are hex strings so the encoding has no
    /// number-precision hazards for other (double-based) JSON tooling.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n  \"graph\": ");
        json::write_str(&mut out, &self.graph_name);
        out.push_str(&format!(",\n  \"seed\": \"{:016x}\",\n", self.seed));
        out.push_str(&format!(
            "  \"shard\": {{\"index\": {}, \"count\": {}}},\n",
            self.shard.index, self.shard.count
        ));
        // Only announced when set, so manifests from snapshot-only runs
        // keep their pre-op-log byte layout.
        if self.ops {
            out.push_str("  \"ops\": true,\n");
        }
        out.push_str("  \"nodes\": [");
        for (i, n) in self.nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json::write_str(&mut out, &n.name);
            out.push_str(", \"properties\": ");
            json_props(&mut out, &n.properties);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"edges\": [");
        for (i, e) in self.edges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json::write_str(&mut out, &e.name);
            out.push_str(", \"source\": ");
            json::write_str(&mut out, &e.source);
            out.push_str(", \"target\": ");
            json::write_str(&mut out, &e.target);
            out.push_str(", \"properties\": ");
            json_props(&mut out, &e.properties);
            out.push('}');
        }
        out.push_str("\n  ],\n  \"tables\": [");
        for (i, (name, rows)) in self.tables.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("\n    {\"name\": ");
            json::write_str(&mut out, name);
            out.push_str(&format!(
                ", \"lo\": {}, \"hi\": {}, \"total\": {}, \"hash\": \"{:016x}\"}}",
                rows.lo, rows.hi, rows.total, rows.content_hash
            ));
        }
        out.push_str("\n  ]\n}\n");
        out
    }

    /// Parse a manifest previously written by [`to_json`](Self::to_json).
    pub fn from_json(src: &str) -> Result<SinkManifest, SinkError> {
        let root = Json::parse(src)?;
        root.obj_of("manifest")?;
        let graph_name = root.key("graph")?.str_of("graph")?.to_owned();
        let seed_hex = root.key("seed")?.str_of("seed")?;
        let seed = u64::from_str_radix(seed_hex, 16)
            .map_err(|_| SinkError::invalid(format!("bad seed {seed_hex:?}")))?;
        let shard_obj = root.key("shard")?;
        let shard = ShardSpec::new(
            shard_obj.key("index")?.u64_of("shard index")?,
            shard_obj.key("count")?.u64_of("shard count")?,
        )?;
        let nodes = root
            .key("nodes")?
            .arr_of("nodes")?
            .iter()
            .map(|n| {
                n.obj_of("node table")?;
                Ok(NodeTableInfo {
                    name: n.key("name")?.str_of("node name")?.to_owned(),
                    properties: props_from_json(n.key("properties")?, "node properties")?,
                })
            })
            .collect::<Result<Vec<_>, SinkError>>()?;
        let edges = root
            .key("edges")?
            .arr_of("edges")?
            .iter()
            .map(|e| {
                e.obj_of("edge table")?;
                Ok(EdgeTableInfo {
                    name: e.key("name")?.str_of("edge name")?.to_owned(),
                    source: e.key("source")?.str_of("edge source")?.to_owned(),
                    target: e.key("target")?.str_of("edge target")?.to_owned(),
                    properties: props_from_json(e.key("properties")?, "edge properties")?,
                })
            })
            .collect::<Result<Vec<_>, SinkError>>()?;
        let mut tables = BTreeMap::new();
        for t in root.key("tables")?.arr_of("tables")? {
            t.obj_of("table rows")?;
            let name = t.key("name")?.str_of("table name")?.to_owned();
            let hash_hex = t.key("hash")?.str_of("table hash")?;
            let content_hash = u64::from_str_radix(hash_hex, 16)
                .map_err(|_| SinkError::invalid(format!("bad table hash {hash_hex:?}")))?;
            tables.insert(
                name,
                TableRows {
                    lo: t.key("lo")?.u64_of("lo")?,
                    hi: t.key("hi")?.u64_of("hi")?,
                    total: t.key("total")?.u64_of("total")?,
                    content_hash,
                },
            );
        }
        let ops = match root.get("ops") {
            Some(v) => v
                .as_bool()
                .ok_or_else(|| SinkError::invalid("ops must be a bool"))?,
            None => false,
        };
        Ok(SinkManifest {
            graph_name,
            seed,
            shard,
            nodes,
            edges,
            tables,
            ops,
        })
    }

    /// Write the manifest as [`MANIFEST_FILE`] inside `dir`.
    pub fn save(&self, dir: &std::path::Path) -> Result<(), SinkError> {
        fs::create_dir_all(dir)?;
        fs::write(dir.join(MANIFEST_FILE), self.to_json())?;
        Ok(())
    }

    /// Load a manifest from [`MANIFEST_FILE`] inside `dir`.
    pub fn load(dir: &std::path::Path) -> Result<SinkManifest, SinkError> {
        let path = dir.join(MANIFEST_FILE);
        let src = fs::read_to_string(&path)
            .map_err(|e| SinkError::invalid(format!("cannot read {}: {e}", path.display())))?;
        Self::from_json(&src)
    }
}

// ---------------------------------------------------------------------------
// Content hashing: one 64-bit commitment per (row, column) cell, summed
// with wrapping addition. Sums are associative and commutative, so any
// row partition of a table contributes exactly the full table's hash —
// coverage (no gap, no overlap) is enforced separately by the row windows.
// Cost: a few ns per cell, ~3-6% of an export run — the price of every
// `--out` directory carrying a verifiable content commitment.
// ---------------------------------------------------------------------------

/// Continue an FNV-1a chain from an existing state — the seeded
/// counterpart of [`fnv1a_64`] (which is `fnv_step` from the FNV offset
/// basis), so cell hashes can fold several fields into one chain.
fn fnv_step(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Hash contribution of the implicit id column for the global rows `rows`.
pub(crate) fn hash_id_rows(rows: Range<u64>) -> u64 {
    let mut sum = 0u64;
    for id in rows {
        sum = sum.wrapping_add(mix64(fnv_step(fnv1a_64(b"id"), &id.to_le_bytes())));
    }
    sum
}

/// Hash contribution of the `(tail, head)` columns of `table`, whose row
/// `i` is global row `lo + i`.
pub(crate) fn hash_edge_rows(table: &EdgeTable, lo: u64) -> u64 {
    let mut sum = 0u64;
    let base = fnv1a_64(b"edge");
    for (i, (t, h)) in table.iter().enumerate() {
        let mut x = fnv_step(base, &(lo + i as u64).to_le_bytes());
        x = fnv_step(x, &t.to_le_bytes());
        x = fnv_step(x, &h.to_le_bytes());
        sum = sum.wrapping_add(mix64(x));
    }
    sum
}

/// Hash contribution of one property column named `prop`, whose row `i`
/// is global row `lo + i`.
pub(crate) fn hash_property_rows(prop: &str, table: &PropertyTable, lo: u64) -> u64 {
    let base = fnv_step(fnv1a_64(b"prop:"), prop.as_bytes());
    let mut sum = 0u64;
    let mut cell = |i: usize, payload: &[u8]| {
        let mut x = fnv_step(base, &(lo + i as u64).to_le_bytes());
        x = fnv_step(x, payload);
        sum = sum.wrapping_add(mix64(x));
    };
    match table.column() {
        Column::Bools(v) => {
            for (i, b) in v.iter().enumerate() {
                cell(i, &[u8::from(*b)]);
            }
        }
        Column::Longs(v) | Column::Dates(v) => {
            for (i, x) in v.iter().enumerate() {
                cell(i, &x.to_le_bytes());
            }
        }
        Column::Doubles(v) => {
            for (i, x) in v.iter().enumerate() {
                cell(i, &x.to_bits().to_le_bytes());
            }
        }
        Column::Texts(v) => {
            for (i, s) in v.iter().enumerate() {
                cell(i, s.as_bytes());
            }
        }
    }
    sum
}

/// A consumer of generation output, fed by
/// [`Session::run_into`](crate::Session::run_into).
///
/// Event order guarantees:
///
/// * [`begin`](Self::begin) first, [`finish`](Self::finish) last, each once;
/// * [`table_rows`](Self::table_rows) for a table precedes every other
///   event of that table except `begin`;
/// * [`node_count`](Self::node_count) for a type precedes every
///   [`node_property`](Self::node_property) of that type;
/// * [`edges`](Self::edges) for a type precedes every
///   [`edge_property`](Self::edge_property) of that type **is not**
///   guaranteed — property columns whose last pipeline use comes earlier
///   can arrive before their edge table. Buffer per type (the manifest says
///   what to expect) if you need complete tables;
/// * every table named in the manifest is emitted exactly once.
///
/// In a sharded run (`manifest.shard.count > 1`) every table event carries
/// only the shard's row slice: row `i` of a delivered table is global row
/// `rows.start + i` of the announced window. [`node_count`](Self::node_count)
/// still reports the **full** instance count.
///
/// See the module-level documentation for a minimal custom sink.
pub trait GraphSink {
    /// Announce the run: called once, before any task executes.
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        let _ = manifest;
        Ok(())
    }

    /// Announce the global row window of `table` (a node or edge type)
    /// this run will deliver: the tables handed to later events for
    /// `table` hold rows `rows` of a `total`-row table. A full run
    /// announces `0..total`. Default: ignore.
    fn table_rows(&mut self, table: &str, rows: Range<u64>, total: u64) -> Result<(), SinkError> {
        let _ = (table, rows, total);
        Ok(())
    }

    /// A node type's instance count has been resolved. Default: ignore.
    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        let _ = (node_type, count);
        Ok(())
    }

    /// A node property column is final (no downstream task reads it).
    /// Default: drop the table.
    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let _ = (node_type, property, table);
        Ok(())
    }

    /// An edge table is final: matched into node-id space and no longer
    /// needed by the pipeline. Default: drop the table.
    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        let _ = (edge_type, source, target, table);
        Ok(())
    }

    /// An edge property column is final. Default: drop the table.
    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let _ = (edge_type, property, table);
        Ok(())
    }

    /// The run completed; flush and release resources.
    fn finish(&mut self) -> Result<(), SinkError> {
        Ok(())
    }

    /// Tables this sink *itself* produced beyond the schema's node/edge
    /// tables (e.g. an op log), reported after [`finish`](Self::finish) so
    /// the run manifest can carry their row windows and content hashes.
    /// Keys must not collide with schema type names — derived tables use a
    /// `$`-prefixed name (`"$ops"`), which no DSL identifier can spell.
    /// Default: none.
    fn contributed_tables(&mut self) -> Vec<(String, TableRows)> {
        Vec::new()
    }
}

/// Collects every event into a [`PropertyGraph`] — the sink behind
/// [`DataSynth::generate`](crate::DataSynth::generate).
#[derive(Debug, Default)]
pub struct InMemorySink {
    graph: PropertyGraph,
}

impl InMemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph assembled so far.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Consume the sink, yielding the assembled graph.
    pub fn into_graph(self) -> PropertyGraph {
        self.graph
    }
}

impl GraphSink for InMemorySink {
    /// A `PropertyGraph` is a whole-graph artifact: assembling it from one
    /// shard's slices would pair full node counts with windowed columns
    /// (silently wrong reads), so partitioned runs are rejected up front —
    /// stream shards into export sinks instead.
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        if !manifest.shard.is_full() {
            return Err(SinkError::unsupported(format!(
                "InMemorySink assembles the full graph, not shard {}; \
                 use streaming sinks (CsvSink/JsonlSink or a custom GraphSink) \
                 for sharded runs",
                manifest.shard
            )));
        }
        if manifest.ops {
            return Err(SinkError::unsupported(
                "InMemorySink has no representation for operation logs; \
                 route op-log runs through a TemporalSink (datasynth-temporal) \
                 instead of silently dropping the update stream",
            ));
        }
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        self.graph.add_node_type(node_type, count);
        Ok(())
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        self.graph.insert_node_property(node_type, property, table);
        Ok(())
    }

    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        self.graph
            .insert_edge_table(edge_type, source, target, table);
        Ok(())
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        self.graph.insert_edge_property(edge_type, property, table);
        Ok(())
    }
}

/// Fans every event out to several sinks, so one generation pass can feed
/// export, statistics and workload curation at once. Tables are cloned for
/// all sinks but the last, so order sinks cheapest-copy-first if that
/// matters.
#[derive(Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn GraphSink>,
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Add a sink.
    pub fn push(&mut self, sink: &'a mut dyn GraphSink) {
        self.sinks.push(sink);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, sink: &'a mut dyn GraphSink) -> Self {
        self.push(sink);
        self
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl GraphSink for MultiSink<'_> {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.begin(manifest)?;
        }
        Ok(())
    }

    fn table_rows(&mut self, table: &str, rows: Range<u64>, total: u64) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.table_rows(table, rows.clone(), total)?;
        }
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.node_count(node_type, count)?;
        }
        Ok(())
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let (last, rest) = match self.sinks.split_last_mut() {
            Some(split) => split,
            None => return Ok(()),
        };
        for sink in rest {
            sink.node_property(node_type, property, table.clone())?;
        }
        last.node_property(node_type, property, table)
    }

    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        let (last, rest) = match self.sinks.split_last_mut() {
            Some(split) => split,
            None => return Ok(()),
        };
        for sink in rest {
            sink.edges(edge_type, source, target, table.clone())?;
        }
        last.edges(edge_type, source, target, table)
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let (last, rest) = match self.sinks.split_last_mut() {
            Some(split) => split,
            None => return Ok(()),
        };
        for sink in rest {
            sink.edge_property(edge_type, property, table.clone())?;
        }
        last.edge_property(edge_type, property, table)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.finish()?;
        }
        Ok(())
    }

    fn contributed_tables(&mut self) -> Vec<(String, TableRows)> {
        self.sinks
            .iter_mut()
            .flat_map(|s| s.contributed_tables())
            .collect()
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    Csv,
    Jsonl,
}

impl StreamFormat {
    fn extension(self) -> &'static str {
        match self {
            StreamFormat::Csv => "csv",
            StreamFormat::Jsonl => "jsonl",
        }
    }
}

#[derive(Debug)]
struct NodeBuffer {
    expected: Vec<String>,
    count: Option<u64>,
    props: BTreeMap<String, PropertyTable>,
    written: bool,
}

#[derive(Debug)]
struct EdgeBuffer {
    source: String,
    target: String,
    expected: Vec<String>,
    table: Option<EdgeTable>,
    props: BTreeMap<String, PropertyTable>,
    written: bool,
}

/// Reject a delivered column/table slice whose length does not match the
/// announced row window — the one consistency check every buffering sink
/// applies before committing bytes.
fn check_rows(table: &str, what: &str, len: u64, window: &Range<u64>) -> Result<(), SinkError> {
    let expected = window.end - window.start;
    if len != expected {
        return Err(SinkError::invalid(format!(
            "{table}: {what} has {len} rows but the announced window \
             {}..{} holds {expected}",
            window.start, window.end
        )));
    }
    Ok(())
}

/// Shared machinery of [`CsvSink`] and [`JsonlSink`]: buffer the columns of
/// each table, write the file the moment the table is complete, then free
/// the memory. Peak memory is the largest set of concurrently-incomplete
/// tables, not the whole graph.
///
/// In a sharded run each file holds only the shard's row window (global
/// ids preserved), and the CSV header is written by shard 0 alone — so
/// concatenating the shards' files in shard order is byte-identical to the
/// file a full run writes.
#[derive(Debug)]
struct StreamingDirSink {
    dir: PathBuf,
    format: StreamFormat,
    started: bool,
    shard: ShardSpec,
    /// Global row windows announced via `table_rows`, by table name.
    windows: BTreeMap<String, Range<u64>>,
    nodes: BTreeMap<String, NodeBuffer>,
    edges: BTreeMap<String, EdgeBuffer>,
    /// When attached, per-table `datasynth_sink_{bytes,rows}_total`
    /// counters are recorded at each table flush — one counter add per
    /// *file*, nothing per row.
    metrics: Option<Arc<MetricsRegistry>>,
}

impl StreamingDirSink {
    fn new(dir: PathBuf, format: StreamFormat) -> Self {
        Self {
            dir,
            format,
            started: false,
            shard: ShardSpec::default(),
            windows: BTreeMap::new(),
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
            metrics: None,
        }
    }

    /// Record one flushed table file into the attached registry, if any.
    fn record_flush(&self, table: &str, rows: u64, bytes: u64) {
        if let Some(metrics) = &self.metrics {
            metrics
                .counter_with("datasynth_sink_bytes_total", Some(("table", table)))
                .add(bytes);
            metrics
                .counter_with("datasynth_sink_rows_total", Some(("table", table)))
                .add(rows);
        }
    }

    /// The global rows a table's delivered slice covers: the announced
    /// window, or `0..fallback` for drivers that never announce one (a
    /// full run through a hand-rolled driver).
    fn window_of(&self, table: &str, fallback: u64) -> Range<u64> {
        self.windows.get(table).cloned().unwrap_or(0..fallback)
    }

    fn node(&mut self, node_type: &str) -> Result<&mut NodeBuffer, SinkError> {
        if !self.started {
            return Err(SinkError::invalid(
                "streaming sink received an event before begin(); \
                 drive it through Session::run_into",
            ));
        }
        self.nodes.get_mut(node_type).ok_or_else(|| {
            SinkError::invalid(format!("node type {node_type:?} not in the manifest"))
        })
    }

    fn edge(&mut self, edge_type: &str) -> Result<&mut EdgeBuffer, SinkError> {
        if !self.started {
            return Err(SinkError::invalid(
                "streaming sink received an event before begin(); \
                 drive it through Session::run_into",
            ));
        }
        self.edges.get_mut(edge_type).ok_or_else(|| {
            SinkError::invalid(format!("edge type {edge_type:?} not in the manifest"))
        })
    }

    fn try_flush_node(&mut self, node_type: &str) -> Result<(), SinkError> {
        let format = self.format;
        let write_header = self.shard.index == 0;
        let path = self.dir.join(format!("{node_type}.{}", format.extension()));
        let buf = self.nodes.get(node_type).expect("checked by caller");
        let complete = !buf.written
            && buf.count.is_some()
            && buf.expected.iter().all(|p| buf.props.contains_key(p));
        if !complete {
            return Ok(());
        }
        let count = buf.count.expect("checked");
        let rows = self.window_of(node_type, count);
        let buf = self.nodes.get_mut(node_type).expect("checked by caller");
        let props: Vec<(&str, &PropertyTable)> = buf
            .expected
            .iter()
            .map(|p| (p.as_str(), &buf.props[p]))
            .collect();
        for (name, table) in &props {
            check_rows(node_type, name, table.len(), &rows)?;
        }
        let row_count = rows.end - rows.start;
        let mut w = BufWriter::new(CountingWrite::new(File::create(path)?));
        match format {
            StreamFormat::Csv => {
                if write_header {
                    csv::write_node_header(&mut w, &props)?;
                }
                csv::write_node_rows(&mut w, rows, &props)?;
            }
            StreamFormat::Jsonl => jsonl::write_node_rows(&mut w, rows, &props)?,
        }
        w.flush()?;
        let bytes = w.get_ref().bytes();
        buf.written = true;
        buf.props.clear();
        self.record_flush(node_type, row_count, bytes);
        Ok(())
    }

    fn try_flush_edge(&mut self, edge_type: &str) -> Result<(), SinkError> {
        let format = self.format;
        let write_header = self.shard.index == 0;
        let path = self.dir.join(format!("{edge_type}.{}", format.extension()));
        let buf = self.edges.get(edge_type).expect("checked by caller");
        let complete = !buf.written
            && buf.table.is_some()
            && buf.expected.iter().all(|p| buf.props.contains_key(p));
        if !complete {
            return Ok(());
        }
        let slice_len = buf.table.as_ref().expect("checked").len();
        let rows = self.window_of(edge_type, slice_len);
        let buf = self.edges.get_mut(edge_type).expect("checked by caller");
        let table = buf.table.take().expect("checked");
        check_rows(edge_type, "edge table", table.len(), &rows)?;
        let props: Vec<(&str, &PropertyTable)> = buf
            .expected
            .iter()
            .map(|p| (p.as_str(), &buf.props[p]))
            .collect();
        for (name, ptable) in &props {
            check_rows(edge_type, name, ptable.len(), &rows)?;
        }
        let row_count = rows.end - rows.start;
        let mut w = BufWriter::new(CountingWrite::new(File::create(path)?));
        match format {
            StreamFormat::Csv => {
                if write_header {
                    csv::write_edge_header(&mut w, &props)?;
                }
                csv::write_edge_rows(&mut w, rows, &table, &props)?;
            }
            StreamFormat::Jsonl => {
                jsonl::write_edge_rows(&mut w, rows, &buf.source, &buf.target, &table, &props)?
            }
        }
        w.flush()?;
        let bytes = w.get_ref().bytes();
        buf.written = true;
        buf.props.clear();
        self.record_flush(edge_type, row_count, bytes);
        Ok(())
    }
}

impl GraphSink for StreamingDirSink {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        fs::create_dir_all(&self.dir)?;
        self.nodes = manifest
            .nodes
            .iter()
            .map(|n| {
                (
                    n.name.clone(),
                    NodeBuffer {
                        expected: n.properties.iter().map(|p| p.name.clone()).collect(),
                        count: None,
                        props: BTreeMap::new(),
                        written: false,
                    },
                )
            })
            .collect();
        self.edges = manifest
            .edges
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    EdgeBuffer {
                        source: e.source.clone(),
                        target: e.target.clone(),
                        expected: e.properties.iter().map(|p| p.name.clone()).collect(),
                        table: None,
                        props: BTreeMap::new(),
                        written: false,
                    },
                )
            })
            .collect();
        self.shard = manifest.shard;
        self.windows.clear();
        self.started = true;
        Ok(())
    }

    fn table_rows(&mut self, table: &str, rows: Range<u64>, _total: u64) -> Result<(), SinkError> {
        if !self.started {
            return Err(SinkError::invalid(
                "streaming sink received an event before begin(); \
                 drive it through Session::run_into",
            ));
        }
        self.windows.insert(table.to_owned(), rows);
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        self.node(node_type)?.count = Some(count);
        self.try_flush_node(node_type)
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let buf = self.node(node_type)?;
        if !buf.expected.iter().any(|p| p == property) {
            return Err(SinkError::invalid(format!(
                "property {node_type}.{property} not in the manifest"
            )));
        }
        buf.props.insert(property.to_owned(), table);
        self.try_flush_node(node_type)
    }

    fn edges(
        &mut self,
        edge_type: &str,
        _source: &str,
        _target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        self.edge(edge_type)?.table = Some(table);
        self.try_flush_edge(edge_type)
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let buf = self.edge(edge_type)?;
        if !buf.expected.iter().any(|p| p == property) {
            return Err(SinkError::invalid(format!(
                "property {edge_type}.{property} not in the manifest"
            )));
        }
        buf.props.insert(property.to_owned(), table);
        self.try_flush_edge(edge_type)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        let unwritten: Vec<&str> = self
            .nodes
            .iter()
            .filter(|(_, b)| !b.written)
            .map(|(n, _)| n.as_str())
            .chain(
                self.edges
                    .iter()
                    .filter(|(_, b)| !b.written)
                    .map(|(n, _)| n.as_str()),
            )
            .collect();
        if !unwritten.is_empty() {
            return Err(SinkError::invalid(format!(
                "run finished with incomplete tables: {}",
                unwritten.join(", ")
            )));
        }
        Ok(())
    }
}

/// Output format of a single-table stream ([`TableSink`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableFormat {
    /// Comma-separated values; a header row is written by shard 0 only.
    Csv,
    /// One JSON object per row; no header.
    Jsonl,
}

impl TableFormat {
    /// The file extension conventionally used for this format.
    pub fn extension(self) -> &'static str {
        match self {
            TableFormat::Csv => "csv",
            TableFormat::Jsonl => "jsonl",
        }
    }

    /// Parse a file extension (`"csv"` / `"jsonl"`).
    pub fn from_extension(ext: &str) -> Option<Self> {
        match ext {
            "csv" => Some(TableFormat::Csv),
            "jsonl" => Some(TableFormat::Jsonl),
            _ => None,
        }
    }

    /// The MIME type a transport should label this format with.
    pub fn content_type(self) -> &'static str {
        match self {
            TableFormat::Csv => "text/csv; charset=utf-8",
            TableFormat::Jsonl => "application/x-ndjson",
        }
    }
}

/// A [`GraphSink`] that extracts **one table** of a run into any
/// [`Write`] — the bridge a network service uses to stream a single node
/// or edge file without touching disk.
///
/// Only the target table's columns are buffered; every other event is
/// dropped on arrival, so peak memory is one table regardless of graph
/// size. Rows go through the same `datasynth_tables::export` row-writers
/// the directory sinks use — including the shard-0-only CSV header rule —
/// so the byte stream is identical to the file a [`CsvSink`] /
/// [`JsonlSink`] run writes for that table, and concatenating per-shard
/// streams in shard order reproduces the full table exactly.
///
/// `begin` rejects a table name absent from the manifest; `finish`
/// rejects a run that ended without completing the table. A write error
/// from `W` aborts the run ([`SinkError::Io`]) — how client disconnects
/// propagate back into and stop the generator.
pub struct TableSink<W: Write> {
    table: String,
    format: TableFormat,
    writer: W,
    shard: ShardSpec,
    window: Option<Range<u64>>,
    node: Option<NodeBuffer>,
    edge: Option<EdgeBuffer>,
    rows_written: Option<u64>,
}

impl<W: Write> TableSink<W> {
    /// Stream table `table` in `format` into `writer`.
    pub fn new(table: impl Into<String>, format: TableFormat, writer: W) -> Self {
        Self {
            table: table.into(),
            format,
            writer,
            shard: ShardSpec::default(),
            window: None,
            node: None,
            edge: None,
            rows_written: None,
        }
    }

    /// Rows emitted for the table so far (`0` until its flush).
    pub fn rows_written(&self) -> u64 {
        self.rows_written.unwrap_or(0)
    }

    /// The underlying writer, back.
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn try_flush_node(&mut self) -> Result<(), SinkError> {
        let Some(buf) = &self.node else {
            return Ok(());
        };
        let complete = !buf.written
            && buf.count.is_some()
            && buf.expected.iter().all(|p| buf.props.contains_key(p));
        if !complete {
            return Ok(());
        }
        let count = buf.count.expect("checked");
        let rows = self.window.clone().unwrap_or(0..count);
        let buf = self.node.as_mut().expect("checked");
        let props: Vec<(&str, &PropertyTable)> = buf
            .expected
            .iter()
            .map(|p| (p.as_str(), &buf.props[p]))
            .collect();
        for (name, table) in &props {
            check_rows(&self.table, name, table.len(), &rows)?;
        }
        match self.format {
            TableFormat::Csv => {
                if self.shard.index == 0 {
                    csv::write_node_header(&mut self.writer, &props)?;
                }
                csv::write_node_rows(&mut self.writer, rows.clone(), &props)?;
            }
            TableFormat::Jsonl => jsonl::write_node_rows(&mut self.writer, rows.clone(), &props)?,
        }
        self.writer.flush()?;
        let buf = self.node.as_mut().expect("checked");
        buf.written = true;
        buf.props.clear();
        self.rows_written = Some(rows.end - rows.start);
        Ok(())
    }

    fn try_flush_edge(&mut self) -> Result<(), SinkError> {
        let Some(buf) = &self.edge else {
            return Ok(());
        };
        let complete = !buf.written
            && buf.table.is_some()
            && buf.expected.iter().all(|p| buf.props.contains_key(p));
        if !complete {
            return Ok(());
        }
        let slice_len = buf.table.as_ref().expect("checked").len();
        let rows = self.window.clone().unwrap_or(0..slice_len);
        let buf = self.edge.as_mut().expect("checked");
        let table = buf.table.take().expect("checked");
        check_rows(&self.table, "edge table", table.len(), &rows)?;
        let props: Vec<(&str, &PropertyTable)> = buf
            .expected
            .iter()
            .map(|p| (p.as_str(), &buf.props[p]))
            .collect();
        for (name, ptable) in &props {
            check_rows(&self.table, name, ptable.len(), &rows)?;
        }
        match self.format {
            TableFormat::Csv => {
                if self.shard.index == 0 {
                    csv::write_edge_header(&mut self.writer, &props)?;
                }
                csv::write_edge_rows(&mut self.writer, rows.clone(), &table, &props)?;
            }
            TableFormat::Jsonl => jsonl::write_edge_rows(
                &mut self.writer,
                rows.clone(),
                &buf.source,
                &buf.target,
                &table,
                &props,
            )?,
        }
        self.writer.flush()?;
        let buf = self.edge.as_mut().expect("checked");
        buf.written = true;
        buf.props.clear();
        self.rows_written = Some(rows.end - rows.start);
        Ok(())
    }
}

impl<W: Write> GraphSink for TableSink<W> {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        self.shard = manifest.shard;
        self.window = None;
        self.node = None;
        self.edge = None;
        self.rows_written = None;
        if let Some(n) = manifest.nodes.iter().find(|n| n.name == self.table) {
            self.node = Some(NodeBuffer {
                expected: n.properties.iter().map(|p| p.name.clone()).collect(),
                count: None,
                props: BTreeMap::new(),
                written: false,
            });
        } else if let Some(e) = manifest.edges.iter().find(|e| e.name == self.table) {
            self.edge = Some(EdgeBuffer {
                source: e.source.clone(),
                target: e.target.clone(),
                expected: e.properties.iter().map(|p| p.name.clone()).collect(),
                table: None,
                props: BTreeMap::new(),
                written: false,
            });
        } else {
            return Err(SinkError::invalid(format!(
                "table {:?} is not in the manifest",
                self.table
            )));
        }
        Ok(())
    }

    fn table_rows(&mut self, table: &str, rows: Range<u64>, _total: u64) -> Result<(), SinkError> {
        if table == self.table {
            self.window = Some(rows);
        }
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        if node_type != self.table || self.node.is_none() {
            return Ok(());
        }
        self.node.as_mut().expect("checked").count = Some(count);
        self.try_flush_node()
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        if node_type != self.table {
            return Ok(());
        }
        let Some(buf) = self.node.as_mut() else {
            return Ok(());
        };
        if !buf.expected.iter().any(|p| p == property) {
            return Err(SinkError::invalid(format!(
                "property {node_type}.{property} not in the manifest"
            )));
        }
        buf.props.insert(property.to_owned(), table);
        self.try_flush_node()
    }

    fn edges(
        &mut self,
        edge_type: &str,
        _source: &str,
        _target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        if edge_type != self.table || self.edge.is_none() {
            return Ok(());
        }
        self.edge.as_mut().expect("checked").table = Some(table);
        self.try_flush_edge()
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        if edge_type != self.table {
            return Ok(());
        }
        let Some(buf) = self.edge.as_mut() else {
            return Ok(());
        };
        if !buf.expected.iter().any(|p| p == property) {
            return Err(SinkError::invalid(format!(
                "property {edge_type}.{property} not in the manifest"
            )));
        }
        buf.props.insert(property.to_owned(), table);
        self.try_flush_edge()
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        if self.rows_written.is_none() {
            return Err(SinkError::invalid(format!(
                "run finished without completing table {:?}",
                self.table
            )));
        }
        Ok(())
    }
}

macro_rules! delegate_sink {
    ($outer:ident) => {
        impl GraphSink for $outer {
            fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
                self.inner.begin(manifest)
            }
            fn table_rows(
                &mut self,
                table: &str,
                rows: Range<u64>,
                total: u64,
            ) -> Result<(), SinkError> {
                self.inner.table_rows(table, rows, total)
            }
            fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
                self.inner.node_count(node_type, count)
            }
            fn node_property(
                &mut self,
                node_type: &str,
                property: &str,
                table: PropertyTable,
            ) -> Result<(), SinkError> {
                self.inner.node_property(node_type, property, table)
            }
            fn edges(
                &mut self,
                edge_type: &str,
                source: &str,
                target: &str,
                table: EdgeTable,
            ) -> Result<(), SinkError> {
                self.inner.edges(edge_type, source, target, table)
            }
            fn edge_property(
                &mut self,
                edge_type: &str,
                property: &str,
                table: PropertyTable,
            ) -> Result<(), SinkError> {
                self.inner.edge_property(edge_type, property, table)
            }
            fn finish(&mut self) -> Result<(), SinkError> {
                self.inner.finish()
            }
            fn contributed_tables(&mut self) -> Vec<(String, TableRows)> {
                self.inner.contributed_tables()
            }
        }
    };
}

/// Streaming CSV export: one `<Type>.csv` per node type, one
/// `<edge>.csv` per edge type, byte-identical to
/// [`CsvExporter`](datasynth_tables::export::CsvExporter) on the same
/// data. Each file is written as soon as its last column arrives.
#[derive(Debug)]
pub struct CsvSink {
    inner: StreamingDirSink,
}

impl CsvSink {
    /// Stream CSV files into `dir` (created on [`GraphSink::begin`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            inner: StreamingDirSink::new(dir.into(), StreamFormat::Csv),
        }
    }

    /// Meter this sink: record per-table `datasynth_sink_bytes_total` /
    /// `datasynth_sink_rows_total` counters into `metrics` at each table
    /// flush. Share the registry with
    /// [`Session::with_metrics`](crate::Session::with_metrics) and the
    /// run's [`RunReport`](crate::RunReport) reports the byte counts.
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.inner.metrics = Some(metrics);
        self
    }
}

delegate_sink!(CsvSink);

/// Streaming JSON-lines export, byte-identical to
/// [`JsonlExporter`](datasynth_tables::export::JsonlExporter) on the same
/// data. Each file is written as soon as its last column arrives.
#[derive(Debug)]
pub struct JsonlSink {
    inner: StreamingDirSink,
}

impl JsonlSink {
    /// Stream JSONL files into `dir` (created on [`GraphSink::begin`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            inner: StreamingDirSink::new(dir.into(), StreamFormat::Jsonl),
        }
    }

    /// Meter this sink: record per-table `datasynth_sink_bytes_total` /
    /// `datasynth_sink_rows_total` counters into `metrics` at each table
    /// flush (see [`CsvSink::with_metrics`]).
    pub fn with_metrics(mut self, metrics: Arc<MetricsRegistry>) -> Self {
        self.inner.metrics = Some(metrics);
        self
    }
}

delegate_sink!(JsonlSink);

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;
    use datasynth_tables::Value;

    fn manifest() -> SinkManifest {
        let schema = parse_schema(
            r#"graph g {
                node B [count = 2] { z: long = counter(); }
                node A [count = 1] { y: long = counter(); x: long = counter(); }
                edge e: A -> B [many_to_many] {
                    structure = erdos_renyi(p = 0.5);
                    w: long = counter();
                }
            }"#,
        )
        .unwrap();
        SinkManifest::from_schema(&schema, 7)
    }

    #[test]
    fn manifest_is_sorted_by_name() {
        let m = manifest();
        assert_eq!(
            m.nodes.iter().map(|n| n.name.as_str()).collect::<Vec<_>>(),
            vec!["A", "B"]
        );
        assert_eq!(
            m.nodes[0]
                .properties
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            vec!["x", "y"]
        );
        assert_eq!(m.edges[0].source, "A");
        assert_eq!(m.edges[0].target, "B");
    }

    #[test]
    fn ops_flag_roundtrips_json_and_gates_merge() {
        let m = manifest();
        // Absent by default — pre-op-log manifests keep their byte layout
        // and parse with ops = false.
        assert!(!m.to_json().contains("\"ops\""));
        assert!(!SinkManifest::from_json(&m.to_json()).unwrap().ops);
        let with_ops = manifest().with_ops(true);
        assert!(with_ops.to_json().contains("\"ops\": true"));
        assert!(SinkManifest::from_json(&with_ops.to_json()).unwrap().ops);
        // Op-log shards and snapshot-only shards never merge.
        let a = manifest().with_shard(ShardSpec::new(0, 2).unwrap());
        let b = manifest()
            .with_shard(ShardSpec::new(1, 2).unwrap())
            .with_ops(true);
        let err = SinkManifest::merge(&[a, b]).unwrap_err();
        assert!(err.to_string().contains("op-log"), "{err}");
    }

    #[test]
    fn in_memory_sink_rejects_op_log_runs() {
        let mut sink = InMemorySink::new();
        let err = sink.begin(&manifest().with_ops(true)).unwrap_err();
        assert!(
            matches!(err, SinkError::Unsupported(_)),
            "expected Unsupported, got {err}"
        );
        assert!(err.to_string().contains("TemporalSink"), "{err}");
    }

    #[test]
    fn multi_sink_fans_out_to_all() {
        let mut a = InMemorySink::new();
        let mut b = InMemorySink::new();
        {
            let mut multi = MultiSink::new().with(&mut a).with(&mut b);
            multi.node_count("T", 3).unwrap();
            multi
                .node_property(
                    "T",
                    "p",
                    PropertyTable::from_values(
                        "T.p",
                        ValueType::Long,
                        [1i64, 2, 3].map(Value::from),
                    )
                    .unwrap(),
                )
                .unwrap();
            multi.finish().unwrap();
        }
        assert_eq!(a.graph().node_count("T"), Some(3));
        assert_eq!(
            a.graph().node_property("T", "p"),
            b.graph().node_property("T", "p")
        );
    }

    #[test]
    fn streaming_sink_rejects_events_before_begin() {
        let mut sink = CsvSink::new(std::env::temp_dir().join("ds-sink-nobegin"));
        let err = sink.node_count("A", 1).unwrap_err();
        assert!(err.to_string().contains("begin"), "{err}");
    }

    #[test]
    fn streaming_sink_flushes_per_table_and_detects_incomplete() {
        let dir = std::env::temp_dir().join(format!("ds-sink-flush-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut sink = CsvSink::new(&dir);
        sink.begin(&manifest()).unwrap();
        sink.node_count("B", 2).unwrap();
        sink.node_property(
            "B",
            "z",
            PropertyTable::from_values("B.z", ValueType::Long, [0i64, 1].map(Value::from)).unwrap(),
        )
        .unwrap();
        // B is complete: its file must already exist, before any A event.
        assert!(dir.join("B.csv").exists());
        assert!(!dir.join("A.csv").exists());
        // A and e never complete: finish must fail and name them.
        let err = sink.finish().unwrap_err();
        assert!(
            err.to_string().contains('A') && err.to_string().contains('e'),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
