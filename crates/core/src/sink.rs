//! Streaming consumption of generation output: the [`GraphSink`] trait and
//! the stock sinks.
//!
//! The pipeline (structure → matching → properties) is incremental: each
//! task of the [`ExecutionPlan`](crate::ExecutionPlan) finishes one typed
//! artifact — a resolved node count, a node-property column, a finalized
//! edge table, an edge-property column. A [`GraphSink`] receives those
//! artifacts as soon as no downstream task needs them anymore, so consumers
//! that do not need the whole graph in memory (exporters, statistics,
//! workload curation) can process and discard tables while generation is
//! still running.
//!
//! Stock sinks:
//!
//! * [`InMemorySink`] — assembles a full
//!   [`PropertyGraph`](datasynth_tables::PropertyGraph);
//!   [`DataSynth::generate`](crate::DataSynth::generate) is sugar over it,
//! * [`CsvSink`] / [`JsonlSink`] — streaming exporters that open one writer
//!   per table and flush each file the moment its last column arrives,
//! * [`MultiSink`] — fans every event out to several sinks so export,
//!   statistics and workload curation share a single generation pass.
//!
//! # Writing a custom sink
//!
//! Implement the event methods you care about — every method defaults to a
//! no-op that drops its table. Tables arrive **by value**: keep them, or
//! drop them after extracting what you need — nothing is retained for you.
//! This sink counts edges without ever holding more than one table:
//!
//! ```
//! use datasynth_core::{DataSynth, GraphSink, SinkError};
//! use datasynth_tables::EdgeTable;
//!
//! #[derive(Default)]
//! struct EdgeCounter {
//!     edges: u64,
//! }
//!
//! impl GraphSink for EdgeCounter {
//!     fn edges(&mut self, _: &str, _: &str, _: &str, t: EdgeTable) -> Result<(), SinkError> {
//!         self.edges += t.len();
//!         Ok(())
//!     }
//! }
//!
//! let dsl = r#"graph g {
//!     node A [count = 100] { x: long = counter(); }
//!     edge e: A -- A { structure = erdos_renyi(p = 0.05); }
//! }"#;
//! let mut counter = EdgeCounter::default();
//! DataSynth::from_dsl(dsl)
//!     .unwrap()
//!     .session()
//!     .unwrap()
//!     .run_into(&mut counter)
//!     .unwrap();
//! assert!(counter.edges > 0);
//! ```

use std::collections::BTreeMap;
use std::fmt;
use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::PathBuf;

use datasynth_schema::Schema;
use datasynth_tables::export::{csv, jsonl};
use datasynth_tables::{EdgeTable, PropertyGraph, PropertyTable, ValueType};

/// Anything a sink can fail with.
#[derive(Debug)]
pub enum SinkError {
    /// An I/O failure while persisting.
    Io(io::Error),
    /// A protocol or consistency violation (with context).
    Invalid(String),
}

impl SinkError {
    /// Shorthand for [`SinkError::Invalid`].
    pub fn invalid(msg: impl fmt::Display) -> Self {
        SinkError::Invalid(msg.to_string())
    }
}

impl fmt::Display for SinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SinkError::Io(e) => write!(f, "io: {e}"),
            SinkError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for SinkError {}

impl From<io::Error> for SinkError {
    fn from(e: io::Error) -> Self {
        SinkError::Io(e)
    }
}

/// One property column a sink should expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PropertyInfo {
    /// Property name.
    pub name: String,
    /// Column type.
    pub value_type: ValueType,
}

/// One node table a sink should expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NodeTableInfo {
    /// Node type name.
    pub name: String,
    /// Properties in emission (name) order.
    pub properties: Vec<PropertyInfo>,
}

/// One edge table a sink should expect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EdgeTableInfo {
    /// Edge type name.
    pub name: String,
    /// Source node type.
    pub source: String,
    /// Target node type.
    pub target: String,
    /// Properties in emission (name) order.
    pub properties: Vec<PropertyInfo>,
}

/// Everything a run will emit, announced to sinks up front via
/// [`GraphSink::begin`] so they can preallocate writers and detect
/// completion per table without waiting for the run to end.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SinkManifest {
    /// The schema's graph name.
    pub graph_name: String,
    /// The master seed of the run.
    pub seed: u64,
    /// Node tables, sorted by type name.
    pub nodes: Vec<NodeTableInfo>,
    /// Edge tables, sorted by type name.
    pub edges: Vec<EdgeTableInfo>,
}

impl SinkManifest {
    /// Build the manifest for a schema. Types and properties are sorted by
    /// name — the same order the exporters use — so column order is
    /// independent of DSL declaration order.
    pub fn from_schema(schema: &Schema, seed: u64) -> Self {
        let prop_infos = |props: &[datasynth_schema::PropertyDef]| {
            let mut infos: Vec<PropertyInfo> = props
                .iter()
                .map(|p| PropertyInfo {
                    name: p.name.clone(),
                    value_type: p.value_type,
                })
                .collect();
            infos.sort_by(|a, b| a.name.cmp(&b.name));
            infos
        };
        let mut nodes: Vec<NodeTableInfo> = schema
            .nodes
            .iter()
            .map(|n| NodeTableInfo {
                name: n.name.clone(),
                properties: prop_infos(&n.properties),
            })
            .collect();
        nodes.sort_by(|a, b| a.name.cmp(&b.name));
        let mut edges: Vec<EdgeTableInfo> = schema
            .edges
            .iter()
            .map(|e| EdgeTableInfo {
                name: e.name.clone(),
                source: e.source.clone(),
                target: e.target.clone(),
                properties: prop_infos(&e.properties),
            })
            .collect();
        edges.sort_by(|a, b| a.name.cmp(&b.name));
        SinkManifest {
            graph_name: schema.name.clone(),
            seed,
            nodes,
            edges,
        }
    }
}

/// A consumer of generation output, fed by
/// [`Session::run_into`](crate::Session::run_into).
///
/// Event order guarantees:
///
/// * [`begin`](Self::begin) first, [`finish`](Self::finish) last, each once;
/// * [`node_count`](Self::node_count) for a type precedes every
///   [`node_property`](Self::node_property) of that type;
/// * [`edges`](Self::edges) for a type precedes every
///   [`edge_property`](Self::edge_property) of that type **is not**
///   guaranteed — property columns whose last pipeline use comes earlier
///   can arrive before their edge table. Buffer per type (the manifest says
///   what to expect) if you need complete tables;
/// * every table named in the manifest is emitted exactly once.
///
/// See the module-level documentation for a minimal custom sink.
pub trait GraphSink {
    /// Announce the run: called once, before any task executes.
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        let _ = manifest;
        Ok(())
    }

    /// A node type's instance count has been resolved. Default: ignore.
    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        let _ = (node_type, count);
        Ok(())
    }

    /// A node property column is final (no downstream task reads it).
    /// Default: drop the table.
    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let _ = (node_type, property, table);
        Ok(())
    }

    /// An edge table is final: matched into node-id space and no longer
    /// needed by the pipeline. Default: drop the table.
    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        let _ = (edge_type, source, target, table);
        Ok(())
    }

    /// An edge property column is final. Default: drop the table.
    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let _ = (edge_type, property, table);
        Ok(())
    }

    /// The run completed; flush and release resources.
    fn finish(&mut self) -> Result<(), SinkError> {
        Ok(())
    }
}

/// Collects every event into a [`PropertyGraph`] — the sink behind
/// [`DataSynth::generate`](crate::DataSynth::generate).
#[derive(Debug, Default)]
pub struct InMemorySink {
    graph: PropertyGraph,
}

impl InMemorySink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }

    /// The graph assembled so far.
    pub fn graph(&self) -> &PropertyGraph {
        &self.graph
    }

    /// Consume the sink, yielding the assembled graph.
    pub fn into_graph(self) -> PropertyGraph {
        self.graph
    }
}

impl GraphSink for InMemorySink {
    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        self.graph.add_node_type(node_type, count);
        Ok(())
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        self.graph.insert_node_property(node_type, property, table);
        Ok(())
    }

    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        self.graph
            .insert_edge_table(edge_type, source, target, table);
        Ok(())
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        self.graph.insert_edge_property(edge_type, property, table);
        Ok(())
    }
}

/// Fans every event out to several sinks, so one generation pass can feed
/// export, statistics and workload curation at once. Tables are cloned for
/// all sinks but the last, so order sinks cheapest-copy-first if that
/// matters.
#[derive(Default)]
pub struct MultiSink<'a> {
    sinks: Vec<&'a mut dyn GraphSink>,
}

impl<'a> MultiSink<'a> {
    /// An empty fan-out.
    pub fn new() -> Self {
        Self { sinks: Vec::new() }
    }

    /// Add a sink.
    pub fn push(&mut self, sink: &'a mut dyn GraphSink) {
        self.sinks.push(sink);
    }

    /// Builder-style [`push`](Self::push).
    pub fn with(mut self, sink: &'a mut dyn GraphSink) -> Self {
        self.push(sink);
        self
    }

    /// Number of registered sinks.
    pub fn len(&self) -> usize {
        self.sinks.len()
    }

    /// Whether no sinks are registered.
    pub fn is_empty(&self) -> bool {
        self.sinks.is_empty()
    }
}

impl GraphSink for MultiSink<'_> {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.begin(manifest)?;
        }
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.node_count(node_type, count)?;
        }
        Ok(())
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let (last, rest) = match self.sinks.split_last_mut() {
            Some(split) => split,
            None => return Ok(()),
        };
        for sink in rest {
            sink.node_property(node_type, property, table.clone())?;
        }
        last.node_property(node_type, property, table)
    }

    fn edges(
        &mut self,
        edge_type: &str,
        source: &str,
        target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        let (last, rest) = match self.sinks.split_last_mut() {
            Some(split) => split,
            None => return Ok(()),
        };
        for sink in rest {
            sink.edges(edge_type, source, target, table.clone())?;
        }
        last.edges(edge_type, source, target, table)
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let (last, rest) = match self.sinks.split_last_mut() {
            Some(split) => split,
            None => return Ok(()),
        };
        for sink in rest {
            sink.edge_property(edge_type, property, table.clone())?;
        }
        last.edge_property(edge_type, property, table)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        for sink in &mut self.sinks {
            sink.finish()?;
        }
        Ok(())
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    Csv,
    Jsonl,
}

impl StreamFormat {
    fn extension(self) -> &'static str {
        match self {
            StreamFormat::Csv => "csv",
            StreamFormat::Jsonl => "jsonl",
        }
    }
}

#[derive(Debug)]
struct NodeBuffer {
    expected: Vec<String>,
    count: Option<u64>,
    props: BTreeMap<String, PropertyTable>,
    written: bool,
}

#[derive(Debug)]
struct EdgeBuffer {
    source: String,
    target: String,
    expected: Vec<String>,
    table: Option<EdgeTable>,
    props: BTreeMap<String, PropertyTable>,
    written: bool,
}

/// Shared machinery of [`CsvSink`] and [`JsonlSink`]: buffer the columns of
/// each table, write the file the moment the table is complete, then free
/// the memory. Peak memory is the largest set of concurrently-incomplete
/// tables, not the whole graph.
#[derive(Debug)]
struct StreamingDirSink {
    dir: PathBuf,
    format: StreamFormat,
    started: bool,
    nodes: BTreeMap<String, NodeBuffer>,
    edges: BTreeMap<String, EdgeBuffer>,
}

impl StreamingDirSink {
    fn new(dir: PathBuf, format: StreamFormat) -> Self {
        Self {
            dir,
            format,
            started: false,
            nodes: BTreeMap::new(),
            edges: BTreeMap::new(),
        }
    }

    fn node(&mut self, node_type: &str) -> Result<&mut NodeBuffer, SinkError> {
        if !self.started {
            return Err(SinkError::invalid(
                "streaming sink received an event before begin(); \
                 drive it through Session::run_into",
            ));
        }
        self.nodes.get_mut(node_type).ok_or_else(|| {
            SinkError::invalid(format!("node type {node_type:?} not in the manifest"))
        })
    }

    fn edge(&mut self, edge_type: &str) -> Result<&mut EdgeBuffer, SinkError> {
        if !self.started {
            return Err(SinkError::invalid(
                "streaming sink received an event before begin(); \
                 drive it through Session::run_into",
            ));
        }
        self.edges.get_mut(edge_type).ok_or_else(|| {
            SinkError::invalid(format!("edge type {edge_type:?} not in the manifest"))
        })
    }

    fn try_flush_node(&mut self, node_type: &str) -> Result<(), SinkError> {
        let format = self.format;
        let path = self.dir.join(format!("{node_type}.{}", format.extension()));
        let buf = self.nodes.get_mut(node_type).expect("checked by caller");
        let complete = !buf.written
            && buf.count.is_some()
            && buf.expected.iter().all(|p| buf.props.contains_key(p));
        if !complete {
            return Ok(());
        }
        let count = buf.count.expect("checked");
        let props: Vec<(&str, &PropertyTable)> = buf
            .expected
            .iter()
            .map(|p| (p.as_str(), &buf.props[p]))
            .collect();
        let mut w = BufWriter::new(File::create(path)?);
        match format {
            StreamFormat::Csv => csv::write_node_table(&mut w, count, &props)?,
            StreamFormat::Jsonl => jsonl::write_node_table(&mut w, count, &props)?,
        }
        w.flush()?;
        buf.written = true;
        buf.props.clear();
        Ok(())
    }

    fn try_flush_edge(&mut self, edge_type: &str) -> Result<(), SinkError> {
        let format = self.format;
        let path = self.dir.join(format!("{edge_type}.{}", format.extension()));
        let buf = self.edges.get_mut(edge_type).expect("checked by caller");
        let complete = !buf.written
            && buf.table.is_some()
            && buf.expected.iter().all(|p| buf.props.contains_key(p));
        if !complete {
            return Ok(());
        }
        let table = buf.table.take().expect("checked");
        let props: Vec<(&str, &PropertyTable)> = buf
            .expected
            .iter()
            .map(|p| (p.as_str(), &buf.props[p]))
            .collect();
        let mut w = BufWriter::new(File::create(path)?);
        match format {
            StreamFormat::Csv => csv::write_edge_table(&mut w, &table, &props)?,
            StreamFormat::Jsonl => {
                jsonl::write_edge_table(&mut w, &buf.source, &buf.target, &table, &props)?
            }
        }
        w.flush()?;
        buf.written = true;
        buf.props.clear();
        Ok(())
    }
}

impl GraphSink for StreamingDirSink {
    fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
        fs::create_dir_all(&self.dir)?;
        self.nodes = manifest
            .nodes
            .iter()
            .map(|n| {
                (
                    n.name.clone(),
                    NodeBuffer {
                        expected: n.properties.iter().map(|p| p.name.clone()).collect(),
                        count: None,
                        props: BTreeMap::new(),
                        written: false,
                    },
                )
            })
            .collect();
        self.edges = manifest
            .edges
            .iter()
            .map(|e| {
                (
                    e.name.clone(),
                    EdgeBuffer {
                        source: e.source.clone(),
                        target: e.target.clone(),
                        expected: e.properties.iter().map(|p| p.name.clone()).collect(),
                        table: None,
                        props: BTreeMap::new(),
                        written: false,
                    },
                )
            })
            .collect();
        self.started = true;
        Ok(())
    }

    fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
        self.node(node_type)?.count = Some(count);
        self.try_flush_node(node_type)
    }

    fn node_property(
        &mut self,
        node_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let buf = self.node(node_type)?;
        if !buf.expected.iter().any(|p| p == property) {
            return Err(SinkError::invalid(format!(
                "property {node_type}.{property} not in the manifest"
            )));
        }
        buf.props.insert(property.to_owned(), table);
        self.try_flush_node(node_type)
    }

    fn edges(
        &mut self,
        edge_type: &str,
        _source: &str,
        _target: &str,
        table: EdgeTable,
    ) -> Result<(), SinkError> {
        self.edge(edge_type)?.table = Some(table);
        self.try_flush_edge(edge_type)
    }

    fn edge_property(
        &mut self,
        edge_type: &str,
        property: &str,
        table: PropertyTable,
    ) -> Result<(), SinkError> {
        let buf = self.edge(edge_type)?;
        if !buf.expected.iter().any(|p| p == property) {
            return Err(SinkError::invalid(format!(
                "property {edge_type}.{property} not in the manifest"
            )));
        }
        buf.props.insert(property.to_owned(), table);
        self.try_flush_edge(edge_type)
    }

    fn finish(&mut self) -> Result<(), SinkError> {
        let unwritten: Vec<&str> = self
            .nodes
            .iter()
            .filter(|(_, b)| !b.written)
            .map(|(n, _)| n.as_str())
            .chain(
                self.edges
                    .iter()
                    .filter(|(_, b)| !b.written)
                    .map(|(n, _)| n.as_str()),
            )
            .collect();
        if !unwritten.is_empty() {
            return Err(SinkError::invalid(format!(
                "run finished with incomplete tables: {}",
                unwritten.join(", ")
            )));
        }
        Ok(())
    }
}

macro_rules! delegate_sink {
    ($outer:ident) => {
        impl GraphSink for $outer {
            fn begin(&mut self, manifest: &SinkManifest) -> Result<(), SinkError> {
                self.inner.begin(manifest)
            }
            fn node_count(&mut self, node_type: &str, count: u64) -> Result<(), SinkError> {
                self.inner.node_count(node_type, count)
            }
            fn node_property(
                &mut self,
                node_type: &str,
                property: &str,
                table: PropertyTable,
            ) -> Result<(), SinkError> {
                self.inner.node_property(node_type, property, table)
            }
            fn edges(
                &mut self,
                edge_type: &str,
                source: &str,
                target: &str,
                table: EdgeTable,
            ) -> Result<(), SinkError> {
                self.inner.edges(edge_type, source, target, table)
            }
            fn edge_property(
                &mut self,
                edge_type: &str,
                property: &str,
                table: PropertyTable,
            ) -> Result<(), SinkError> {
                self.inner.edge_property(edge_type, property, table)
            }
            fn finish(&mut self) -> Result<(), SinkError> {
                self.inner.finish()
            }
        }
    };
}

/// Streaming CSV export: one `<Type>.csv` per node type, one
/// `<edge>.csv` per edge type, byte-identical to
/// [`CsvExporter`](datasynth_tables::export::CsvExporter) on the same
/// data. Each file is written as soon as its last column arrives.
#[derive(Debug)]
pub struct CsvSink {
    inner: StreamingDirSink,
}

impl CsvSink {
    /// Stream CSV files into `dir` (created on [`GraphSink::begin`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            inner: StreamingDirSink::new(dir.into(), StreamFormat::Csv),
        }
    }
}

delegate_sink!(CsvSink);

/// Streaming JSON-lines export, byte-identical to
/// [`JsonlExporter`](datasynth_tables::export::JsonlExporter) on the same
/// data. Each file is written as soon as its last column arrives.
#[derive(Debug)]
pub struct JsonlSink {
    inner: StreamingDirSink,
}

impl JsonlSink {
    /// Stream JSONL files into `dir` (created on [`GraphSink::begin`]).
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self {
            inner: StreamingDirSink::new(dir.into(), StreamFormat::Jsonl),
        }
    }
}

delegate_sink!(JsonlSink);

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;
    use datasynth_tables::Value;

    fn manifest() -> SinkManifest {
        let schema = parse_schema(
            r#"graph g {
                node B [count = 2] { z: long = counter(); }
                node A [count = 1] { y: long = counter(); x: long = counter(); }
                edge e: A -> B [many_to_many] {
                    structure = erdos_renyi(p = 0.5);
                    w: long = counter();
                }
            }"#,
        )
        .unwrap();
        SinkManifest::from_schema(&schema, 7)
    }

    #[test]
    fn manifest_is_sorted_by_name() {
        let m = manifest();
        assert_eq!(
            m.nodes.iter().map(|n| n.name.as_str()).collect::<Vec<_>>(),
            vec!["A", "B"]
        );
        assert_eq!(
            m.nodes[0]
                .properties
                .iter()
                .map(|p| p.name.as_str())
                .collect::<Vec<_>>(),
            vec!["x", "y"]
        );
        assert_eq!(m.edges[0].source, "A");
        assert_eq!(m.edges[0].target, "B");
    }

    #[test]
    fn multi_sink_fans_out_to_all() {
        let mut a = InMemorySink::new();
        let mut b = InMemorySink::new();
        {
            let mut multi = MultiSink::new().with(&mut a).with(&mut b);
            multi.node_count("T", 3).unwrap();
            multi
                .node_property(
                    "T",
                    "p",
                    PropertyTable::from_values(
                        "T.p",
                        ValueType::Long,
                        [1i64, 2, 3].map(Value::from),
                    )
                    .unwrap(),
                )
                .unwrap();
            multi.finish().unwrap();
        }
        assert_eq!(a.graph().node_count("T"), Some(3));
        assert_eq!(
            a.graph().node_property("T", "p"),
            b.graph().node_property("T", "p")
        );
    }

    #[test]
    fn streaming_sink_rejects_events_before_begin() {
        let mut sink = CsvSink::new(std::env::temp_dir().join("ds-sink-nobegin"));
        let err = sink.node_count("A", 1).unwrap_err();
        assert!(err.to_string().contains("begin"), "{err}");
    }

    #[test]
    fn streaming_sink_flushes_per_table_and_detects_incomplete() {
        let dir = std::env::temp_dir().join(format!("ds-sink-flush-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut sink = CsvSink::new(&dir);
        sink.begin(&manifest()).unwrap();
        sink.node_count("B", 2).unwrap();
        sink.node_property(
            "B",
            "z",
            PropertyTable::from_values("B.z", ValueType::Long, [0i64, 1].map(Value::from)).unwrap(),
        )
        .unwrap();
        // B is complete: its file must already exist, before any A event.
        assert!(dir.join("B.csv").exists());
        assert!(!dir.join("A.csv").exists());
        // A and e never complete: finish must fail and name them.
        let err = sink.finish().unwrap_err();
        assert!(
            err.to_string().contains('A') && err.to_string().contains('e'),
            "{err}"
        );
        fs::remove_dir_all(&dir).unwrap();
    }
}
