//! Dependency analysis (§4.2): turn a schema into a topologically ordered
//! task list. "From the dependencies analysis we get a dependency graph,
//! which we traverse to preserve the dependencies between the tasks."

use std::collections::{BTreeMap, BTreeSet};
use std::ops::Range;

use datasynth_schema::{Cardinality, DepRef, Schema};

use crate::error::PipelineError;
use crate::sink::ShardSpec;

/// One pipeline task.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Task {
    /// Resolve the instance count of a node type.
    NodeCount(String),
    /// Generate one node property table.
    NodeProperty(String, String),
    /// Generate the structure (raw edge table) of an edge type.
    Structure(String),
    /// Match structure node ids to property-table ids (and relabel).
    Match(String),
    /// Generate one edge property table.
    EdgeProperty(String, String),
}

impl std::fmt::Display for Task {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Task::NodeCount(t) => write!(f, "count({t})"),
            Task::NodeProperty(t, p) => write!(f, "property({t}.{p})"),
            Task::Structure(e) => write!(f, "structure({e})"),
            Task::Match(e) => write!(f, "match({e})"),
            Task::EdgeProperty(e, p) => write!(f, "property({e}.{p})"),
        }
    }
}

/// A topologically ordered execution plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExecutionPlan {
    /// Tasks in a dependency-respecting order.
    pub tasks: Vec<Task>,
}

impl ExecutionPlan {
    /// Position of a task (for tests and diagnostics).
    pub fn position(&self, task: &Task) -> Option<usize> {
        self.tasks.iter().position(|t| t == task)
    }
}

/// How a node type's count will be obtained (resolved during analysis so
/// cycles surface here, not at run time).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CountSource {
    /// `[count = N]` in the schema.
    Explicit(u64),
    /// Target side of a 1→1 / 1→* edge: count comes from the generated
    /// structure of that edge.
    FromStructure(String),
    /// Source side of an edge with `[count = M]`: count comes from
    /// `getNumNodes(M)` of that edge's structure generator (no task dep —
    /// the inverse sizing is a pure function).
    FromEdgeCount(String),
}

/// Analysis output: the plan plus the count resolution per node type.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Ordered tasks.
    pub plan: ExecutionPlan,
    /// Count source per node type.
    pub count_sources: BTreeMap<String, CountSource>,
    /// For each plan index, the plan indices of its direct dependencies
    /// (sorted ascending; always earlier than the task itself). This is
    /// the edge list the task-parallel scheduler runs on: a task is ready
    /// the moment all of its entries have committed.
    pub task_deps: Vec<Vec<usize>>,
}

/// A table-shaped artifact the runner holds while tasks still need it.
/// Raw (pre-matching) structures are not listed: their single last reader
/// is always the `Match` task of their edge, which consumes them directly.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub enum Artifact {
    /// A node property table, `(node type, property)`.
    NodeProperty(String, String),
    /// A finalized (matched) edge table.
    Edges(String),
    /// An edge property table, `(edge type, property)`.
    EdgeProperty(String, String),
}

impl std::fmt::Display for Artifact {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Artifact::NodeProperty(t, p) => write!(f, "{t}.{p}"),
            Artifact::Edges(e) => write!(f, "edges({e})"),
            Artifact::EdgeProperty(e, p) => write!(f, "{e}.{p}"),
        }
    }
}

/// Compute, for each task index of the plan, the artifacts whose **last
/// use** is that task: once the task has run, the runner can hand each of
/// them to the sink and drop it from working memory. Every artifact the
/// plan produces appears in exactly one slot, at or after its production
/// index.
pub fn emission_schedule(schema: &Schema, analysis: &Analysis) -> Vec<Vec<Artifact>> {
    let tasks = &analysis.plan.tasks;
    // Walking in plan order and overwriting means each artifact ends up
    // mapped to the max of its production index and all read indices.
    let mut last_use: BTreeMap<Artifact, usize> = BTreeMap::new();
    for (i, task) in tasks.iter().enumerate() {
        match task {
            Task::NodeCount(_) | Task::Structure(_) => {}
            Task::NodeProperty(t, p) => {
                let node = schema.node_type(t).expect("validated");
                let prop = node.property(p).expect("validated");
                for dep in &prop.dependencies {
                    if let DepRef::Own(q) = dep {
                        last_use.insert(Artifact::NodeProperty(t.clone(), q.clone()), i);
                    }
                }
                last_use.insert(Artifact::NodeProperty(t.clone(), p.clone()), i);
            }
            Task::Match(e) => {
                let edge = schema.edge_type(e).expect("validated");
                if let Some(corr) = &edge.correlation {
                    last_use.insert(
                        Artifact::NodeProperty(edge.source.clone(), corr.property.clone()),
                        i,
                    );
                }
                last_use.insert(Artifact::Edges(e.clone()), i);
            }
            Task::EdgeProperty(e, p) => {
                let edge = schema.edge_type(e).expect("validated");
                let prop = edge
                    .properties
                    .iter()
                    .find(|q| q.name == *p)
                    .expect("validated");
                last_use.insert(Artifact::Edges(e.clone()), i);
                for dep in &prop.dependencies {
                    let artifact = match dep {
                        DepRef::Own(q) => Artifact::EdgeProperty(e.clone(), q.clone()),
                        DepRef::Source(q) => Artifact::NodeProperty(edge.source.clone(), q.clone()),
                        DepRef::Target(q) => Artifact::NodeProperty(edge.target.clone(), q.clone()),
                    };
                    last_use.insert(artifact, i);
                }
                last_use.insert(Artifact::EdgeProperty(e.clone(), p.clone()), i);
            }
        }
    }
    let mut schedule = vec![Vec::new(); tasks.len()];
    for (artifact, i) in last_use {
        schedule[i].push(artifact);
    }
    schedule
}

/// How one task executes inside a `k`-way sharded run (`Session::shard`).
///
/// The contract is byte-identity: concatenating every shard's sink output
/// in shard order must reproduce a full run exactly. Tables whose readers
/// are all *row-aligned* (they only look at the row ids they themselves
/// own) can be generated for just the shard's window; everything a
/// non-aligned consumer reads — raw structures feeding the global matching
/// step, endpoint property columns indexed by arbitrary node ids — is
/// recomputed in full from the seed on every shard that needs it, then
/// sliced down to the window when handed to the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ShardMode {
    /// A scalar (node count): resolved identically on every shard.
    Scalar,
    /// The full table is recomputed deterministically on this shard because
    /// a downstream task reads rows outside the shard's window; only the
    /// window is emitted to the sink.
    Recompute,
    /// Only the shard's row window is generated and committed.
    Windowed,
}

/// Does `reader` look at rows of `dep`'s output table outside its own row
/// window? Row-aligned readers (same-table property dependencies, an edge
/// property over its own edge table) slice; everything else forces `dep`
/// to be computed in full.
fn needs_full_dep(reader: &Task, dep: &Task) -> bool {
    match (reader, dep) {
        // Counts are scalars, resolved on every shard.
        (_, Task::NodeCount(_)) => false,
        // Matching is global: it walks the whole raw structure and the
        // whole correlated property column.
        (Task::Match(_), _) => true,
        // A count inferred from a structure scans every raw edge.
        (Task::NodeCount(_), Task::Structure(_)) => true,
        // source.* / target.* lookups index node tables by endpoint id,
        // which can fall anywhere.
        (Task::EdgeProperty(..), Task::NodeProperty(..)) => true,
        // Own-table dependencies share the reader's window.
        _ => false,
    }
}

/// Compute each task's [`ShardMode`]. A task runs `Windowed` unless some
/// consumer needs rows outside the shard window, in which case it (and,
/// transitively, every table it reads) is `Recompute`. Independent of the
/// shard spec: the same modes serve every `(index, count)`.
pub fn shard_modes(analysis: &Analysis) -> Vec<ShardMode> {
    let tasks = &analysis.plan.tasks;
    let mut need_full = vec![false; tasks.len()];
    let mut modes = vec![ShardMode::Windowed; tasks.len()];
    // Reverse plan order: every reader is decided before its dependencies.
    for i in (0..tasks.len()).rev() {
        modes[i] = match &tasks[i] {
            Task::NodeCount(_) => ShardMode::Scalar,
            _ if need_full[i] => ShardMode::Recompute,
            _ => ShardMode::Windowed,
        };
        // A task computing all of its rows reads all of its inputs' rows.
        let full_reader = modes[i] != ShardMode::Windowed;
        for &d in &analysis.task_deps[i] {
            if full_reader || needs_full_dep(&tasks[i], &tasks[d]) {
                need_full[d] = true;
            }
        }
    }
    modes
}

/// One task of a [`ShardPlan`]: its mode plus, where the table size is
/// statically known (explicit node counts), the shard's global row window.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardTaskPlan {
    /// The task.
    pub task: Task,
    /// How the task executes on this shard.
    pub mode: ShardMode,
    /// The shard's row window, when the row count is known before running
    /// (node tables with an explicit `[count = N]`). Dynamic sizes —
    /// structure-derived counts, edge tables — resolve at run time via the
    /// same [`shard_window`](datasynth_structure::shard_window) partition.
    pub rows: Option<Range<u64>>,
}

/// The shard-local view of an [`ExecutionPlan`]: which row window of every
/// table shard `spec.index` of `spec.count` owns, and which tasks must be
/// recomputed in full. Produced by [`ShardPlan::for_analysis`] and printed
/// by the CLI's `--plan --shard I/K`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardPlan {
    /// The shard this plan describes.
    pub spec: ShardSpec,
    /// Per-task modes and (static) windows, in plan order.
    pub tasks: Vec<ShardTaskPlan>,
}

impl ShardPlan {
    /// Build the shard plan for one shard of an analyzed schema.
    pub fn for_analysis(analysis: &Analysis, spec: ShardSpec) -> ShardPlan {
        let modes = shard_modes(analysis);
        let tasks = analysis
            .plan
            .tasks
            .iter()
            .zip(&modes)
            .map(|(task, &mode)| {
                let rows = match task {
                    Task::NodeProperty(t, _) => match analysis.count_sources.get(t) {
                        Some(CountSource::Explicit(n)) => Some(spec.window(*n)),
                        _ => None,
                    },
                    _ => None,
                };
                ShardTaskPlan {
                    task: task.clone(),
                    mode,
                    rows,
                }
            })
            .collect();
        ShardPlan { spec, tasks }
    }
}

/// Analyze a schema into an execution plan. Fails on underdetermined or
/// ambiguous sizing and on dependency cycles.
pub fn analyze(schema: &Schema) -> Result<Analysis, PipelineError> {
    let mut count_sources: BTreeMap<String, CountSource> = BTreeMap::new();

    // 1. Resolve where every node count comes from.
    for node in &schema.nodes {
        if let Some(c) = node.count {
            count_sources.insert(node.name.clone(), CountSource::Explicit(c));
        }
    }
    for edge in &schema.edges {
        let derives_target = matches!(
            edge.cardinality,
            Cardinality::OneToMany | Cardinality::OneToOne
        );
        if !derives_target {
            continue;
        }
        match count_sources.get(&edge.target) {
            None => {
                count_sources.insert(
                    edge.target.clone(),
                    CountSource::FromStructure(edge.name.clone()),
                );
            }
            Some(CountSource::FromStructure(other)) => {
                return Err(PipelineError::Sizing(format!(
                    "node type {:?} count derivable from both {other:?} and {:?}; \
                     give it an explicit [count = N] to disambiguate",
                    edge.target, edge.name
                )));
            }
            // An explicit count wins; the runner checks endpoint ranges.
            Some(_) => {}
        }
    }
    for edge in &schema.edges {
        if edge.count.is_some() && !count_sources.contains_key(&edge.source) {
            count_sources.insert(
                edge.source.clone(),
                CountSource::FromEdgeCount(edge.name.clone()),
            );
        }
    }
    for node in &schema.nodes {
        if !count_sources.contains_key(&node.name) {
            return Err(PipelineError::Sizing(format!(
                "cannot determine the number of {:?} instances: give it a [count = N], \
                 make it the target of a 1-to-many edge, or give such an edge a count",
                node.name
            )));
        }
    }

    // 2. Build the task DAG.
    let mut deps: BTreeMap<Task, BTreeSet<Task>> = BTreeMap::new();
    let mut add = |task: Task, dep: Option<Task>| {
        let entry = deps.entry(task).or_default();
        if let Some(d) = dep {
            entry.insert(d);
        }
    };

    for node in &schema.nodes {
        let count_task = Task::NodeCount(node.name.clone());
        match &count_sources[&node.name] {
            CountSource::Explicit(_) | CountSource::FromEdgeCount(_) => {
                add(count_task.clone(), None);
            }
            CountSource::FromStructure(e) => {
                add(count_task.clone(), Some(Task::Structure(e.clone())));
            }
        }
        for prop in &node.properties {
            let t = Task::NodeProperty(node.name.clone(), prop.name.clone());
            add(t.clone(), Some(count_task.clone()));
            for dep in &prop.dependencies {
                if let DepRef::Own(q) = dep {
                    add(
                        t.clone(),
                        Some(Task::NodeProperty(node.name.clone(), q.clone())),
                    );
                }
            }
        }
    }

    for edge in &schema.edges {
        let s_task = Task::Structure(edge.name.clone());
        // Structure always needs the source count to size `run(n)`. This
        // cannot cycle: a count derived from this edge's declared count
        // (`FromEdgeCount`) is a pure function of the generator spec, so
        // its NodeCount task has no dependency on the Structure task.
        add(s_task.clone(), Some(Task::NodeCount(edge.source.clone())));
        // Structure needs the target count too for endpoint validation,
        // except when this very edge defines it.
        if !matches!(&count_sources[&edge.target], CountSource::FromStructure(e) if e == &edge.name)
            && edge.target != edge.source
        {
            add(s_task.clone(), Some(Task::NodeCount(edge.target.clone())));
        }

        let m_task = Task::Match(edge.name.clone());
        add(m_task.clone(), Some(s_task.clone()));
        add(m_task.clone(), Some(Task::NodeCount(edge.source.clone())));
        add(m_task.clone(), Some(Task::NodeCount(edge.target.clone())));
        if let Some(corr) = &edge.correlation {
            add(
                m_task.clone(),
                Some(Task::NodeProperty(
                    edge.source.clone(),
                    corr.property.clone(),
                )),
            );
        }

        for prop in &edge.properties {
            let t = Task::EdgeProperty(edge.name.clone(), prop.name.clone());
            add(t.clone(), Some(m_task.clone()));
            for dep in &prop.dependencies {
                match dep {
                    DepRef::Own(q) => add(
                        t.clone(),
                        Some(Task::EdgeProperty(edge.name.clone(), q.clone())),
                    ),
                    DepRef::Source(q) => add(
                        t.clone(),
                        Some(Task::NodeProperty(edge.source.clone(), q.clone())),
                    ),
                    DepRef::Target(q) => add(
                        t.clone(),
                        Some(Task::NodeProperty(edge.target.clone(), q.clone())),
                    ),
                }
            }
        }
    }

    // 3. Kahn's algorithm (deterministic via BTree ordering).
    let mut in_degree: BTreeMap<&Task, usize> = deps.keys().map(|t| (t, 0)).collect();
    for ds in deps.values() {
        for d in ds {
            if !deps.contains_key(d) {
                return Err(PipelineError::Invalid(format!(
                    "internal: task {d} referenced but never defined"
                )));
            }
        }
    }
    let mut dependents: BTreeMap<&Task, Vec<&Task>> = BTreeMap::new();
    for (t, ds) in &deps {
        for d in ds {
            dependents.entry(d).or_default().push(t);
            *in_degree.get_mut(t).expect("all tasks registered") += 1;
        }
    }
    let mut ready: BTreeSet<&Task> = in_degree
        .iter()
        .filter(|(_, &d)| d == 0)
        .map(|(&t, _)| t)
        .collect();
    let mut order = Vec::with_capacity(deps.len());
    while let Some(&t) = ready.iter().next() {
        ready.remove(t);
        order.push(t.clone());
        if let Some(ds) = dependents.get(t) {
            for &d in ds {
                let e = in_degree.get_mut(d).expect("registered");
                *e -= 1;
                if *e == 0 {
                    ready.insert(d);
                }
            }
        }
    }
    if order.len() != deps.len() {
        let stuck: Vec<String> = in_degree
            .iter()
            .filter(|(_, &d)| d > 0)
            .map(|(t, _)| t.to_string())
            .collect();
        return Err(PipelineError::Sizing(format!(
            "cyclic dependencies between tasks: {}",
            stuck.join(", ")
        )));
    }

    // 4. Re-express the dependency edges as plan indices for the scheduler.
    let index_of: BTreeMap<&Task, usize> = order.iter().enumerate().map(|(i, t)| (t, i)).collect();
    let task_deps: Vec<Vec<usize>> = order
        .iter()
        .map(|t| {
            let mut ds: Vec<usize> = deps[t].iter().map(|d| index_of[d]).collect();
            ds.sort_unstable();
            ds
        })
        .collect();

    Ok(Analysis {
        plan: ExecutionPlan { tasks: order },
        count_sources,
        task_deps,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use datasynth_schema::parse_schema;

    const EXAMPLE: &str = r#"
graph social {
  node Person [count = 100] {
    country: text = dictionary("countries");
    sex: text = categorical("M": 0.5, "F": 0.5);
    name: text = first_names() given (country, sex);
    creationDate: date = date_between("2010-01-01", "2013-01-01");
  }
  node Message {
    topic: text = dictionary("topics");
  }
  edge knows: Person -- Person {
    structure = lfr();
    correlate country with homophily(0.8);
    creationDate: date = date_after(30) given (source.creationDate, target.creationDate);
  }
  edge creates: Person -> Message [one_to_many] {
    structure = one_to_many(dist = "geometric", p = 0.4);
  }
}
"#;

    #[test]
    fn message_count_comes_from_creates_structure() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        assert_eq!(
            analysis.count_sources["Message"],
            CountSource::FromStructure("creates".into())
        );
        let plan = &analysis.plan;
        let s = plan
            .position(&Task::Structure("creates".into()))
            .expect("structure task");
        let c = plan
            .position(&Task::NodeCount("Message".into()))
            .expect("count task");
        let p = plan
            .position(&Task::NodeProperty("Message".into(), "topic".into()))
            .expect("property task");
        assert!(s < c && c < p, "creates -> count -> topic");
    }

    #[test]
    fn match_runs_after_correlated_property() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let plan = &analysis.plan;
        let country = plan
            .position(&Task::NodeProperty("Person".into(), "country".into()))
            .unwrap();
        let m = plan.position(&Task::Match("knows".into())).unwrap();
        let edge_prop = plan
            .position(&Task::EdgeProperty("knows".into(), "creationDate".into()))
            .unwrap();
        assert!(country < m && m < edge_prop);
    }

    #[test]
    fn property_dependency_ordering_within_a_type() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let plan = &analysis.plan;
        let country = plan
            .position(&Task::NodeProperty("Person".into(), "country".into()))
            .unwrap();
        let name = plan
            .position(&Task::NodeProperty("Person".into(), "name".into()))
            .unwrap();
        assert!(country < name);
    }

    #[test]
    fn underdetermined_count_is_an_error() {
        let schema = parse_schema("graph g { node A { x: long = counter(); } }").unwrap();
        let err = analyze(&schema).unwrap_err();
        assert!(err.to_string().contains("cannot determine"));
    }

    #[test]
    fn edge_count_sizes_the_source() {
        let src = r#"graph g {
            node A { x: long = counter(); }
            edge e: A -- A [count = 5000] { structure = lfr(); }
        }"#;
        let schema = parse_schema(src).unwrap();
        let analysis = analyze(&schema).unwrap();
        assert_eq!(
            analysis.count_sources["A"],
            CountSource::FromEdgeCount("e".into())
        );
    }

    #[test]
    fn schedule_emits_each_artifact_once_at_or_after_production() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let schedule = emission_schedule(&schema, &analysis);
        assert_eq!(schedule.len(), analysis.plan.tasks.len());
        let all: Vec<&Artifact> = schedule.iter().flatten().collect();
        // 4 Person props + 1 Message prop + 2 edge tables + 1 edge prop.
        assert_eq!(all.len(), 8);
        let mut dedup = all.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), all.len(), "artifacts must be emitted once");
    }

    #[test]
    fn schedule_holds_tables_until_their_last_reader() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let schedule = emission_schedule(&schema, &analysis);
        let plan = &analysis.plan;
        let slot_of = |a: &Artifact| {
            schedule
                .iter()
                .position(|slot| slot.contains(a))
                .unwrap_or_else(|| panic!("{a} not scheduled"))
        };
        // country feeds the knows matching: emitted exactly after Match.
        assert_eq!(
            slot_of(&Artifact::NodeProperty("Person".into(), "country".into())),
            plan.position(&Task::Match("knows".into())).unwrap()
        );
        // creationDate feeds knows.creationDate: emitted at that edge prop.
        let knows_date = plan
            .position(&Task::EdgeProperty("knows".into(), "creationDate".into()))
            .unwrap();
        assert_eq!(
            slot_of(&Artifact::NodeProperty(
                "Person".into(),
                "creationDate".into()
            )),
            knows_date
        );
        // The knows edge table is read by its property task, so it is
        // emitted there, not at Match.
        assert_eq!(slot_of(&Artifact::Edges("knows".into())), knows_date);
        // creates has no edge properties: its table leaves at Match.
        assert_eq!(
            slot_of(&Artifact::Edges("creates".into())),
            plan.position(&Task::Match("creates".into())).unwrap()
        );
        // name is read by nothing downstream: emitted at production.
        assert_eq!(
            slot_of(&Artifact::NodeProperty("Person".into(), "name".into())),
            plan.position(&Task::NodeProperty("Person".into(), "name".into()))
                .unwrap()
        );
    }

    #[test]
    fn plan_covers_every_declared_artifact() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        // 2 counts + 5 node props + 2 structures + 2 matches + 1 edge prop.
        assert_eq!(analysis.plan.tasks.len(), 2 + 5 + 2 + 2 + 1);
    }

    #[test]
    fn shard_modes_window_aligned_tables_and_recompute_global_inputs() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let modes = shard_modes(&analysis);
        let mode_of = |t: &Task| modes[analysis.plan.position(t).unwrap()];
        // Counts are scalars everywhere.
        assert_eq!(
            mode_of(&Task::NodeCount("Person".into())),
            ShardMode::Scalar
        );
        // Raw structures feed the global matching step: full recompute.
        assert_eq!(
            mode_of(&Task::Structure("knows".into())),
            ShardMode::Recompute
        );
        // The matched edge table is only read row-aligned (edge props).
        assert_eq!(mode_of(&Task::Match("knows".into())), ShardMode::Windowed);
        // country drives the knows correlation: the matcher reads it all.
        assert_eq!(
            mode_of(&Task::NodeProperty("Person".into(), "country".into())),
            ShardMode::Recompute
        );
        // creationDate is read through source./target. endpoint lookups.
        assert_eq!(
            mode_of(&Task::NodeProperty("Person".into(), "creationDate".into())),
            ShardMode::Recompute
        );
        // name is a leaf (own-deps only, nothing reads it): sliced.
        assert_eq!(
            mode_of(&Task::NodeProperty("Person".into(), "name".into())),
            ShardMode::Windowed
        );
        // Edge property columns are row-aligned with their edge table.
        assert_eq!(
            mode_of(&Task::EdgeProperty("knows".into(), "creationDate".into())),
            ShardMode::Windowed
        );
    }

    #[test]
    fn shard_recompute_propagates_through_own_dependencies() {
        // b is read by an endpoint lookup, so b recomputes in full — and
        // therefore a (which b reads row by row) must too.
        let src = r#"graph g {
            node A [count = 10] {
                a: date = date_between("2020-01-01", "2020-12-31");
                b: date = date_after(10) given (a);
            }
            edge e: A -- A {
                structure = erdos_renyi(p = 0.2);
                p: date = date_after(5) given (source.b);
            }
        }"#;
        let schema = parse_schema(src).unwrap();
        let analysis = analyze(&schema).unwrap();
        let modes = shard_modes(&analysis);
        let mode_of = |t: &Task| modes[analysis.plan.position(t).unwrap()];
        assert_eq!(
            mode_of(&Task::NodeProperty("A".into(), "b".into())),
            ShardMode::Recompute
        );
        assert_eq!(
            mode_of(&Task::NodeProperty("A".into(), "a".into())),
            ShardMode::Recompute
        );
        assert_eq!(
            mode_of(&Task::EdgeProperty("e".into(), "p".into())),
            ShardMode::Windowed
        );
    }

    #[test]
    fn shard_plan_reports_static_windows_for_explicit_counts() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let spec = ShardSpec::new(1, 4).unwrap();
        let plan = ShardPlan::for_analysis(&analysis, spec);
        assert_eq!(plan.tasks.len(), analysis.plan.tasks.len());
        let name = plan
            .tasks
            .iter()
            .find(|t| t.task == Task::NodeProperty("Person".into(), "name".into()))
            .unwrap();
        assert_eq!(name.rows, Some(25..50), "100 rows, shard 1/4");
        // Message's count is structure-derived: unknown statically.
        let topic = plan
            .tasks
            .iter()
            .find(|t| t.task == Task::NodeProperty("Message".into(), "topic".into()))
            .unwrap();
        assert_eq!(topic.rows, None);
    }

    #[test]
    fn task_deps_point_backwards_and_match_the_dag() {
        let schema = parse_schema(EXAMPLE).unwrap();
        let analysis = analyze(&schema).unwrap();
        let plan = &analysis.plan;
        assert_eq!(analysis.task_deps.len(), plan.tasks.len());
        for (i, ds) in analysis.task_deps.iter().enumerate() {
            for &d in ds {
                assert!(d < i, "dep {d} of task {i} must precede it in plan order");
            }
        }
        // Spot-check the running example's load-bearing edges.
        let idx = |t: &Task| plan.position(t).unwrap();
        let m = idx(&Task::Match("knows".into()));
        assert!(analysis.task_deps[m].contains(&idx(&Task::Structure("knows".into()))));
        assert!(analysis.task_deps[m]
            .contains(&idx(&Task::NodeProperty("Person".into(), "country".into()))));
        let name = idx(&Task::NodeProperty("Person".into(), "name".into()));
        assert!(analysis.task_deps[name]
            .contains(&idx(&Task::NodeProperty("Person".into(), "country".into()))));
        // Root tasks (explicit counts) have no dependencies.
        let count = idx(&Task::NodeCount("Person".into()));
        assert!(analysis.task_deps[count].is_empty());
    }
}
