//! The pipeline's unified error type.

use std::fmt;

/// Anything that can go wrong between a DSL string and a generated graph.
#[derive(Debug)]
pub enum PipelineError {
    /// Schema parse/validation error.
    Schema(datasynth_schema::SchemaError),
    /// Property generator construction failed.
    PropertyRegistry(datasynth_props::RegistryError),
    /// Structure generator construction failed.
    StructureBuild(datasynth_structure::BuildError),
    /// A property generator failed at generation time.
    Generation(datasynth_props::GenError),
    /// Table access failed (internal invariant breach).
    Table(datasynth_tables::TableError),
    /// Instance counts could not be resolved.
    Sizing(String),
    /// A [`GraphSink`](crate::GraphSink) rejected or failed to persist an
    /// emitted artifact.
    Sink(crate::SinkError),
    /// A worker thread panicked; the payload is reported instead of
    /// crashing the process.
    WorkerPanic(String),
    /// Everything else (with context).
    Invalid(String),
}

impl fmt::Display for PipelineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PipelineError::Schema(e) => write!(f, "schema error: {e}"),
            PipelineError::PropertyRegistry(e) => write!(f, "property generator: {e}"),
            PipelineError::StructureBuild(e) => write!(f, "structure generator: {e}"),
            PipelineError::Generation(e) => write!(f, "generation failed: {e}"),
            PipelineError::Table(e) => write!(f, "table error: {e}"),
            PipelineError::Sizing(msg) => write!(f, "sizing error: {msg}"),
            PipelineError::Sink(e) => write!(f, "sink error: {e}"),
            PipelineError::WorkerPanic(msg) => write!(f, "worker panicked: {msg}"),
            PipelineError::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for PipelineError {}

impl From<datasynth_schema::SchemaError> for PipelineError {
    fn from(e: datasynth_schema::SchemaError) -> Self {
        PipelineError::Schema(e)
    }
}

impl From<datasynth_props::RegistryError> for PipelineError {
    fn from(e: datasynth_props::RegistryError) -> Self {
        PipelineError::PropertyRegistry(e)
    }
}

impl From<datasynth_structure::BuildError> for PipelineError {
    fn from(e: datasynth_structure::BuildError) -> Self {
        PipelineError::StructureBuild(e)
    }
}

impl From<datasynth_props::GenError> for PipelineError {
    fn from(e: datasynth_props::GenError) -> Self {
        PipelineError::Generation(e)
    }
}

impl From<datasynth_tables::TableError> for PipelineError {
    fn from(e: datasynth_tables::TableError) -> Self {
        PipelineError::Table(e)
    }
}

impl From<crate::SinkError> for PipelineError {
    fn from(e: crate::SinkError) -> Self {
        PipelineError::Sink(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_prefixes_the_source() {
        let e = PipelineError::Sizing("Person has no count".into());
        assert!(e.to_string().starts_with("sizing error:"));
        let e: PipelineError = datasynth_schema::SchemaError::general("bad").into();
        assert!(e.to_string().contains("schema error"));
    }
}
